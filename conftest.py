"""Repo-root pytest configuration.

Defines the ``--run-slow`` switch gating the full-figure reproduction
benchmarks: ``pytest benchmarks`` collects the ``bench_*.py`` files but
skips every item unless ``--run-slow`` is given (see
``benchmarks/conftest.py`` for the skip logic).  The tier-1 suite under
``tests/`` is unaffected.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow", action="store_true", default=False,
        help="run the bench_*.py full-figure reproduction benchmarks "
             "(skipped by default — they re-simulate whole paper "
             "figures)")
