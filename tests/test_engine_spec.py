"""Tests for repro.engine.spec — declarative scenarios and grids."""

import pytest

from repro.engine import GridSpec, ScenarioSpec, expand_grid, grid_size


def outdoor_spec(**updates):
    base = ScenarioSpec(source="sun", detector="led", cap=False,
                        ground="tarmac", bits="00", symbol_width_m=0.1,
                        speed_mps=5.0, receiver_height_m=0.25,
                        start_position_m=-1.5, sample_rate_hz=2000.0)
    return base.replace(**updates) if updates else base


class TestValidation:
    def test_defaults_valid(self):
        ScenarioSpec()

    @pytest.mark.parametrize("updates", [
        {"bits": ""},
        {"bits": "012"},
        {"symbol_width_m": 0.0},
        {"receiver_height_m": -0.2},
        {"speed_mps": 0.0},
        {"source": "laser"},
        {"detector": "ccd"},
        {"pd_gain": "G9"},
        {"decoder": "viterbi"},
        {"car": "tesla"},
        {"dirt": 1.5},
        {"visibility_m": 0.0},
        {"sample_rate_hz": -1.0},
    ])
    def test_bad_field_rejected(self, updates):
        with pytest.raises(ValueError):
            ScenarioSpec(**updates)

    def test_dirt_on_car_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(car="volvo_v40", dirt=0.3)

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            ScenarioSpec().replace(source="nope")


class TestSerialization:
    def test_dict_roundtrip(self):
        spec = outdoor_spec(car="volvo_v40", decoder="two_phase", seed=7)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="wavelength"):
            ScenarioSpec.from_dict({"wavelength": 650.0})

    def test_canonical_json_stable(self):
        spec = outdoor_spec()
        assert spec.canonical_json() == spec.canonical_json()


class TestResolution:
    def test_resolve_fills_auto_fields(self):
        spec = ScenarioSpec()
        resolved = spec.resolve()
        assert resolved.sample_rate_hz == spec.auto_sample_rate_hz()
        assert resolved.start_position_m == spec.auto_start_position_m()
        assert resolved.seed is not None

    def test_resolve_idempotent(self):
        resolved = ScenarioSpec().resolve()
        assert resolved.resolve() == resolved

    def test_auto_sample_rate_clamped(self):
        slow = ScenarioSpec(speed_mps=0.01, symbol_width_m=0.1)
        fast = ScenarioSpec(speed_mps=50.0, symbol_width_m=0.1)
        assert slow.auto_sample_rate_hz() == 200.0
        assert fast.auto_sample_rate_hz() == 2000.0

    def test_derived_seed_deterministic_but_field_sensitive(self):
        a, b = ScenarioSpec(), ScenarioSpec()
        assert a.derived_seed() == b.derived_seed()
        assert a.derived_seed() != a.replace(bits="00").derived_seed()
        # Stable under resolution: explicit derived seed hashes the same.
        assert a.resolve().content_hash() == a.content_hash()


class TestContentHash:
    def test_hash_changes_with_any_field(self):
        spec = outdoor_spec(seed=1)
        assert spec.content_hash() != spec.replace(seed=2).content_hash()
        assert (spec.content_hash()
                != spec.replace(ground_lux=451.0).content_hash())

    def test_equivalent_auto_and_explicit_share_hash(self):
        auto = outdoor_spec(seed=1).replace(sample_rate_hz=None)
        explicit = outdoor_spec(seed=1, sample_rate_hz=2000.0)
        assert auto.content_hash() == explicit.content_hash()

    def test_auto_and_explicit_share_derived_seed_and_hash(self):
        """Spelling an auto value explicitly must not perturb the
        derived seed, or identical scenarios would miss the cache."""
        auto = ScenarioSpec()
        explicit = ScenarioSpec(
            sample_rate_hz=auto.auto_sample_rate_hz(),
            start_position_m=auto.auto_start_position_m())
        assert auto.derived_seed() == explicit.derived_seed()
        assert auto.content_hash() == explicit.content_hash()


class TestGridExpansion:
    def test_counts_and_order(self):
        specs = expand_grid(outdoor_spec(),
                            {"ground_lux": [100.0, 450.0],
                             "seed": [1, 2, 3]})
        assert len(specs) == 6
        assert grid_size({"ground_lux": [100.0, 450.0],
                          "seed": [1, 2, 3]}) == 6
        # Row-major: the last axis varies fastest.
        assert [s.ground_lux for s in specs] == [100.0] * 3 + [450.0] * 3
        assert [s.seed for s in specs] == [1, 2, 3, 1, 2, 3]

    def test_empty_axes_is_single_scenario(self):
        assert expand_grid(outdoor_spec(), {}) == [outdoor_spec()]
        assert grid_size({}) == 1

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="frequency"):
            expand_grid(outdoor_spec(), {"frequency": [1.0]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_grid(outdoor_spec(), {"seed": []})

    def test_thousands_of_scenarios(self):
        specs = expand_grid(
            ScenarioSpec(),
            {"receiver_height_m": [0.2 + 0.01 * i for i in range(10)],
             "symbol_width_m": [0.02 + 0.005 * i for i in range(10)],
             "seed": list(range(20))})
        assert len(specs) == 2000
        assert len({s.content_hash() for s in specs}) == 2000

    def test_gridspec_from_dict(self):
        grid = GridSpec.from_dict({
            "template": {"source": "sun", "detector": "led", "cap": False},
            "axes": {"ground_lux": [100.0, 450.0], "seed": [1, 2]}})
        assert grid.size() == 4
        specs = grid.expand()
        assert len(specs) == 4
        assert all(s.source == "sun" for s in specs)
