"""Engine integration of the streaming runtime: spec block, executor
path, record latency fields, report aggregation and the stream CLI."""

import json

import pytest

from repro.engine import ScenarioSpec, execute_scenario
from repro.engine.cli import main as cli_main
from repro.engine.records import RunRecord
from repro.engine.report import latency_stats, latency_table, summarize


def outdoor_spec(**overrides) -> ScenarioSpec:
    base = dict(source="sun", detector="led", cap=False, ground="tarmac",
                bits="1001", symbol_width_m=0.1, speed_mps=5.0,
                receiver_height_m=0.25, start_position_m=-1.5,
                sample_rate_hz=2000.0, ground_lux=450.0, seed=3)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecStreamingBlock:
    def test_defaults_are_offline(self):
        spec = ScenarioSpec()
        assert spec.stream_chunk == 0
        assert spec.stream_feed_hz == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(stream_chunk=-1)
        with pytest.raises(ValueError):
            ScenarioSpec(stream_chunk=1.5)
        with pytest.raises(ValueError):
            ScenarioSpec(stream_feed_hz=-2.0)
        # Pacing is valid on its own — the session layer chunks with
        # its own --chunk flag.
        assert ScenarioSpec(stream_feed_hz=10.0).stream_feed_hz == 10.0
        with pytest.raises(ValueError):
            # Streaming replay is single-receiver; multi-receiver
            # streams go through the session layer.
            ScenarioSpec(stream_chunk=64, n_receivers=3)

    def test_streaming_fields_do_not_perturb_derived_seed(self):
        """The physical pass is identical whether it is decoded offline
        or streamed, so the noise seed must not move."""
        base = ScenarioSpec(bits="10")
        streamed = base.replace(stream_chunk=64, stream_feed_hz=100.0)
        assert base.derived_seed() == streamed.derived_seed()
        assert (base.resolve().seed
                == streamed.resolve().seed)

    def test_streaming_fields_do_perturb_cache_identity(self):
        base = ScenarioSpec(bits="10")
        assert (base.content_hash()
                != base.replace(stream_chunk=64).content_hash())
        assert (base.replace(stream_chunk=32).content_hash()
                != base.replace(stream_chunk=64).content_hash())

    def test_round_trip(self):
        spec = ScenarioSpec(stream_chunk=64, stream_feed_hz=50.0)
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec


class TestExecutorStreamingPath:
    def test_verdict_parity_with_offline(self):
        offline = execute_scenario(outdoor_spec())
        streamed = execute_scenario(outdoor_spec(stream_chunk=64))
        assert streamed.decoded_bits == offline.decoded_bits
        assert streamed.success == offline.success
        assert streamed.stage == offline.stage
        assert streamed.seed == offline.seed
        assert streamed.n_samples == offline.n_samples

    def test_latency_fields_recorded(self):
        record = execute_scenario(outdoor_spec(stream_chunk=64))
        assert record.streamed
        assert record.stream_chunks > 1
        assert record.onset_latency_s is not None
        assert record.onset_latency_s > 0.0
        assert record.first_bit_latency_s is not None
        assert record.verdict_latency_s is not None

    def test_payloadless_decode_records_no_verdict_latency(self):
        """seed 0 returns a Manchester-invalid result (no payload) —
        its clamped placeholder latency must not be recorded
        (regression: -17.1 ms, then 0.0, were recorded and cached)."""
        record = execute_scenario(outdoor_spec(stream_chunk=64, seed=0))
        assert record.stage == "bit_errors"
        assert record.decoded_bits == ""
        assert record.verdict_latency_s is None

    def test_successful_verdict_latency_nonnegative(self):
        record = execute_scenario(outdoor_spec(stream_chunk=64, seed=3))
        assert record.stage == "decoded"
        assert record.verdict_latency_s is not None
        assert record.verdict_latency_s >= 0.0

    def test_failed_streamed_decode_has_no_verdict_latency(self):
        """No data window on a failed decode means no verdict-latency
        measurement — a 0.0 placeholder would drag percentiles down."""
        record = execute_scenario(
            outdoor_spec(stream_chunk=64, ground_lux=100000.0))
        assert record.streamed
        assert record.stage == "preamble_not_found"
        assert record.verdict_latency_s is None

    def test_offline_record_has_no_latencies(self):
        record = execute_scenario(outdoor_spec())
        assert not record.streamed
        assert record.stream_chunks == 0
        assert record.onset_latency_s is None

    def test_streamed_record_round_trips(self):
        record = execute_scenario(outdoor_spec(stream_chunk=64))
        again = RunRecord.from_dict(json.loads(
            json.dumps(record.to_dict())))
        assert again == record
        assert again.canonical_json() == record.canonical_json()

    def test_streaming_is_deterministic(self):
        spec = outdoor_spec(stream_chunk=32)
        a = execute_scenario(spec)
        b = execute_scenario(spec)
        assert a.canonical_json() == b.canonical_json()

    def test_chunk_size_changes_latency_not_verdict(self):
        fine = execute_scenario(outdoor_spec(stream_chunk=8))
        coarse = execute_scenario(outdoor_spec(stream_chunk=256))
        assert fine.decoded_bits == coarse.decoded_bits
        assert fine.onset_latency_s <= coarse.onset_latency_s


class TestReportAggregation:
    def _records(self):
        return [execute_scenario(outdoor_spec(stream_chunk=64, seed=s))
                for s in (3, 4)]

    def test_latency_stats(self):
        records = self._records()
        stats = latency_stats(records)
        assert stats["n_streamed"] == 2
        assert 0.0 < stats["detect_rate"] <= 1.0
        assert stats["onset_p50_s"] is not None
        assert stats["onset_p95_s"] >= stats["onset_p50_s"]

    def test_latency_stats_empty(self):
        stats = latency_stats([])
        assert stats["n_streamed"] == 0
        assert stats["onset_p50_s"] is None

    def test_summarize_mentions_streaming(self):
        text = summarize(self._records())
        assert "streamed passes: 2" in text
        assert "onset p50" in text

    def test_summarize_offline_records_unchanged(self):
        text = summarize([execute_scenario(outdoor_spec())])
        assert "streamed passes" not in text

    def test_latency_table(self):
        table = latency_table(self._records(), "seed")
        assert "stream latency by seed" in table
        assert "3" in table and "4" in table


class TestRunStream:
    def test_programmatic_replay(self):
        """run_stream is callable without the CLI and returns
        structured per-session outcomes plus fusion."""
        from repro.engine import run_stream

        result = run_stream([outdoor_spec(seed=s) for s in (3, 4)],
                            sessions=2, chunk_size=64)
        assert len(result.outcomes) == 2
        assert result.n_distinct_captures == 2
        assert result.samples_total > 0
        for outcome in result.outcomes:
            assert outcome.sent_bits == "1001"
            assert outcome.detection is not None
            assert outcome.signal_level["span"] > 0.0
            assert outcome.to_dict()["stats"]["n_chunks"] > 0
        fused = result.fusion_by_payload()
        assert set(fused) == {"1001"}

    def test_validation(self):
        from repro.engine import run_stream

        with pytest.raises(ValueError):
            run_stream([outdoor_spec()], chunk_size=0)
        with pytest.raises(ValueError):
            run_stream([outdoor_spec()], sessions=0)
        with pytest.raises(ValueError):
            run_stream([outdoor_spec()], feed_hz=-1.0)


class TestStreamCli:
    def test_spec_stream_chunk_honoured_without_chunk_flag(self, capsys):
        """--set stream_chunk must drive the replay chunking when
        --chunk is not given (regression: it was silently stripped)."""
        code = cli_main([
            "stream",
            "--set", "source=sun", "--set", "detector=led",
            "--set", "cap=false", "--set", "ground=tarmac",
            "--set", "bits=1001", "--set", "symbol_width_m=0.1",
            "--set", "speed_mps=5.0", "--set", "receiver_height_m=0.25",
            "--set", "start_position_m=-1.5",
            "--set", "sample_rate_hz=2000",
            "--set", "ground_lux=450", "--set", "stream_chunk=32",
            "--sessions", "1", "--count", "1",
        ])
        assert code == 0
        assert "(chunk 32," in capsys.readouterr().out

    def test_stream_command_runs(self, tmp_path, capsys):
        out = tmp_path / "sessions.jsonl"
        code = cli_main([
            "stream",
            "--set", "source=sun", "--set", "detector=led",
            "--set", "cap=false", "--set", "ground=tarmac",
            "--set", "bits=1001", "--set", "symbol_width_m=0.1",
            "--set", "speed_mps=5.0", "--set", "receiver_height_m=0.25",
            "--set", "start_position_m=-1.5",
            "--set", "sample_rate_hz=2000",
            "--set", "ground_lux=450",
            "--sessions", "4", "--count", "4", "--chunk", "64",
            "--out", str(out),
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "4 sessions in waves of 4" in captured
        assert "cross-session fusion" in captured
        assert "onset ms" in captured
        lines = [json.loads(line) for line in
                 out.read_text().splitlines()]
        assert len(lines) == 4
        assert all("events" in entry and "stats" in entry
                   for entry in lines)
        # The online normalizer's level state is part of the report.
        for entry in lines:
            level = entry["signal_level"]
            assert level is not None
            assert level["max"] >= level["min"]
            assert level["span"] > 0.0

    def test_stream_sweep_records_latencies(self, tmp_path, capsys):
        """`sweep` with a streaming template produces latency tables."""
        out = tmp_path / "runs.jsonl"
        code = cli_main([
            "sweep",
            "--set", "source=sun", "--set", "detector=led",
            "--set", "cap=false", "--set", "ground=tarmac",
            "--set", "bits=1001", "--set", "symbol_width_m=0.1",
            "--set", "speed_mps=5.0", "--set", "receiver_height_m=0.25",
            "--set", "start_position_m=-1.5",
            "--set", "sample_rate_hz=2000",
            "--set", "ground_lux=450", "--set", "stream_chunk=64",
            "--axis", "seed=3,4", "--group-by", "seed",
            "--out", str(out),
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "streamed passes: 2" in captured
        assert "stream latency by seed" in captured
        records = [RunRecord.from_dict(json.loads(line))
                   for line in out.read_text().splitlines()]
        assert all(r.streamed for r in records)

    def test_explicit_seed_is_honoured(self, capsys):
        """--set seed pins the pass: every session replays that exact
        capture (regression: the seed used to be silently fanned out)."""
        code = cli_main([
            "stream",
            "--set", "source=sun", "--set", "detector=led",
            "--set", "cap=false", "--set", "ground=tarmac",
            "--set", "bits=1001", "--set", "symbol_width_m=0.1",
            "--set", "speed_mps=5.0", "--set", "receiver_height_m=0.25",
            "--set", "start_position_m=-1.5",
            "--set", "sample_rate_hz=2000",
            "--set", "ground_lux=450", "--set", "seed=3",
            "--sessions", "2", "--count", "2", "--chunk", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines()
                if line.startswith("s00")]
        # Identical pass -> identical verdicts and sample-clock
        # latencies (wall-clock columns — throughput, queue depth —
        # legitimately vary) — and the channel is simulated only once.
        assert len(rows) == 2
        assert rows[0].split()[1:8] == rows[1].split()[1:8]
        assert "capturing 1 distinct pass for 2 sessions" in out

    def test_spec_stream_feed_hz_paces_the_replay(self, capsys):
        """A pacing spelled on the spec (--set stream_feed_hz) must be
        honoured, not silently dropped (--feed-hz still overrides)."""
        code = cli_main([
            "stream",
            "--set", "source=sun", "--set", "detector=led",
            "--set", "cap=false", "--set", "ground=tarmac",
            "--set", "bits=1001", "--set", "symbol_width_m=0.1",
            "--set", "speed_mps=5.0", "--set", "receiver_height_m=0.25",
            "--set", "start_position_m=-1.5",
            "--set", "sample_rate_hz=2000",
            "--set", "ground_lux=450",
            "--set", "stream_feed_hz=500",
            "--sessions", "2", "--count", "2", "--chunk", "64",
        ])
        assert code == 0
        assert "feed 500 Hz" in capsys.readouterr().out

    def test_explicit_feed_hz_zero_overrides_spec_pacing(self, capsys):
        """--feed-hz 0 must force an unpaced replay even when the spec
        spells a pacing (regression: falsy-zero fell through)."""
        code = cli_main([
            "stream",
            "--set", "source=sun", "--set", "detector=led",
            "--set", "cap=false", "--set", "ground=tarmac",
            "--set", "bits=1001", "--set", "symbol_width_m=0.1",
            "--set", "speed_mps=5.0", "--set", "receiver_height_m=0.25",
            "--set", "start_position_m=-1.5",
            "--set", "sample_rate_hz=2000",
            "--set", "ground_lux=450",
            "--set", "stream_feed_hz=500", "--feed-hz", "0",
            "--sessions", "1", "--count", "1", "--chunk", "64",
        ])
        assert code == 0
        assert "feed unpaced" in capsys.readouterr().out

    def test_parallel_capture_matches_serial(self, capsys):
        """--workers only parallelizes the capture phase; the
        deterministic table columns must not move."""
        argv = [
            "stream",
            "--set", "source=sun", "--set", "detector=led",
            "--set", "cap=false", "--set", "ground=tarmac",
            "--set", "bits=1001", "--set", "symbol_width_m=0.1",
            "--set", "speed_mps=5.0", "--set", "receiver_height_m=0.25",
            "--set", "start_position_m=-1.5",
            "--set", "sample_rate_hz=2000",
            "--set", "ground_lux=450",
            "--sessions", "2", "--count", "2", "--chunk", "64",
        ]

        def rows(extra):
            assert cli_main(argv + extra) == 0
            return [line.split()[:8] for line in
                    capsys.readouterr().out.splitlines()
                    if line.startswith("s00")]

        assert rows(["--workers", "2"]) == rows([])

    def test_failed_session_prints_dash_not_zero_latency(self, capsys):
        code = cli_main([
            "stream",
            "--set", "source=sun", "--set", "detector=led",
            "--set", "cap=false", "--set", "ground=tarmac",
            "--set", "bits=1001", "--set", "symbol_width_m=0.1",
            "--set", "speed_mps=5.0", "--set", "receiver_height_m=0.25",
            "--set", "start_position_m=-1.5",
            "--set", "sample_rate_hz=2000",
            "--set", "ground_lux=100000", "--set", "seed=3",
            "--sessions", "1", "--count", "1", "--chunk", "64",
        ])
        assert code == 0
        row = [line for line in capsys.readouterr().out.splitlines()
               if line.startswith("s000")][0]
        # sent, verdict, ok, onset, first-bit, verdict-latency columns
        assert row.split()[1:7] == ["1001", "-", "no", "-", "-", "-"]

    def test_cache_dir_not_offered_on_stream(self):
        """stream captures traces, not records — the record cache flag
        would be a silent no-op, so the parser must reject it."""
        with pytest.raises(SystemExit):
            cli_main(["stream", "--cache-dir", "/tmp/x"])

    def test_bad_chunk_rejected(self):
        assert cli_main(["stream", "--chunk", "0"]) == 2

    def test_bad_count_rejected(self):
        assert cli_main(["stream", "--count", "0"]) == 2

    def test_networked_family_with_stream_chunk_template(self, capsys):
        """A stream_chunk template must not trip the single-receiver
        validation when a networked family stacks n_receivers on it
        mid-expansion (regression: exit 2 pointing at this command)."""
        code = cli_main([
            "stream", "--scenario", "sparse_mesh",
            "--set", "stream_chunk=64",
            "--count", "2", "--sessions", "2", "--chunk", "64",
        ])
        assert code == 0
        assert "2 sessions" in capsys.readouterr().out

    def test_family_seed_without_scenario_rejected(self):
        assert cli_main(["stream", "--family-seed", "1"]) == 2
