"""Tests for repro.vehicles.profiles."""

import numpy as np
import pytest

from repro.optics.geometry import Vec3
from repro.optics.materials import CAR_GLASS, CAR_PAINT_METAL
from repro.optics.reflection import OVERHEAD_GEOMETRY, IlluminationGeometry
from repro.vehicles.profiles import (
    CAR_LIBRARY,
    CarProfile,
    CarSegment,
    bmw_3_series,
    car_by_name,
    volvo_v40,
)


class TestSegments:
    def test_positive_length(self):
        with pytest.raises(ValueError):
            CarSegment("hood", CAR_PAINT_METAL, 0.0)

    def test_profile_needs_segments(self):
        with pytest.raises(ValueError):
            CarProfile(model="empty", segments=[])


class TestLibraryCars:
    def test_realistic_lengths(self):
        for car in (volvo_v40(), bmw_3_series()):
            assert 3.5 < car.length_m < 5.5

    def test_volvo_is_hatchback(self):
        """Fig. 13: long rear glass, only a short tail lip."""
        volvo = volvo_v40()
        rw_start, rw_end = volvo.segment_span("rear_window")
        lip_start, lip_end = volvo.segment_span("tailgate_lip")
        assert (rw_end - rw_start) > 2 * (lip_end - lip_start)

    def test_bmw_is_sedan(self):
        """Fig. 14: a long trunk deck produces the E peak."""
        bmw = bmw_3_series()
        t_start, t_end = bmw.segment_span("trunk")
        assert (t_end - t_start) > 0.8

    def test_metal_glass_alternation(self):
        for car in (volvo_v40(), bmw_3_series()):
            kinds = [seg.material.name for seg in car.segments]
            for i in range(len(kinds) - 1):
                assert kinds[i] != kinds[i + 1], "segments must alternate"

    def test_segment_lookup(self):
        volvo = volvo_v40()
        start, end = volvo.segment_span("hood")
        assert start == 0.0
        assert end == pytest.approx(0.95)
        with pytest.raises(KeyError):
            volvo.segment_span("spoiler")

    def test_segment_at(self):
        volvo = volvo_v40()
        assert volvo.segment_at(0.5).name == "hood"
        assert volvo.segment_at(1.2).name == "windshield"
        assert volvo.segment_at(-0.1) is None
        assert volvo.segment_at(volvo.length_m + 1.0) is None

    def test_metal_and_glass_lists(self):
        bmw = bmw_3_series()
        assert "hood" in bmw.metal_segments()
        assert "windshield" in bmw.glass_segments()

    def test_min_feature(self):
        volvo = volvo_v40()
        assert volvo.min_feature_m == pytest.approx(0.25)


#: Cloudy 45-degree sun — the Section 5 illumination.  Exactly-overhead
#: collimated light is the degenerate retro-glint case where flat glass
#: mirrors the source straight back; real scenes never sit there.
SUN_45 = IlluminationGeometry(
    incident_direction=Vec3(1.0, 0.0, -1.0).normalized(),
    view_direction=Vec3(0.0, 0.0, 1.0),
    diffuse_fraction=0.6,
)


class TestReflectanceProfile:
    def test_metal_brighter_than_glass(self):
        volvo = volvo_v40()
        xs = np.array([0.5, 1.2])  # hood (metal), windshield (glass)
        rho = volvo.reflectance_samples(xs, SUN_45)
        assert rho[0] > 2 * rho[1]

    def test_zero_outside(self):
        volvo = volvo_v40()
        rho = volvo.reflectance_samples(np.array([-1.0, 10.0]), SUN_45)
        assert np.all(rho == 0.0)


class TestLibraryLookup:
    def test_by_name(self):
        assert car_by_name("volvo_v40").model == "Volvo V40"
        assert car_by_name("bmw_3_series").model == "BMW 3 series"

    def test_unknown_lists_known(self):
        with pytest.raises(KeyError, match="volvo_v40"):
            car_by_name("tesla_model_s")

    def test_library_builds_fresh_instances(self):
        assert car_by_name("volvo_v40") is not car_by_name("volvo_v40")
        assert set(CAR_LIBRARY) == {"volvo_v40", "bmw_3_series"}
