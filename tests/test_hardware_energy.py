"""Tests for repro.hardware.energy (the sustainability argument)."""

import pytest

from repro.hardware.energy import (
    CAMERA_POWER_W,
    OPT101_POWER_W,
    PowerBudget,
    SolarPanel,
    autonomy,
    camera_receiver_budget,
    photodiode_receiver_budget,
)


class TestPaperNumbers:
    def test_opt101_quote(self):
        """'1.5 mW (power consumption of the photodiode...)'"""
        assert OPT101_POWER_W == pytest.approx(1.5e-3)

    def test_camera_quote(self):
        """'upwards of 1000 mW'"""
        assert CAMERA_POWER_W >= 1.0

    def test_orders_of_magnitude_gap(self):
        """'cameras consume orders of magnitude more energy'"""
        box = photodiode_receiver_budget()
        camera = camera_receiver_budget()
        assert camera.total_w > 100 * box.total_w


class TestPowerBudget:
    def test_total_sums_components(self):
        budget = PowerBudget("x", 1e-3, 2e-3, 3e-3, 4e-3)
        assert budget.total_w == pytest.approx(10e-3)

    def test_daily_energy(self):
        budget = PowerBudget("x", 1e-3, 0.0, 0.0, 0.0)
        assert budget.daily_energy_j() == pytest.approx(86.4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PowerBudget("x", -1e-3, 0.0, 0.0, 0.0)

    def test_rx_led_cheaper_than_pd(self):
        led = photodiode_receiver_budget(use_rx_led=True)
        pd = photodiode_receiver_budget(use_rx_led=False)
        assert led.total_w < pd.total_w

    def test_duty_cycling_scales(self):
        full = photodiode_receiver_budget(duty_cycle=1.0)
        tenth = photodiode_receiver_budget(duty_cycle=0.1)
        assert tenth.total_w == pytest.approx(full.total_w / 10.0)

    def test_duty_cycle_bounds(self):
        with pytest.raises(ValueError):
            photodiode_receiver_budget(duty_cycle=0.0)


class TestSolarPanel:
    def test_harvest_scales_with_light(self):
        panel = SolarPanel()
        assert panel.harvest_w(10_000.0) == pytest.approx(
            10.0 * panel.harvest_w(1_000.0))

    def test_zero_light_zero_harvest(self):
        assert SolarPanel().harvest_w(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SolarPanel(area_m2=0.0)
        with pytest.raises(ValueError):
            SolarPanel(efficiency=0.9)
        with pytest.raises(ValueError):
            SolarPanel().harvest_w(-1.0)


class TestAutonomy:
    def test_paper_claim_outdoors(self):
        """A credit-card panel powers the tiny box under daylight."""
        report = autonomy(photodiode_receiver_budget(), 6200.0)
        assert report.autonomous
        assert report.margin > 1.5

    def test_camera_never_autonomous_on_credit_card(self):
        report = autonomy(camera_receiver_budget(), 10_000.0)
        assert not report.autonomous

    def test_dim_indoor_needs_duty_cycling(self):
        """At office light a continuously-on box struggles; a 10 %
        duty cycle rescues it."""
        always_on = autonomy(photodiode_receiver_budget(), 450.0)
        cycled = autonomy(photodiode_receiver_budget(duty_cycle=0.1), 450.0)
        assert cycled.margin > always_on.margin
        assert cycled.autonomous
