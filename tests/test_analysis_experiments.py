"""Tests for repro.analysis.experiments — every figure must reproduce.

These are the headline integration tests: each paper figure's
shape-level claim must hold on the simulated substrate.  The Fig. 6
sweeps are the slow ones and run in quick mode.
"""

import pytest

from repro.analysis.experiments import (
    experiment_fig5,
    experiment_fig6a,
    experiment_fig6b,
    experiment_fig7,
    experiment_fig8,
    experiment_fig10,
    experiment_fig11,
    experiment_fig13,
    experiment_fig14,
    experiment_fig15,
    experiment_fig16,
    experiment_fig17,
)


class TestSection41:
    def test_fig5_ideal_decoding(self):
        result = experiment_fig5()
        assert result.passed, result.report()
        assert result.measured["code_00_decoded"]
        assert result.measured["code_10_decoded"]

    @pytest.mark.slow
    def test_fig6a_linear_frontier(self):
        result = experiment_fig6a(quick=True)
        assert result.passed, result.report()
        assert result.measured["linear_slope_m_per_m"] > 0.0
        assert result.measured["r_squared"] >= 0.85

    @pytest.mark.slow
    def test_fig6b_throughput_decay(self):
        result = experiment_fig6b(quick=True)
        assert result.passed, result.report()
        assert result.measured["exp_rate_per_m"] < 0.0
        assert result.measured["decay_ratio_first_to_last"] >= 1.8

    def test_fig7_fluorescent(self):
        result = experiment_fig7()
        assert result.passed, result.report()
        assert result.measured["decoded"]
        # 'Thicker lines': strong 100 Hz content vs the dark room.
        assert (result.measured["ac_100hz_ripple_share"]
                > result.measured["dark_room_ripple_share"])


class TestSection42:
    def test_fig8_dtw(self):
        result = experiment_fig8()
        assert result.passed, result.report()
        assert result.measured["threshold_decode_wrong"]
        assert (result.measured["dtw_distance_to_10"]
                < result.measured["dtw_distance_to_00"])
        assert result.measured["classified_as"] == "10"


class TestSection43:
    def test_fig10_collisions(self):
        result = experiment_fig10()
        assert result.passed, result.report()
        assert result.measured["case1_decodes_dominant"]
        assert result.measured["case2_decodes_dominant"]
        assert not result.measured["case3_decodes_either"]
        assert len(result.measured["case3_peak_frequencies_hz"]) >= 2


class TestSection44:
    def test_fig11_receiver_table(self):
        result = experiment_fig11()
        assert result.passed, result.report()
        # Exact saturation columns.
        assert result.measured["PD-G1"]["saturation_lux"] == pytest.approx(
            450.0, rel=0.02)
        assert result.measured["RX-LED"]["saturation_lux"] == pytest.approx(
            35_000.0, rel=0.02)


class TestSection5:
    def test_fig13_volvo(self):
        result = experiment_fig13()
        assert result.passed, result.report()
        assert result.measured["matched_model"] == "Volvo V40"

    def test_fig14_bmw(self):
        result = experiment_fig14()
        assert result.passed, result.report()
        assert result.measured["matched_model"] == "BMW 3 series"

    def test_fig15_noise_floor(self):
        result = experiment_fig15()
        assert result.passed, result.report()
        assert (result.measured["decode_rate_at_450lux"]
                > result.measured["decode_rate_at_100lux"])

    def test_fig16_fov_cap(self):
        result = experiment_fig16()
        assert result.passed, result.report()
        assert (result.measured["decode_rate_with_cap"]
                > result.measured["decode_rate_without_cap"])

    def test_fig17_outdoor(self):
        result = experiment_fig17()
        assert result.passed, result.report()
        assert result.measured["throughput_sps"] == pytest.approx(50.0)
