"""Tests for repro.stream.session (SessionMux, backpressure, fusion)."""

import asyncio

import numpy as np
import pytest

from repro.net.fusion import FusedObservation
from repro.stream import SessionMux, StreamDecoder, iter_chunks, replay_traces

from .test_stream_decode import synthetic_trace


def _feeds(n, bits="10", **kwargs):
    trace = synthetic_trace(bits=bits, **kwargs)
    return {f"s{i}": (trace, 2 * len(bits), None) for i in range(n)}


class TestSessionRegistration:
    def test_duplicate_id_rejected(self):
        mux = SessionMux()
        mux.add_session("a", StreamDecoder(100.0))
        with pytest.raises(ValueError):
            mux.add_session("a", StreamDecoder(100.0))

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            SessionMux().add_session("", StreamDecoder(100.0))

    def test_bad_queue_bound(self):
        with pytest.raises(ValueError):
            SessionMux(queue_chunks=0)

    def test_unknown_feed_id_rejected(self):
        mux = SessionMux()
        with pytest.raises(KeyError):
            asyncio.run(mux.run({"ghost": [np.zeros(4)]}))


class TestReplay:
    def test_single_session(self):
        mux = replay_traces(_feeds(1), chunk_size=16)
        session = mux.session("s0")
        assert session.verdict().bits == "10"
        assert session.stats.n_samples == len(synthetic_trace().samples)
        assert session.stats.n_chunks > 1
        assert session.stats.throughput_sps > 0.0

    def test_32_concurrent_sessions(self):
        """The acceptance bar: >= 32 concurrent sessions, all decoded,
        each with its own latency stats."""
        mux = replay_traces(_feeds(32), chunk_size=32)
        assert len(mux.sessions) == 32
        for session in mux.sessions.values():
            assert session.verdict().bits == "10"
            assert session.decoder.latency("onset") is not None
            assert session.stats.n_chunks > 0

    def test_sessions_interleave(self):
        """Chunks from different sessions interleave on the loop (no
        session runs to completion before another starts)."""
        order: list[str] = []

        class Spy(StreamDecoder):
            def push(self, chunk):
                order.append(self.session_id)
                return super().push(chunk)

        trace = synthetic_trace()
        mux = SessionMux()
        feeds = {}
        for sid in ("a", "b"):
            mux.add_session(sid, Spy(trace.sample_rate_hz))
            feeds[sid] = iter_chunks(trace.samples, 64)
        asyncio.run(mux.run(feeds))
        first_a = order.index("a")
        first_b = order.index("b")
        last_a = len(order) - 1 - order[::-1].index("a")
        last_b = len(order) - 1 - order[::-1].index("b")
        assert first_a < last_b and first_b < last_a

    def test_backpressure_blocks_producer(self):
        """A tiny queue forces the producer to wait on the decoder."""
        mux = replay_traces(_feeds(2), chunk_size=4, queue_chunks=1)
        for session in mux.sessions.values():
            assert session.stats.max_queue_depth <= 1
            assert session.stats.backpressure_waits > 0
            assert session.verdict().bits == "10"

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            replay_traces(_feeds(1), chunk_size=0)

    def test_replay_traces_inside_running_loop(self):
        """The sync entry point must work from within an already
        running event loop (notebooks, async apps) instead of raising
        'asyncio.run() cannot be called from a running event loop'."""

        async def replay_from_async_context():
            return replay_traces(_feeds(2), chunk_size=32)

        mux = asyncio.run(replay_from_async_context())
        for session in mux.sessions.values():
            assert session.verdict().bits == "10"

    def test_mux_does_not_change_verdicts(self):
        """Concurrency is transparent: the mux's verdicts are identical
        to bare sequential replays."""
        from repro.stream import replay_trace

        trace = synthetic_trace(bits="1001")
        bare = replay_trace(trace, 16, n_data_symbols=8)
        mux = replay_traces(
            {f"s{i}": (trace, 8, None) for i in range(5)}, chunk_size=16)
        for session in mux.sessions.values():
            assert session.verdict().bits == bare.verdict.bits
            assert ([e.kind for e in session.events]
                    == [e.kind for e in bare.events])


class TestFusion:
    def test_unflushed_session_has_no_detection(self):
        mux = SessionMux()
        mux.add_session("a", StreamDecoder(100.0))
        assert mux.detections() == []
        assert mux.fused() == []

    def test_fused_verdict_across_sessions(self):
        mux = replay_traces(_feeds(4), chunk_size=32)
        fused = mux.fused()
        assert len(fused) == 1
        assert isinstance(fused[0], FusedObservation)
        assert fused[0].bits == "10"
        assert fused[0].n_reports == 4
        assert fused[0].n_decoded == 4
        assert fused[0].agreement == pytest.approx(1.0)

    def test_fusion_recovers_from_failed_sessions(self):
        """Sessions that fail to decode report empty bits and do not
        outvote the sessions that decoded."""
        good = synthetic_trace(bits="10")
        bad = synthetic_trace(bits="10", noise=0.0)
        flat = np.zeros_like(bad.samples)
        mux = SessionMux()
        feeds = {}
        for sid, samples in (("good0", good.samples), ("good1", good.samples),
                             ("flat", flat)):
            mux.add_session(sid, StreamDecoder(good.sample_rate_hz,
                                               n_data_symbols=4))
            feeds[sid] = iter_chunks(samples, 32)
        asyncio.run(mux.run(feeds))
        fused = mux.fused()
        assert len(fused) == 1
        assert fused[0].bits == "10"
        assert fused[0].n_reports == 3
        assert fused[0].n_decoded == 2

    def test_grouped_fusion_with_expected_speed(self):
        """With an expected speed, sessions cluster into pass groups
        via repro.net.group_by_pass.  Replay sessions all sit at
        position 0 observing the same instant, so they form ONE group
        (regression: fabricated per-session positions used to
        fragment same-pass sessions)."""
        mux = replay_traces(_feeds(8), chunk_size=32)
        fused = mux.fused(expected_speed_mps=1.0)
        assert len(fused) == 1
        assert fused[0].n_reports == 8
        assert fused[0].bits == "10"


class TestWorkerFailure:
    def test_dead_worker_does_not_deadlock_blocked_producer(self):
        """A decoder that raises mid-stream must fail the replay, not
        hang it: the producer may be parked on a full queue the dead
        worker will never drain (regression: gathering producers
        before workers waited on that put forever)."""

        class Exploding(StreamDecoder):
            def push(self, chunk):
                if self.buffer.n_appended > 64:
                    raise RuntimeError("decoder blew up")
                return super().push(chunk)

        trace = synthetic_trace()
        mux = SessionMux(queue_chunks=1)
        mux.add_session("boom", Exploding(trace.sample_rate_hz))
        with pytest.raises(RuntimeError, match="decoder blew up"):
            asyncio.run(mux.run({"boom": iter_chunks(trace.samples, 16)}))

    def test_nan_samples_stream_like_offline(self):
        """A NaN-poisoned trace fails softly ('no preamble'), exactly
        as the hardened offline decoder does — it must not raise out
        of the streaming path."""
        from repro.core.errors import PreambleNotFoundError
        from repro.channel.trace import SignalTrace
        from repro.core.decoder import AdaptiveThresholdDecoder
        from repro.stream import replay_trace

        samples = np.zeros(400)
        samples[100:110] = np.nan
        trace = SignalTrace(samples, 100.0)
        with pytest.raises(PreambleNotFoundError):
            AdaptiveThresholdDecoder().decode(trace)
        replay = replay_trace(trace, 16)
        assert replay.verdict.stage == "preamble_not_found"
        assert replay.verdict.bits == ""


class TestFeedPacing:
    def test_feed_rate_slows_wall_clock(self):
        import time

        trace = synthetic_trace(tail_s=0.2, lead_s=0.2)
        n_chunks = len(range(0, len(trace.samples), 128))
        started = time.perf_counter()
        replay_traces({"s0": (trace, 4, None)}, chunk_size=128,
                      feed_hz=200.0)
        elapsed = time.perf_counter() - started
        # n_chunks paced at 200 chunks/s must take at least (n-1)/200.
        assert elapsed >= (n_chunks - 1) / 200.0
