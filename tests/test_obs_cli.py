"""Tests for the telemetry CLI surface (--telemetry, metrics)."""

import json

import pytest

from repro.engine.cli import main
from repro.obs import TELEMETRY_ENV, EventLog, load_snapshot, set_events, set_registry

from tests.test_engine_cli import FAST_SETS


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    import repro.obs.registry as registry_mod

    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    set_registry(None)
    set_events(None)
    monkeypatch.setattr(registry_mod, "_ENV_DEFAULT", None)
    yield
    set_registry(None)
    set_events(None)


def series_names(snapshot):
    return {c["name"] for group in ("counters", "gauges", "histograms")
            for c in snapshot.get(group, ())}


class TestTelemetryFlag:
    def test_sweep_writes_artifacts(self, tmp_path, capsys):
        tel = tmp_path / "tel"
        argv = ["sweep", *FAST_SETS,
                "--axis", "ground_lux=450,100",
                "--cache-dir", str(tmp_path / "cache"),
                "--telemetry", str(tel)]
        assert main(argv) == 0
        assert "telemetry written to" in capsys.readouterr().out
        snap = load_snapshot(tel / "metrics.json")
        assert snap["schema"] == "repro.obs/1"
        names = series_names(snap)
        assert "engine_scenarios_total" in names
        assert "cache_lookups_total" in names
        # --telemetry implies profiling: stage histograms populate.
        assert "exec_stage_seconds" in names
        prom = (tel / "metrics.prom").read_text()
        assert "# TYPE engine_scenarios_total counter" in prom
        events = EventLog.read_jsonl(tel / "events.jsonl")
        kinds = [e.kind for e in events]
        assert kinds[0] == "batch_start"
        assert "batch_end" in kinds
        assert "cache_miss" in kinds
        assert "stage_timing" in kinds

    def test_run_writes_artifacts(self, tmp_path, capsys):
        tel = tmp_path / "tel"
        argv = ["run", *FAST_SETS, "--set", "ground_lux=450",
                "--telemetry", str(tel)]
        assert main(argv) == 0
        for name in ("events.jsonl", "metrics.json", "metrics.prom"):
            assert (tel / name).exists(), name

    def test_telemetry_off_leaves_no_artifacts(self, tmp_path, capsys):
        argv = ["sweep", *FAST_SETS,
                "--axis", "ground_lux=450,100",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert "telemetry written" not in capsys.readouterr().out


class TestMetricsCommand:
    def sweep_with_telemetry(self, tmp_path):
        tel = tmp_path / "tel"
        main(["sweep", *FAST_SETS, "--axis", "ground_lux=450,100",
              "--cache-dir", str(tmp_path / "cache"),
              "--telemetry", str(tel)])
        return tel

    def test_renders_table_from_directory(self, tmp_path, capsys):
        tel = self.sweep_with_telemetry(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(tel)]) == 0
        out = capsys.readouterr().out
        assert "engine_scenarios_total" in out
        assert "histogram" in out

    def test_renders_table_from_file(self, tmp_path, capsys):
        tel = self.sweep_with_telemetry(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(tel / "metrics.json")]) == 0
        assert "cache_lookups_total" in capsys.readouterr().out

    def test_rejects_non_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"workloads": []}))
        assert main(["metrics", str(bad)]) != 0
