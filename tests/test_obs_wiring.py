"""Integration tests for the telemetry wiring across engine tiers.

Covers the common ``to_metrics`` shape on every stats object, the
incremental cache/retry/runner instrumentation, and the load-bearing
guarantee: enabling telemetry never changes a single canonical record
byte (checked against the full ``stage_parity.json`` golden set).
"""

import hashlib
import json
from pathlib import Path

import pytest

import repro.obs.registry as registry_mod
from repro.engine import (
    BatchRunner,
    ResultCache,
    ScenarioSpec,
    SqliteResultCache,
)
from repro.engine.cache import CacheStats
from repro.engine.executor import execute_scenario
from repro.engine.runner import RunStats
from repro.faults.inject import FaultLog
from repro.faults.retry import RetryExhausted, RetryPolicy
from repro.obs import (
    TELEMETRY_ENV,
    EventLog,
    MetricsRegistry,
    set_events,
    set_registry,
    telemetry_session,
)
from repro.stream.session import SessionStats

from tests.test_engine_cache_backends import make_record

GOLDEN_PATH = Path(__file__).parent / "baselines" / "stage_parity.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())
ENTRIES = GOLDEN["records"]
SPECS = [ScenarioSpec.from_dict(e["spec"]) for e in ENTRIES]
REPRESENTATIVES = (0, 13, 16, 17)


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    set_registry(None)
    set_events(None)
    monkeypatch.setattr(registry_mod, "_ENV_DEFAULT", None)
    yield
    set_registry(None)
    set_events(None)


def counter_value(reg, name, labels=None):
    return reg.counter(name, labels).value


class TestToMetricsCommonShape:
    """Satellite: every stats object folds into the registry the same way."""

    def test_run_stats(self):
        reg = MetricsRegistry()
        stats = RunStats(total=5, cache_hits=2, executed=3,
                         elapsed_s=0.5, backend="process",
                         pool_restarts=1, timeouts=1, executor_errors=1,
                         serial_fallback=True,
                         fault_events={"chunks_dropped": 4})
        stats.to_metrics(reg)
        by = {"backend": "process"}
        assert counter_value(reg, "engine_scenarios_total",
                             {**by, "outcome": "run"}) == 3
        assert counter_value(reg, "engine_scenarios_total",
                             {**by, "outcome": "cached"}) == 2
        assert counter_value(reg, "engine_scenarios_total",
                             {**by, "outcome": "failed"}) == 1
        assert counter_value(reg, "engine_pool_restarts_total") == 1
        assert counter_value(reg, "engine_timeouts_total") == 1
        assert counter_value(reg, "engine_serial_fallbacks_total") == 1
        assert counter_value(reg, "fault_injections_total",
                             {"kind": "chunks_dropped"}) == 4
        assert reg.histogram("engine_batch_seconds", by).count == 1

    def test_cache_stats(self):
        reg = MetricsRegistry()
        stats = CacheStats(hits=3, misses=2, writes=2, write_retries=1)
        stats.to_metrics(reg, backend="sqlite")
        assert counter_value(reg, "cache_lookups_total",
                             {"backend": "sqlite", "result": "hit"}) == 3
        assert counter_value(reg, "cache_lookups_total",
                             {"backend": "sqlite", "result": "miss"}) == 2
        assert counter_value(reg, "cache_writes_total",
                             {"backend": "sqlite"}) == 2
        assert counter_value(reg, "cache_write_retries_total",
                             {"backend": "sqlite"}) == 1

    def test_fault_log(self):
        reg = MetricsRegistry()
        log = FaultLog(chunks_dropped=2, noise_bursts=1)
        log.to_metrics(reg)
        assert counter_value(reg, "fault_injections_total",
                             {"kind": "chunks_dropped"}) == 2
        assert counter_value(reg, "fault_injections_total",
                             {"kind": "noise_bursts"}) == 1
        # Zero-count kinds stay absent from the snapshot.
        names = {(c["name"], tuple(sorted(c["labels"].items())))
                 for c in reg.snapshot()["counters"]}
        assert ("fault_injections_total",
                (("kind", "dropouts"),)) not in names

    def test_session_stats(self):
        reg = MetricsRegistry()
        SessionStats(n_chunks=4, n_samples=100, busy_s=0.2,
                     max_queue_depth=3, backpressure_waits=1,
                     decode_errors=1).to_metrics(reg)
        assert counter_value(reg, "stream_sessions_total",
                             {"outcome": "poisoned"}) == 1
        assert counter_value(reg, "stream_backpressure_waits_total") == 1
        assert reg.gauge("stream_queue_depth_peak").value == 3
        assert reg.histogram("stream_session_busy_seconds").count == 1
        SessionStats().to_metrics(reg)
        assert counter_value(reg, "stream_sessions_total",
                             {"outcome": "ok"}) == 1


class TestCacheWiring:
    @pytest.mark.parametrize("cls,backend", [(ResultCache, "disk"),
                                             (SqliteResultCache, "sqlite")])
    def test_lookups_and_writes_instrumented(self, tmp_path, cls, backend):
        with telemetry_session() as (reg, events):
            cache = cls(tmp_path)
            record = make_record()
            assert cache.get(record.spec_hash) is None
            cache.put(record)
            assert cache.get(record.spec_hash) is not None
            assert counter_value(reg, "cache_lookups_total",
                                 {"backend": backend,
                                  "result": "miss"}) == 1
            assert counter_value(reg, "cache_lookups_total",
                                 {"backend": backend, "result": "hit"}) == 1
            assert counter_value(reg, "cache_writes_total",
                                 {"backend": backend}) == 1
            kinds = [e.kind for e in events.events]
            assert kinds == ["cache_miss", "cache_hit"]
            assert events.events[0].fields["backend"] == backend

    def test_disabled_path_records_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_record())
        assert cache.get(make_record().spec_hash) is not None
        # Only the plain stats counters moved; no registry existed.
        assert cache.stats.hits == 1


class TestRetryWiring:
    def test_retries_and_exhaustion_counted(self):
        with telemetry_session() as (reg, events):
            policy = RetryPolicy(max_attempts=3)
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                raise OSError("still broken")

            with pytest.raises(RetryExhausted):
                policy.call(flaky, sleep=lambda s: None)
            assert calls["n"] == 3
            assert counter_value(reg, "retry_attempts_total",
                                 {"error": "OSError"}) == 2
            assert counter_value(reg, "retry_exhausted_total",
                                 {"error": "OSError"}) == 1
            kinds = [e.kind for e in events.events]
            assert kinds == ["retry", "retry", "retry_exhausted"]
            assert events.events[-1].fields["attempts"] == 3

    def test_success_after_retry_is_not_exhaustion(self):
        with telemetry_session() as (reg, events):
            policy = RetryPolicy(max_attempts=3)
            state = {"n": 0}

            def eventually():
                state["n"] += 1
                if state["n"] < 2:
                    raise OSError("once")
                return "ok"

            assert policy.call(eventually, sleep=lambda s: None) == "ok"
            assert counter_value(reg, "retry_attempts_total",
                                 {"error": "OSError"}) == 1
            assert not events.of_kind("retry_exhausted")


class TestRunnerWiring:
    def test_batch_metrics_and_events(self, tmp_path):
        subset = [SPECS[i] for i in REPRESENTATIVES]
        with telemetry_session() as (reg, events):
            with BatchRunner(cache=tmp_path / "cache") as runner:
                runner.run(subset)
                runner.run(subset)  # warm: all cached
            by = {"backend": "process"}
            assert counter_value(reg, "engine_scenarios_total",
                                 {**by, "outcome": "run"}) == len(subset)
            assert counter_value(reg, "engine_scenarios_total",
                                 {**by, "outcome": "cached"}) == len(subset)
            assert reg.histogram("engine_batch_seconds", by).count == 2
            starts = events.of_kind("batch_start")
            ends = events.of_kind("batch_end")
            assert len(starts) == len(ends) == 2
            assert starts[0].fields["n_specs"] == len(subset)
            assert ends[1].fields["cached"] == len(subset)
            # Incremental cache instrumentation rode along.
            assert counter_value(reg, "cache_lookups_total",
                                 {"backend": "disk",
                                  "result": "hit"}) == len(subset)


class TestStreamWiring:
    def test_mux_accepts_explicit_registry(self):
        from repro.stream.session import SessionMux

        reg = MetricsRegistry()
        mux = SessionMux(registry=reg)
        assert mux.registry is reg

    def test_mux_defaults_to_active_registry(self):
        from repro.stream.session import SessionMux

        with telemetry_session() as (reg, _):
            assert SessionMux().registry is reg
        assert SessionMux().registry is None

    def test_session_metrics_published_after_replay(self):
        from repro.stream import replay_traces

        from tests.test_stream_decode import synthetic_trace

        trace = synthetic_trace(bits="10")
        feeds = {"s0": (trace, 4, None)}
        with telemetry_session() as (reg, _):
            mux = replay_traces(feeds, chunk_size=32)
            assert mux.session("s0").verdict().bits == "10"
            assert counter_value(reg, "stream_sessions_total",
                                 {"outcome": "ok"}) == 1
            assert counter_value(reg, "stream_chunks_total") > 0
            assert reg.histogram("stream_session_busy_seconds").count == 1


class TestByteParityWithTelemetry:
    """The load-bearing guarantee: telemetry on, bytes unchanged."""

    @staticmethod
    def sha(record):
        return hashlib.sha256(record.canonical_json().encode()).hexdigest()

    def test_all_goldens_serial(self):
        with telemetry_session():
            for i, spec in enumerate(SPECS):
                record = execute_scenario(spec)
                assert self.sha(record) == ENTRIES[i]["sha256"], \
                    f"record {i}"

    def test_representatives_tensor(self):
        from repro.tensor.batch import execute_batch

        subset = [SPECS[i] for i in REPRESENTATIVES]
        with telemetry_session():
            records = execute_batch(subset)
        for i, record in zip(REPRESENTATIVES, records):
            assert self.sha(record) == ENTRIES[i]["sha256"], f"record {i}"

    def test_representatives_runner_with_cache(self, tmp_path):
        subset = [SPECS[i] for i in REPRESENTATIVES]
        with telemetry_session():
            with BatchRunner(cache=tmp_path / "cache") as runner:
                cold = runner.run(subset)
                warm = runner.run(subset)
        for i, c, w in zip(REPRESENTATIVES, cold.records, warm.records):
            assert self.sha(c) == ENTRIES[i]["sha256"], f"record {i}"
            assert self.sha(w) == ENTRIES[i]["sha256"], f"record {i}"

    def test_profiled_goldens_publish_stage_histograms(self):
        # Guards against the parity tests passing vacuously: with
        # profiling on, the serial driver must actually publish stage
        # samples — and the bytes must still match.
        from repro.exec import profiled

        with telemetry_session() as (reg, _):
            with profiled():
                record = execute_scenario(SPECS[0])
            assert self.sha(record) == ENTRIES[0]["sha256"]
            histograms = reg.snapshot()["histograms"]
            stage_series = [h for h in histograms
                            if h["name"] == "exec_stage_seconds"
                            and h["labels"]["driver"] == "serial"]
            assert stage_series, "no stage histograms published"
