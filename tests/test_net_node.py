"""Tests for repro.net.node."""

import numpy as np
import pytest

from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.channel.trace import SignalTrace
from repro.hardware.frontend import FovCap, ReceiverFrontEnd
from repro.hardware.photodiode import PdGain, Photodiode
from repro.net.node import Detection, ReceiverNode

from .conftest import build_indoor_scene


def _node(node_id="n1", position=0.0, seed=42):
    return ReceiverNode(
        node_id=node_id, position_m=position,
        frontend=ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                                  cap=FovCap.paper_cap(), seed=seed))


class TestDetection:
    def test_decoded_flag(self):
        assert Detection("n", 0.0, 1.0, "10", 0.8).decoded
        assert not Detection("n", 0.0, 1.0, "", 0.0).decoded


class TestReceiverNode:
    def test_id_required(self):
        with pytest.raises(ValueError):
            _node(node_id="")

    def test_observe_clean_capture(self, indoor_capture_00):
        det = _node().observe(indoor_capture_00, n_data_symbols=4)
        assert det.bits == "00"
        assert det.confidence > 0.3
        assert det.symbol_period_s > 0.0

    def test_observe_flat_capture(self):
        det = _node().observe(SignalTrace(np.full(1000, 50.0), 500.0))
        assert det.bits == ""
        assert det.confidence == 0.0

    def test_timestamp_is_preamble_anchor(self, indoor_capture_00):
        det = _node().observe(indoor_capture_00, n_data_symbols=4)
        t0 = indoor_capture_00.start_time_s
        t1 = t0 + indoor_capture_00.duration_s
        assert t0 <= det.timestamp_s <= t1

    def test_confidence_orders_clean_vs_degraded(self):
        """Shrinking the decision margins must lower the confidence."""
        scene = build_indoor_scene(bits="00")
        fe_a = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                                cap=FovCap.paper_cap(), seed=1)
        clean = ChannelSimulator(
            scene, fe_a, SimulatorConfig(sample_rate_hz=500.0, seed=1,
                                         include_noise=False)).capture_pass()
        # Compress the contrast towards the mean: decisions get closer
        # to the threshold, so the margin term of the score drops.
        mean = clean.samples.mean()
        squeezed = SignalTrace(mean + 0.25 * (clean.samples - mean),
                               clean.sample_rate_hz, clean.start_time_s)
        node = _node()
        d_clean = node.observe(clean, n_data_symbols=4)
        d_squeezed = node.observe(squeezed, n_data_symbols=4)
        assert 0.0 <= d_squeezed.confidence <= 1.0
        assert d_clean.confidence > 0.4


class TestFailedDecodeTimestamp:
    """Regression: the failed-decode path used to stamp the capture-
    window start, a margin earlier than the preamble-anchor time the
    success path uses, biasing mixed track fits."""

    def test_decoded_detection_flags_preamble_anchor(self, indoor_capture_00):
        det = _node().observe(indoor_capture_00, n_data_symbols=4)
        assert det.decoded
        assert det.timestamp_source == "preamble_anchor"

    def test_undecoded_timestamp_tracks_signal_onset_not_window_start(self):
        """A quiet 2 s lead-in before an (undecodable) burst: the
        report must timestamp the burst, not the window start."""
        rate = 500.0
        lead = np.full(1000, 80.0)             # 2 s of quiet baseline
        rng = np.random.default_rng(3)
        burst = 80.0 + 40.0 * rng.standard_normal(200)  # undecodable
        tail = np.full(300, 80.0)
        trace = SignalTrace(np.concatenate([lead, burst, tail]), rate,
                            start_time_s=5.0)
        det = _node().observe(trace)
        assert det.bits == ""
        assert det.timestamp_source == "onset_estimate"
        # Onset sits at the burst (2 s into the window), not at 5.0 s.
        assert det.timestamp_s == pytest.approx(5.0 + 1000 / rate,
                                                abs=0.2)

    def test_flat_trace_falls_back_to_window_start(self):
        det = _node().observe(SignalTrace(np.full(1000, 50.0), 500.0,
                                          start_time_s=2.5))
        assert det.bits == ""
        assert det.timestamp_source == "onset_estimate"
        assert det.timestamp_s == pytest.approx(2.5)

    def test_onset_estimate_comparable_to_anchor(self, indoor_capture_00):
        """On a decodable trace, the onset estimate lands within the
        pass (near the anchor), so mixing the two report kinds in one
        track fit is sane."""
        from repro.net.node import onset_timestamp

        det = _node().observe(indoor_capture_00, n_data_symbols=4)
        onset = onset_timestamp(indoor_capture_00)
        t0 = indoor_capture_00.start_time_s
        t1 = t0 + indoor_capture_00.duration_s
        assert t0 <= onset <= t1
        assert abs(onset - det.timestamp_s) < 0.5 * (t1 - t0)
