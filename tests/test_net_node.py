"""Tests for repro.net.node."""

import numpy as np
import pytest

from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.channel.trace import SignalTrace
from repro.hardware.frontend import FovCap, ReceiverFrontEnd
from repro.hardware.photodiode import PdGain, Photodiode
from repro.net.node import Detection, ReceiverNode

from .conftest import build_indoor_scene


def _node(node_id="n1", position=0.0, seed=42):
    return ReceiverNode(
        node_id=node_id, position_m=position,
        frontend=ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                                  cap=FovCap.paper_cap(), seed=seed))


class TestDetection:
    def test_decoded_flag(self):
        assert Detection("n", 0.0, 1.0, "10", 0.8).decoded
        assert not Detection("n", 0.0, 1.0, "", 0.0).decoded


class TestReceiverNode:
    def test_id_required(self):
        with pytest.raises(ValueError):
            _node(node_id="")

    def test_observe_clean_capture(self, indoor_capture_00):
        det = _node().observe(indoor_capture_00, n_data_symbols=4)
        assert det.bits == "00"
        assert det.confidence > 0.3
        assert det.symbol_period_s > 0.0

    def test_observe_flat_capture(self):
        det = _node().observe(SignalTrace(np.full(1000, 50.0), 500.0))
        assert det.bits == ""
        assert det.confidence == 0.0

    def test_timestamp_is_preamble_anchor(self, indoor_capture_00):
        det = _node().observe(indoor_capture_00, n_data_symbols=4)
        t0 = indoor_capture_00.start_time_s
        t1 = t0 + indoor_capture_00.duration_s
        assert t0 <= det.timestamp_s <= t1

    def test_confidence_orders_clean_vs_degraded(self):
        """Shrinking the decision margins must lower the confidence."""
        scene = build_indoor_scene(bits="00")
        fe_a = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                                cap=FovCap.paper_cap(), seed=1)
        clean = ChannelSimulator(
            scene, fe_a, SimulatorConfig(sample_rate_hz=500.0, seed=1,
                                         include_noise=False)).capture_pass()
        # Compress the contrast towards the mean: decisions get closer
        # to the threshold, so the margin term of the score drops.
        mean = clean.samples.mean()
        squeezed = SignalTrace(mean + 0.25 * (clean.samples - mean),
                               clean.sample_rate_hz, clean.start_time_s)
        node = _node()
        d_clean = node.observe(clean, n_data_symbols=4)
        d_squeezed = node.observe(squeezed, n_data_symbols=4)
        assert 0.0 <= d_squeezed.confidence <= 1.0
        assert d_clean.confidence > 0.4
