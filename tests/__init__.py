"""Test package for the passive-VLC reproduction.

Being a real package lets test modules share the scene builders in
``tests/conftest.py`` via relative imports without colliding with the
separate ``benchmarks/conftest.py`` module namespace.
"""
