"""Tests for repro.core.link (the high-level API)."""

import pytest

from repro.core.link import PassiveLink
from repro.hardware.frontend import FovCap, ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver
from repro.hardware.photodiode import PdGain, Photodiode
from repro.optics.geometry import Vec3
from repro.optics.materials import TARMAC
from repro.optics.sources import LedLamp, Sun
from repro.tags.packet import Packet


def indoor_link():
    return PassiveLink(
        source=LedLamp(position=Vec3(0.12, 0.0, 0.2),
                       luminous_intensity=2.0),
        frontend=ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                                  cap=FovCap.paper_cap(), seed=3),
        receiver_height_m=0.2,
        sample_rate_hz=500.0,
        seed=3,
    )


def outdoor_link(lux=6200.0, height=0.75):
    return PassiveLink(
        source=Sun(ground_lux=lux),
        frontend=ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=3),
        receiver_height_m=height,
        ground=TARMAC,
        seed=3,
    )


class TestTransmit:
    def test_indoor_round_trip(self):
        report = indoor_link().transmit("10", speed_mps=0.08)
        assert report.success
        assert report.decoded_bits == "10"
        assert report.sent_bits == "10"

    def test_outdoor_round_trip(self):
        packet = Packet.from_bitstring("00", symbol_width_m=0.1)
        report = outdoor_link().transmit(packet, speed_mps=5.0)
        assert report.success

    def test_symbol_rate_reported(self):
        packet = Packet.from_bitstring("00", symbol_width_m=0.1)
        report = outdoor_link().transmit(packet, speed_mps=5.0)
        assert report.symbol_rate_sps == pytest.approx(50.0)

    def test_trace_attached(self):
        report = indoor_link().transmit("00", speed_mps=0.08)
        assert len(report.trace) > 100

    def test_failure_reported_not_raised(self):
        """A dead link (starlight-level ambient) reports failure."""
        report = outdoor_link(lux=2.0, height=1.0).transmit("00",
                                                            speed_mps=5.0)
        assert not report.success

    def test_bad_speed(self):
        with pytest.raises(ValueError):
            indoor_link().transmit("00", speed_mps=0.0)


class TestLinkBudget:
    def test_contrast_positive(self):
        budget = indoor_link().link_budget(
            Packet.from_bitstring("00", symbol_width_m=0.03))
        assert budget.high_signal_lux > budget.low_signal_lux
        assert budget.swing_lux > 0.0

    def test_outdoor_budget_feasible(self):
        budget = outdoor_link().link_budget(
            Packet.from_bitstring("00", symbol_width_m=0.1))
        assert budget.feasible()
        assert budget.saturation_headroom > 1.0

    def test_dim_outdoor_budget_infeasible(self):
        """The Fig. 15(b) failure shows up in the budget as low SNR."""
        budget = outdoor_link(lux=100.0, height=0.25).link_budget(
            Packet.from_bitstring("00", symbol_width_m=0.1))
        assert not budget.feasible(min_snr=6.0)

    def test_saturating_receiver_flagged(self):
        link = PassiveLink(
            source=Sun(ground_lux=6200.0),
            frontend=ReceiverFrontEnd(
                detector=Photodiode.opt101(gain=PdGain.G2), seed=1),
            receiver_height_m=0.75,
            ground=TARMAC,
        )
        budget = link.link_budget(
            Packet.from_bitstring("00", symbol_width_m=0.1))
        assert budget.saturation_headroom < 1.0
        assert not budget.feasible()
