"""Tests for repro.tags.encoding (Manchester coding)."""

import pytest

from repro.tags.encoding import (
    ManchesterError,
    Symbol,
    manchester_decode,
    manchester_encode,
    symbols_from_string,
    symbols_to_string,
)


class TestSymbol:
    def test_inversion(self):
        assert Symbol.HIGH.inverted() is Symbol.LOW
        assert Symbol.LOW.inverted() is Symbol.HIGH


class TestEncode:
    def test_paper_mapping(self):
        """'0' -> HIGH-LOW, '1' -> LOW-HIGH (Section 4, Coding)."""
        assert manchester_encode([0]) == [Symbol.HIGH, Symbol.LOW]
        assert manchester_encode([1]) == [Symbol.LOW, Symbol.HIGH]

    def test_fig5_codes(self):
        assert symbols_to_string(manchester_encode([0, 0])) == "HLHL"
        assert symbols_to_string(manchester_encode([1, 0])) == "LHHL"

    def test_length_doubles(self):
        assert len(manchester_encode([0, 1, 1, 0, 1])) == 10

    def test_booleans_accepted(self):
        assert manchester_encode([True, False]) == manchester_encode([1, 0])

    def test_invalid_bit(self):
        with pytest.raises(ManchesterError):
            manchester_encode([2])


class TestDecode:
    def test_round_trip(self):
        for bits in ([0], [1], [0, 1], [1, 1, 0, 0, 1, 0, 1]):
            assert manchester_decode(manchester_encode(bits)) == bits

    def test_odd_length_rejected(self):
        with pytest.raises(ManchesterError):
            manchester_decode([Symbol.HIGH])

    def test_invalid_pairs_rejected(self):
        with pytest.raises(ManchesterError):
            manchester_decode([Symbol.HIGH, Symbol.HIGH])
        with pytest.raises(ManchesterError):
            manchester_decode([Symbol.LOW, Symbol.LOW])

    def test_error_message_locates_pair(self):
        with pytest.raises(ManchesterError, match="symbol 2"):
            manchester_decode([Symbol.HIGH, Symbol.LOW,
                               Symbol.LOW, Symbol.LOW])


class TestStringParsing:
    def test_parse_plain(self):
        assert symbols_from_string("HLHL") == [
            Symbol.HIGH, Symbol.LOW, Symbol.HIGH, Symbol.LOW]

    def test_parse_paper_notation(self):
        """The paper writes 'HLHL.LHHL' with a separator dot."""
        assert len(symbols_from_string("HLHL.LHHL")) == 8

    def test_case_insensitive(self):
        assert symbols_from_string("hl") == [Symbol.HIGH, Symbol.LOW]

    def test_invalid_character(self):
        with pytest.raises(ValueError, match="index 1"):
            symbols_from_string("HXL")

    def test_round_trip_string(self):
        text = "HLLHHLLH"
        assert symbols_to_string(symbols_from_string(text)) == text
