"""Tests for repro.optics.photometry."""

import math

import numpy as np
import pytest

from repro.optics.photometry import (
    LEVELS,
    WHITE_LED_EFFICACY,
    illuminance_at_detector_from_patch,
    illuminance_from_parallel_source,
    illuminance_from_point_source,
    lambertian_radiated_fraction,
    luminance_from_diffuse_reflection,
    lux_to_watts_per_m2,
    watts_per_m2_to_lux,
)


class TestUnitConversions:
    def test_round_trip(self):
        assert watts_per_m2_to_lux(lux_to_watts_per_m2(540.0)) == pytest.approx(540.0)

    def test_lux_to_watts_scalar(self):
        assert lux_to_watts_per_m2(WHITE_LED_EFFICACY) == pytest.approx(1.0)

    def test_vectorised(self):
        lux = np.array([0.0, 300.0, 600.0])
        w = lux_to_watts_per_m2(lux)
        assert isinstance(w, np.ndarray)
        assert np.allclose(watts_per_m2_to_lux(w), lux)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            lux_to_watts_per_m2(-1.0)
        with pytest.raises(ValueError):
            watts_per_m2_to_lux(-1.0)

    def test_bad_efficacy(self):
        with pytest.raises(ValueError):
            lux_to_watts_per_m2(100.0, efficacy=0.0)


class TestPointSource:
    def test_inverse_square(self):
        e1 = illuminance_from_point_source(100.0, 1.0)
        e2 = illuminance_from_point_source(100.0, 2.0)
        assert e1 / e2 == pytest.approx(4.0)

    def test_incidence_projection(self):
        full = illuminance_from_point_source(100.0, 1.0, 1.0)
        angled = illuminance_from_point_source(100.0, 1.0, 0.5)
        assert angled == pytest.approx(full / 2.0)

    def test_backlit_clamps_to_zero(self):
        assert illuminance_from_point_source(100.0, 1.0, -0.3) == 0.0

    def test_zero_distance_rejected(self):
        with pytest.raises(ValueError):
            illuminance_from_point_source(100.0, 0.0)


class TestParallelSource:
    def test_no_distance_dependence(self):
        assert illuminance_from_parallel_source(1000.0) == pytest.approx(1000.0)

    def test_projection(self):
        cos45 = math.cos(math.radians(45.0))
        assert illuminance_from_parallel_source(1000.0, cos45) == pytest.approx(
            1000.0 * cos45)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            illuminance_from_parallel_source(-5.0)


class TestLambertianPattern:
    def test_normalisation_over_hemisphere(self):
        # Integral of pattern * 2*pi*sin(theta) d(theta) over the
        # hemisphere must equal... the cos^m pattern integrates to
        # (m+1)/(2pi) * 2pi/(m+1) = 1.
        for m in (1.0, 2.0, 5.0):
            thetas = np.linspace(0.0, math.pi / 2, 20001)
            vals = np.array([lambertian_radiated_fraction(m, t)
                             for t in thetas])
            integral = np.trapezoid(vals * 2.0 * math.pi * np.sin(thetas),
                                    thetas)
            assert integral == pytest.approx(1.0, rel=1e-3)

    def test_higher_order_concentrates(self):
        on_axis_1 = lambertian_radiated_fraction(1.0, 0.0)
        on_axis_10 = lambertian_radiated_fraction(10.0, 0.0)
        assert on_axis_10 > on_axis_1

    def test_behind_is_zero(self):
        assert lambertian_radiated_fraction(2.0, math.pi * 0.75) == 0.0

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            lambertian_radiated_fraction(-1.0, 0.0)


class TestDiffuseReflection:
    def test_pi_factor(self):
        assert luminance_from_diffuse_reflection(math.pi, 1.0) == pytest.approx(1.0)

    def test_reflectance_bounds(self):
        with pytest.raises(ValueError):
            luminance_from_diffuse_reflection(100.0, 1.5)
        with pytest.raises(ValueError):
            luminance_from_diffuse_reflection(100.0, -0.1)


class TestPatchTransfer:
    def test_inverse_square(self):
        e1 = illuminance_at_detector_from_patch(10.0, 0.01, 1.0)
        e2 = illuminance_at_detector_from_patch(10.0, 0.01, 2.0)
        assert e1 / e2 == pytest.approx(4.0)

    def test_linear_in_area_and_luminance(self):
        base = illuminance_at_detector_from_patch(10.0, 0.01, 1.0)
        assert illuminance_at_detector_from_patch(20.0, 0.01, 1.0) == pytest.approx(2 * base)
        assert illuminance_at_detector_from_patch(10.0, 0.02, 1.0) == pytest.approx(2 * base)

    def test_cosine_projections(self):
        base = illuminance_at_detector_from_patch(10.0, 0.01, 1.0, 1.0, 1.0)
        both_half = illuminance_at_detector_from_patch(10.0, 0.01, 1.0, 0.5, 0.5)
        assert both_half == pytest.approx(base / 4.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            illuminance_at_detector_from_patch(-1.0, 0.01, 1.0)
        with pytest.raises(ValueError):
            illuminance_at_detector_from_patch(1.0, 0.01, 0.0)


class TestLevels:
    def test_paper_reference_levels(self):
        assert LEVELS.MEDIUM_ROOM == 450.0
        assert LEVELS.BRIGHT_INDOOR == 1200.0
        assert LEVELS.LED_SATURATION == 35_000.0
        assert LEVELS.DIM_INDOOR < LEVELS.MEDIUM_ROOM < LEVELS.OVERCAST_HIGH
