"""Tests for repro.dsp.normalize."""

import numpy as np
import pytest

from repro.dsp.normalize import (
    min_max_normalize,
    resample_to_length,
    z_normalize,
)


class TestMinMax:
    def test_unit_range(self):
        out = min_max_normalize(np.array([3.0, 7.0, 5.0]))
        assert out.min() == 0.0
        assert out.max() == 1.0

    def test_constant_to_zeros(self):
        assert np.all(min_max_normalize(np.full(5, 9.0)) == 0.0)

    def test_empty(self):
        assert len(min_max_normalize(np.array([]))) == 0

    def test_order_preserved(self):
        x = np.array([1.0, 5.0, 3.0])
        out = min_max_normalize(x)
        assert np.array_equal(np.argsort(out), np.argsort(x))


class TestZNormalize:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        out = z_normalize(rng.normal(5.0, 3.0, 1000))
        assert abs(out.mean()) < 1e-12
        assert out.std() == pytest.approx(1.0)

    def test_constant_to_zeros(self):
        assert np.all(z_normalize(np.full(5, 2.0)) == 0.0)


class TestResample:
    def test_exact_length(self):
        out = resample_to_length(np.arange(10, dtype=float), 25)
        assert len(out) == 25

    def test_endpoints_preserved(self):
        x = np.array([2.0, 4.0, 8.0])
        out = resample_to_length(x, 7)
        assert out[0] == 2.0
        assert out[-1] == 8.0

    def test_linear_exact_on_line(self):
        x = np.linspace(0.0, 1.0, 11)
        out = resample_to_length(x, 101)
        assert np.allclose(out, np.linspace(0.0, 1.0, 101))

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            resample_to_length(np.arange(5, dtype=float), 1)

    def test_short_input(self):
        with pytest.raises(ValueError):
            resample_to_length(np.array([1.0]), 10)
