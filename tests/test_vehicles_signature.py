"""Tests for repro.vehicles.signature (Figs. 13-14 + long preamble)."""

import numpy as np
import pytest

from repro.channel.mobility import ConstantSpeed
from repro.channel.scene import MovingObject, PassiveScene
from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.hardware.frontend import ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver
from repro.optics.materials import TARMAC
from repro.optics.sources import Sun
from repro.vehicles.profiles import bmw_3_series, volvo_v40
from repro.vehicles.signature import (
    LongPreambleDetector,
    extract_signature,
    match_car,
)


def car_pass_trace(car, lux=5000.0, height=0.75, seed=3):
    receiver = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=seed)
    scene = PassiveScene(source=Sun(ground_lux=lux), receiver_height_m=height,
                         ground=TARMAC,
                         objects=[MovingObject(car, ConstantSpeed(5.0, -1.5),
                                               car.model)])
    sim = ChannelSimulator(scene, receiver,
                           SimulatorConfig(sample_rate_hz=2000.0, seed=seed))
    return sim.capture_pass()


class TestExtraction:
    def test_volvo_pattern(self):
        sig = extract_signature(car_pass_trace(volvo_v40()))
        assert sig.pattern == "PVPVP"
        assert sig.n_peaks() == 3
        assert sig.n_valleys() == 2

    def test_bmw_pattern(self):
        sig = extract_signature(car_pass_trace(bmw_3_series()))
        assert sig.pattern == "PVPVP"

    def test_strict_alternation(self):
        for car in (volvo_v40(), bmw_3_series()):
            sig = extract_signature(car_pass_trace(car))
            kinds = [f.kind for f in sig.features]
            for i in range(len(kinds) - 1):
                assert kinds[i] != kinds[i + 1]

    def test_widths_measured(self):
        sig = extract_signature(car_pass_trace(bmw_3_series()))
        assert all(f.width_s > 0.0 for f in sig.features)

    def test_flat_trace_empty_signature(self):
        from repro.channel.trace import SignalTrace

        sig = extract_signature(SignalTrace(np.full(1000, 50.0), 500.0))
        assert sig.features == []
        assert sig.pattern == ""

    def test_prominence_validation(self):
        with pytest.raises(ValueError):
            extract_signature(car_pass_trace(volvo_v40()),
                              min_prominence_fraction=1.5)


class TestMatching:
    def test_both_cars_identified(self):
        candidates = [volvo_v40(), bmw_3_series()]
        for car in (volvo_v40(), bmw_3_series()):
            sig = extract_signature(car_pass_trace(car))
            matched = match_car(sig, candidates)
            assert matched is not None
            assert matched.model == car.model

    def test_trunk_width_is_the_discriminator(self):
        """The sedan's final peak is much wider than the hatchback's."""
        sig_v = extract_signature(car_pass_trace(volvo_v40()))
        sig_b = extract_signature(car_pass_trace(bmw_3_series()))
        assert sig_b.features[-1].width_s > 2 * sig_v.features[-1].width_s

    def test_empty_signature_unmatched(self):
        from repro.channel.trace import SignalTrace

        sig = extract_signature(SignalTrace(np.full(100, 5.0), 100.0))
        assert match_car(sig, [volvo_v40()]) is None


class TestLongPreamble:
    def test_detects_hood_then_windshield(self):
        trace = car_pass_trace(volvo_v40())
        found = LongPreambleDetector().detect(trace)
        assert found is not None
        hood_t, valley_t = found
        assert hood_t < valley_t

    def test_roof_window_follows_valley(self):
        trace = car_pass_trace(volvo_v40())
        detector = LongPreambleDetector()
        hood_t, valley_t = detector.detect(trace)
        roof = detector.roof_window(trace)
        assert roof is not None
        assert roof.start_time_s >= valley_t - 1e-9
        assert len(roof) < len(trace)

    def test_no_preamble_in_flat_trace(self):
        from repro.channel.trace import SignalTrace

        detector = LongPreambleDetector()
        assert detector.detect(SignalTrace(np.full(500, 7.0), 100.0)) is None
        assert detector.roof_window(SignalTrace(np.full(500, 7.0),
                                                100.0)) is None
