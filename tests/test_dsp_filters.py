"""Tests for repro.dsp.filters."""

import numpy as np
import pytest

from repro.dsp.filters import (
    detrend,
    lowpass,
    median_filter,
    moving_average,
    notch_ac_ripple,
)


class TestMovingAverage:
    def test_constant_preserved(self):
        x = np.full(50, 3.0)
        assert np.allclose(moving_average(x, 7), 3.0)

    def test_length_preserved(self):
        x = np.random.default_rng(0).normal(size=101)
        assert len(moving_average(x, 9)) == 101

    def test_reduces_noise(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=2000)
        assert np.std(moving_average(x, 21)) < 0.4 * np.std(x)

    def test_window_one_is_identity(self):
        x = np.arange(10, dtype=float)
        assert np.array_equal(moving_average(x, 1), x)

    def test_even_window_bumped(self):
        x = np.arange(20, dtype=float)
        assert np.allclose(moving_average(x, 4), moving_average(x, 5))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.zeros(5), 0)

    def test_empty(self):
        assert len(moving_average(np.array([]), 3)) == 0


class TestDetrend:
    def test_removes_slow_baseline(self):
        t = np.linspace(0.0, 1.0, 1000)
        slow = 5.0 * t
        fast = np.sin(2 * np.pi * 30 * t)
        out = detrend(slow + fast, 201)
        assert abs(np.polyfit(t, out, 1)[0]) < 0.5  # slope mostly gone

    def test_zero_mean_after(self):
        x = np.linspace(0, 10, 500)
        out = detrend(x, 51)
        assert abs(out.mean()) < 0.5


class TestLowpass:
    def test_passes_low_blocks_high(self):
        fs = 1000.0
        t = np.arange(2000) / fs
        x = np.sin(2 * np.pi * 2 * t) + np.sin(2 * np.pi * 200 * t)
        y = lowpass(x, 20.0, fs)
        # The 2 Hz component survives; the 200 Hz one dies.
        assert np.corrcoef(y, np.sin(2 * np.pi * 2 * t))[0, 1] > 0.99

    def test_zero_phase(self):
        """filtfilt must not delay the signal (symbol timing matters)."""
        fs = 1000.0
        t = np.arange(1000) / fs
        x = np.sin(2 * np.pi * 5 * t)
        y = lowpass(x, 50.0, fs)
        lag = np.argmax(np.correlate(y, x, mode="full")) - (len(x) - 1)
        assert abs(lag) <= 1

    def test_short_input_passthrough(self):
        x = np.arange(5, dtype=float)
        assert np.array_equal(lowpass(x, 10.0, 100.0), x)

    def test_cutoff_above_nyquist_passthrough(self):
        x = np.random.default_rng(0).normal(size=100)
        assert np.array_equal(lowpass(x, 1000.0, 100.0), x)

    def test_invalid(self):
        with pytest.raises(ValueError):
            lowpass(np.zeros(100), 0.0, 100.0)


class TestNotch:
    def test_kills_100hz(self):
        fs = 2000.0
        t = np.arange(4000) / fs
        ripple = np.sin(2 * np.pi * 100 * t)
        symbol = np.sin(2 * np.pi * 1.5 * t)
        out = notch_ac_ripple(symbol + 0.5 * ripple, fs)
        residual = out - symbol
        assert np.std(residual) < 0.15 * np.std(0.5 * ripple)

    def test_preserves_symbol_band(self):
        fs = 2000.0
        t = np.arange(4000) / fs
        symbol = np.sin(2 * np.pi * 1.5 * t)
        out = notch_ac_ripple(symbol, fs)
        assert np.corrcoef(out, symbol)[0, 1] > 0.999

    def test_passthrough_when_ripple_above_nyquist(self):
        x = np.random.default_rng(0).normal(size=200)
        assert np.array_equal(notch_ac_ripple(x, 150.0, ripple_hz=100.0), x)


class TestMedian:
    def test_removes_impulses(self):
        x = np.ones(100)
        x[50] = 100.0
        out = median_filter(x, 5)
        assert out[50] == pytest.approx(1.0)

    def test_preserves_steps(self):
        x = np.concatenate([np.zeros(50), np.ones(50)])
        out = median_filter(x, 5)
        assert np.array_equal(np.unique(out), [0.0, 1.0])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            median_filter(np.zeros(5), 0)
