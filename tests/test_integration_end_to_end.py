"""Cross-module integration tests: full passes through the whole stack."""

import numpy as np
import pytest

from repro.channel.mobility import ConstantSpeed, SpeedJitter
from repro.channel.distortion import DENSE_FOG, LIGHT_FOG
from repro.channel.scene import MovingObject, PassiveScene
from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.core.decoder import AdaptiveThresholdDecoder
from repro.core.errors import DecodeError, PreambleNotFoundError
from repro.core.link import PassiveLink
from repro.core.pipeline import PipelineStage, ReceiverPipeline
from repro.core.receiver_select import DualReceiverController
from repro.hardware.frontend import FovCap, ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver
from repro.hardware.photodiode import PdGain, Photodiode
from repro.net.node import ReceiverNode
from repro.net.tracker import ReceiverNetwork
from repro.optics.geometry import Vec3
from repro.optics.materials import TARMAC
from repro.optics.sources import LedLamp, Sun
from repro.tags.dynamic import DynamicTag
from repro.tags.packet import Packet
from repro.tags.surface import TagSurface

from .conftest import build_indoor_scene, build_outdoor_scene


class TestSelectThenDecode:
    """Section 4.4's loop: measure ambient, pick receiver, decode."""

    @pytest.mark.parametrize("lux,height", [(250.0, 0.2), (3700.0, 0.3),
                                            (6200.0, 0.75)])
    def test_selected_receiver_decodes(self, lux, height):
        controller = DualReceiverController()
        choice = controller.select(lux)
        frontend = choice.frontend
        frontend.seed = 5
        if choice.name.startswith("PD"):
            # The bare PD's wide acceptance cannot resolve symbols; cap
            # it, which also means PD picks only work close-up.
            frontend = frontend.with_cap()
        width = 0.1 if height > 0.5 else 0.05
        speed = 5.0 if height > 0.5 else 0.2
        scene = build_outdoor_scene(bits="10", noise_floor_lux=lux,
                                    height_m=height, symbol_width_m=width,
                                    speed_mps=speed)
        sim = ChannelSimulator(scene, frontend,
                               SimulatorConfig(sample_rate_hz=2000.0, seed=5))
        result = AdaptiveThresholdDecoder().decode(sim.capture_pass(),
                                                   n_data_symbols=4)
        assert result.bit_string() == "10"


class TestDistortionRobustness:
    def test_light_fog_still_decodes(self):
        scene = build_outdoor_scene(bits="00")
        scene.atmosphere = LIGHT_FOG
        fe = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=4)
        sim = ChannelSimulator(scene, fe, SimulatorConfig(seed=4))
        result = AdaptiveThresholdDecoder().decode(sim.capture_pass(),
                                                   n_data_symbols=4)
        assert result.bit_string() == "00"

    def test_dense_fog_degrades(self):
        """Dense fog shrinks the contrast relative to clear air."""
        def swing(atmosphere):
            scene = build_outdoor_scene(bits="00")
            scene.atmosphere = atmosphere
            fe = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=4)
            sim = ChannelSimulator(scene, fe,
                                   SimulatorConfig(seed=4,
                                                   include_noise=False))
            return sim.optical_pass().swing()

        from repro.channel.distortion import CLEAR

        assert swing(DENSE_FOG) < swing(CLEAR)

    def test_speed_jitter_tolerated(self):
        scene = build_indoor_scene(bits="10", symbol_width_m=0.04)
        scene.objects[0].motion = SpeedJitter(
            base=ConstantSpeed(0.08, -0.3), relative_deviation=0.08,
            wavelength_s=2.0, seed=3)
        fe = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                              cap=FovCap.paper_cap(), seed=3)
        sim = ChannelSimulator(scene, fe,
                               SimulatorConfig(sample_rate_hz=500.0, seed=3))
        result = AdaptiveThresholdDecoder().decode(sim.capture_pass(),
                                                   n_data_symbols=4)
        assert result.bit_string() == "10"

    def test_dirty_tag_lower_contrast(self):
        packet = Packet.from_bitstring("00", symbol_width_m=0.05)
        clean_tag = TagSurface.from_packet(packet)
        dirty_tag = clean_tag.degraded(0.7)
        fe = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                              cap=FovCap.paper_cap(), seed=1)
        def swing(tag):
            scene = PassiveScene(
                source=LedLamp(position=Vec3(0.12, 0.0, 0.2),
                               luminous_intensity=2.0),
                receiver_height_m=0.2,
                objects=[MovingObject(tag, ConstantSpeed(0.08, -0.3), "t")])
            sim = ChannelSimulator(scene, fe,
                                   SimulatorConfig(sample_rate_hz=500.0,
                                                   include_noise=False))
            return sim.optical_pass().swing()
        assert swing(dirty_tag) < swing(clean_tag)


class TestDynamicTagsEndToEnd:
    def test_two_passes_two_payloads(self):
        """A dynamic tag transmits different codes on successive passes
        (the Section 6 'encoding dynamic data' extension)."""
        tag = DynamicTag(packets=[
            Packet.from_bitstring("00", symbol_width_m=0.05),
            Packet.from_bitstring("11", symbol_width_m=0.05),
        ])
        fe = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                              cap=FovCap.paper_cap(), seed=8)
        decoded = []
        for k in range(2):
            scene = PassiveScene(
                source=LedLamp(position=Vec3(0.12, 0.0, 0.2),
                               luminous_intensity=2.0),
                receiver_height_m=0.2,
                objects=[MovingObject(tag.surface_for_pass(k),
                                      ConstantSpeed(0.08, -0.3), "dyn")])
            sim = ChannelSimulator(scene, fe,
                                   SimulatorConfig(sample_rate_hz=500.0,
                                                   seed=8))
            result = AdaptiveThresholdDecoder().decode(sim.capture_pass(),
                                                       n_data_symbols=4)
            decoded.append(result.bit_string())
        assert decoded == ["00", "11"]


class TestNetworkedReceiversEndToEnd:
    def test_three_nodes_track_one_tag(self):
        """Three receivers along a road each capture the same tagged
        object; the network fuses the code and estimates the speed."""
        positions = [0.0, 20.0, 40.0]
        speed = 5.0
        packet = Packet.from_bitstring("10", symbol_width_m=0.1)
        net = ReceiverNetwork()
        for i, pos in enumerate(positions):
            net.add_node(ReceiverNode(
                node_id=f"n{i}", position_m=pos,
                frontend=ReceiverFrontEnd(detector=LedReceiver.red_5mm(),
                                          seed=10 + i)))
        net.connect("n0", "n1")
        net.connect("n1", "n2")

        for i, pos in enumerate(positions):
            # Each node sees the pass in its own local frame; global
            # timing follows from the track position.
            tag = TagSurface.from_packet(packet)
            scene = PassiveScene(
                source=Sun(ground_lux=6200.0), receiver_height_m=0.75,
                ground=TARMAC,
                objects=[MovingObject(
                    tag, ConstantSpeed(speed, -1.5 - pos), "tag")])
            sim = ChannelSimulator(
                scene, net.node(f"n{i}").frontend,
                SimulatorConfig(sample_rate_hz=2000.0, seed=10 + i))
            trace = sim.capture_pass()
            net.record(net.node(f"n{i}").observe(trace, n_data_symbols=4))

        fused = net.fuse_at("n0", expected_speed_mps=speed)
        assert len(fused) == 1
        assert fused[0].bits == "10"
        tracks = net.track_at("n0", expected_speed_mps=speed)
        assert len(tracks) == 1
        assert tracks[0].speed_mps == pytest.approx(speed, rel=0.05)


class TestPipelineOverLink:
    def test_pipeline_consumes_link_capture(self):
        link = PassiveLink(
            source=Sun(ground_lux=6200.0),
            frontend=ReceiverFrontEnd(detector=LedReceiver.red_5mm(),
                                      seed=2),
            receiver_height_m=0.75, ground=TARMAC, seed=2)
        report = link.transmit("01", speed_mps=5.0)
        pipeline = ReceiverPipeline()
        outcome = pipeline.process(report.trace, n_data_symbols=4)
        assert outcome.stage is PipelineStage.DECODED
        assert outcome.bits == "01"
