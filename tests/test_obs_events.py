"""Tests for repro.obs.events — the structured run event log."""

import json

import pytest

from repro.obs import (
    EVENT_KINDS,
    EventLog,
    RunEvent,
    active_events,
    event_scope,
    set_events,
)


@pytest.fixture(autouse=True)
def _no_active_log():
    set_events(None)
    yield
    set_events(None)


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


class TestEventLog:
    def test_emit_assigns_sequential_seq(self):
        log = EventLog(clock=FakeClock())
        a = log.emit("batch_start", n_specs=4)
        b = log.emit("batch_end", n_specs=4)
        assert (a.seq, b.seq) == (0, 1)
        assert len(log) == 2

    def test_timestamps_are_monotonic_relative(self):
        clock = FakeClock(start=500.0)
        log = EventLog(clock=clock)
        clock.now = 500.25
        event = log.emit("cache_hit", key="k")
        # Relative to log opening, not to the epoch.
        assert event.t_s == 0.25

    def test_timestamps_rounded_to_microseconds(self):
        clock = FakeClock()
        log = EventLog(clock=clock)
        clock.now += 0.123456789
        assert log.emit("retry").t_s == 0.123457

    def test_rejects_unknown_kind(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event kind"):
            log.emit("reboot")

    def test_kind_vocabulary_is_closed(self):
        assert "batch_start" in EVENT_KINDS
        assert "stage_timing" in EVENT_KINDS
        assert isinstance(EVENT_KINDS, frozenset)

    def test_of_kind_filters(self):
        log = EventLog(clock=FakeClock())
        log.emit("cache_hit", key="a")
        log.emit("cache_miss", key="b")
        log.emit("cache_hit", key="c")
        hits = log.of_kind("cache_hit")
        assert [e.fields["key"] for e in hits] == ["a", "c"]

    def test_to_dict_flattens_fields(self):
        event = RunEvent(seq=3, t_s=1.5, kind="retry",
                         fields={"attempt": 2, "error": "OSError"})
        assert event.to_dict() == {"seq": 3, "t_s": 1.5, "kind": "retry",
                                   "attempt": 2, "error": "OSError"}


class TestJsonlRoundTrip:
    def test_to_jsonl_one_line_per_event(self):
        log = EventLog(clock=FakeClock())
        log.emit("batch_start", n_specs=2)
        log.emit("batch_end", n_specs=2, failed=0)
        text = log.to_jsonl()
        lines = text.strip().splitlines()
        assert len(lines) == 2
        assert text.endswith("\n")
        first = json.loads(lines[0])
        assert first["kind"] == "batch_start" and first["n_specs"] == 2

    def test_empty_log_renders_empty_string(self):
        assert EventLog().to_jsonl() == ""

    def test_write_and_read_round_trip(self, tmp_path):
        log = EventLog(clock=FakeClock())
        log.emit("pool_restart", reason="broken_pool", attempt=1)
        log.emit("session_poisoned", session="s0", error="DecodeError")
        path = log.write(tmp_path / "sub" / "events.jsonl")
        assert path.exists()
        events = EventLog.read_jsonl(path)
        assert [e.kind for e in events] == ["pool_restart",
                                            "session_poisoned"]
        assert events[0].fields == {"reason": "broken_pool", "attempt": 1}
        assert events[1].seq == 1


class TestScope:
    def test_off_by_default(self):
        assert active_events() is None

    def test_event_scope_activates_and_restores(self):
        with event_scope() as log:
            assert active_events() is log
            log.emit("retry", attempt=1)
        assert active_events() is None

    def test_nested_scopes_restore_outer(self):
        with event_scope() as outer:
            with event_scope() as inner:
                assert active_events() is inner
            assert active_events() is outer
