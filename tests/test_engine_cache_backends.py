"""Tests for the pluggable cache backends (disk vs SQLite).

The contract under test: both backends store byte-identical record
payloads under the same content-hash keys, treat corruption as a miss,
never touch foreign files, and stay safe under concurrent writers.
"""

import json
import sqlite3
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine import (
    BatchRunner,
    ResultCache,
    RunRecord,
    ScenarioSpec,
    SqliteResultCache,
    open_cache,
)
from repro.engine.cache import BACKEND_ENV, CACHE_BACKENDS


def make_record(spec_hash="ab" + "0" * 62, seed=7, success=True):
    return RunRecord(
        spec_hash=spec_hash,
        spec={"bits": "00", "seed": seed},
        seed=seed,
        sent_bits="00",
        decoded_bits="00" if success else "",
        success=success,
        stage="decoded" if success else "preamble_not_found",
        ber=0.0 if success else 1.0,
        n_samples=500,
        trace_duration_s=0.25,
        sample_rate_hz=2000.0,
        noise_floor_lux=450.0,
        elapsed_s=0.01,
    )


def _concurrent_writer(root, offset, n):
    """Worker-process body: write ``n`` records into a shared cache."""
    cache = SqliteResultCache(root)
    for k in range(offset, offset + n):
        cache.put(make_record(spec_hash=f"{k:064x}", seed=k))
    cache.close()
    return n


class TestOpenCache:
    def test_defaults_to_disk(self, tmp_path, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(open_cache(tmp_path), ResultCache)

    def test_selects_by_name(self, tmp_path):
        assert isinstance(open_cache(tmp_path, "disk"), ResultCache)
        cache = open_cache(tmp_path, "sqlite")
        assert isinstance(cache, SqliteResultCache)
        cache.close()

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sqlite")
        cache = open_cache(tmp_path)
        assert isinstance(cache, SqliteResultCache)
        cache.close()
        # An explicit name always wins over the environment.
        assert isinstance(open_cache(tmp_path, "disk"), ResultCache)

    def test_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(ValueError, match="cache backend"):
            open_cache(tmp_path, "redis")

    def test_backend_names_are_pinned(self):
        assert CACHE_BACKENDS == ("disk", "sqlite")


class TestSqliteRoundtrip:
    def test_put_get_contains_len(self, tmp_path):
        cache = SqliteResultCache(tmp_path)
        record = make_record()
        cache.put(record)
        assert cache.get(record.spec_hash) == record
        assert record.spec_hash in cache
        assert len(cache) == 1
        assert cache.stats.writes == 1
        assert cache.stats.hits == 1
        cache.close()

    def test_miss_counts(self, tmp_path):
        cache = SqliteResultCache(tmp_path)
        assert cache.get("cd" + "1" * 62) is None
        assert cache.stats.misses == 1
        cache.close()

    def test_overwrite_is_idempotent(self, tmp_path):
        cache = SqliteResultCache(tmp_path)
        cache.put(make_record())
        cache.put(make_record())
        assert len(cache) == 1
        cache.close()

    def test_clear(self, tmp_path):
        cache = SqliteResultCache(tmp_path)
        cache.put(make_record(spec_hash="ab" + "0" * 62))
        cache.put(make_record(spec_hash="cd" + "1" * 62))
        assert cache.clear() == 2
        assert len(cache) == 0
        cache.close()

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        cache = SqliteResultCache(tmp_path)
        key = "ee" + "2" * 62
        with sqlite3.connect(cache.path) as conn:
            conn.execute(
                "INSERT INTO records (key, payload) VALUES (?, ?)",
                (key, "{not json"))
        assert cache.get(key) is None
        assert key not in cache
        assert cache.stats.misses == 1
        cache.close()

    def test_close_is_idempotent(self, tmp_path):
        cache = SqliteResultCache(tmp_path)
        cache.close()
        cache.close()


class TestBackendParity:
    def test_stored_payloads_are_byte_identical(self, tmp_path):
        record = make_record()
        disk = ResultCache(tmp_path / "disk")
        disk.put(record)
        sql = SqliteResultCache(tmp_path / "sqlite")
        sql.put(record)
        disk_bytes = (tmp_path / "disk" / record.spec_hash[:2]
                      / f"{record.spec_hash}.json").read_text()
        assert sql.get_payload(record.spec_hash) == disk_bytes
        assert disk.get(record.spec_hash) == sql.get(record.spec_hash)
        sql.close()

    @pytest.mark.parametrize("n_receivers", [1, 3])
    def test_cold_and_warm_sweeps_agree_across_backends(self, tmp_path,
                                                        n_receivers):
        specs = [ScenarioSpec(seed=s, n_receivers=n_receivers)
                 for s in (2, 3)]
        passes = {}
        for backend in CACHE_BACKENDS:
            with BatchRunner(cache=tmp_path / backend,
                             cache_backend=backend) as runner:
                cold = runner.run(specs)
                warm = runner.run(specs)
            assert cold.stats.cache_hits == 0
            assert warm.stats.cache_hits == len(specs)
            passes[backend] = ([r.canonical_json() for r in cold.records],
                               [r.canonical_json() for r in warm.records])
        for backend, (cold_json, warm_json) in passes.items():
            assert cold_json == warm_json, backend
        assert passes["disk"] == passes["sqlite"]


class TestConcurrentSqliteWriters:
    def test_two_processes_share_one_database(self, tmp_path):
        # Overlapping key ranges: upserts must be idempotent, and the
        # WAL database must survive two writer processes.
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_concurrent_writer, tmp_path, 0, 12),
                       pool.submit(_concurrent_writer, tmp_path, 6, 12)]
            assert [f.result(timeout=60) for f in futures] == [12, 12]
        cache = SqliteResultCache(tmp_path)
        assert len(cache) == 18
        for k in range(18):
            record = cache.get(f"{k:064x}")
            assert record is not None
            assert record.seed == k
        cache.close()


class TestDiskForeignFiles:
    def _stray_files(self, root):
        """Plant non-entry files a cache root might plausibly contain."""
        (root / "notes.json").write_text("{}")
        shard = root / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        (shard / "README.md").write_text("hands off")
        (shard / "short.json").write_text("{}")             # not 64 hex
        (shard / ("ff" + "0" * 62 + ".json")).write_text("{}")  # wrong shard
        (shard / ("AB" + "0" * 62 + ".json")).write_text("{}")  # not hex
        return [root / "notes.json", shard / "README.md",
                shard / "short.json", shard / ("ff" + "0" * 62 + ".json"),
                shard / ("AB" + "0" * 62 + ".json")]

    def test_len_ignores_foreign_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_record())
        strays = self._stray_files(tmp_path)
        assert len(cache) == 1
        assert all(p.exists() for p in strays)

    def test_clear_leaves_foreign_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_record(spec_hash="ab" + "0" * 62))
        cache.put(make_record(spec_hash="cd" + "1" * 62))
        strays = self._stray_files(tmp_path)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert all(p.exists() for p in strays)


class TestRunnerCacheSelection:
    def test_path_plus_backend_opens_named_backend(self, tmp_path,
                                                   monkeypatch):
        with BatchRunner(cache=tmp_path, cache_backend="sqlite") as runner:
            assert isinstance(runner.cache, SqliteResultCache)
        runner.cache.close()
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        with BatchRunner(cache=str(tmp_path)) as runner:
            assert isinstance(runner.cache, ResultCache)

    def test_instance_plus_backend_is_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="cache_backend"):
            BatchRunner(cache=cache, cache_backend="sqlite")

    def test_instance_passthrough(self, tmp_path):
        cache = ResultCache(tmp_path)
        with BatchRunner(cache=cache) as runner:
            assert runner.cache is cache
