"""FaultPlan: validation, scaling, serialization, layer properties."""

import pytest

from repro.faults.plan import PROBABILITY_FIELDS, RATE_FIELDS, FaultPlan


class TestValidation:
    def test_default_plan_is_empty(self):
        plan = FaultPlan()
        assert plan.empty
        assert not plan.streams
        assert not plan.signals
        assert not plan.nodes

    @pytest.mark.parametrize("name", sorted(PROBABILITY_FIELDS))
    def test_probabilities_bounded(self, name):
        FaultPlan(**{name: 0.0})
        FaultPlan(**{name: 1.0})
        with pytest.raises(ValueError, match=name):
            FaultPlan(**{name: 1.5})
        with pytest.raises(ValueError, match=name):
            FaultPlan(**{name: -0.1})

    @pytest.mark.parametrize("name", ["burst_rate_hz", "dropout_rate_hz"])
    def test_rates_nonnegative(self, name):
        FaultPlan(**{name: 0.0})
        with pytest.raises(ValueError, match=name):
            FaultPlan(**{name: -1.0})

    def test_negative_clock_drift_allowed(self):
        assert FaultPlan(clock_drift_ppm=-500.0).signals

    def test_saturate_fraction_below_one(self):
        with pytest.raises(ValueError, match="saturate_fraction"):
            FaultPlan(saturate_fraction=1.0)

    def test_delay_chunks_positive(self):
        with pytest.raises(ValueError, match="delay_chunks"):
            FaultPlan(delay_chunks=0)

    def test_exec_sleep_capped(self):
        with pytest.raises(ValueError, match="exec_sleep_s"):
            FaultPlan(exec_sleep_s=601.0)

    def test_intermittent_fraction_bounds(self):
        with pytest.raises(ValueError, match="intermittent_fraction"):
            FaultPlan(intermittent_fraction=0.0)


class TestLayers:
    def test_stream_knobs_flag_streams(self):
        assert FaultPlan(chunk_drop=0.1).streams
        assert not FaultPlan(chunk_drop=0.1).signals

    def test_signal_knobs_flag_signals(self):
        assert FaultPlan(burst_rate_hz=1.0).signals
        assert FaultPlan(clock_drift_ppm=50.0).signals

    def test_node_knobs_flag_nodes(self):
        assert FaultPlan(node_dropout=0.2).nodes
        assert FaultPlan(node_intermittent=0.2).nodes

    def test_exec_sleep_alone_is_not_empty(self):
        plan = FaultPlan(exec_sleep_s=1.0)
        assert not plan.empty
        assert not (plan.streams or plan.signals or plan.nodes)


class TestScaling:
    def test_scaled_zero_is_empty(self):
        plan = FaultPlan(chunk_drop=0.4, burst_rate_hz=2.0,
                         node_dropout=0.3)
        assert plan.scaled(0.0).empty

    def test_scaled_one_is_identity(self):
        plan = FaultPlan(chunk_drop=0.4, burst_rate_hz=2.0,
                         clock_drift_ppm=100.0)
        assert plan.scaled(1.0) == plan

    def test_scaled_probabilities_clip_at_one(self):
        plan = FaultPlan(chunk_drop=0.6)
        assert plan.scaled(3.0).chunk_drop == 1.0

    def test_scaled_rates_grow_unclipped(self):
        plan = FaultPlan(burst_rate_hz=2.0)
        assert plan.scaled(3.0).burst_rate_hz == pytest.approx(6.0)

    def test_scaled_preserves_shape_knobs(self):
        plan = FaultPlan(chunk_delay=0.2, delay_chunks=5,
                         burst_rate_hz=1.0, burst_length_s=0.05)
        scaled = plan.scaled(0.5)
        assert scaled.delay_chunks == 5
        assert scaled.burst_length_s == pytest.approx(0.05)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError, match="intensity"):
            FaultPlan(chunk_drop=0.1).scaled(-1.0)


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(chunk_drop=0.25, chunk_reorder=0.1,
                         burst_rate_hz=3.0, saturate_fraction=0.9,
                         node_dropout=0.5, intermittent_fraction=0.3)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({"chunk_dorp": 0.1})

    def test_canonical_json_is_key_sorted_and_stable(self):
        import json

        plan = FaultPlan(node_dropout=0.5, chunk_drop=0.25)
        text = plan.canonical_json()
        assert text == plan.canonical_json()
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    def test_distinct_plans_distinct_json(self):
        a = FaultPlan(chunk_drop=0.25)
        b = FaultPlan(chunk_drop=0.26)
        assert a.canonical_json() != b.canonical_json()
