"""Tests for repro.dsp.peaks (preamble anchor detection)."""

import numpy as np
import pytest

from repro.dsp.peaks import (
    Extremum,
    find_peaks_and_valleys,
    first_preamble_points,
)


def hlhl_wave(fs=100.0, period=1.0, n_cycles=2, amplitude=1.0, base=0.0):
    """Smooth alternating waveform resembling a blurred HLHL preamble."""
    t = np.arange(int(n_cycles * period * fs * 2)) / fs
    return base + amplitude * 0.5 * (1 - np.cos(2 * np.pi * t / period)), t


class TestFindExtrema:
    def test_alternating_wave(self):
        x, _ = hlhl_wave()
        ext = find_peaks_and_valleys(x, 100.0)
        kinds = [e.kind for e in ext]
        assert "peak" in kinds and "valley" in kinds
        # Extrema strictly ordered in time.
        assert all(ext[i].index < ext[i + 1].index
                   for i in range(len(ext) - 1))

    def test_flat_signal_no_extrema(self):
        assert find_peaks_and_valleys(np.full(100, 2.0), 100.0) == []

    def test_short_signal(self):
        assert find_peaks_and_valleys(np.array([1.0, 2.0]), 100.0) == []

    def test_prominence_filters_noise(self):
        rng = np.random.default_rng(0)
        x, _ = hlhl_wave(amplitude=1.0, n_cycles=2)
        noisy = x + rng.normal(0.0, 0.02, size=len(x))
        ext = find_peaks_and_valleys(noisy, 100.0)
        # Only the real peaks (one per cycle, 2 cycles) survive the 20 %
        # prominence gate; noise wiggles must not register.  The cosine
        # form puts up to n_cycles*2 humps in view, so allow that many.
        peaks = [e for e in ext if e.kind == "peak"]
        assert 1 <= len(peaks) <= 4
        assert all(p.value > 0.8 for p in peaks)

    def test_timestamps_respect_start_time(self):
        x, _ = hlhl_wave()
        ext = find_peaks_and_valleys(x, 100.0, start_time_s=10.0)
        assert all(e.time_s >= 10.0 for e in ext)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            find_peaks_and_valleys(np.zeros(10), 0.0)


class TestFirstPreamblePoints:
    def _ext(self, kind, idx, value):
        return Extremum(index=idx, time_s=idx / 100.0, value=value, kind=kind)

    def test_simple_pvp(self):
        seq = [self._ext("peak", 10, 1.0), self._ext("valley", 20, 0.1),
               self._ext("peak", 30, 0.9)]
        points = first_preamble_points(seq)
        assert points is not None
        a, b, c = points
        assert (a.index, b.index, c.index) == (10, 20, 30)

    def test_leading_valley_skipped(self):
        seq = [self._ext("valley", 5, 0.0), self._ext("peak", 10, 1.0),
               self._ext("valley", 20, 0.1), self._ext("peak", 30, 0.9)]
        points = first_preamble_points(seq)
        assert points is not None
        assert points[0].index == 10

    def test_double_peak_keeps_stronger(self):
        seq = [self._ext("peak", 10, 0.5), self._ext("peak", 15, 1.0),
               self._ext("valley", 20, 0.1), self._ext("peak", 30, 0.9)]
        points = first_preamble_points(seq)
        assert points is not None
        assert points[0].index == 15

    def test_deeper_valley_preferred(self):
        seq = [self._ext("peak", 10, 1.0), self._ext("valley", 20, 0.3),
               self._ext("valley", 25, 0.05), self._ext("peak", 30, 0.9)]
        points = first_preamble_points(seq)
        assert points is not None
        assert points[1].index == 25

    def test_incomplete_pattern(self):
        assert first_preamble_points([]) is None
        assert first_preamble_points([self._ext("peak", 1, 1.0)]) is None
        assert first_preamble_points(
            [self._ext("peak", 1, 1.0), self._ext("valley", 2, 0.0)]) is None


class TestDegenerateWindows:
    """Streaming acquisition probes arbitrary suffixes; none of the
    degenerate shapes it produces may raise anywhere in the chain."""

    def test_empty_returns_no_extrema(self):
        assert find_peaks_and_valleys(np.empty(0), 100.0) == []

    def test_one_and_two_samples(self):
        assert find_peaks_and_valleys(np.array([1.0]), 100.0) == []
        assert find_peaks_and_valleys(np.array([1.0, 2.0]), 100.0) == []

    def test_all_constant(self):
        assert find_peaks_and_valleys(np.full(50, 3.3), 100.0) == []

    def test_nan_poisoned_window(self):
        samples = np.array([0.0, 1.0, np.nan, 1.0, 0.0])
        assert find_peaks_and_valleys(samples, 100.0) == []

    def test_infinite_span(self):
        samples = np.array([0.0, np.inf, 0.0, 1.0, 0.0])
        assert find_peaks_and_valleys(samples, 100.0) == []

    def test_acquisition_chain_never_crashes(self):
        """The decoder's acquisition must answer PreambleNotFoundError
        (the domain 'no') — not ValueError/IndexError — on any
        degenerate trace."""
        import pytest

        from repro.channel.trace import SignalTrace
        from repro.core.decoder import AdaptiveThresholdDecoder
        from repro.core.errors import PreambleNotFoundError

        decoder = AdaptiveThresholdDecoder()
        for samples in (np.empty(0), np.zeros(1), np.zeros(2),
                        np.full(100, 7.0), np.array([1.0, 2.0])):
            with pytest.raises(PreambleNotFoundError):
                decoder.acquire_preamble(SignalTrace(samples, 100.0))
