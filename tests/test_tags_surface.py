"""Tests for repro.tags.surface (physical tags and composites)."""

import numpy as np
import pytest

from repro.optics.materials import ALUMINUM_TAPE, BLACK_NAPKIN, WHITE_PAPER
from repro.optics.reflection import OVERHEAD_GEOMETRY, effective_reflectance
from repro.tags.packet import Packet
from repro.tags.surface import CompositeSurface, LinearSurface, Strip, TagSurface


class TestStrip:
    def test_positive_width(self):
        with pytest.raises(ValueError):
            Strip(ALUMINUM_TAPE, 0.0)


class TestTagSurface:
    def test_from_packet_strip_count(self):
        p = Packet.from_bitstring("10", symbol_width_m=0.03)
        tag = TagSurface.from_packet(p)
        assert tag.symbol_count() == p.n_symbols
        assert tag.length_m == pytest.approx(p.length_m)

    def test_min_feature(self):
        p = Packet.from_bitstring("10", symbol_width_m=0.04)
        assert TagSurface.from_packet(p).min_feature_m == pytest.approx(0.04)

    def test_material_mapping(self):
        p = Packet.from_bitstring("0", symbol_width_m=0.03)
        tag = TagSurface.from_packet(p)
        # Preamble H L H L, then data HL: positions at strip centres.
        assert tag.material_at(0.015) is ALUMINUM_TAPE   # H
        assert tag.material_at(0.045) is BLACK_NAPKIN    # L

    def test_material_outside_is_none(self):
        p = Packet.from_bitstring("0", symbol_width_m=0.03)
        tag = TagSurface.from_packet(p)
        assert tag.material_at(-0.01) is None
        assert tag.material_at(tag.length_m + 0.01) is None

    def test_custom_materials(self):
        p = Packet.from_bitstring("0", symbol_width_m=0.03)
        tag = TagSurface.from_packet(p, high_material=WHITE_PAPER)
        assert tag.material_at(0.015) is WHITE_PAPER

    def test_reflectance_profile_values(self):
        p = Packet.from_bitstring("0", symbol_width_m=0.03)
        tag = TagSurface.from_packet(p)
        high = effective_reflectance(ALUMINUM_TAPE, OVERHEAD_GEOMETRY)
        low = effective_reflectance(BLACK_NAPKIN, OVERHEAD_GEOMETRY)
        xs = np.array([0.015, 0.045, 0.075, 0.105])
        profile = tag.reflectance_samples(xs, OVERHEAD_GEOMETRY)
        assert profile[0] == pytest.approx(high)
        assert profile[1] == pytest.approx(low)
        assert profile[2] == pytest.approx(high)
        assert profile[3] == pytest.approx(low)

    def test_profile_zero_outside(self):
        p = Packet.from_bitstring("0", symbol_width_m=0.03)
        tag = TagSurface.from_packet(p)
        xs = np.array([-0.1, tag.length_m + 0.1])
        assert np.all(tag.reflectance_samples(xs, OVERHEAD_GEOMETRY) == 0.0)

    def test_degraded_lowers_contrast(self):
        p = Packet.from_bitstring("0", symbol_width_m=0.03)
        tag = TagSurface.from_packet(p)
        dirty = tag.degraded(0.6)
        xs = np.array([0.015])
        assert (dirty.reflectance_samples(xs, OVERHEAD_GEOMETRY)[0]
                < tag.reflectance_samples(xs, OVERHEAD_GEOMETRY)[0])

    def test_satisfies_protocol(self):
        p = Packet.from_bitstring("0")
        assert isinstance(TagSurface.from_packet(p), LinearSurface)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TagSurface(strips=[])


class TestCompositeSurface:
    def _tag(self, bits="0", width=0.1):
        return TagSurface.from_packet(
            Packet.from_bitstring(bits, symbol_width_m=width))

    def test_total_length_default(self):
        tag = self._tag()
        comp = CompositeSurface(parts=[(0.5, tag)])
        assert comp.length_m == pytest.approx(0.5 + tag.length_m)

    def test_later_parts_override(self):
        base = self._tag("0", 0.1)          # H at [0, 0.1)
        overlay = self._tag("1", 0.05)      # different pattern
        comp = CompositeSurface(parts=[(0.0, base), (0.0, overlay)])
        xs = np.array([0.025])
        expected = overlay.reflectance_samples(xs, OVERHEAD_GEOMETRY)
        assert np.allclose(
            comp.reflectance_samples(xs, OVERHEAD_GEOMETRY), expected)

    def test_base_reflectance_in_gaps(self):
        tag = self._tag()
        comp = CompositeSurface(parts=[(1.0, tag)], base_reflectance=0.02)
        assert comp.reflectance_samples(
            np.array([0.5]), OVERHEAD_GEOMETRY)[0] == pytest.approx(0.02)

    def test_min_feature_from_parts(self):
        comp = CompositeSurface(parts=[(0.0, self._tag("0", 0.1)),
                                       (2.0, self._tag("0", 0.03))])
        assert comp.min_feature_m == pytest.approx(0.03)

    def test_too_short_total_rejected(self):
        tag = self._tag()
        with pytest.raises(ValueError):
            CompositeSurface(parts=[(1.0, tag)], total_length_m=0.5)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            CompositeSurface(parts=[(-0.1, self._tag())])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeSurface(parts=[])
