"""Tests for repro.obs.registry — metrics registry and activation."""

import threading

import pytest

import repro.obs.registry as registry_mod
from repro.obs import (
    DEFAULT_BUCKETS,
    TELEMETRY_ENV,
    MetricsRegistry,
    active_registry,
    set_registry,
    telemetry,
    telemetry_enabled,
)


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    """Each test starts with telemetry fully off (no forced registry,
    no env default, no inherited REPRO_TELEMETRY)."""
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    set_registry(None)
    monkeypatch.setattr(registry_mod, "_ENV_DEFAULT", None)
    yield
    set_registry(None)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="counters only go up"):
            reg.counter("x").inc(-1.0)

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"backend": "disk"}).inc()
        reg.counter("hits", {"backend": "sqlite"}).inc(2)
        assert reg.counter("hits", {"backend": "disk"}).value == 1.0
        assert reg.counter("hits", {"backend": "sqlite"}).value == 2.0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", {"a": "1", "b": "2"})
        b = reg.counter("x", {"b": "2", "a": "1"})
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0

    def test_set_max_keeps_high_water_mark(self):
        g = MetricsRegistry().gauge("peak")
        g.set_max(3.0)
        g.set_max(1.0)
        assert g.value == 3.0
        g.set_max(7.0)
        assert g.value == 7.0


class TestHistogram:
    def test_observe_buckets_sum_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # last slot is +Inf
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)

    def test_boundary_value_lands_in_bucket(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.1)  # le= semantics: exactly at the bound counts
        assert h.counts == [1, 0, 0]

    def test_rejects_non_increasing_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("bad2", buckets=())

    def test_default_buckets_cover_stage_times(self):
        assert DEFAULT_BUCKETS[0] == 0.0001
        assert DEFAULT_BUCKETS[-1] == 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            reg.gauge("a")
        # Even with different labels the name keeps its kind.
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.histogram("a", {"x": "1"})

    def test_snapshot_is_plain_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z_total").inc()
        reg.counter("a_total", {"k": "v"}).inc(2)
        reg.gauge("depth").set(3)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        names = [c["name"] for c in snap["counters"]]
        assert names == ["a_total", "z_total"]
        assert snap["counters"][0]["labels"] == {"k": "v"}
        assert snap["gauges"][0]["value"] == 3.0
        hist = snap["histograms"][0]
        assert hist["buckets"] == [1.0]
        assert hist["counts"] == [1, 0]
        assert hist["sum"] == 0.5 and hist["count"] == 1
        # Snapshot must be detached: mutating it leaves the registry alone.
        hist["counts"][0] = 99
        assert reg.histogram("lat", buckets=(1.0,)).counts == [1, 0]

    def test_concurrent_increments_lose_nothing(self):
        """Satellite: two threads hammering the same labelled counter."""
        reg = MetricsRegistry()
        n = 5000

        def work():
            for _ in range(n):
                reg.counter("hits", {"backend": "disk"}).inc()
                reg.histogram("lat", {"backend": "disk"}).observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits", {"backend": "disk"}).value == 2 * n
        assert reg.histogram("lat", {"backend": "disk"}).count == 2 * n


class TestActivation:
    def test_off_by_default(self):
        assert active_registry() is None
        assert not telemetry_enabled()

    def test_set_registry_forces_on_and_off(self):
        reg = MetricsRegistry()
        set_registry(reg)
        assert active_registry() is reg
        set_registry(None)
        assert active_registry() is None

    def test_env_var_builds_process_default(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        first = active_registry()
        assert first is not None
        assert active_registry() is first  # cached, not rebuilt

    def test_env_falsy_values_stay_off(self, monkeypatch):
        for raw in ("0", "false", "off", "", "no"):
            monkeypatch.setenv(TELEMETRY_ENV, raw)
            assert active_registry() is None

    def test_telemetry_scope_activates_and_restores(self, monkeypatch):
        import os
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        with telemetry() as reg:
            assert active_registry() is reg
            # Forked workers must inherit the request.
            assert os.environ[TELEMETRY_ENV] == "1"
        assert active_registry() is None
        assert os.environ[TELEMETRY_ENV] == "0"

    def test_telemetry_scope_accepts_existing_registry(self):
        mine = MetricsRegistry()
        with telemetry(mine) as reg:
            assert reg is mine
