"""Tests for repro.dsp.spectrum (the FFT collision tooling)."""

import numpy as np
import pytest

from repro.dsp.spectrum import (
    PowerSpectrum,
    dominant_frequencies,
    power_spectrum,
    symbol_fundamental_hz,
)


def tone(freq, fs=500.0, duration=8.0, amplitude=1.0):
    t = np.arange(int(fs * duration)) / fs
    return amplitude * np.sin(2 * np.pi * freq * t)


class TestSymbolFundamental:
    def test_paper_outdoor_case(self):
        """10 cm symbols at 5 m/s alternate at 25 Hz."""
        assert symbol_fundamental_hz(0.1, 5.0) == pytest.approx(25.0)

    def test_indoor_case(self):
        assert symbol_fundamental_hz(0.03, 0.08) == pytest.approx(4.0 / 3.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            symbol_fundamental_hz(0.0, 1.0)


class TestPowerSpectrum:
    def test_single_tone_peak(self):
        spec = power_spectrum(tone(3.0), 500.0)
        assert spec.band(1.0, 10.0).peak_frequency() == pytest.approx(3.0,
                                                                      abs=0.1)

    def test_two_tones_resolved(self):
        x = tone(2.0) + 0.8 * tone(6.0)
        spec = power_spectrum(x, 500.0)
        freqs = dominant_frequencies(spec.band(0.5, 20.0), max_peaks=2,
                                     min_relative_height=0.3)
        assert len(freqs) == 2
        assert sorted(round(f) for f in freqs) == [2, 6]

    def test_detrending_removes_dc_drift(self):
        t = np.arange(4000) / 500.0
        x = 5.0 * t + tone(4.0)
        spec = power_spectrum(x, 500.0, detrend_window_s=1.0)
        assert spec.band(1.0, 10.0).peak_frequency() == pytest.approx(4.0,
                                                                      abs=0.15)

    def test_short_input_rejected(self):
        with pytest.raises(ValueError):
            power_spectrum(np.zeros(4), 100.0)

    def test_band_validation(self):
        spec = power_spectrum(tone(2.0), 500.0)
        with pytest.raises(ValueError):
            spec.band(5.0, 1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PowerSpectrum(np.zeros(4), np.zeros(5))


class TestDominantFrequencies:
    def test_strongest_first(self):
        x = 0.5 * tone(2.0) + 1.0 * tone(7.0)
        spec = power_spectrum(x, 500.0)
        freqs = dominant_frequencies(spec.band(0.5, 20.0),
                                     min_relative_height=0.3)
        assert freqs[0] == pytest.approx(7.0, abs=0.2)

    def test_weak_peaks_suppressed(self):
        x = tone(3.0) + 0.05 * tone(9.0)
        spec = power_spectrum(x, 500.0)
        freqs = dominant_frequencies(spec.band(0.5, 20.0),
                                     min_relative_height=0.35)
        assert len(freqs) == 1

    def test_close_peaks_merged(self):
        x = tone(3.0) + tone(3.3)
        spec = power_spectrum(x, 500.0)
        freqs = dominant_frequencies(spec.band(0.5, 20.0),
                                     min_separation_hz=0.8)
        assert len(freqs) == 1

    def test_max_peaks_cap(self):
        x = sum(tone(f) for f in (2.0, 4.0, 6.0, 8.0, 10.0))
        spec = power_spectrum(x, 500.0)
        freqs = dominant_frequencies(spec.band(0.5, 20.0), max_peaks=3,
                                     min_relative_height=0.2)
        assert len(freqs) <= 3

    def test_empty_spectrum(self):
        spec = PowerSpectrum(np.array([0.0, 1.0]), np.array([0.0, 0.0]))
        assert dominant_frequencies(spec) == []

    def test_invalid_max_peaks(self):
        spec = power_spectrum(tone(2.0), 500.0)
        with pytest.raises(ValueError):
            dominant_frequencies(spec, max_peaks=0)
