"""Tests for repro.dsp.dtw."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.dtw import (
    VECTORIZE_MIN_CELLS,
    DtwResult,
    _cost_matrix,
    _cost_matrix_vectorized,
    dtw,
    dtw_distance,
)


class TestBasicProperties:
    def test_identity_zero(self):
        x = np.array([0.0, 1.0, 0.5, 0.2])
        assert dtw_distance(x, x) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=40)
        b = rng.normal(size=40)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_non_negative(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=30), rng.normal(size=25)
        assert dtw_distance(a, b) >= 0.0

    def test_constant_offset_scales(self):
        a = np.zeros(20)
        b = np.full(20, 0.5)
        # Every matched pair contributes 0.5 along the diagonal path.
        assert dtw_distance(a, b) == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance(np.array([]), np.array([1.0]))


class TestWarpingInvariance:
    def test_time_stretch_cheap(self):
        """DTW must be far more tolerant of stretching than Euclidean —
        this is exactly why the paper picks it for the variable-speed
        distortion (Section 4.2)."""
        t1 = np.linspace(0.0, 1.0, 100)
        t2 = np.linspace(0.0, 1.0, 160)  # stretched copy
        a = np.sin(2 * np.pi * 2 * t1)
        b = np.sin(2 * np.pi * 2 * t2)
        stretched = dtw_distance(a, b, band_fraction=0.5)
        different = dtw_distance(a, -b, band_fraction=0.5)
        assert stretched < 0.2 * different

    def test_piecewise_speed_change_classified(self):
        """A mid-sequence speed doubling (the Fig. 8 distortion) stays
        closer to its own template than to a different code."""
        t = np.linspace(0.0, 1.0, 200)
        template_a = np.sin(2 * np.pi * 3 * t)
        template_b = np.sign(np.sin(2 * np.pi * 3 * t))
        # Distort template_a: second half compressed 2x.
        first = template_a[:100]
        second = template_a[100::2]
        distorted = np.concatenate([first, second])
        d_own = dtw_distance(distorted, template_a, band_fraction=0.4)
        d_other = dtw_distance(distorted, template_b, band_fraction=0.4)
        assert d_own < d_other


class TestBand:
    def test_band_covers_length_mismatch(self):
        a = np.sin(np.linspace(0, 6, 50))
        b = np.sin(np.linspace(0, 6, 120))
        # Narrow band would be infeasible without the automatic widening.
        result = dtw(a, b, band_fraction=0.05)
        assert np.isfinite(result.distance)

    def test_unconstrained_never_worse(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=30)
        b = rng.normal(size=30)
        assert dtw_distance(a, b, band_fraction=None) <= dtw_distance(
            a, b, band_fraction=0.1) + 1e-12

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            dtw(np.zeros(5), np.zeros(5), band_fraction=0.0)


_signal = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                             allow_nan=False, allow_infinity=False),
                   min_size=1, max_size=48)
_band_fractions = st.one_of(st.none(),
                            st.floats(min_value=0.02, max_value=0.9,
                                      allow_nan=False))


class TestVectorizedEquivalence:
    """The wavefront kernel is a bit-identical drop-in for the loop."""

    @given(xs=_signal, ys=_signal, band_fraction=_band_fractions)
    @settings(max_examples=60, deadline=None)
    def test_distance_normalized_and_path_identical(self, xs, ys,
                                                    band_fraction):
        a, b = np.asarray(xs), np.asarray(ys)
        ref = dtw(a, b, band_fraction=band_fraction, return_path=True,
                  implementation="reference")
        vec = dtw(a, b, band_fraction=band_fraction, return_path=True,
                  implementation="vectorized")
        assert vec.distance == ref.distance
        assert vec.normalized_distance == ref.normalized_distance
        assert vec.path == ref.path

    @given(xs=_signal, ys=_signal,
           band=st.one_of(st.none(), st.integers(min_value=1,
                                                 max_value=30)))
    @settings(max_examples=60, deadline=None)
    def test_accumulated_cost_matrices_identical(self, xs, ys, band):
        """Every cell — including the unreachable inf cells outside the
        band — matches, not just the optimum."""
        a, b = np.asarray(xs), np.asarray(ys)
        if band is not None:
            band = max(band, abs(len(a) - len(b)) + 1)
        ref = _cost_matrix(a, b, band)
        vec = _cost_matrix_vectorized(a, b, band)
        assert ref.shape == vec.shape
        assert np.array_equal(ref, vec)

    def test_auto_picks_vectorized_above_crossover(self, monkeypatch):
        import importlib

        dtw_mod = importlib.import_module("repro.dsp.dtw")
        calls = []
        real = dtw_mod._cost_matrix_vectorized
        monkeypatch.setattr(dtw_mod, "_cost_matrix_vectorized",
                            lambda *a: calls.append(1) or real(*a))
        n = int(np.ceil(np.sqrt(VECTORIZE_MIN_CELLS)))
        big = np.linspace(0.0, 1.0, n)
        dtw(big, big, band_fraction=None)
        assert calls, "auto mode should dispatch to the wavefront kernel"
        calls.clear()
        dtw(np.zeros(4), np.zeros(4))
        assert not calls, "tiny inputs should stay on the loop"
        # A narrow band shrinks the evaluated cells below the crossover
        # even when n*m alone would clear it.
        dtw(big, big, band_fraction=0.05)
        assert not calls, "narrow-band inputs should stay on the loop"

    def test_unknown_implementation_rejected(self):
        with pytest.raises(ValueError):
            dtw(np.zeros(4), np.zeros(4), implementation="numba")


class TestPath:
    def test_path_endpoints(self):
        a = np.array([0.0, 1.0, 0.0])
        b = np.array([0.0, 0.5, 1.0, 0.0])
        result = dtw(a, b, return_path=True)
        assert result.path is not None
        assert result.path[0] == (0, 0)
        assert result.path[-1] == (len(a) - 1, len(b) - 1)

    def test_path_monotone(self):
        rng = np.random.default_rng(5)
        result = dtw(rng.normal(size=20), rng.normal(size=25),
                     return_path=True)
        steps = np.diff(np.array(result.path), axis=0)
        assert np.all(steps >= 0)
        assert np.all(steps.sum(axis=1) >= 1)

    def test_normalized_distance(self):
        a = np.zeros(10)
        b = np.full(10, 1.0)
        result = dtw(a, b)
        assert result.normalized_distance == pytest.approx(
            result.distance / 10.0)

    def test_path_omitted_by_default(self):
        assert dtw(np.zeros(5), np.zeros(5)).path is None
