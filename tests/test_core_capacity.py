"""Tests for repro.core.capacity."""

import pytest

from repro.core.capacity import (
    IndoorSetup,
    max_decodable_height,
    max_supported_speed_mps,
    min_decodable_width,
    probe_decodable,
    throughput_symbols_per_second,
)

QUICK = IndoorSetup(seeds=(11, 23))


class TestIndoorSetup:
    def test_paper_parameters(self):
        setup = IndoorSetup()
        assert setup.lamp_offset_m == pytest.approx(0.12)
        assert setup.speed_mps == pytest.approx(0.08)

    def test_scene_assembly(self):
        scene = QUICK.scene(0.3, 0.05)
        assert scene.receiver_height_m == 0.3
        assert scene.source.position.z == 0.3  # lamp rides with receiver
        assert len(scene.objects) == 1

    def test_scene_validation(self):
        with pytest.raises(ValueError):
            QUICK.scene(-0.1, 0.05)
        with pytest.raises(ValueError):
            QUICK.scene(0.3, 0.0)

    def test_sample_rate_clamped(self):
        assert 200.0 <= QUICK.sample_rate_hz(0.01) <= 2000.0
        assert 200.0 <= QUICK.sample_rate_hz(0.2) <= 2000.0


class TestProbes:
    def test_easy_point_decodable(self):
        assert probe_decodable(QUICK, 0.2, 0.05)

    def test_hopeless_point_fails(self):
        """Narrow symbols high up: blurred beyond recovery."""
        assert not probe_decodable(QUICK, 0.6, 0.015)

    def test_blur_tradeoff_monotone_in_width(self):
        """At a fixed height, widening symbols can only help."""
        assert not probe_decodable(QUICK, 0.45, 0.02)
        assert probe_decodable(QUICK, 0.45, 0.09)


class TestSearches:
    def test_min_width_bracketed(self):
        width = min_decodable_width(QUICK, 0.25, tolerance_m=0.004)
        assert width is not None
        assert 0.01 < width < 0.09

    def test_max_height_bracketed(self):
        height = max_decodable_height(QUICK, 0.06, tolerance_m=0.03)
        assert height is not None
        assert 0.2 < height < 0.9

    def test_wider_symbols_reach_higher(self):
        h_narrow = max_decodable_height(QUICK, 0.04, tolerance_m=0.03)
        h_wide = max_decodable_height(QUICK, 0.09, tolerance_m=0.03)
        assert h_narrow is not None and h_wide is not None
        assert h_wide > h_narrow

    def test_throughput_from_width(self):
        t = throughput_symbols_per_second(QUICK, 0.25, tolerance_m=0.004)
        assert t is not None
        assert t > 0.5


class TestMaxSupportedSpeed:
    def test_sampling_limited(self):
        """At low fs, the ADC is the bottleneck."""
        v = max_supported_speed_mps(symbol_width_m=0.1,
                                    detector_bandwidth_hz=100_000.0,
                                    sample_rate_hz=2000.0,
                                    samples_per_symbol=6)
        assert v == pytest.approx(0.1 * 2000.0 / 6)

    def test_response_limited(self):
        """A slow detector bounds the speed regardless of fs."""
        v = max_supported_speed_mps(symbol_width_m=0.1,
                                    detector_bandwidth_hz=60.0,
                                    sample_rate_hz=100_000.0,
                                    bandwidth_margin=3.0)
        assert v == pytest.approx(0.1 * 60.0 / 3.0)

    def test_paper_outdoor_case_supported(self):
        """18 km/h with 10 cm symbols must be within the OPT101+MCP3008
        chain's reach (the paper demonstrates it)."""
        v = max_supported_speed_mps(symbol_width_m=0.1,
                                    detector_bandwidth_hz=2000.0,
                                    sample_rate_hz=2000.0)
        assert v >= 5.0

    def test_scales_with_width(self):
        v1 = max_supported_speed_mps(0.05, 2000.0, 2000.0)
        v2 = max_supported_speed_mps(0.10, 2000.0, 2000.0)
        assert v2 == pytest.approx(2.0 * v1)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_supported_speed_mps(0.0, 100.0, 100.0)
        with pytest.raises(ValueError):
            max_supported_speed_mps(0.1, 0.0, 100.0)
        with pytest.raises(ValueError):
            max_supported_speed_mps(0.1, 100.0, 100.0, samples_per_symbol=0)
