"""Tests for repro.stream.normalize."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.trace import SignalTrace
from repro.stream.normalize import OnlineNormalizer, P2Quantile


class TestP2Quantile:
    def test_bad_quantile(self):
        for p in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                P2Quantile(p)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).estimate())

    def test_exact_below_five(self):
        q = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            q.update(v)
        assert q.estimate() == pytest.approx(2.0)

    def test_median_converges(self):
        rng = np.random.default_rng(7)
        q = P2Quantile(0.5)
        data = rng.normal(10.0, 2.0, size=5000)
        for v in data:
            q.update(v)
        assert q.estimate() == pytest.approx(float(np.median(data)),
                                             abs=0.15)

    def test_p95_converges(self):
        rng = np.random.default_rng(11)
        q = P2Quantile(0.95)
        data = rng.uniform(0.0, 1.0, size=8000)
        for v in data:
            q.update(v)
        assert q.estimate() == pytest.approx(0.95, abs=0.03)

    def test_rejects_non_finite(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                P2Quantile(0.5).update(bad)


class TestOnlineNormalizer:
    def test_running_extremes(self):
        norm = OnlineNormalizer()
        norm.update(np.array([3.0, 1.0]))
        norm.update(np.array([5.0]))
        assert norm.min == 1.0
        assert norm.max == 5.0
        assert norm.span == 4.0
        assert norm.count == 3

    def test_empty_state(self):
        norm = OnlineNormalizer()
        assert math.isnan(norm.min) and math.isnan(norm.max)
        assert norm.span == 0.0

    def test_constant_stream_normalizes_to_zeros(self):
        norm = OnlineNormalizer()
        norm.update(np.full(10, 4.2))
        out = norm.normalize(np.full(10, 4.2))
        assert np.array_equal(out, np.zeros(10))

    def test_percentile_tracking(self):
        norm = OnlineNormalizer(percentiles=(50.0,))
        norm.update(np.arange(1000.0))
        assert norm.percentile(50.0) == pytest.approx(500.0, rel=0.05)
        with pytest.raises(KeyError):
            norm.percentile(95.0)

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            OnlineNormalizer(percentiles=(0.0,))

    def test_non_finite_samples_excluded_not_fatal(self):
        """A glitched sample (NaN/inf) must not kill a live stream —
        it is counted but excluded from the level statistics."""
        norm = OnlineNormalizer()
        norm.update(np.array([1.0, float("nan"), 3.0, float("inf")]))
        assert norm.count == 4
        assert norm.min == 1.0
        assert norm.max == 3.0

    def test_all_non_finite_chunk_keeps_state_clean(self):
        norm = OnlineNormalizer()
        norm.update(np.array([float("nan"), float("inf")]))
        assert norm.count == 2
        assert norm.span == 0.0  # no finite extremes absorbed yet

    def test_parity_with_trace_normalized(self):
        """After the full pass arrived, online normalisation is
        bit-identical to SignalTrace.normalized()."""
        rng = np.random.default_rng(3)
        samples = rng.normal(512.0, 40.0, size=777)
        trace = SignalTrace(samples, 1000.0)
        norm = OnlineNormalizer()
        for start in range(0, len(samples), 13):
            norm.update(samples[start:start + 13])
        online = norm.normalize(samples)
        offline = trace.normalized().samples
        assert np.array_equal(online, offline)

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                     allow_nan=False, allow_infinity=False),
                           min_size=1, max_size=200),
           chunk=st.integers(min_value=1, max_value=50))
    def test_parity_property(self, values, chunk):
        samples = np.asarray(values, dtype=float)
        trace = SignalTrace(samples, 100.0)
        norm = OnlineNormalizer()
        for start in range(0, len(samples), chunk):
            norm.update(samples[start:start + chunk])
        assert np.array_equal(norm.normalize(samples),
                              trace.normalized().samples)
