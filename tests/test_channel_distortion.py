"""Tests for repro.channel.distortion (fog/haze models)."""

import math

import numpy as np
import pytest

from repro.channel.distortion import (
    CLEAR,
    DENSE_FOG,
    HAZE,
    LIGHT_FOG,
    Atmosphere,
    visibility_to_extinction,
)


class TestKoschmieder:
    def test_standard_relation(self):
        assert visibility_to_extinction(3912.0) == pytest.approx(1e-3)

    def test_positive_visibility_required(self):
        with pytest.raises(ValueError):
            visibility_to_extinction(0.0)


class TestTransmission:
    def test_clear_air_transparent(self):
        assert CLEAR.transmission(100.0) == pytest.approx(1.0)

    def test_beer_lambert(self):
        atm = Atmosphere(extinction_per_m=0.01)
        assert atm.transmission(100.0) == pytest.approx(math.exp(-1.0))

    def test_vectorised(self):
        atm = Atmosphere(extinction_per_m=0.1)
        paths = np.array([0.0, 1.0, 2.0])
        out = atm.transmission(paths)
        assert np.allclose(out, np.exp(-0.1 * paths))

    def test_negative_path_rejected(self):
        with pytest.raises(ValueError):
            CLEAR.transmission(-1.0)

    def test_denser_fog_attenuates_more(self):
        assert (DENSE_FOG.transmission(10.0) < LIGHT_FOG.transmission(10.0)
                < HAZE.transmission(10.0))


class TestSignalAttenuation:
    def test_bounded(self):
        for atm in (CLEAR, HAZE, LIGHT_FOG, DENSE_FOG):
            a = atm.signal_attenuation(1.0)
            assert 0.0 < a <= 1.0

    def test_positive_height_required(self):
        with pytest.raises(ValueError):
            CLEAR.signal_attenuation(0.0)


class TestVeilingGlare:
    def test_clear_air_adds_nothing(self):
        assert CLEAR.ambient_pedestal(1000.0) == 0.0

    def test_fog_raises_noise_floor(self):
        assert DENSE_FOG.ambient_pedestal(1000.0) > LIGHT_FOG.ambient_pedestal(1000.0) > 0.0

    def test_negative_ambient_rejected(self):
        with pytest.raises(ValueError):
            DENSE_FOG.ambient_pedestal(-1.0)


class TestValidation:
    def test_negative_extinction_rejected(self):
        with pytest.raises(ValueError):
            Atmosphere(extinction_per_m=-0.1)

    def test_glare_fraction_bounds(self):
        with pytest.raises(ValueError):
            Atmosphere(veiling_glare_fraction=1.0)

    def test_from_visibility_builds_consistent(self):
        atm = Atmosphere.from_visibility(500.0)
        assert atm.extinction_per_m == pytest.approx(3.912 / 500.0)
        assert 0.0 < atm.veiling_glare_fraction <= 0.5
