"""Engine-level fault injection: determinism and no-fault parity.

The two halves of the fault plane's contract, property-tested:

* a ``fault_plan`` run is byte-identical across worker counts and
  cache states (faults are part of the spec's content hash), and
* an empty/absent plan leaves every output byte-identical to a run of
  the pre-fault engine (no perturbation of the noise draw, the spec
  hash, or the record layout).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.executor import error_record, execute_scenario
from repro.engine.runner import BatchRunner
from repro.engine.spec import ScenarioSpec
from repro.faults.plan import FaultPlan

#: Cheap outdoor scenario (~5 ms per simulation), as in the runner tests.
FAST = ScenarioSpec(source="sun", detector="led", cap=False,
                    ground="tarmac", bits="00", symbol_width_m=0.1,
                    speed_mps=5.0, receiver_height_m=0.25,
                    start_position_m=-1.5, sample_rate_hz=2000.0)

#: A fault mix touching every injection layer the FAST spec exercises.
plans = st.builds(
    FaultPlan,
    chunk_drop=st.floats(0.0, 0.4),
    chunk_duplicate=st.floats(0.0, 0.3),
    burst_rate_hz=st.floats(0.0, 20.0),
    dropout_rate_hz=st.floats(0.0, 10.0),
    saturate_fraction=st.floats(0.0, 0.5),
    clock_drift_ppm=st.floats(-2000.0, 2000.0),
)

slow_settings = settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


def canon(records):
    return [r.canonical_json() for r in records]


class TestSpecWiring:
    def test_plan_in_content_hash_not_in_derived_seed(self):
        clean = FAST.replace(seed=3)
        faulted = clean.replace(fault_plan=FaultPlan(chunk_drop=0.2))
        assert faulted.content_hash() != clean.content_hash()
        assert faulted.derived_seed() == clean.derived_seed()

    def test_mapping_coerced_on_construction(self):
        spec = FAST.replace(fault_plan={"chunk_drop": 0.2})
        assert isinstance(spec.fault_plan, FaultPlan)
        assert spec.fault_plan.chunk_drop == pytest.approx(0.2)

    def test_bad_plan_type_rejected(self):
        with pytest.raises(ValueError, match="fault_plan"):
            FAST.replace(fault_plan="chunk_drop=0.2")

    def test_empty_plan_normalized_to_none(self):
        spec = FAST.replace(fault_plan=FaultPlan())
        assert spec.fault_plan is None
        assert spec.content_hash() == FAST.content_hash()

    def test_to_dict_omits_absent_plan(self):
        assert "fault_plan" not in FAST.to_dict()
        spec = FAST.replace(fault_plan=FaultPlan(chunk_drop=0.2))
        assert spec.to_dict()["fault_plan"]["chunk_drop"] == 0.2

    def test_round_trip_through_dict(self):
        spec = FAST.replace(seed=5, fault_plan=FaultPlan(chunk_drop=0.2))
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.content_hash() == spec.content_hash()


class TestFaultedDeterminism:
    @slow_settings
    @given(plan=plans, seed=st.integers(0, 50))
    def test_workers_1_vs_4_byte_identical(self, plan, seed):
        specs = [FAST.replace(seed=seed + k, fault_plan=plan)
                 for k in range(4)]
        serial = BatchRunner(workers=1).run(specs)
        with BatchRunner(workers=4) as runner:
            parallel = runner.run(specs)
        assert canon(serial.records) == canon(parallel.records)

    @slow_settings
    @given(plan=plans, seed=st.integers(0, 50))
    def test_cache_cold_vs_warm_byte_identical(self, plan, seed):
        import tempfile

        from repro.engine.cache import ResultCache

        specs = [FAST.replace(seed=seed + k, fault_plan=plan)
                 for k in range(3)]
        with tempfile.TemporaryDirectory() as root:
            cold = BatchRunner(cache=ResultCache(root)).run(specs)
            warm_runner = BatchRunner(cache=ResultCache(root))
            warm = warm_runner.run(specs)
            assert warm_runner.cache.stats.hits == len(specs)
        assert canon(cold.records) == canon(warm.records)

    def test_rerun_byte_identical(self):
        plan = FaultPlan(chunk_drop=0.25, burst_rate_hz=8.0,
                         saturate_fraction=0.3)
        spec = FAST.replace(seed=11, fault_plan=plan)
        assert (execute_scenario(spec).canonical_json()
                == execute_scenario(spec).canonical_json())

    def test_faults_counted_on_record(self):
        plan = FaultPlan(burst_rate_hz=20.0, dropout_rate_hz=10.0)
        record = execute_scenario(FAST.replace(seed=11, fault_plan=plan))
        assert record.faulted
        assert record.fault_events.get("noise_bursts", 0) > 0

    def test_streamed_chunk_faults_counted(self):
        plan = FaultPlan(chunk_drop=0.3)
        record = execute_scenario(
            FAST.replace(seed=11, stream_chunk=64, fault_plan=plan))
        assert record.fault_events.get("chunks_dropped", 0) > 0

    def test_networked_node_faults_counted(self):
        plan = FaultPlan(node_dropout=0.6)
        record = execute_scenario(
            FAST.replace(seed=11, n_receivers=4, fault_plan=plan))
        assert record.fault_events.get("nodes_dropped", 0) > 0
        assert record.networked


class TestEmptyPlanParity:
    """No plan, an empty plan, and the pre-fault engine all agree."""

    @slow_settings
    @given(seed=st.integers(0, 100))
    def test_empty_plan_byte_identical_to_none(self, seed):
        base = FAST.replace(seed=seed)
        empty = base.replace(fault_plan=FaultPlan())
        rec_none = execute_scenario(base)
        rec_empty = execute_scenario(empty)
        assert rec_empty.fault_events == {}
        assert rec_none.canonical_json() == rec_empty.canonical_json()

    def test_absent_plan_record_layout_unchanged(self):
        record = execute_scenario(FAST.replace(seed=3))
        data = record.to_dict()
        assert "fault_events" not in data
        assert "fault_plan" not in data["spec"]

    @slow_settings
    @given(seed=st.integers(0, 100))
    def test_tensor_parity_unchanged(self, seed):
        specs = [FAST.replace(seed=seed + k) for k in range(3)]
        serial = BatchRunner(workers=1).run(specs)
        tensor = BatchRunner(backend="tensor").run(specs)
        assert canon(serial.records) == canon(tensor.records)

    def test_tensor_delegates_faulted_specs_to_serial(self):
        plan = FaultPlan(burst_rate_hz=8.0)
        specs = [FAST.replace(seed=7, fault_plan=plan),
                 FAST.replace(seed=8)]
        tensor = BatchRunner(backend="tensor").run(specs)
        serial = BatchRunner(workers=1).run(specs)
        assert canon(tensor.records) == canon(serial.records)


class TestErrorRecord:
    def test_synthesized_record_shape(self):
        record = error_record(FAST.replace(seed=3), "worker vanished",
                              elapsed_s=1.5)
        assert record.stage == "executor_error"
        assert not record.success
        assert record.ber == 1.0
        assert record.error == "worker vanished"
        assert record.elapsed_s == pytest.approx(1.5)

    def test_spec_hash_matches_normal_execution(self):
        spec = FAST.replace(seed=3)
        assert (error_record(spec, "x").spec_hash
                == execute_scenario(spec).spec_hash)
