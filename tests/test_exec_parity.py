"""Byte-parity referee for the unified stage graph.

``tests/baselines/stage_parity.json`` pins the SHA-256 of
``RunRecord.canonical_json()`` for a spread of scenarios (offline,
streamed, networked, fault-injected) captured before the three
execution paths were refactored onto :mod:`repro.exec`.  Every driver
— serial, tensor, worker pool — and every instrumentation mode must
keep reproducing those exact bytes.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.engine import BatchRunner, ScenarioSpec
from repro.engine.executor import execute_scenario
from repro.exec import profiled

GOLDEN_PATH = Path(__file__).parent / "baselines" / "stage_parity.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())
ENTRIES = GOLDEN["records"]
SPECS = [ScenarioSpec.from_dict(e["spec"]) for e in ENTRIES]

#: One representative per driver family, for the slower matrix tests:
#: plain offline, networked fusion, fault-injected network, streamed.
REPRESENTATIVES = (0, 13, 16, 17)


def record_sha(record) -> str:
    return hashlib.sha256(record.canonical_json().encode()).hexdigest()


def expect(i: int) -> str:
    return ENTRIES[i]["sha256"]


class TestGoldenFile:
    def test_schema_and_spread(self):
        assert GOLDEN["schema"] == "repro.stage_parity/1"
        assert len(ENTRIES) == 22
        # The file must keep exercising all three execution paths.
        assert any(s.n_receivers > 1 for s in SPECS)
        assert any(s.stream_chunk > 0 for s in SPECS)
        assert any(s.fault_plan is not None for s in SPECS)


class TestSerialParity:
    def test_every_record_byte_identical(self):
        for i, spec in enumerate(SPECS):
            record = execute_scenario(spec)
            assert record.stage == ENTRIES[i]["stage"], f"record {i}"
            assert record_sha(record) == expect(i), f"record {i}"

    def test_profiled_run_keeps_bytes(self):
        for i in REPRESENTATIVES:
            with profiled():
                record = execute_scenario(SPECS[i])
            assert record.stage_trace is not None, f"record {i}"
            assert record.stage_trace.timings_s, f"record {i}"
            # The trace rides on the record but never enters the
            # canonical bytes — profiling cannot change identities.
            assert record_sha(record) == expect(i), f"record {i}"

    def test_unprofiled_records_carry_no_trace(self):
        record = execute_scenario(SPECS[0])
        assert record.stage_trace is None


class TestTensorParity:
    def test_batch_matches_golden(self):
        from repro.tensor.batch import execute_batch

        records = execute_batch(SPECS)
        for i, record in enumerate(records):
            assert record_sha(record) == expect(i), f"record {i}"

    def test_profiled_batch_matches_golden(self):
        from repro.tensor.batch import execute_batch

        subset = [SPECS[i] for i in REPRESENTATIVES]
        with profiled():
            records = execute_batch(subset)
        for i, record in zip(REPRESENTATIVES, records):
            assert record_sha(record) == expect(i), f"record {i}"
            assert record.stage_trace is not None, f"record {i}"


class TestRunnerParity:
    @pytest.mark.parametrize("backend", ["disk", "sqlite"])
    def test_serial_runner_with_cache(self, tmp_path, backend):
        subset = [SPECS[i] for i in REPRESENTATIVES]
        with BatchRunner(cache=tmp_path / "cache",
                         cache_backend=backend) as runner:
            cold = runner.run(subset)
            warm = runner.run(subset)
        assert warm.stats.cache_hits == len(subset)
        for i, c, w in zip(REPRESENTATIVES, cold.records, warm.records):
            assert record_sha(c) == expect(i), f"record {i}"
            assert record_sha(w) == expect(i), f"record {i}"

    def test_pool_workers_match_golden(self, tmp_path):
        subset = [SPECS[i] for i in REPRESENTATIVES]
        with BatchRunner(workers=4, cache=tmp_path / "cache",
                         cache_backend="sqlite") as runner:
            result = runner.run(subset)
        for i, record in zip(REPRESENTATIVES, result.records):
            assert record_sha(record) == expect(i), f"record {i}"

    def test_tensor_runner_matches_golden(self):
        subset = [SPECS[i] for i in REPRESENTATIVES]
        with BatchRunner(backend="tensor") as runner:
            result = runner.run(subset)
        for i, record in zip(REPRESENTATIVES, result.records):
            assert record_sha(record) == expect(i), f"record {i}"


class TestOpticalKeyCallSites:
    """Satellite: the one optical-key derivation, pinned at both call
    sites against the legacy spelled-out computation."""

    def legacy_key(self, spec: ScenarioSpec) -> str:
        resolved = spec.resolve()
        if resolved.motion == "speed_jitter":
            return resolved.canonical_json()
        return resolved.replace(seed=0).canonical_json()

    def test_spec_method_matches_legacy(self):
        for spec in SPECS:
            assert spec.optical_key() == self.legacy_key(spec)

    def test_tensor_module_function_delegates(self):
        from repro.tensor.batch import optical_key

        for i in (0, 13, 17):
            assert optical_key(SPECS[i]) == SPECS[i].optical_key()

    def test_precomputed_identity_matches(self):
        spec = SPECS[0]
        assert spec.optical_key(spec.identity()) == spec.optical_key()

    def test_speed_jitter_keeps_seed(self):
        base = ScenarioSpec(motion="speed_jitter", motion_param=0.2)
        a = base.replace(seed=1)
        b = base.replace(seed=2)
        # Jitter consumes the seed inside the scene: no cross-seed
        # grouping, key equals the legacy full canonical form.
        assert a.optical_key() != b.optical_key()
        assert a.optical_key() == self.legacy_key(a)

    def test_constant_motion_groups_across_seeds(self):
        a = ScenarioSpec(seed=1)
        b = ScenarioSpec(seed=2)
        assert a.optical_key() == b.optical_key()
        assert '"seed":0' in a.optical_key()
