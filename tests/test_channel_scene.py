"""Tests for repro.channel.scene."""

import numpy as np
import pytest

from repro.channel.distortion import DENSE_FOG
from repro.channel.mobility import ConstantSpeed
from repro.channel.scene import MovingObject, PassiveScene
from repro.optics.sources import FluorescentCeiling, LedLamp, Sun
from repro.tags.packet import Packet
from repro.tags.surface import TagSurface

from .conftest import build_indoor_scene


def _tag(bits="00", width=0.03):
    return TagSurface.from_packet(
        Packet.from_bitstring(bits, symbol_width_m=width))


class TestMovingObject:
    def test_local_coordinates(self):
        obj = MovingObject(_tag(), ConstantSpeed(1.0, -1.0), "t")
        # At t = 1 the leading edge is at x = 0; ground point x = -0.1 is
        # 0.1 m behind the leading edge.
        u = obj.local_coordinates(np.array([-0.1]), np.array([1.0]))
        assert float(u[0]) == pytest.approx(0.1)

    def test_fov_share_bounds(self):
        with pytest.raises(ValueError):
            MovingObject(_tag(), ConstantSpeed(1.0), "t", fov_share=0.0)
        with pytest.raises(ValueError):
            MovingObject(_tag(), ConstantSpeed(1.0), "t", fov_share=1.1)

    def test_entry_exit_ordering(self):
        obj = MovingObject(_tag(), ConstantSpeed(0.1, -0.5), "t")
        t_in, t_out = obj.entry_exit_times(0.05)
        assert 0.0 < t_in < t_out


class TestPassiveScene:
    def test_positive_height(self):
        with pytest.raises(ValueError):
            PassiveScene(source=Sun(), receiver_height_m=0.0)

    def test_share_budget_enforced(self):
        with pytest.raises(ValueError, match="share"):
            PassiveScene(
                source=Sun(), receiver_height_m=0.5,
                objects=[
                    MovingObject(_tag(), ConstantSpeed(1.0), "a",
                                 fov_share=0.7),
                    MovingObject(_tag(), ConstantSpeed(1.0), "b",
                                 fov_share=0.7),
                ])

    def test_geometry_from_source(self):
        sun_scene = PassiveScene(source=Sun(elevation_deg=45.0,
                                            sky_diffuse_fraction=0.6),
                                 receiver_height_m=0.5)
        geom = sun_scene.illumination_geometry()
        assert geom.diffuse_fraction == pytest.approx(0.6)
        assert geom.incident_direction.z < 0.0

    def test_lamp_geometry_points_from_lamp(self):
        scene = build_indoor_scene()
        geom = scene.illumination_geometry()
        # Lamp at +x relative to the receiver's nadir: rays travel -x.
        assert geom.incident_direction.x < 0.0

    def test_noise_floor_level(self):
        scene = PassiveScene(source=Sun(ground_lux=3700.0),
                             receiver_height_m=1.0)
        assert scene.nominal_noise_floor_lux() == pytest.approx(3700.0)

    def test_fog_raises_noise_floor(self):
        clear = PassiveScene(source=Sun(ground_lux=1000.0),
                             receiver_height_m=1.0)
        foggy = PassiveScene(source=Sun(ground_lux=1000.0),
                             receiver_height_m=1.0, atmosphere=DENSE_FOG)
        assert (foggy.nominal_noise_floor_lux()
                > clear.nominal_noise_floor_lux())

    def test_flicker_propagates_to_noise_floor(self):
        scene = PassiveScene(source=FluorescentCeiling(ground_lux=300.0),
                             receiver_height_m=0.2)
        t = np.linspace(0.0, 0.02, 500)
        floor = scene.noise_floor_lux(t)
        assert floor.max() - floor.min() > 10.0

    def test_with_receiver_height(self):
        scene = build_indoor_scene()
        taller = scene.with_receiver_height(0.5)
        assert taller.receiver_height_m == 0.5
        assert taller.source is scene.source
        assert taller.objects is scene.objects
