"""Tests for repro.analysis.reporting."""

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.reporting import (
    format_series,
    format_table,
    summarize_results,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "blob"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        # Header, separator, rows all align on the same columns.
        assert lines[0].index("blob") == lines[2].index("2")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_bars_scale(self):
        text = format_series([1.0, 2.0], [1.0, 2.0], "x", "y", width=10)
        lines = text.splitlines()
        assert lines[2].count("#") > lines[1].count("#")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1.0], [1.0, 2.0], "x", "y")

    def test_empty(self):
        assert "empty" in format_series([], [], "x", "y")

    def test_negative_values_do_not_render_positive_bars(self):
        """Regression: a negative value used to get a one-char '#' bar
        indistinguishable from a small positive one."""
        text = format_series([1.0, 2.0], [-1.0, 2.0], "x", "y", width=10)
        lines = text.splitlines()
        assert "#" not in lines[1]
        assert "-1" in lines[1]
        assert lines[1].count("-") > 1          # an explicit minus bar
        assert "#" in lines[2]

    def test_negative_bars_scale_with_magnitude(self):
        text = format_series([1.0, 2.0, 3.0], [-4.0, -1.0, 0.0],
                             "x", "y", width=12)
        lines = text.splitlines()
        assert lines[1].count("-") > lines[2].count("-")
        assert "#" not in lines[3] and "| " in lines[3]

    def test_all_negative_series(self):
        text = format_series([1.0], [-2.0], "x", "y", width=8)
        assert "#" not in text.splitlines()[1]


class TestSummarize:
    def test_pass_fail_rendering(self):
        results = [
            ExperimentResult("fig1", "t1", "claim", {}, True),
            ExperimentResult("fig2", "t2", "claim", {}, False),
        ]
        text = summarize_results(results)
        assert "PASS" in text
        assert "FAIL" in text
        assert "fig1" in text and "fig2" in text


class TestExperimentReport:
    def test_report_contains_everything(self):
        result = ExperimentResult(
            experiment_id="figX", title="Title", paper_claim="Claim",
            measured={"key": 1.23}, passed=True, notes="note text")
        report = result.report()
        assert "figX" in report
        assert "Claim" in report
        assert "key: 1.23" in report
        assert "PASS" in report
        assert "note text" in report
