"""Tests for repro.exec.graph — the shared instrumented stage graph."""

import json

import pytest

from repro.exec import (
    PIPELINE_STAGES,
    PROFILE_ENV,
    ExecStage,
    FuncStage,
    StageGraph,
    StageTrace,
    collect_traces,
    maybe_stage,
    new_trace,
    profiled,
    profiling_enabled,
    set_profiling,
)


@pytest.fixture(autouse=True)
def _no_forced_profiling(monkeypatch):
    """Each test starts with profiling following the (cleared) env."""
    monkeypatch.delenv(PROFILE_ENV, raising=False)
    set_profiling(None)
    yield
    set_profiling(None)


class TestExecStage:
    def test_pipeline_order(self):
        assert PIPELINE_STAGES == (
            "build", "simulate", "inject_faults", "normalize",
            "acquire", "refine_clock", "decide", "fuse")

    def test_stages_are_plain_strings(self):
        assert ExecStage.BUILD == "build"
        assert str(ExecStage.FUSE) == "fuse"
        assert f"{ExecStage.DECIDE}" == "decide"
        # Serialization must emit the bare value, not the member name.
        assert json.dumps(ExecStage.ACQUIRE) == '"acquire"'


class TestProfilingSwitch:
    def test_off_by_default(self):
        assert not profiling_enabled()
        assert new_trace() is None

    def test_env_values(self, monkeypatch):
        for raw, expect in [("1", True), ("true", True), ("on", True),
                            ("0", False), ("false", False), ("", False),
                            ("off", False), ("no", False)]:
            monkeypatch.setenv(PROFILE_ENV, raw)
            assert profiling_enabled() is expect

    def test_forced_overrides_env(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        set_profiling(False)
        assert not profiling_enabled()

    def test_profiled_restores(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "0")
        with profiled():
            assert profiling_enabled()
            assert new_trace() is not None
            # Workers forked in-scope must inherit the switch.
            import os
            assert os.environ[PROFILE_ENV] == "1"
        assert not profiling_enabled()
        import os
        assert os.environ[PROFILE_ENV] == "0"


class TestStageTrace:
    def test_accumulates(self):
        trace = StageTrace()
        trace.add(ExecStage.BUILD, 0.5)
        trace.add("build", 0.25)
        trace.count("chunks", 3)
        trace.count("chunks")
        assert trace.timings_s == {"build": 0.75}
        assert trace.counters == {"chunks": 4}
        assert trace.total_s == 0.75

    def test_stage_context_times(self):
        trace = StageTrace()
        with trace.stage("decide"):
            pass
        assert trace.timings_s["decide"] >= 0.0

    def test_merge_and_scaled(self):
        a = StageTrace(timings_s={"build": 1.0}, counters={"rows": 2})
        b = StageTrace(timings_s={"build": 0.5, "decide": 2.0},
                       counters={"rows": 1})
        a.merge(b)
        assert a.timings_s == {"build": 1.5, "decide": 2.0}
        assert a.counters == {"rows": 3}
        half = a.scaled(0.5)
        assert half.timings_s == {"build": 0.75, "decide": 1.0}
        # Counters describe the group and are never scaled.
        assert half.counters == {"rows": 3}
        # scaled() is a copy: the original is untouched.
        assert a.timings_s["build"] == 1.5

    def test_merge_empty_traces(self):
        # Empty into empty, empty into populated, populated into
        # empty: no spurious keys, no lost data.
        empty = StageTrace()
        empty.merge(StageTrace())
        assert empty.timings_s == {} and empty.counters == {}
        full = StageTrace(timings_s={"build": 1.0}, counters={"rows": 2})
        full.merge(StageTrace())
        assert full.timings_s == {"build": 1.0}
        assert full.counters == {"rows": 2}
        sink = StageTrace()
        sink.merge(full)
        assert sink.timings_s == {"build": 1.0}
        assert sink.counters == {"rows": 2}
        # merge copies: mutating the source must not alias the sink.
        full.add("build", 9.0)
        assert sink.timings_s == {"build": 1.0}

    def test_scaled_zero_factor(self):
        trace = StageTrace(timings_s={"build": 1.0, "decide": 2.0},
                           counters={"rows": 4})
        zero = trace.scaled(0.0)
        assert zero.timings_s == {"build": 0.0, "decide": 0.0}
        # Counters describe the whole group even at zero scale.
        assert zero.counters == {"rows": 4}
        assert zero.total_s == 0.0

    def test_scaled_empty_trace(self):
        scaled = StageTrace().scaled(0.5)
        assert scaled.timings_s == {} and scaled.counters == {}
        assert scaled.total_s == 0.0

    def test_merge_disjoint_stages(self):
        a = StageTrace(timings_s={"build": 1.0}, counters={"rows": 1})
        b = StageTrace(timings_s={"decide": 2.0}, counters={"chunks": 5})
        a.merge(b)
        assert a.timings_s == {"build": 1.0, "decide": 2.0}
        assert a.counters == {"rows": 1, "chunks": 5}

    def test_to_dict_pipeline_ordered(self):
        trace = StageTrace()
        trace.add("decide", 1.0)
        trace.add("build", 1.0)
        trace.add("acquire", 1.0)
        payload = trace.to_dict()
        assert list(payload["timings_s"]) == ["build", "acquire", "decide"]
        assert "counters" not in payload
        trace.count("n")
        roundtrip = StageTrace.from_dict(trace.to_dict())
        assert roundtrip.timings_s == trace.timings_s
        assert roundtrip.counters == trace.counters

    def test_maybe_stage_null_when_off(self):
        ctx = maybe_stage(None, "build")
        with ctx:
            pass
        # The shared no-op context is reused, not rebuilt per call.
        assert maybe_stage(None, "decide") is ctx


class TestCollectTraces:
    def test_collects_only_in_scope(self):
        with profiled():
            before = new_trace()
            with collect_traces() as traces:
                inside = new_trace()
            after = new_trace()
        # Identity, not equality: empty StageTraces all compare equal.
        assert len(traces) == 1 and traces[0] is inside
        assert before is not traces[0] and after is not traces[0]

    def test_nested_scopes_are_independent(self):
        with profiled():
            with collect_traces() as outer:
                with collect_traces() as inner:
                    t = new_trace()
                assert len(inner) == 1 and inner[0] is t
            assert outer == []


class TestStageGraph:
    def test_runs_in_order(self):
        order = []
        graph = StageGraph([
            FuncStage(ExecStage.BUILD, lambda ctx: order.append("b")),
            FuncStage(ExecStage.DECIDE, lambda ctx: order.append("d")),
        ])
        graph.run(object())
        assert order == ["b", "d"]

    def test_rejects_unknown_stage(self):
        with pytest.raises(ValueError, match="unknown stage"):
            FuncStage("banana", lambda ctx: None)

    def test_rejects_out_of_order(self):
        with pytest.raises(ValueError, match="out of pipeline order"):
            StageGraph([
                FuncStage(ExecStage.DECIDE, lambda ctx: None),
                FuncStage(ExecStage.BUILD, lambda ctx: None),
            ])

    def test_duplicate_stage_allowed_for_gated_variants(self):
        ran = []
        graph = StageGraph([
            FuncStage(ExecStage.DECIDE, lambda ctx: ran.append("a"),
                      when=lambda ctx: False),
            FuncStage(ExecStage.DECIDE, lambda ctx: ran.append("b"),
                      when=lambda ctx: True),
        ])
        graph.run(object())
        assert ran == ["b"]

    def test_stage_subset(self):
        ran = []
        graph = StageGraph([
            FuncStage(ExecStage.BUILD, lambda ctx: ran.append("b")),
            FuncStage(ExecStage.SIMULATE, lambda ctx: ran.append("s")),
            FuncStage(ExecStage.DECIDE, lambda ctx: ran.append("d")),
        ])
        graph.run(object(), stages=(ExecStage.BUILD, ExecStage.SIMULATE))
        assert ran == ["b", "s"]
        graph.run(object(), stages=("decide",))
        assert ran == ["b", "s", "d"]

    def test_done_short_circuits(self):
        class Ctx:
            done = False

        ran = []

        def first(ctx):
            ran.append("first")
            ctx.done = True

        graph = StageGraph([
            FuncStage(ExecStage.BUILD, first),
            FuncStage(ExecStage.DECIDE, lambda ctx: ran.append("second")),
        ])
        graph.run(Ctx())
        assert ran == ["first"]

    def test_timed_stages_land_in_trace(self):
        trace = StageTrace()
        graph = StageGraph([
            FuncStage(ExecStage.BUILD, lambda ctx: None),
            FuncStage(ExecStage.DECIDE, lambda ctx: None, timed=False),
        ])
        graph.run(object(), trace)
        assert "build" in trace.timings_s
        # timed=False stages attribute their own interior.
        assert "decide" not in trace.timings_s

    def test_len_and_iter(self):
        graph = StageGraph([FuncStage(ExecStage.BUILD, lambda ctx: None)])
        assert len(graph) == 1
        assert [str(s.name) for s in graph] == ["build"]
