"""Tests for repro.analysis.waterfall (decode-rate stress curves)."""

import pytest

from repro.analysis.waterfall import (
    WaterfallCurve,
    WaterfallPoint,
    dirt_waterfall,
    fog_waterfall,
    noise_floor_waterfall,
)
from repro.hardware.frontend import ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver


def led_factory(seed):
    return ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=seed)


SEEDS = (2, 3, 4)


class TestCurveStructure:
    def _curve(self):
        return WaterfallCurve(parameter="x", points=[
            WaterfallPoint(1.0, 1.0),
            WaterfallPoint(2.0, 0.7),
            WaterfallPoint(3.0, 0.2),
        ])

    def test_crossover(self):
        assert self._curve().crossover(0.5) == 3.0
        assert self._curve().crossover(0.9) == 2.0

    def test_no_crossover(self):
        assert self._curve().crossover(0.1) is None

    def test_crossover_validation(self):
        with pytest.raises(ValueError):
            self._curve().crossover(0.0)

    def test_render(self):
        text = self._curve().render()
        assert "decode rate" in text
        assert text.count("|") == 3


class TestNoiseFloorWaterfall:
    def test_fig15_generalised(self):
        """The decode rate must fall as the ambient light dims, with the
        Fig. 15 operating points on the right sides of the cliff."""
        curve = noise_floor_waterfall(
            led_factory, lux_levels=[450.0, 100.0], height_m=0.25,
            seeds=SEEDS)
        rates = {p.stress: p.decode_rate for p in curve.points}
        assert rates[450.0] > rates[100.0]
        assert rates[100.0] <= 0.34


class TestDirtWaterfall:
    def test_dirt_degrades_monotonically_at_ends(self):
        curve = dirt_waterfall(led_factory, dirt_levels=[0.0, 0.95],
                               seeds=SEEDS)
        assert curve.points[0].decode_rate >= curve.points[-1].decode_rate

    def test_clean_tag_decodes(self):
        curve = dirt_waterfall(led_factory, dirt_levels=[0.0], seeds=SEEDS)
        assert curve.points[0].decode_rate >= 0.67

    def test_dirt_bounds_validated(self):
        with pytest.raises(ValueError):
            dirt_waterfall(led_factory, dirt_levels=[1.5], seeds=SEEDS)


class TestFogWaterfall:
    def test_clear_beats_dense_fog(self):
        curve = fog_waterfall(led_factory,
                              visibilities_m=[10_000.0, 3.0],
                              seeds=SEEDS)
        assert curve.points[0].decode_rate >= curve.points[-1].decode_rate
        assert curve.points[0].decode_rate >= 0.67
