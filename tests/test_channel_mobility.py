"""Tests for repro.channel.mobility."""

import numpy as np
import pytest

from repro.channel.mobility import (
    KMH_TO_MPS,
    ConstantSpeed,
    LinearRamp,
    PiecewiseConstantSpeed,
    SpeedJitter,
    speed_doubling_profile,
    time_to_reach,
)


class TestConstantSpeed:
    def test_position(self):
        m = ConstantSpeed(2.0, start_position_m=-1.0)
        assert float(m.position(0.5)) == pytest.approx(0.0)

    def test_speed(self):
        m = ConstantSpeed(0.08)
        assert np.allclose(m.speed(np.linspace(0, 10, 5)), 0.08)

    def test_positive_speed_required(self):
        with pytest.raises(ValueError):
            ConstantSpeed(0.0)

    def test_paper_car_speed(self):
        assert 18.0 * KMH_TO_MPS == pytest.approx(5.0)


class TestPiecewise:
    def test_speed_changes_at_breakpoint(self):
        m = PiecewiseConstantSpeed(breakpoints_m=[1.0],
                                   speeds_mps=[1.0, 2.0],
                                   start_position_m=0.0)
        # Breakpoint reached at t = 1; after that speed is 2.
        assert float(m.position(1.0)) == pytest.approx(1.0)
        assert float(m.position(1.5)) == pytest.approx(2.0)
        assert float(m.speed(0.5)) == pytest.approx(1.0)
        assert float(m.speed(1.5)) == pytest.approx(2.0)

    def test_position_continuous(self):
        m = PiecewiseConstantSpeed(breakpoints_m=[0.5, 1.5],
                                   speeds_mps=[1.0, 3.0, 0.5],
                                   start_position_m=-0.5)
        t = np.linspace(0.0, 5.0, 2001)
        x = m.position(t)
        assert np.all(np.diff(x) > 0.0)
        assert float(np.abs(np.diff(x)).max()) < 0.02  # no jumps

    def test_counts_validated(self):
        with pytest.raises(ValueError):
            PiecewiseConstantSpeed(breakpoints_m=[1.0], speeds_mps=[1.0])

    def test_breakpoints_sorted(self):
        with pytest.raises(ValueError):
            PiecewiseConstantSpeed(breakpoints_m=[2.0, 1.0],
                                   speeds_mps=[1.0, 1.0, 1.0])

    def test_breakpoints_ahead_of_start(self):
        with pytest.raises(ValueError):
            PiecewiseConstantSpeed(breakpoints_m=[0.0],
                                   speeds_mps=[1.0, 2.0],
                                   start_position_m=0.5)


class TestSpeedDoubling:
    def test_fig8_profile(self):
        """Speed doubles when the packet midpoint crosses the receiver."""
        m = speed_doubling_profile(packet_length_m=0.24,
                                   initial_speed_mps=0.08,
                                   start_position_m=-0.3)
        # Change point: leading edge at half a packet past the receiver.
        change_at = 0.12
        t_change = (change_at - (-0.3)) / 0.08
        assert float(m.speed(t_change - 0.1)) == pytest.approx(0.08)
        assert float(m.speed(t_change + 0.1)) == pytest.approx(0.16)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            speed_doubling_profile(0.0, 0.08, -0.3)


class TestLinearRamp:
    def test_constant_acceleration(self):
        m = LinearRamp(initial_speed_mps=1.0, acceleration_mps2=2.0)
        assert float(m.position(1.0)) == pytest.approx(2.0)
        assert float(m.speed(1.0)) == pytest.approx(3.0)

    def test_deceleration_stalls_without_reversing(self):
        m = LinearRamp(initial_speed_mps=1.0, acceleration_mps2=-0.5)
        x_stall = float(m.position(2.0))  # v hits 0 at t = 2
        assert float(m.position(10.0)) == pytest.approx(x_stall)
        assert float(m.speed(10.0)) == 0.0

    def test_positive_initial_speed(self):
        with pytest.raises(ValueError):
            LinearRamp(initial_speed_mps=0.0)


class TestSpeedJitter:
    def test_monotone_for_small_deviation(self):
        m = SpeedJitter(base=ConstantSpeed(1.0), relative_deviation=0.2,
                        wavelength_s=1.0, seed=4)
        t = np.linspace(0.0, 5.0, 2001)
        x = m.position(t)
        assert np.all(np.diff(x) > 0.0)

    def test_deterministic_per_seed(self):
        a = SpeedJitter(base=ConstantSpeed(1.0), seed=7)
        b = SpeedJitter(base=ConstantSpeed(1.0), seed=7)
        t = np.linspace(0.0, 3.0, 100)
        assert np.allclose(a.position(t), b.position(t))

    def test_deviation_bounds(self):
        with pytest.raises(ValueError):
            SpeedJitter(base=ConstantSpeed(1.0), relative_deviation=0.95)


class TestTimeToReach:
    def test_constant_speed(self):
        m = ConstantSpeed(2.0, start_position_m=0.0)
        assert time_to_reach(m, 4.0) == pytest.approx(2.0, abs=1e-6)

    def test_already_there(self):
        m = ConstantSpeed(1.0, start_position_m=5.0)
        assert time_to_reach(m, 4.0) == 0.0

    def test_unreachable(self):
        m = ConstantSpeed(0.001)
        with pytest.raises(ValueError):
            time_to_reach(m, 100.0, t_max_s=10.0)

    def test_piecewise(self):
        m = PiecewiseConstantSpeed(breakpoints_m=[1.0],
                                   speeds_mps=[1.0, 2.0])
        assert time_to_reach(m, 3.0) == pytest.approx(2.0, abs=1e-6)
