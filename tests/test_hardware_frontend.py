"""Tests for repro.hardware.frontend (cap + full receive chain)."""

import math

import numpy as np
import pytest

from repro.hardware.frontend import FovCap, ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver
from repro.hardware.photodiode import PdGain, Photodiode


class TestFovCap:
    def test_paper_cap_dimensions(self):
        cap = FovCap.paper_cap()
        assert cap.opening_m == pytest.approx(0.012)
        assert cap.depth_m == pytest.approx(0.028)

    def test_cap_angle_geometry(self):
        cap = FovCap.paper_cap()
        expected = 2.0 * math.degrees(math.atan2(0.006, 0.028))
        assert cap.full_angle_deg == pytest.approx(expected)

    def test_capped_fov_takes_minimum(self):
        cap = FovCap.paper_cap()
        pd = Photodiode.opt101()
        capped = cap.capped_fov(pd.fov)
        assert capped.full_angle_deg == pytest.approx(cap.full_angle_deg)
        narrow = LedReceiver.red_5mm()
        assert cap.capped_fov(narrow.fov).full_angle_deg == pytest.approx(
            narrow.fov.full_angle_deg)

    def test_validation(self):
        with pytest.raises(ValueError):
            FovCap(opening_m=0.0)
        with pytest.raises(ValueError):
            FovCap(transmission=0.0)
        with pytest.raises(ValueError):
            FovCap(ambient_rejection=1.5)


class TestFrontEndGeometry:
    def test_effective_fov_without_cap(self):
        fe = ReceiverFrontEnd(detector=Photodiode.opt101())
        assert fe.effective_fov.full_angle_deg == pytest.approx(
            Photodiode.opt101().fov.full_angle_deg)

    def test_with_cap_narrows(self):
        fe = ReceiverFrontEnd(detector=Photodiode.opt101()).with_cap()
        assert fe.effective_fov.full_angle_deg < 30.0
        assert fe.signal_transmission < 1.0
        assert fe.ambient_transmission < 1.0

    def test_saturates_at_uses_ambient_path(self):
        fe = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G2))
        assert fe.saturates_at(1200.0)
        assert not fe.saturates_at(1000.0)
        capped = fe.with_cap()
        # The cap attenuates ambient light, extending the usable range.
        assert not capped.saturates_at(1200.0)


class TestCapture:
    def test_deterministic_with_seed(self):
        fe = ReceiverFrontEnd(detector=Photodiode.opt101(), seed=5)
        lux = np.full(400, 200.0)
        a = fe.capture(lux, sample_rate_hz=1000.0)
        b = fe.capture(lux, sample_rate_hz=1000.0)
        assert np.array_equal(a, b)

    def test_output_range(self):
        fe = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                              seed=1)
        lux = np.linspace(0.0, 2000.0, 1000)
        codes = fe.capture(lux, sample_rate_hz=1000.0)
        assert codes.min() >= 0
        assert codes.max() <= 1023

    def test_saturation_rails_output(self):
        fe = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                              seed=1)
        lux = np.full(600, 6200.0)
        codes = fe.capture(lux, sample_rate_hz=1000.0)
        assert float((codes >= 1015).mean()) > 0.9

    def test_linear_region_level(self):
        fe = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G2),
                              seed=1)
        lux = np.full(2000, 600.0)
        codes = fe.capture(lux, sample_rate_hz=1000.0)
        expected = 600.0 / 1200.0 * 1023
        assert float(np.median(codes[500:])) == pytest.approx(expected, rel=0.02)

    def test_rejects_2d_input(self):
        fe = ReceiverFrontEnd(detector=Photodiode.opt101())
        with pytest.raises(ValueError):
            fe.capture(np.zeros((10, 10)), sample_rate_hz=100.0)

    def test_rejects_negative_lux(self):
        fe = ReceiverFrontEnd(detector=Photodiode.opt101())
        with pytest.raises(ValueError):
            fe.capture(np.array([-1.0]), sample_rate_hz=100.0)

    def test_describe_mentions_detector(self):
        fe = ReceiverFrontEnd(detector=LedReceiver.red_5mm())
        assert "RX-LED" in fe.describe()
