"""Tests for repro.channel.trace."""

import numpy as np
import pytest

from repro.channel.trace import SignalTrace


def make_trace(samples=None, fs=100.0, t0=0.0):
    if samples is None:
        samples = np.arange(10, dtype=float)
    return SignalTrace(np.asarray(samples, dtype=float), fs, t0)


class TestBasics:
    def test_duration(self):
        assert make_trace(np.zeros(200), fs=100.0).duration_s == pytest.approx(2.0)

    def test_times(self):
        tr = make_trace(np.zeros(3), fs=10.0, t0=1.0)
        assert np.allclose(tr.times(), [1.0, 1.1, 1.2])

    def test_len(self):
        assert len(make_trace(np.zeros(7))) == 7

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            SignalTrace(np.zeros((3, 3)), 10.0)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            SignalTrace(np.zeros(5), 0.0)


class TestNormalization:
    def test_unit_interval(self):
        tr = make_trace([2.0, 6.0, 4.0]).normalized()
        assert tr.samples.min() == 0.0
        assert tr.samples.max() == 1.0

    def test_constant_maps_to_zero(self):
        tr = make_trace([5.0, 5.0, 5.0]).normalized()
        assert np.all(tr.samples == 0.0)

    def test_metadata_flag(self):
        assert make_trace().normalized().meta.get("normalized") is True

    def test_original_untouched(self):
        tr = make_trace([2.0, 6.0])
        tr.normalized()
        assert tr.samples.max() == 6.0


class TestSlicing:
    def test_slice_time(self):
        tr = make_trace(np.arange(100), fs=10.0)
        sub = tr.slice_time(2.0, 4.0)
        assert sub.start_time_s == pytest.approx(2.0)
        assert sub.samples[0] == 20.0

    def test_empty_window_rejected(self):
        tr = make_trace(np.arange(100), fs=10.0)
        with pytest.raises(ValueError):
            tr.slice_time(50.0, 60.0)
        with pytest.raises(ValueError):
            tr.slice_time(3.0, 3.0)

    def test_slice_is_copy(self):
        tr = make_trace(np.arange(100), fs=10.0)
        sub = tr.slice_time(0.0, 1.0)
        sub.samples[0] = 999.0
        assert tr.samples[0] == 0.0


class TestResample:
    def test_length_scales(self):
        tr = make_trace(np.sin(np.linspace(0, 6, 300)), fs=100.0)
        up = tr.resampled(200.0)
        assert len(up) == pytest.approx(600, abs=2)

    def test_preserves_shape(self):
        t = np.linspace(0.0, 1.0, 101)
        tr = SignalTrace(np.sin(2 * np.pi * 2 * t), 100.0)
        down = tr.resampled(50.0)
        t2 = down.times()
        assert np.allclose(down.samples, np.sin(2 * np.pi * 2 * t2),
                           atol=0.01)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            make_trace().resampled(0.0)


class TestStats:
    def test_swing(self):
        assert make_trace([1.0, 5.0, 3.0]).swing() == pytest.approx(4.0)

    def test_mean(self):
        assert make_trace([1.0, 3.0]).mean() == pytest.approx(2.0)

    def test_describe_contains_rate(self):
        assert "100" in make_trace().describe()


class TestConcat:
    def test_contiguous_chunks_concatenate(self):
        a = make_trace(np.arange(10.0), fs=100.0, t0=0.0)
        b = make_trace(np.arange(10.0, 15.0), fs=100.0, t0=0.10)
        joined = a.concat(b)
        assert np.array_equal(joined.samples, np.arange(15.0))
        assert joined.start_time_s == 0.0
        assert len(joined) == 15

    def test_end_time(self):
        tr = make_trace(np.zeros(10), fs=100.0, t0=1.0)
        assert tr.end_time_s == pytest.approx(1.1)

    def test_rate_mismatch_rejected(self):
        a = make_trace(np.zeros(10), fs=100.0)
        b = make_trace(np.zeros(10), fs=200.0, t0=0.1)
        with pytest.raises(ValueError, match="sample rates"):
            a.concat(b)

    def test_gap_rejected(self):
        a = make_trace(np.zeros(10), fs=100.0)
        late = make_trace(np.zeros(10), fs=100.0, t0=0.5)
        with pytest.raises(ValueError, match="not contiguous"):
            a.concat(late)

    def test_overlap_rejected(self):
        a = make_trace(np.zeros(10), fs=100.0)
        early = make_trace(np.zeros(10), fs=100.0, t0=0.05)
        with pytest.raises(ValueError, match="not contiguous"):
            a.concat(early)

    def test_sub_sample_jitter_tolerated(self):
        a = make_trace(np.zeros(10), fs=100.0)
        b = make_trace(np.ones(5), fs=100.0, t0=0.1 + 0.002)
        joined = a.concat(b)
        assert len(joined) == 15

    def test_meta_merges_later_wins(self):
        a = SignalTrace(np.zeros(5), 100.0, 0.0, {"k": 1, "only_a": True})
        b = SignalTrace(np.zeros(5), 100.0, 0.05, {"k": 2})
        joined = a.concat(b)
        assert joined.meta == {"k": 2, "only_a": True}

    def test_bad_tolerance(self):
        a = make_trace(np.zeros(5))
        b = make_trace(np.zeros(5), t0=0.05)
        with pytest.raises(ValueError):
            a.concat(b, time_tolerance_fraction=1.0)

    def test_chunked_reassembly_matches_original(self):
        rng = np.random.default_rng(5)
        samples = rng.normal(size=100)
        whole = make_trace(samples, fs=250.0, t0=2.0)
        pieces = [SignalTrace(samples[i:i + 17], 250.0,
                              2.0 + i / 250.0)
                  for i in range(0, 100, 17)]
        rebuilt = pieces[0]
        for piece in pieces[1:]:
            rebuilt = rebuilt.concat(piece)
        assert np.array_equal(rebuilt.samples, whole.samples)
        assert rebuilt.start_time_s == whole.start_time_s


class TestFromChunks:
    def test_assembles_stream(self):
        trace = SignalTrace.from_chunks(
            [np.arange(3.0), np.arange(3.0, 7.0), np.empty(0)],
            sample_rate_hz=50.0, start_time_s=1.0, meta={"src": "t"})
        assert np.array_equal(trace.samples, np.arange(7.0))
        assert trace.sample_rate_hz == 50.0
        assert trace.start_time_s == 1.0
        assert trace.meta == {"src": "t"}

    def test_no_chunks_is_empty_trace(self):
        trace = SignalTrace.from_chunks([], sample_rate_hz=10.0)
        assert len(trace) == 0

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            SignalTrace.from_chunks([np.zeros(3)], sample_rate_hz=0.0)

    def test_non_1d_chunk_rejected(self):
        with pytest.raises(ValueError, match="chunk 1"):
            SignalTrace.from_chunks([np.zeros(3), np.zeros((2, 2))],
                                    sample_rate_hz=10.0)
