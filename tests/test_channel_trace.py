"""Tests for repro.channel.trace."""

import numpy as np
import pytest

from repro.channel.trace import SignalTrace


def make_trace(samples=None, fs=100.0, t0=0.0):
    if samples is None:
        samples = np.arange(10, dtype=float)
    return SignalTrace(np.asarray(samples, dtype=float), fs, t0)


class TestBasics:
    def test_duration(self):
        assert make_trace(np.zeros(200), fs=100.0).duration_s == pytest.approx(2.0)

    def test_times(self):
        tr = make_trace(np.zeros(3), fs=10.0, t0=1.0)
        assert np.allclose(tr.times(), [1.0, 1.1, 1.2])

    def test_len(self):
        assert len(make_trace(np.zeros(7))) == 7

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            SignalTrace(np.zeros((3, 3)), 10.0)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            SignalTrace(np.zeros(5), 0.0)


class TestNormalization:
    def test_unit_interval(self):
        tr = make_trace([2.0, 6.0, 4.0]).normalized()
        assert tr.samples.min() == 0.0
        assert tr.samples.max() == 1.0

    def test_constant_maps_to_zero(self):
        tr = make_trace([5.0, 5.0, 5.0]).normalized()
        assert np.all(tr.samples == 0.0)

    def test_metadata_flag(self):
        assert make_trace().normalized().meta.get("normalized") is True

    def test_original_untouched(self):
        tr = make_trace([2.0, 6.0])
        tr.normalized()
        assert tr.samples.max() == 6.0


class TestSlicing:
    def test_slice_time(self):
        tr = make_trace(np.arange(100), fs=10.0)
        sub = tr.slice_time(2.0, 4.0)
        assert sub.start_time_s == pytest.approx(2.0)
        assert sub.samples[0] == 20.0

    def test_empty_window_rejected(self):
        tr = make_trace(np.arange(100), fs=10.0)
        with pytest.raises(ValueError):
            tr.slice_time(50.0, 60.0)
        with pytest.raises(ValueError):
            tr.slice_time(3.0, 3.0)

    def test_slice_is_copy(self):
        tr = make_trace(np.arange(100), fs=10.0)
        sub = tr.slice_time(0.0, 1.0)
        sub.samples[0] = 999.0
        assert tr.samples[0] == 0.0


class TestResample:
    def test_length_scales(self):
        tr = make_trace(np.sin(np.linspace(0, 6, 300)), fs=100.0)
        up = tr.resampled(200.0)
        assert len(up) == pytest.approx(600, abs=2)

    def test_preserves_shape(self):
        t = np.linspace(0.0, 1.0, 101)
        tr = SignalTrace(np.sin(2 * np.pi * 2 * t), 100.0)
        down = tr.resampled(50.0)
        t2 = down.times()
        assert np.allclose(down.samples, np.sin(2 * np.pi * 2 * t2),
                           atol=0.01)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            make_trace().resampled(0.0)


class TestStats:
    def test_swing(self):
        assert make_trace([1.0, 5.0, 3.0]).swing() == pytest.approx(4.0)

    def test_mean(self):
        assert make_trace([1.0, 3.0]).mean() == pytest.approx(2.0)

    def test_describe_contains_rate(self):
        assert "100" in make_trace().describe()
