"""Tests for the optional compiled kernels and their gating.

numba is an optional dependency: the contract under test is that its
absence (or the ``REPRO_DISABLE_NUMBA`` kill switch) degrades every
auto path to the NumPy kernels, while an explicit
``implementation="compiled"`` request fails loudly.
"""

import importlib

import numpy as np
import pytest

from repro.dsp.dtw import dtw

dtw_mod = importlib.import_module("repro.dsp.dtw")
from repro.tensor.kernels import (
    HAVE_NUMBA,
    NUMBA_DISABLED_ENV,
    compiled_cost_matrix,
    numba_disabled,
)


def _signals(n=120):
    rng = np.random.default_rng(3)
    t = np.linspace(0.0, 6.0, n)
    return (np.sin(t) + 0.1 * rng.normal(size=n),
            np.sin(t * 1.1) + 0.1 * rng.normal(size=n))


class TestDisableKnob:
    @pytest.mark.parametrize("value,expect", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("", False), ("  ", False),
    ])
    def test_env_values(self, monkeypatch, value, expect):
        monkeypatch.setenv(NUMBA_DISABLED_ENV, value)
        assert numba_disabled() is expect

    def test_unset_means_enabled(self, monkeypatch):
        monkeypatch.delenv(NUMBA_DISABLED_ENV, raising=False)
        assert numba_disabled() is False


class TestFallback:
    def test_compiled_request_without_numba_raises(self):
        if HAVE_NUMBA:
            pytest.skip("numba present: the unavailable branch is moot")
        a, b = _signals()
        with pytest.raises(RuntimeError, match="numba"):
            compiled_cost_matrix(a, b, band=20)
        with pytest.raises(RuntimeError, match="numba"):
            dtw(a, b, implementation="compiled")

    def test_auto_never_raises(self):
        # Whatever is installed, "auto" must pick a working kernel.
        a, b = _signals()
        result = dtw(a, b)
        assert np.isfinite(result.distance)

    def test_auto_prefers_compiled_only_when_available(self, monkeypatch):
        probed = dtw_mod._compiled_available()
        assert probed is HAVE_NUMBA
        # The probe is cached: flipping the cache steers auto without
        # importing anything.
        monkeypatch.setattr(dtw_mod, "_COMPILED_STATE", False)
        a, b = _signals(200)
        reference = dtw(a, b, implementation="vectorized")
        auto = dtw(a, b)
        assert auto.distance == reference.distance


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestCompiledEquivalence:
    def test_bit_identical_to_reference(self):
        a, b = _signals(300)
        ref = dtw(a, b, implementation="reference", return_path=True)
        com = dtw(a, b, implementation="compiled", return_path=True)
        assert com.distance == ref.distance
        assert com.normalized_distance == ref.normalized_distance
        assert com.path == ref.path
