"""Tests for repro.hardware.adc (MCP3008 model)."""

import numpy as np
import pytest

from repro.hardware.adc import Adc


class TestMcp3008:
    def test_ten_bits(self):
        adc = Adc.mcp3008()
        assert adc.bits == 10
        assert adc.max_code == 1023

    def test_outdoor_rate(self):
        assert Adc.mcp3008(sample_rate_hz=2000.0).sample_rate_hz == 2000.0


class TestConversion:
    def test_full_scale(self):
        adc = Adc.mcp3008()
        assert adc.convert(np.array([1.0]))[0] == 1023

    def test_zero(self):
        adc = Adc.mcp3008()
        assert adc.convert(np.array([0.0]))[0] == 0

    def test_clipping(self):
        adc = Adc.mcp3008()
        codes = adc.convert(np.array([-0.5, 2.0]))
        assert codes[0] == 0
        assert codes[1] == 1023

    def test_monotone(self):
        adc = Adc.mcp3008()
        v = np.linspace(0.0, 1.0, 5000)
        codes = adc.convert(v)
        assert np.all(np.diff(codes) >= 0)

    def test_quantisation_error_bounded(self):
        adc = Adc.mcp3008()
        rng = np.random.default_rng(3)
        v = rng.uniform(0.0, 1.0, 1000)
        recovered = adc.to_volts(adc.convert(v))
        assert float(np.abs(recovered - v).max()) <= adc.lsb / 2 + 1e-12

    def test_dtype_integer(self):
        adc = Adc.mcp3008()
        assert adc.convert(np.array([0.3])).dtype == np.int32


class TestToVolts:
    def test_round_trip_codes(self):
        adc = Adc.mcp3008()
        codes = np.array([0, 100, 512, 1023])
        assert np.array_equal(adc.convert(adc.to_volts(codes)), codes)

    def test_out_of_range_codes_rejected(self):
        adc = Adc.mcp3008()
        with pytest.raises(ValueError):
            adc.to_volts(np.array([-1]))
        with pytest.raises(ValueError):
            adc.to_volts(np.array([1024]))


class TestValidation:
    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            Adc(bits=0)
        with pytest.raises(ValueError):
            Adc(bits=25)

    def test_positive_reference(self):
        with pytest.raises(ValueError):
            Adc(v_ref_fullscale=0.0)

    def test_positive_rate(self):
        with pytest.raises(ValueError):
            Adc(sample_rate_hz=-1.0)
