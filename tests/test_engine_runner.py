"""Tests for repro.engine.runner — batching, parallelism, caching.

The determinism and cache contracts here are the engine's acceptance
criteria: ``workers=N`` must be byte-identical to ``workers=1``, and a
repeated sweep must answer entirely from the cache without invoking the
simulator once.
"""

import pytest

import repro.engine.runner as runner_mod
from repro.engine import (
    BatchRunner,
    ResultCache,
    ScenarioSpec,
    execute_scenario,
    expand_grid,
    run_grid,
    success_rate_by,
)

#: A cheap, fast outdoor scenario (~5 ms per simulation).
FAST = ScenarioSpec(source="sun", detector="led", cap=False,
                    ground="tarmac", bits="00", symbol_width_m=0.1,
                    speed_mps=5.0, receiver_height_m=0.25,
                    start_position_m=-1.5, sample_rate_hz=2000.0)

GRID = {"ground_lux": [450.0, 100.0], "seed": [2, 3, 4]}


class TestExecution:
    def test_single_record_fields(self):
        record = execute_scenario(FAST.replace(ground_lux=450.0, seed=3))
        assert record.sent_bits == "00"
        assert record.success and record.stage == "decoded"
        assert record.ber == 0.0
        assert record.sample_rate_hz == 2000.0
        assert record.noise_floor_lux == pytest.approx(450.0)
        assert record.n_samples > 0
        assert record.spec_hash == FAST.replace(
            ground_lux=450.0, seed=3).content_hash()

    def test_simulation_failure_contained(self):
        """A bad grid point (tag too long for the car roof) yields a
        simulation_failed record instead of aborting the batch."""
        bad = FAST.replace(car="volvo_v40", decoder="two_phase",
                           bits="0" * 40, seed=3)
        result = BatchRunner().run([bad, FAST.replace(ground_lux=450.0,
                                                      seed=3)])
        failed, ok = result.records
        assert failed.stage == "simulation_failed"
        assert not failed.success and failed.ber == 1.0
        assert failed.n_samples == 0
        assert "roof" in failed.error
        assert ok.success

    def test_failure_stage_recorded(self):
        record = execute_scenario(FAST.replace(ground_lux=100.0, seed=3))
        assert not record.success
        assert record.stage in ("preamble_not_found", "decode_failed",
                                "bit_errors")
        assert record.ber > 0.0

    def test_order_preserved(self):
        specs = expand_grid(FAST, GRID)
        records = BatchRunner().run(specs).records
        assert [r.spec for r in records] == [s.resolve().to_dict()
                                             for s in specs]

    def test_run_grid_convenience(self):
        result = run_grid(FAST, {"seed": [2, 3]})
        assert result.stats.total == 2
        assert success_rate_by(result.records, "seed").keys() == {2, 3}


class TestDeterminism:
    def test_parallel_byte_identical_to_serial(self):
        specs = expand_grid(FAST, GRID)
        serial = BatchRunner(workers=1).run(specs)
        parallel = BatchRunner(workers=3).run(specs)
        assert serial.stats.workers == 1 and parallel.stats.workers == 3
        assert ([r.canonical_json() for r in serial.records]
                == [r.canonical_json() for r in parallel.records])

    def test_rerun_byte_identical(self):
        specs = expand_grid(FAST, {"seed": [2, 3]})
        first = BatchRunner().run(specs).records
        second = BatchRunner().run(specs).records
        assert ([r.canonical_json() for r in first]
                == [r.canonical_json() for r in second])


class TestCaching:
    def test_second_pass_hits_cache_for_every_scenario(self, tmp_path):
        specs = expand_grid(FAST, GRID)
        cache = ResultCache(tmp_path)
        first = BatchRunner(cache=cache).run(specs)
        assert first.stats.executed == len(specs)
        assert first.stats.cache_hits == 0
        second = BatchRunner(cache=cache).run(specs)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == len(specs)
        assert ([r.canonical_json() for r in first.records]
                == [r.canonical_json() for r in second.records])

    def test_zero_simulator_invocations_on_second_pass(self, tmp_path,
                                                       monkeypatch):
        specs = expand_grid(FAST, {"seed": [2, 3]})
        cache = ResultCache(tmp_path)
        BatchRunner(cache=cache).run(specs)

        def explode(spec):
            raise AssertionError(
                "simulator invoked despite a warm cache")

        monkeypatch.setattr(runner_mod, "execute_scenario", explode)
        result = BatchRunner(cache=cache).run(specs)
        assert result.stats.executed == 0
        assert all(r.success for r in result.records)

    def test_spec_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        BatchRunner(cache=cache).run([FAST.replace(seed=2)])
        result = BatchRunner(cache=cache).run(
            [FAST.replace(seed=2, receiver_height_m=0.26)])
        assert result.stats.executed == 1
        assert result.stats.cache_hits == 0

    def test_shared_cache_across_worker_counts(self, tmp_path):
        specs = expand_grid(FAST, GRID)
        cache = ResultCache(tmp_path)
        BatchRunner(workers=3, cache=cache).run(specs)
        second = BatchRunner(workers=1, cache=cache).run(specs)
        assert second.stats.executed == 0


class TestStatsAndHelpers:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BatchRunner(workers=0)
        with pytest.raises(ValueError):
            BatchRunner(chunk_size=0)

    def test_empty_batch(self):
        result = BatchRunner().run([])
        assert result.records == []
        assert result.stats.total == 0
        assert result.success_rate() == 0.0

    def test_success_partition(self):
        result = BatchRunner().run(expand_grid(FAST, GRID))
        assert (len(result.successes()) + len(result.failures())
                == len(result.records))
        # 450 lux decodes, 100 lux does not (the Fig. 15 cliff).
        rates = success_rate_by(result.records, "ground_lux")
        assert rates[450.0] > rates[100.0]


class TestPersistentPool:
    """The worker pool outlives a single run() call (PR 3 perf work)."""

    def test_pool_reused_across_runs(self):
        specs_a = expand_grid(FAST, {"seed": [2, 3, 4, 5]})
        specs_b = expand_grid(FAST, {"seed": [6, 7, 8, 9]})
        with BatchRunner(workers=2) as runner:
            runner.run(specs_a)
            pool = runner._pool
            assert pool is not None
            runner.run(specs_b)
            assert runner._pool is pool

    def test_two_consecutive_parallel_runs_byte_identical_to_serial(self):
        """workers=4 records stay byte-identical to workers=1 across two
        consecutive run() calls on the same runner."""
        specs_a = expand_grid(FAST, GRID)
        specs_b = expand_grid(FAST, {"ground_lux": [450.0],
                                     "seed": [5, 6, 7, 8]})
        serial = BatchRunner(workers=1)
        with BatchRunner(workers=4) as parallel:
            for specs in (specs_a, specs_b):
                expected = [r.canonical_json()
                            for r in serial.run(specs).records]
                got = [r.canonical_json()
                       for r in parallel.run(specs).records]
                assert got == expected

    def test_close_tears_pool_down(self):
        runner = BatchRunner(workers=2)
        runner.run(expand_grid(FAST, {"seed": [2, 3]}))
        assert runner._pool is not None
        processes = list(runner._pool._processes.values())
        runner.close()
        assert runner._pool is None
        for proc in processes:
            proc.join(timeout=10)
            assert not proc.is_alive()
        runner.close()  # idempotent

    def test_context_manager_tears_pool_down(self):
        with BatchRunner(workers=2) as runner:
            runner.run(expand_grid(FAST, {"seed": [2, 3]}))
            assert runner._pool is not None
        assert runner._pool is None

    def test_run_after_close_recreates_pool(self):
        runner = BatchRunner(workers=2)
        specs = expand_grid(FAST, {"seed": [2, 3]})
        first = runner.run(specs).records
        runner.close()
        second = runner.run(specs).records
        assert ([r.canonical_json() for r in first]
                == [r.canonical_json() for r in second])
        runner.close()

    def test_serial_runner_never_opens_a_pool(self):
        runner = BatchRunner(workers=1)
        runner.run(expand_grid(FAST, {"seed": [2, 3]}))
        assert runner._pool is None


class TestRunStatsReporting:
    def test_hit_rate_and_throughput(self):
        stats = runner_mod.RunStats(total=10, cache_hits=4, executed=6,
                                    workers=2, elapsed_s=2.0)
        assert stats.hit_rate == pytest.approx(0.4)
        assert stats.throughput == pytest.approx(5.0)
        line = stats.summary()
        assert "4 cached [40%]" in line
        assert "6 simulated" in line
        assert "5.0 scenarios/s" in line

    def test_empty_stats_do_not_divide_by_zero(self):
        stats = runner_mod.RunStats()
        assert stats.hit_rate == 0.0
        assert stats.throughput == 0.0
        assert "0 scenarios" in stats.summary()


class TestBrokenPoolRecovery:
    """A BrokenProcessPool mid-batch must not lose the batch.

    The runner's contract: tear the dead pool down, recreate it once,
    and if the replacement breaks too, finish the batch in-process.
    Other exceptions keep the old fail-fast behaviour.
    """

    class _FakePool:
        """Stands in for ProcessPoolExecutor; breaks on command."""

        instances: list = []

        def __init__(self, max_workers=None):
            self.broken = False
            self.shutdowns = 0
            TestBrokenPoolRecovery._FakePool.instances.append(self)

        def map(self, fn, specs, chunksize=1):
            if self.broken:
                from concurrent.futures.process import BrokenProcessPool
                raise BrokenProcessPool("worker died")
            return [fn(spec) for spec in specs]

        def shutdown(self, wait=True):
            self.shutdowns += 1

    @pytest.fixture
    def fake_pools(self, monkeypatch):
        self._FakePool.instances = []
        monkeypatch.setattr(runner_mod, "ProcessPoolExecutor",
                            self._FakePool)
        return self._FakePool.instances

    def _specs(self):
        return expand_grid(FAST, {"seed": [2, 3]})

    def test_single_break_restarts_pool_and_retries(self, fake_pools):
        runner = BatchRunner(workers=2)
        serial = [r.canonical_json()
                  for r in BatchRunner(workers=1).run(self._specs()).records]
        first = runner.run(self._specs())          # healthy pool
        assert len(fake_pools) == 1
        fake_pools[0].broken = True                # kill it mid-flight
        result = runner.run(self._specs())
        assert [r.canonical_json() for r in result.records] == serial
        assert len(fake_pools) == 2                # replacement created
        assert fake_pools[0].shutdowns == 1
        assert result.stats.pool_restarts == 1
        assert not result.stats.serial_fallback
        assert first.stats.pool_restarts == 0

    def test_double_break_falls_back_to_serial(self, fake_pools):
        serial = [r.canonical_json()
                  for r in BatchRunner(workers=1).run(self._specs()).records]
        runner = BatchRunner(workers=2)
        runner.run(self._specs())
        for pool in fake_pools:
            pool.broken = True
        # Any pool created from now on is born broken.
        orig_init = self._FakePool.__init__

        def broken_init(pool, max_workers=None):
            orig_init(pool, max_workers)
            pool.broken = True

        self._FakePool.__init__ = broken_init
        try:
            result = runner.run(self._specs())
        finally:
            self._FakePool.__init__ = orig_init
        assert [r.canonical_json() for r in result.records] == serial
        assert result.stats.pool_restarts == 1
        assert result.stats.serial_fallback
        assert runner._pool is None                # nothing left behind

    def test_other_exceptions_still_propagate(self, fake_pools):
        runner = BatchRunner(workers=2)
        runner.run(self._specs())

        def exploding_map(fn, specs, chunksize=1):
            raise RuntimeError("unpicklable spec")

        fake_pools[0].map = exploding_map
        with pytest.raises(RuntimeError, match="unpicklable"):
            runner.run(self._specs())
        assert runner._pool is None                # pool dropped

    def test_stats_reset_between_runs(self, fake_pools):
        runner = BatchRunner(workers=2)
        runner.run(self._specs())
        fake_pools[0].broken = True
        assert runner.run(self._specs()).stats.pool_restarts == 1
        # The replacement pool is healthy: counters start clean.
        stats = runner.run(self._specs()).stats
        assert stats.pool_restarts == 0
        assert not stats.serial_fallback
