#!/usr/bin/env python3
"""Capture the golden figure baselines.

Re-runs the four benchmark-figure experiments and rewrites
``tests/baselines/fig*.json`` from their measured outputs.  Run this
ONLY when a change is *supposed* to move the reproduced numbers (a
physics fix, a calibration change) — the whole point of the goldens is
that ``tests/test_golden_figures.py`` fails loudly on silent drift.

Usage::

    PYTHONPATH=src python tests/baselines/capture.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.analysis.experiments import (
    experiment_fig5,
    experiment_fig10,
    experiment_fig15,
    experiment_fig17,
)

BASELINE_DIR = Path(__file__).resolve().parent

#: The benchmarked figures pinned by goldens, name -> experiment.
GOLDEN_EXPERIMENTS = {
    "fig05": experiment_fig5,
    "fig10": experiment_fig10,
    "fig15": experiment_fig15,
    "fig17": experiment_fig17,
}


def capture(out_dir: Path = BASELINE_DIR) -> list[Path]:
    """Run every golden experiment and write its baseline JSON."""
    written = []
    for name, experiment in GOLDEN_EXPERIMENTS.items():
        result = experiment()
        if not result.passed:
            raise RuntimeError(
                f"{name} FAILED its shape-level claim; refusing to pin a "
                f"failing baseline:\n{result.report()}")
        payload = {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "passed": result.passed,
            "measured": result.measured,
        }
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
        written.append(path)
        print(f"wrote {path}")
    return written


if __name__ == "__main__":
    sys.exit(0 if capture() else 1)
