"""Golden figure baselines (see capture.py for regeneration)."""
