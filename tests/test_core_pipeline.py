"""Tests for repro.core.pipeline (the staged receive chain)."""

import numpy as np
import pytest

from repro.channel.trace import SignalTrace
from repro.core.classifier import DtwClassifier
from repro.core.pipeline import PipelineResult, PipelineStage, ReceiverPipeline

from .test_core_collision import two_tone_trace
from .test_core_decoder import synthetic_packet_trace


class TestStageDecoded:
    def test_clean_packet_decodes(self):
        pipeline = ReceiverPipeline()
        result = pipeline.process(synthetic_packet_trace("HLHLLHHL"),
                                  n_data_symbols=4)
        assert result.stage is PipelineStage.DECODED
        assert result.bits == "10"
        assert result.recovered

    def test_expected_bits_gate(self):
        pipeline = ReceiverPipeline()
        result = pipeline.process(synthetic_packet_trace("HLHLLHHL"),
                                  n_data_symbols=4, expected_bits="11")
        assert result.stage is not PipelineStage.DECODED


class TestStageSaturated:
    def test_railed_capture_flagged(self):
        pipeline = ReceiverPipeline()
        railed = SignalTrace(np.full(1000, 1023.0), 500.0)
        result = pipeline.process(railed)
        assert result.stage is PipelineStage.SATURATED
        assert not result.recovered

    def test_partial_rail_tolerated(self):
        pipeline = ReceiverPipeline()
        x = synthetic_packet_trace("HLHLHLHL").samples
        x[:10] = 1023.0  # brief glint only
        result = pipeline.process(SignalTrace(x, 200.0), n_data_symbols=4)
        assert result.stage is not PipelineStage.SATURATED


class TestStageClassified:
    def _pipeline_with_templates(self):
        clf = DtwClassifier()
        clf.add_template("00", synthetic_packet_trace("HLHLHLHL"))
        clf.add_template("10", synthetic_packet_trace("HLHLLHHL"))
        return ReceiverPipeline(classifier=clf)

    def test_distorted_falls_through_to_dtw(self):
        pipeline = self._pipeline_with_templates()
        # Second half compressed 2x: decoding breaks, DTW still matches.
        base = synthetic_packet_trace("HLHLLHHL").samples
        n = len(base)
        distorted = np.concatenate([base[: n // 2], base[n // 2::2]])
        result = pipeline.process(SignalTrace(distorted, 200.0),
                                  n_data_symbols=4, expected_bits="10")
        assert result.stage in (PipelineStage.CLASSIFIED,
                                PipelineStage.DECODED)
        assert result.bits == "10"

    def test_classifier_skipped_when_empty(self):
        pipeline = ReceiverPipeline(classifier=DtwClassifier())
        result = pipeline.process(two_tone_trace())
        assert result.classification is None


class TestStageCollision:
    def test_mixture_reports_collision(self):
        pipeline = ReceiverPipeline()
        result = pipeline.process(two_tone_trace())
        assert result.stage is PipelineStage.COLLISION
        assert result.collision_report is not None
        assert result.collision_report.n_components == 2
        assert not result.recovered


class TestStageFailed:
    def test_flat_noise_fails_cleanly(self):
        pipeline = ReceiverPipeline()
        rng = np.random.default_rng(0)
        trace = SignalTrace(rng.normal(100.0, 1.0, 2000), 500.0)
        result = pipeline.process(trace)
        assert result.stage is PipelineStage.FAILED
        assert result.bits == ""


class TestValidation:
    def test_saturation_fraction_bounds(self):
        with pytest.raises(ValueError):
            ReceiverPipeline(saturation_fraction=0.2)
