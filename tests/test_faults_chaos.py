"""Chaos sweeps: the fault-intensity degradation frontier."""

import pytest

from repro.engine.runner import BatchRunner
from repro.engine.spec import ScenarioSpec
from repro.faults.chaos import ChaosPoint, sweep_fault_intensity
from repro.faults.plan import FaultPlan

#: Cheap outdoor scenario (~5 ms per simulation).
FAST = ScenarioSpec(source="sun", detector="led", cap=False,
                    ground="tarmac", bits="00", symbol_width_m=0.1,
                    speed_mps=5.0, receiver_height_m=0.25,
                    start_position_m=-1.5, sample_rate_hz=2000.0)

PLAN = FaultPlan(burst_rate_hz=10.0, saturate_fraction=0.4)


def make_specs(n=4):
    return [FAST.replace(seed=k) for k in range(n)]


class TestSweep:
    def test_rung_zero_is_clean_baseline(self):
        sweep = sweep_fault_intensity(make_specs(), PLAN, [0.0, 1.0])
        clean = sweep.points[0]
        assert clean.fault_events == {}
        assert all(r.spec.get("fault_plan") is None
                   for r in clean.records)
        baseline = BatchRunner().run(make_specs())
        assert ([r.canonical_json() for r in clean.records]
                == [r.canonical_json() for r in baseline.records])

    def test_intensity_scales_event_volume(self):
        sweep = sweep_fault_intensity(make_specs(), PLAN,
                                      [0.25, 1.0])
        low, high = sweep.points
        assert (sum(high.fault_events.values())
                > sum(low.fault_events.values()))

    def test_sweep_is_deterministic(self):
        a = sweep_fault_intensity(make_specs(), PLAN, [0.0, 0.5, 1.0])
        b = sweep_fault_intensity(make_specs(), PLAN, [0.0, 0.5, 1.0])
        for pa, pb in zip(a.points, b.points):
            assert ([r.canonical_json() for r in pa.records]
                    == [r.canonical_json() for r in pb.records])

    def test_degradation_is_clean_minus_corrupted(self):
        sweep = sweep_fault_intensity(make_specs(), PLAN, [0.0, 1.0])
        assert sweep.degradation() == pytest.approx(
            sweep.points[0].decode_rate - sweep.points[-1].decode_rate)
        assert sweep.degradation() >= 0.0

    def test_render_has_one_row_per_rung(self):
        sweep = sweep_fault_intensity(make_specs(2), PLAN, [0.0, 1.0])
        text = sweep.render()
        assert text.count("\n") == 2  # header + 2 rungs
        assert "chaos frontier" in text

    def test_shared_cached_runner_reuses_records(self, tmp_path):
        from repro.engine.cache import ResultCache

        runner = BatchRunner(cache=ResultCache(tmp_path))
        sweep_fault_intensity(make_specs(2), PLAN, [0.0, 1.0], runner)
        before = runner.cache.stats.hits
        sweep_fault_intensity(make_specs(2), PLAN, [0.0, 1.0], runner)
        assert runner.cache.stats.hits == before + 4

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            sweep_fault_intensity(make_specs(1), FaultPlan(), [1.0])

    def test_no_intensities_rejected(self):
        with pytest.raises(ValueError, match="intensity"):
            sweep_fault_intensity(make_specs(1), PLAN, [])


class TestChaosPoint:
    def test_empty_point_rates_are_zero(self):
        point = ChaosPoint(intensity=1.0, plan=PLAN)
        assert point.n == 0
        assert point.decode_rate == 0.0
        assert point.fused_rate == 0.0
        assert point.executor_errors == 0


class TestStreamChunkLossStress:
    """The CI stress leg's core property, kept in-tree: the streaming
    tier survives transport-level chunk loss at any intensity — every
    session completes (decoded or failed-soft), nothing raises, and the
    loss is accounted."""

    @pytest.mark.parametrize("drop", [0.1, 0.3, 0.6])
    def test_streamed_records_survive_chunk_loss(self, drop):
        from repro.engine.executor import execute_scenario

        plan = FaultPlan(chunk_drop=drop)
        for seed in range(3):
            spec = FAST.replace(seed=seed, stream_chunk=64,
                                fault_plan=plan)
            record = execute_scenario(spec)
            assert record.streamed
            assert record.stage != "executor_error"
            assert record.fault_events.get("chunks_dropped", 0) > 0

    def test_run_stream_sessions_survive_chunk_loss(self):
        from repro.engine.streaming import run_stream

        plan = FaultPlan(chunk_drop=0.4)
        specs = [ScenarioSpec(bits="1011010010110100", seed=k,
                              fault_plan=plan) for k in range(3)]
        result = run_stream(specs, sessions=3)
        assert len(result.outcomes) == 3
        for outcome in result.outcomes:
            assert not outcome.error
            assert outcome.fault_events.get("chunks_dropped", 0) > 0

    def test_heavy_loss_degrades_decode_not_availability(self):
        """At 80% loss the decode may collapse; the runtime must not."""
        from repro.engine.streaming import run_stream

        plan = FaultPlan(chunk_drop=0.8)
        specs = [ScenarioSpec(bits="1011010010110100", seed=k,
                              fault_plan=plan) for k in range(2)]
        result = run_stream(specs, sessions=2)
        assert len(result.outcomes) == 2
        assert not result.failed_sessions


class TestStressEnvKnob:
    """REPRO_STREAM_CHUNK_LOSS: the CI stress leg's transport model —
    lossy link with retransmission.  Chunk boundaries shift, sample
    content never does, so every decode output is invariant."""

    def test_samples_preserved_under_loss(self, monkeypatch):
        import numpy as np

        from repro.stream.replay import iter_chunks

        samples = np.arange(1000, dtype=float)
        monkeypatch.setenv("REPRO_STREAM_CHUNK_LOSS", "0.4")
        chunks = list(iter_chunks(samples, 32))
        assert any(len(c) == 0 for c in chunks)       # lost slots
        assert any(len(c) > 32 for c in chunks)       # retransmissions
        np.testing.assert_array_equal(np.concatenate(chunks), samples)

    def test_lossy_feed_is_deterministic(self, monkeypatch):
        import numpy as np

        from repro.stream.replay import iter_chunks

        samples = np.arange(500, dtype=float)
        monkeypatch.setenv("REPRO_STREAM_CHUNK_LOSS", "0.3")
        a = [len(c) for c in iter_chunks(samples, 16)]
        b = [len(c) for c in iter_chunks(samples, 16)]
        assert a == b

    def test_unset_env_means_plain_chunking(self, monkeypatch):
        import numpy as np

        from repro.stream.replay import iter_chunks

        monkeypatch.delenv("REPRO_STREAM_CHUNK_LOSS", raising=False)
        chunks = list(iter_chunks(np.zeros(100), 16))
        assert [len(c) for c in chunks] == [16] * 6 + [4]

    def test_bad_env_value_rejected(self, monkeypatch):
        import numpy as np

        from repro.stream.replay import iter_chunks

        monkeypatch.setenv("REPRO_STREAM_CHUNK_LOSS", "1.5")
        with pytest.raises(ValueError, match="REPRO_STREAM_CHUNK_LOSS"):
            list(iter_chunks(np.zeros(10), 4))

    def test_verdict_invariant_under_transport_loss(self, monkeypatch):
        """The point of the stress leg, in one assertion: the decode
        verdict under a lossy transport is byte-identical to the
        clean-transport verdict."""
        from repro.engine.executor import capture_trace
        from repro.stream.replay import replay_trace

        trace = capture_trace(ScenarioSpec(bits="1011", seed=5))
        monkeypatch.delenv("REPRO_STREAM_CHUNK_LOSS", raising=False)
        clean = replay_trace(trace, 64, n_data_symbols=4)
        monkeypatch.setenv("REPRO_STREAM_CHUNK_LOSS", "0.25")
        lossy = replay_trace(trace, 64, n_data_symbols=4)
        assert (lossy.verdict.to_dict() == clean.verdict.to_dict())
        assert lossy.n_chunks >= clean.n_chunks
