"""Tests for repro.obs.export — Prometheus/JSON exporters and bundling."""

import json

import pytest

from repro.exec import StageTrace
from repro.obs import (
    EventLog,
    MetricsRegistry,
    format_metrics,
    load_snapshot,
    publish_stage_trace,
    render_json,
    render_prometheus,
    write_telemetry,
)


def small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("hits_total", {"backend": "disk"}).inc(3)
    reg.gauge("queue_depth").set(2)
    h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(small_registry())
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{backend="disk"} 3' in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 2" in text

    def test_histogram_buckets_are_cumulative(self):
        lines = render_prometheus(small_registry()).splitlines()
        bucket_lines = [l for l in lines if l.startswith("lat_seconds_bucket")]
        assert bucket_lines == [
            'lat_seconds_bucket{le="0.1"} 1',
            'lat_seconds_bucket{le="1"} 2',
            'lat_seconds_bucket{le="+Inf"} 3',
        ]
        assert "lat_seconds_count 3" in lines
        assert any(l.startswith("lat_seconds_sum") for l in lines)

    def test_type_header_emitted_once_per_name(self):
        reg = MetricsRegistry()
        reg.counter("x_total", {"a": "1"}).inc()
        reg.counter("x_total", {"a": "2"}).inc()
        text = render_prometheus(reg)
        assert text.count("# TYPE x_total counter") == 1

    def test_name_and_label_sanitization(self):
        reg = MetricsRegistry()
        reg.counter("bad-name.total", {"bad-key": 'va"lue'}).inc()
        text = render_prometheus(reg)
        assert 'bad_name_total{bad_key="va\\"lue"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_accepts_raw_snapshot(self):
        snap = small_registry().snapshot()
        assert render_prometheus(snap) == render_prometheus(small_registry())


class TestJson:
    def test_schema_tag_and_sorted_keys(self):
        doc = json.loads(render_json(small_registry()))
        assert doc["schema"] == "repro.obs/1"
        assert {"counters", "gauges", "histograms"} <= set(doc)

    def test_render_is_deterministic(self):
        assert render_json(small_registry()) == render_json(small_registry())

    def test_load_snapshot_round_trip(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(render_json(small_registry()))
        snap = load_snapshot(path)
        assert snap["counters"][0]["name"] == "hits_total"

    def test_load_snapshot_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"workloads": []}')
        with pytest.raises(ValueError, match="not a repro.obs"):
            load_snapshot(path)


class TestWriteTelemetry:
    def test_writes_all_three_artifacts(self, tmp_path):
        log = EventLog()
        log.emit("batch_start", n_specs=1)
        paths = write_telemetry(tmp_path / "tel", small_registry(), log)
        assert set(paths) == {"metrics.json", "metrics.prom",
                              "events.jsonl"}
        for path in paths.values():
            assert path.exists()
        snap = load_snapshot(paths["metrics.json"])
        assert snap["schema"] == "repro.obs/1"
        events = EventLog.read_jsonl(paths["events.jsonl"])
        assert [e.kind for e in events] == ["batch_start"]

    def test_missing_event_log_writes_empty_file(self, tmp_path):
        paths = write_telemetry(tmp_path, small_registry())
        assert paths["events.jsonl"].read_text() == ""


class TestFormatMetrics:
    def test_table_has_all_series(self):
        text = format_metrics(small_registry())
        assert "hits_total{backend=disk}" in text
        assert "queue_depth" in text
        assert "count=3" in text and "p95<=" in text

    def test_empty_snapshot_message(self):
        assert format_metrics(MetricsRegistry()) == "(empty snapshot)"


class TestPublishStageTrace:
    def test_folds_timings_and_counters(self):
        reg = MetricsRegistry()
        trace = StageTrace(timings_s={"build": 0.002, "decide": 0.3},
                           counters={"batch_rows": 4})
        publish_stage_trace(reg, trace, driver="tensor")
        hist = reg.histogram("exec_stage_seconds",
                             {"stage": "build", "driver": "tensor"})
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.002)
        counter = reg.counter("exec_stage_events_total",
                              {"event": "batch_rows", "driver": "tensor"})
        assert counter.value == 4.0

    def test_none_trace_is_a_noop(self):
        reg = MetricsRegistry()
        publish_stage_trace(reg, None, driver="serial")
        assert reg.snapshot() == {"counters": [], "gauges": [],
                                  "histograms": []}
