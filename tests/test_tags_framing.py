"""Tests for repro.tags.framing (structured payloads + CRC-4)."""

import pytest

from repro.tags.framing import FrameError, FramedPayload, crc4


class TestCrc4:
    def test_deterministic(self):
        assert crc4("101010") == crc4("101010")

    def test_four_bits(self):
        for msg in ("0", "1", "10110010", "1" * 20):
            out = crc4(msg)
            assert len(out) == 4
            assert set(out) <= {"0", "1"}

    def test_detects_single_bit_errors(self):
        msg = "10110010"
        reference = crc4(msg)
        for i in range(len(msg)):
            flipped = msg[:i] + ("1" if msg[i] == "0" else "0") + msg[i + 1:]
            assert crc4(flipped) != reference

    def test_detects_double_bit_errors(self):
        msg = "10110010"
        reference = crc4(msg)
        n = len(msg)
        for i in range(n):
            for j in range(i + 1, n):
                flipped = list(msg)
                flipped[i] = "1" if msg[i] == "0" else "0"
                flipped[j] = "1" if msg[j] == "0" else "0"
                assert crc4("".join(flipped)) != reference

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            crc4("")
        with pytest.raises(ValueError):
            crc4("10a")


class TestFramedPayload:
    def test_round_trip(self):
        frame = FramedPayload(object_id=42, type_code=2)
        recovered = FramedPayload.from_bits(frame.to_bits())
        assert recovered == frame

    def test_all_ids_round_trip(self):
        for object_id in range(2**6):
            frame = FramedPayload(object_id=object_id, type_code=1)
            assert FramedPayload.from_bits(frame.to_bits()) == frame

    def test_length(self):
        frame = FramedPayload(object_id=1, type_code=0, id_bits=8,
                              type_bits=4)
        assert frame.n_bits == 16
        assert len(frame.to_bits()) == 16

    def test_field_overflow_rejected(self):
        with pytest.raises(ValueError):
            FramedPayload(object_id=64, type_code=0)  # 6-bit id
        with pytest.raises(ValueError):
            FramedPayload(object_id=0, type_code=4)   # 2-bit type

    def test_corruption_detected(self):
        bits = FramedPayload(object_id=42, type_code=2).to_bits()
        for i in range(len(bits)):
            corrupted = bits[:i] + ("1" if bits[i] == "0" else "0") + bits[i + 1:]
            with pytest.raises(FrameError):
                FramedPayload.from_bits(corrupted)

    def test_wrong_length_rejected(self):
        with pytest.raises(FrameError):
            FramedPayload.from_bits("1010")

    def test_try_from_bits(self):
        bits = FramedPayload(object_id=3, type_code=1).to_bits()
        assert FramedPayload.try_from_bits(bits) is not None
        assert FramedPayload.try_from_bits("0" * 12) is None or \
            FramedPayload.try_from_bits("0" * 12).object_id == 0

    def test_to_packet(self):
        frame = FramedPayload(object_id=7, type_code=3)
        packet = frame.to_packet(symbol_width_m=0.05)
        assert packet.bit_string() == frame.to_bits()
        assert packet.symbol_width_m == 0.05


class TestFramedOverChannel:
    def test_frame_survives_the_channel(self):
        """End to end: frame -> tag -> simulate -> decode -> validate."""
        from repro.channel.mobility import ConstantSpeed
        from repro.channel.scene import MovingObject, PassiveScene
        from repro.channel.simulator import ChannelSimulator, SimulatorConfig
        from repro.core.decoder import AdaptiveThresholdDecoder
        from repro.hardware.frontend import ReceiverFrontEnd
        from repro.hardware.led_receiver import LedReceiver
        from repro.optics.materials import TARMAC
        from repro.optics.sources import Sun
        from repro.tags.surface import TagSurface

        frame = FramedPayload(object_id=42, type_code=2)
        packet = frame.to_packet(symbol_width_m=0.1)
        scene = PassiveScene(
            source=Sun(ground_lux=6200.0), receiver_height_m=0.75,
            ground=TARMAC,
            objects=[MovingObject(TagSurface.from_packet(packet),
                                  ConstantSpeed(5.0, -2.5), "framed")])
        frontend = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=4)
        sim = ChannelSimulator(scene, frontend,
                               SimulatorConfig(sample_rate_hz=2000.0,
                                               seed=4))
        result = AdaptiveThresholdDecoder().decode(
            sim.capture_pass(), n_data_symbols=2 * frame.n_bits)
        recovered = FramedPayload.try_from_bits(result.bit_string())
        assert recovered is not None
        assert recovered.object_id == 42
        assert recovered.type_code == 2
