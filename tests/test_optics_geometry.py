"""Tests for repro.optics.geometry."""

import math

import numpy as np
import pytest

from repro.optics.geometry import (
    FieldOfView,
    GroundFootprint,
    Vec3,
    deg_to_rad,
    incidence_cosine,
    rad_to_deg,
    solid_angle_of_disc,
)


class TestVec3:
    def test_add_sub(self):
        a = Vec3(1.0, 2.0, 3.0)
        b = Vec3(0.5, -1.0, 2.0)
        assert a + b == Vec3(1.5, 1.0, 5.0)
        assert a - b == Vec3(0.5, 3.0, 1.0)

    def test_scalar_multiplication_commutes(self):
        v = Vec3(1.0, -2.0, 0.5)
        assert 2.0 * v == v * 2.0 == Vec3(2.0, -4.0, 1.0)

    def test_negation(self):
        assert -Vec3(1.0, -2.0, 3.0) == Vec3(-1.0, 2.0, -3.0)

    def test_dot_orthogonal(self):
        assert Vec3(1, 0, 0).dot(Vec3(0, 1, 0)) == 0.0

    def test_cross_right_handed(self):
        assert Vec3(1, 0, 0).cross(Vec3(0, 1, 0)) == Vec3(0, 0, 1)

    def test_norm(self):
        assert Vec3(3.0, 4.0, 0.0).norm() == pytest.approx(5.0)

    def test_normalized_unit_length(self):
        v = Vec3(2.0, -3.0, 6.0).normalized()
        assert v.norm() == pytest.approx(1.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ValueError):
            Vec3(0.0, 0.0, 0.0).normalized()

    def test_distance(self):
        assert Vec3(0, 0, 0).distance_to(Vec3(1, 2, 2)) == pytest.approx(3.0)

    def test_angle_right(self):
        angle = Vec3(1, 0, 0).angle_to(Vec3(0, 0, 1))
        assert angle == pytest.approx(math.pi / 2)

    def test_angle_zero_vector_raises(self):
        with pytest.raises(ValueError):
            Vec3(1, 0, 0).angle_to(Vec3(0, 0, 0))

    def test_array_round_trip(self):
        v = Vec3(0.1, 0.2, 0.3)
        assert Vec3.from_array(v.as_array()) == v


class TestFieldOfView:
    def test_invalid_angles(self):
        for bad in (0.0, -10.0, 181.0):
            with pytest.raises(ValueError):
                FieldOfView(bad)

    def test_half_angle(self):
        assert FieldOfView(60.0).half_angle_deg == 30.0
        assert FieldOfView(60.0).half_angle_rad == pytest.approx(math.pi / 6)

    def test_contains_boresight(self):
        fov = FieldOfView(30.0)
        assert fov.contains(Vec3(0, 0, -1), Vec3(0, 0, -1))

    def test_contains_outside(self):
        fov = FieldOfView(30.0)
        assert not fov.contains(Vec3(0, 0, -1), Vec3(1, 0, 0))

    def test_acceptance_boresight_is_one(self):
        assert FieldOfView(40.0).acceptance(0.0) == pytest.approx(1.0)

    def test_acceptance_zero_at_edge(self):
        fov = FieldOfView(40.0)
        assert fov.acceptance(fov.half_angle_rad) == 0.0
        assert fov.acceptance(fov.half_angle_rad * 1.5) == 0.0

    def test_acceptance_monotone(self):
        fov = FieldOfView(60.0)
        angles = np.linspace(0.0, fov.half_angle_rad, 32)
        acc = fov.acceptance_array(angles)
        assert np.all(np.diff(acc) <= 1e-12)

    def test_acceptance_array_matches_scalar(self):
        fov = FieldOfView(50.0)
        angles = np.linspace(0.0, 0.6, 16)
        vector = fov.acceptance_array(angles)
        scalars = [fov.acceptance(a) for a in angles]
        assert np.allclose(vector, scalars)

    def test_narrowed(self):
        fov = FieldOfView(100.0).narrowed(0.25)
        assert fov.full_angle_deg == pytest.approx(25.0)

    def test_narrowed_invalid_factor(self):
        with pytest.raises(ValueError):
            FieldOfView(100.0).narrowed(0.0)
        with pytest.raises(ValueError):
            FieldOfView(100.0).narrowed(1.5)


class TestGroundFootprint:
    def test_from_receiver_radius(self):
        fp = GroundFootprint.from_receiver(1.0, FieldOfView(90.0))
        assert fp.radius == pytest.approx(1.0)

    def test_from_receiver_bad_height(self):
        with pytest.raises(ValueError):
            GroundFootprint.from_receiver(0.0, FieldOfView(30.0))

    def test_radius_scales_with_height(self):
        fov = FieldOfView(24.0)
        r1 = GroundFootprint.from_receiver(0.5, fov).radius
        r2 = GroundFootprint.from_receiver(1.0, fov).radius
        assert r2 == pytest.approx(2.0 * r1)

    def test_contains(self):
        fp = GroundFootprint(0.0, 0.0, 0.5)
        assert fp.contains(0.3, 0.3)
        assert not fp.contains(0.5, 0.5)

    def test_chord_length_center_and_edge(self):
        fp = GroundFootprint(0.0, 0.0, 1.0)
        assert fp.chord_length(0.0) == pytest.approx(2.0)
        assert fp.chord_length(1.0) == 0.0
        assert fp.chord_length(2.0) == 0.0

    def test_chord_weights_normalised(self):
        fp = GroundFootprint(0.0, 0.0, 0.2)
        xs = np.linspace(-0.2, 0.2, 101)
        w = fp.chord_weights(xs)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w >= 0.0)

    def test_chord_weights_outside_raises(self):
        fp = GroundFootprint(0.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            fp.chord_weights(np.array([5.0, 6.0]))

    def test_area(self):
        fp = GroundFootprint(0.0, 0.0, 2.0)
        assert fp.area == pytest.approx(math.pi * 4.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            GroundFootprint(0.0, 0.0, -0.1)


class TestHelpers:
    def test_deg_rad_round_trip(self):
        assert rad_to_deg(deg_to_rad(73.0)) == pytest.approx(73.0)

    def test_incidence_cosine_normal(self):
        assert incidence_cosine(Vec3(0, 0, 1), Vec3(0, 0, 1)) == pytest.approx(1.0)

    def test_incidence_cosine_grazing_clamped(self):
        assert incidence_cosine(Vec3(0, 0, 1), Vec3(0, 0, -1)) == 0.0

    def test_solid_angle_small_disc(self):
        # Far-field: Omega ~ pi r^2 / d^2.
        omega = solid_angle_of_disc(0.01, 10.0)
        assert omega == pytest.approx(math.pi * 1e-6, rel=1e-3)

    def test_solid_angle_invalid(self):
        with pytest.raises(ValueError):
            solid_angle_of_disc(0.0, 1.0)
        with pytest.raises(ValueError):
            solid_angle_of_disc(1.0, -1.0)
