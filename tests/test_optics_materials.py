"""Tests for repro.optics.materials."""

import pytest

from repro.optics.materials import (
    ALUMINUM_TAPE,
    BLACK_NAPKIN,
    MATERIAL_LIBRARY,
    MIRROR,
    Material,
    material_by_name,
)


class TestMaterialValidation:
    def test_reflectance_bounds(self):
        with pytest.raises(ValueError):
            Material("x", reflectance=1.2, specular_fraction=0.5)
        with pytest.raises(ValueError):
            Material("x", reflectance=-0.1, specular_fraction=0.5)

    def test_specular_fraction_bounds(self):
        with pytest.raises(ValueError):
            Material("x", reflectance=0.5, specular_fraction=1.5)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Material("", reflectance=0.5, specular_fraction=0.5)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Material("x", reflectance=0.5, specular_fraction=0.5,
                     specular_exponent=-1.0)


class TestComponentSplit:
    def test_split_sums_to_total(self):
        for mat in MATERIAL_LIBRARY.values():
            assert (mat.diffuse_reflectance + mat.specular_reflectance
                    == pytest.approx(mat.reflectance))

    def test_symbol_materials_contrast(self):
        """HIGH material must reflect far more than LOW (Section 4)."""
        assert ALUMINUM_TAPE.reflectance > 5 * BLACK_NAPKIN.reflectance
        assert ALUMINUM_TAPE.specular_fraction > BLACK_NAPKIN.specular_fraction

    def test_mirror_is_extreme(self):
        assert MIRROR.reflectance > ALUMINUM_TAPE.reflectance
        assert MIRROR.specular_exponent > ALUMINUM_TAPE.specular_exponent


class TestDegradation:
    def test_dirt_reduces_reflectance(self):
        dirty = ALUMINUM_TAPE.degraded(0.5)
        assert dirty.reflectance < ALUMINUM_TAPE.reflectance
        assert dirty.specular_fraction < ALUMINUM_TAPE.specular_fraction

    def test_no_dirt_is_identity_values(self):
        clean = ALUMINUM_TAPE.degraded(0.0)
        assert clean.reflectance == pytest.approx(ALUMINUM_TAPE.reflectance)
        assert clean.specular_fraction == pytest.approx(
            ALUMINUM_TAPE.specular_fraction)

    def test_full_dirt_kills_specular(self):
        dirty = ALUMINUM_TAPE.degraded(1.0)
        assert dirty.specular_fraction == pytest.approx(0.0)
        assert dirty.reflectance > 0.0  # dirt absorbs, not perfectly black

    def test_dirt_bounds(self):
        with pytest.raises(ValueError):
            ALUMINUM_TAPE.degraded(1.5)
        with pytest.raises(ValueError):
            ALUMINUM_TAPE.degraded(-0.1)

    def test_degraded_name_tagged(self):
        assert "dirt" in ALUMINUM_TAPE.degraded(0.3).name


class TestLibrary:
    def test_lookup_known(self):
        assert material_by_name("aluminum_tape") is ALUMINUM_TAPE

    def test_lookup_unknown_lists_names(self):
        with pytest.raises(KeyError, match="aluminum_tape"):
            material_by_name("vantablack")

    def test_all_library_names_consistent(self):
        for name, mat in MATERIAL_LIBRARY.items():
            assert mat.name == name
