"""Tests for repro.tags.packet (preamble + data format, Fig. 4)."""

import pytest

from repro.tags.encoding import Symbol
from repro.tags.packet import PREAMBLE, Packet


class TestPreamble:
    def test_fixed_hlhl(self):
        assert PREAMBLE == (Symbol.HIGH, Symbol.LOW, Symbol.HIGH, Symbol.LOW)


class TestConstruction:
    def test_from_bits(self):
        p = Packet.from_bits([1, 0], symbol_width_m=0.05)
        assert p.data_bits == (1, 0)
        assert p.symbol_width_m == 0.05

    def test_from_bitstring(self):
        assert Packet.from_bitstring("101").data_bits == (1, 0, 1)

    def test_from_symbol_string_paper_notation(self):
        p = Packet.from_symbol_string("HLHL.LHHL")
        assert p.bit_string() == "10"

    def test_symbol_string_round_trip(self):
        p = Packet.from_bitstring("0110")
        assert Packet.from_symbol_string(p.symbol_string()).data_bits == p.data_bits

    def test_wrong_preamble_rejected(self):
        with pytest.raises(ValueError, match="preamble"):
            Packet.from_symbol_string("LHLH.HLHL")

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            Packet.from_symbol_string("HLHL")
        with pytest.raises(ValueError):
            Packet.from_bits([])

    def test_invalid_manchester_data_rejected(self):
        with pytest.raises(ValueError, match="data field"):
            Packet.from_symbol_string("HLHL.HH")

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            Packet.from_bitstring("102")
        with pytest.raises(ValueError):
            Packet.from_bitstring("")

    def test_non_positive_width_rejected(self):
        with pytest.raises(ValueError):
            Packet.from_bitstring("1", symbol_width_m=0.0)


class TestLayout:
    def test_symbol_count(self):
        """4 preamble + 2N data symbols (Fig. 4)."""
        assert Packet.from_bitstring("10").n_symbols == 8
        assert Packet.from_bitstring("1011").n_symbols == 12

    def test_physical_length(self):
        p = Packet.from_bitstring("10", symbol_width_m=0.03)
        assert p.length_m == pytest.approx(8 * 0.03)

    def test_symbols_start_with_preamble(self):
        p = Packet.from_bitstring("11")
        assert tuple(p.symbols[:4]) == PREAMBLE

    def test_width_change_preserves_payload(self):
        p = Packet.from_bitstring("01", symbol_width_m=0.03)
        q = p.with_symbol_width(0.1)
        assert q.data_bits == p.data_bits
        assert q.symbol_width_m == 0.1


class TestTiming:
    def test_duration(self):
        p = Packet.from_bitstring("00", symbol_width_m=0.1)  # 0.8 m
        assert p.duration_at_speed(5.0) == pytest.approx(0.16)

    def test_symbol_rate_outdoor_case(self):
        """18 km/h over 10 cm symbols = 50 symbols/s (Section 5.3)."""
        p = Packet.from_bitstring("00", symbol_width_m=0.1)
        assert p.symbol_rate_at_speed(5.0) == pytest.approx(50.0)

    def test_non_positive_speed_rejected(self):
        p = Packet.from_bitstring("1")
        with pytest.raises(ValueError):
            p.duration_at_speed(0.0)
        with pytest.raises(ValueError):
            p.symbol_rate_at_speed(-1.0)
