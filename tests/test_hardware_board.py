"""Tests for repro.hardware.board (the two-receiver evaluation board)."""

import pytest

from repro.hardware.board import EvaluationBoard, ReceiverKind
from repro.hardware.frontend import FovCap
from repro.hardware.photodiode import PdGain


class TestBoard:
    def test_both_receivers_available(self):
        board = EvaluationBoard()
        pd = board.frontend(ReceiverKind.PHOTODIODE)
        led = board.frontend(ReceiverKind.RX_LED)
        assert "OPT101" in pd.detector.name
        assert "RX-LED" in led.detector.name

    def test_shared_adc(self):
        board = EvaluationBoard(sample_rate_hz=2000.0)
        pd = board.photodiode_frontend()
        led = board.led_frontend()
        assert pd.adc is led.adc
        assert pd.adc.sample_rate_hz == 2000.0

    def test_gain_override(self):
        board = EvaluationBoard(pd_gain=PdGain.G1)
        fe = board.photodiode_frontend(gain=PdGain.G3)
        assert fe.detector.saturation_lux == 5000.0

    def test_board_cap_kept_by_default(self):
        board = EvaluationBoard(pd_cap=FovCap.paper_cap())
        assert board.photodiode_frontend().cap is not None
        assert board.photodiode_frontend(cap=None).cap is None

    def test_led_never_capped(self):
        board = EvaluationBoard(pd_cap=FovCap.paper_cap())
        assert board.led_frontend().cap is None

    def test_all_frontends_cover_fig11_rows(self):
        board = EvaluationBoard()
        frontends = board.all_frontends()
        assert set(frontends) == {"PD-G1", "PD-G2", "PD-G3", "RX-LED"}
        saturations = [fe.detector.saturation_lux
                       for fe in frontends.values()]
        assert sorted(saturations) == [450.0, 1200.0, 5000.0, 35000.0]
