"""Golden-baseline regression tests for the benchmarked figures.

Each test re-runs one paper-figure experiment and compares its measured
outputs against the committed baseline in ``tests/baselines/``.  Any
drift — a decode rate moving, a spectral peak shifting — fails loudly
and writes a machine-readable diff to ``tests/baselines/diffs/`` (CI
uploads that directory as an artifact), so performance work on the
simulator or engine cannot silently change the reproduced results.

Baselines are regenerated deliberately with::

    PYTHONPATH=src python tests/baselines/capture.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import pytest

from tests.baselines.capture import GOLDEN_EXPERIMENTS

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Float comparison tolerances.  The experiments are fully seeded, so
#: drift beyond cross-platform arithmetic noise is a real change.
REL_TOL = 1e-6
ABS_TOL = 1e-9


def _diff(expected: Any, actual: Any, path: str,
          out: list[dict[str, Any]]) -> None:
    """Recursively collect mismatches between baseline and measurement."""
    if isinstance(expected, dict) or isinstance(actual, dict):
        if not (isinstance(expected, dict) and isinstance(actual, dict)):
            out.append({"path": path, "expected": expected,
                        "actual": actual, "reason": "type mismatch"})
            return
        for key in sorted(set(expected) | set(actual)):
            if key not in expected or key not in actual:
                out.append({"path": f"{path}.{key}",
                            "expected": expected.get(key, "<missing>"),
                            "actual": actual.get(key, "<missing>"),
                            "reason": "missing key"})
            else:
                _diff(expected[key], actual[key], f"{path}.{key}", out)
        return
    if isinstance(expected, (list, tuple)) or isinstance(actual,
                                                         (list, tuple)):
        if (not isinstance(expected, (list, tuple))
                or not isinstance(actual, (list, tuple))
                or len(expected) != len(actual)):
            out.append({"path": path, "expected": expected,
                        "actual": actual, "reason": "sequence mismatch"})
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _diff(e, a, f"{path}[{i}]", out)
        return
    # bool is an int subclass: compare exactly, before the float branch.
    if isinstance(expected, bool) or isinstance(actual, bool):
        if expected is not actual:
            out.append({"path": path, "expected": expected,
                        "actual": actual, "reason": "value changed"})
        return
    if isinstance(expected, (int, float)) and isinstance(actual,
                                                         (int, float)):
        if actual != pytest.approx(expected, rel=REL_TOL, abs=ABS_TOL):
            out.append({"path": path, "expected": expected,
                        "actual": actual, "reason": "numeric drift"})
        return
    if expected != actual:
        out.append({"path": path, "expected": expected,
                    "actual": actual, "reason": "value changed"})


def _diff_dir() -> Path:
    return Path(os.environ.get("GOLDEN_DIFF_DIR",
                               BASELINE_DIR / "diffs"))


@pytest.mark.parametrize("name", sorted(GOLDEN_EXPERIMENTS))
def test_golden_figure(name: str) -> None:
    baseline_path = BASELINE_DIR / f"{name}.json"
    assert baseline_path.exists(), (
        f"missing baseline {baseline_path}; run "
        f"`PYTHONPATH=src python tests/baselines/capture.py`")
    baseline = json.loads(baseline_path.read_text())
    assert baseline["passed"], f"{name} baseline was pinned failing"

    result = GOLDEN_EXPERIMENTS[name]()
    # Round-trip through JSON so tuples/numpy scalars in `measured`
    # compare on equal footing with the stored baseline.
    measured = json.loads(json.dumps(result.measured))

    mismatches: list[dict[str, Any]] = []
    _diff(baseline["measured"], measured, "measured", mismatches)
    if not result.passed:
        mismatches.append({"path": "passed", "expected": True,
                           "actual": False,
                           "reason": "shape-level claim now fails"})

    if mismatches:
        diff_dir = _diff_dir()
        diff_dir.mkdir(parents=True, exist_ok=True)
        diff_path = diff_dir / f"{name}.diff.json"
        diff_path.write_text(json.dumps(
            {"figure": name,
             "baseline": baseline["measured"],
             "measured": measured,
             "mismatches": mismatches}, indent=2, sort_keys=True) + "\n")
        lines = [f"golden baseline drift in {name} "
                 f"({len(mismatches)} mismatch(es); "
                 f"diff written to {diff_path}):"]
        for m in mismatches:
            lines.append(f"  {m['path']}: expected {m['expected']!r}, "
                         f"got {m['actual']!r} [{m['reason']}]")
        lines.append("if this change is intentional, regenerate with "
                     "`PYTHONPATH=src python tests/baselines/capture.py`")
        pytest.fail("\n".join(lines))


def test_capture_refuses_failing_baseline(tmp_path, monkeypatch) -> None:
    """The capture tool must never pin a failing figure."""
    import tests.baselines.capture as capture_mod

    def failing_experiment():
        from repro.analysis.experiments import ExperimentResult
        return ExperimentResult(experiment_id="figXX", title="t",
                                paper_claim="c", measured={}, passed=False)

    monkeypatch.setattr(capture_mod, "GOLDEN_EXPERIMENTS",
                        {"figxx": failing_experiment})
    with pytest.raises(RuntimeError, match="refusing to pin"):
        capture_mod.capture(tmp_path)
