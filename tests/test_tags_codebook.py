"""Tests for repro.tags.codebook (max-Hamming-distance code sets)."""

import pytest

from repro.tags.codebook import (
    Codebook,
    build_max_distance_codebook,
    hamming_distance,
    min_pairwise_distance,
)


class TestHamming:
    def test_identical(self):
        assert hamming_distance([1, 0, 1], [1, 0, 1]) == 0

    def test_all_different(self):
        assert hamming_distance([0, 0], [1, 1]) == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance([0], [0, 1])

    def test_min_pairwise(self):
        codes = [(0, 0, 0), (1, 1, 1), (0, 1, 1)]
        assert min_pairwise_distance(codes) == 1

    def test_min_pairwise_trivial(self):
        assert min_pairwise_distance([(0, 1)]) == 0


class TestCodebook:
    def test_nearest_classification(self):
        book = Codebook(codes=((0, 0, 0, 0), (1, 1, 1, 1)), n_bits=4)
        code, dist = book.nearest((0, 1, 0, 0))
        assert code == (0, 0, 0, 0)
        assert dist == 1

    def test_correctable_errors(self):
        book = Codebook(codes=((0, 0, 0, 0), (1, 1, 1, 1)), n_bits=4)
        assert book.min_distance == 4
        assert book.correctable_errors() == 1

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Codebook(codes=((0, 1), (0, 1)), n_bits=2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Codebook(codes=((0, 1, 0),), n_bits=2)

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError):
            Codebook(codes=((0, 2),), n_bits=2)


class TestGreedyConstruction:
    def test_two_codes_are_complements(self):
        """With 2 codes the greedy picks the all-ones complement."""
        book = build_max_distance_codebook(n_bits=4, n_codes=2)
        assert book.min_distance == 4

    def test_fewer_codes_more_distance(self):
        """Section 4.2: 'far less codes ... inter-Hamming distances are
        maximized'."""
        small = build_max_distance_codebook(n_bits=4, n_codes=4)
        full = build_max_distance_codebook(n_bits=4, n_codes=16)
        assert small.min_distance > full.min_distance

    def test_requested_size(self):
        book = build_max_distance_codebook(n_bits=5, n_codes=6)
        assert book.size == 6
        assert book.n_bits == 5

    def test_4bit_8codes_distance_two(self):
        """The extended Hamming-style bound: 8 codes of 4 bits, d = 2."""
        book = build_max_distance_codebook(n_bits=4, n_codes=8)
        assert book.min_distance == 2

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError):
            build_max_distance_codebook(n_bits=2, n_codes=5)

    def test_too_many_bits_rejected(self):
        with pytest.raises(ValueError):
            build_max_distance_codebook(n_bits=32, n_codes=2)
