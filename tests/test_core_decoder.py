"""Tests for repro.core.decoder (the Section 4.1 algorithm)."""

import numpy as np
import pytest

from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.channel.trace import SignalTrace
from repro.core.decoder import (
    AdaptiveThresholdDecoder,
    DecodeResult,
    DecoderConfig,
)
from repro.core.errors import DecodeError, PreambleNotFoundError
from repro.tags.encoding import Symbol

from .conftest import build_indoor_scene


def synthetic_packet_trace(symbols="HLHLHLHL", symbol_duration_s=0.4,
                           fs=200.0, high=100.0, low=20.0, base=10.0,
                           rise_fraction=0.15, noise=0.0, seed=0,
                           lead_s=1.0, tail_s=1.0):
    """Render a symbol string as a smooth two-level waveform."""
    rng = np.random.default_rng(seed)
    per_symbol = int(symbol_duration_s * fs)
    levels = [high if s == "H" else low for s in symbols]
    steps = np.concatenate([np.full(per_symbol, lv) for lv in levels])
    lead = np.full(int(lead_s * fs), base)
    tail = np.full(int(tail_s * fs), base)
    x = np.concatenate([lead, steps, tail]).astype(float)
    # Smooth the edges like FoV blur does.
    k = max(3, int(rise_fraction * per_symbol))
    kernel = np.hanning(k)
    kernel /= kernel.sum()
    x = np.convolve(x, kernel, mode="same")
    if noise > 0.0:
        x = x + rng.normal(0.0, noise, size=len(x))
    return SignalTrace(x, fs)


class TestConfigValidation:
    def test_threshold_rule(self):
        with pytest.raises(ValueError):
            DecoderConfig(threshold_rule="banana")

    def test_prominence_bounds(self):
        with pytest.raises(ValueError):
            DecoderConfig(min_prominence_fraction=0.0)

    def test_shrink_bounds(self):
        with pytest.raises(ValueError):
            DecoderConfig(window_shrink_fraction=0.5)

    def test_search_span_bounds(self):
        with pytest.raises(ValueError):
            DecoderConfig(clock_search_span=0.5)


class TestThresholds:
    def test_paper_formulas(self):
        """tau_r and tau_t exactly as defined in Section 4.1."""
        from repro.dsp.peaks import Extremum

        a = Extremum(index=0, time_s=1.0, value=0.9, kind="peak")
        b = Extremum(index=1, time_s=1.4, value=0.1, kind="valley")
        c = Extremum(index=2, time_s=1.8, value=0.8, kind="peak")
        tau_r, tau_t = AdaptiveThresholdDecoder.thresholds((a, b, c))
        assert tau_r == pytest.approx(((0.9 - 0.1) + (0.8 - 0.1)) / 2.0)
        assert tau_t == pytest.approx(0.4)

    def test_degenerate_anchors_rejected(self):
        from repro.dsp.peaks import Extremum

        a = Extremum(index=0, time_s=1.0, value=0.1, kind="peak")
        b = Extremum(index=1, time_s=1.4, value=0.9, kind="valley")
        c = Extremum(index=2, time_s=1.8, value=0.1, kind="peak")
        with pytest.raises(PreambleNotFoundError):
            AdaptiveThresholdDecoder.thresholds((a, b, c))


class TestSyntheticDecoding:
    @pytest.mark.parametrize("data_symbols,bits", [
        ("HLHL", "00"), ("LHHL", "10"), ("HLLH", "01"), ("LHLH", "11"),
        ("LHHLLHHL", "1010"),
    ])
    def test_decodes_known_payloads(self, data_symbols, bits):
        trace = synthetic_packet_trace("HLHL" + data_symbols)
        result = AdaptiveThresholdDecoder().decode(
            trace, n_data_symbols=len(data_symbols))
        assert result.symbol_string() == data_symbols
        assert result.bit_string() == bits
        assert result.preamble_verified

    def test_tau_t_matches_symbol_duration(self):
        trace = synthetic_packet_trace("HLHLHLHL", symbol_duration_s=0.5)
        result = AdaptiveThresholdDecoder().decode(trace, n_data_symbols=4)
        assert result.tau_t == pytest.approx(0.5, rel=0.1)

    def test_amplitude_invariance(self):
        """Per-packet thresholds: scaling and offset must not matter."""
        t1 = synthetic_packet_trace("HLHLLHHL", high=100.0, low=20.0, base=10.0)
        t2 = SignalTrace(t1.samples * 3.7 + 55.0, t1.sample_rate_hz)
        r1 = AdaptiveThresholdDecoder().decode(t1, n_data_symbols=4)
        r2 = AdaptiveThresholdDecoder().decode(t2, n_data_symbols=4)
        assert r1.symbol_string() == r2.symbol_string() == "LHHL"

    def test_speed_invariance(self):
        """Different symbol durations (same packet) decode identically."""
        for duration in (0.2, 0.4, 0.8):
            trace = synthetic_packet_trace("HLHLHLLH",
                                           symbol_duration_s=duration)
            result = AdaptiveThresholdDecoder().decode(trace,
                                                       n_data_symbols=4)
            assert result.bit_string() == "01"

    def test_noise_tolerance(self):
        trace = synthetic_packet_trace("HLHLLHHL", noise=4.0, seed=1)
        result = AdaptiveThresholdDecoder().decode(trace, n_data_symbols=4)
        assert result.bit_string() == "10"

    def test_auto_length_mode(self):
        trace = synthetic_packet_trace("HLHLLHHL")
        result = AdaptiveThresholdDecoder().decode(trace)
        assert result.bit_string() == "10"

    def test_invalid_manchester_reported(self):
        trace = synthetic_packet_trace("HLHLHHHH")
        result = AdaptiveThresholdDecoder().decode(trace, n_data_symbols=4)
        assert result.bits is None
        assert not result.success
        assert result.symbol_string() == "HHHH"


class TestFailureModes:
    def test_constant_trace(self):
        trace = SignalTrace(np.full(500, 42.0), 100.0)
        with pytest.raises(PreambleNotFoundError):
            AdaptiveThresholdDecoder().decode(trace)

    def test_pure_noise(self):
        rng = np.random.default_rng(0)
        trace = SignalTrace(rng.normal(100.0, 1.0, 800), 100.0)
        with pytest.raises(PreambleNotFoundError):
            AdaptiveThresholdDecoder().decode(trace)

    def test_truncated_after_preamble(self):
        trace = synthetic_packet_trace("HLHL", tail_s=0.0)
        with pytest.raises((DecodeError, PreambleNotFoundError)):
            AdaptiveThresholdDecoder().decode(trace, n_data_symbols=8)

    def test_bad_n_symbols(self):
        trace = synthetic_packet_trace("HLHLHLHL")
        with pytest.raises(ValueError):
            AdaptiveThresholdDecoder().decode(trace, n_data_symbols=0)


class TestThresholdRules:
    def test_rules_agree_on_valley_anchored_signal(self):
        """With the valley near zero the 'paper' and 'midpoint' rules
        coincide (DESIGN.md Section 5)."""
        trace = synthetic_packet_trace("HLHLLHHL", high=1.0, low=0.02,
                                       base=0.0)
        r_mid = AdaptiveThresholdDecoder(
            DecoderConfig(threshold_rule="midpoint")).decode(
                trace, n_data_symbols=4)
        r_paper = AdaptiveThresholdDecoder(
            DecoderConfig(threshold_rule="paper")).decode(
                trace, n_data_symbols=4)
        assert r_mid.symbol_string() == r_paper.symbol_string() == "LHHL"

    def test_midpoint_survives_pedestal(self):
        """A large DC pedestal breaks the literal tau_r comparison but
        not the midpoint rule."""
        trace = synthetic_packet_trace("HLHLLHHL", high=520.0, low=450.0,
                                       base=440.0)
        r_mid = AdaptiveThresholdDecoder(
            DecoderConfig(threshold_rule="midpoint")).decode(
                trace, n_data_symbols=4)
        assert r_mid.bit_string() == "10"
        r_paper = AdaptiveThresholdDecoder(
            DecoderConfig(threshold_rule="paper")).decode(
                trace, n_data_symbols=4)
        # The paper rule compares max against the ~70-count swing, which
        # every pedestal-riding window exceeds: all HIGH.
        assert r_paper.symbol_string() == "HHHH"


class TestEndToEnd:
    def test_fig5_scene_decodes(self, indoor_receiver):
        scene = build_indoor_scene(bits="10")
        sim = ChannelSimulator(scene, indoor_receiver,
                               SimulatorConfig(sample_rate_hz=500.0, seed=42))
        result = AdaptiveThresholdDecoder().decode(sim.capture_pass(),
                                                   n_data_symbols=4)
        assert result.bit_string() == "10"

    def test_decode_result_reports_windows(self, indoor_capture_00):
        result = AdaptiveThresholdDecoder().decode(indoor_capture_00,
                                                   n_data_symbols=4)
        assert len(result.windows) == 4
        for w in result.windows:
            assert w.t_end_s > w.t_start_s


class TestVectorizedRefineClock:
    """The broadcast clock search is bit-identical to the triple loop."""

    def _prepared(self, trace):
        decoder = AdaptiveThresholdDecoder()
        try:
            points, smooth = decoder._acquire(trace)
        except PreambleNotFoundError:
            pytest.skip("acquisition rejected this noise draw; the "
                        "clock search never runs")
        tau_r, tau_t = decoder.thresholds(points)
        level = decoder._threshold_level(tau_r, points[1].value)
        return decoder, points, smooth, tau_r, tau_t, level

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("symbols", ["HLHLHLLH", "HLHLLHHLHLLH"])
    def test_matches_reference_on_noisy_traces(self, seed, symbols):
        trace = synthetic_packet_trace(symbols, noise=3.0, seed=seed)
        decoder, points, smooth, tau_r, tau_t, level = self._prepared(trace)
        times = trace.times()
        for n_data in (None, len(symbols) - 4):
            vec = decoder._refine_clock(smooth, times, points, tau_t,
                                        tau_r, level, n_data_symbols=n_data)
            ref = decoder._refine_clock_reference(
                smooth, times, points, tau_t, tau_r, level,
                n_data_symbols=n_data)
            assert vec == ref

    def test_decode_matches_reference_end_to_end(self):
        """Full decodes driven by either clock search agree exactly."""
        trace = synthetic_packet_trace("HLHLHLLHHLLH", noise=2.0, seed=3)
        vec = AdaptiveThresholdDecoder().decode(trace)

        class ReferenceDecoder(AdaptiveThresholdDecoder):
            _refine_clock = AdaptiveThresholdDecoder._refine_clock_reference

        ref = ReferenceDecoder().decode(trace)
        assert vec.symbols == ref.symbols
        assert vec.bits == ref.bits
        assert vec.tau_t == ref.tau_t
        assert vec.threshold_level == ref.threshold_level
        assert [(w.t_start_s, w.t_end_s, w.max_value, w.symbol)
                for w in vec.windows] == [
                    (w.t_start_s, w.t_end_s, w.max_value, w.symbol)
                    for w in ref.windows]

    def test_segment_reduce_matches_scalar_windows(self):
        """The reduceat window extraction equals _window_max/_window_range
        on randomly placed (including empty) windows."""
        from repro.core.decoder import _segment_reduce, _window_slices

        rng = np.random.default_rng(11)
        trace = synthetic_packet_trace("HLHLHLLH", noise=1.0, seed=5)
        decoder = AdaptiveThresholdDecoder()
        _, smooth = decoder._acquire(trace)
        times = trace.times()
        starts = rng.uniform(times[0] - 0.5, times[-1] + 0.5, size=200)
        ends = starts + rng.uniform(-0.05, 0.4, size=200)
        i0, i1, valid = _window_slices(times, starts, ends)
        maxima = _segment_reduce(np.maximum, smooth, -np.inf, i0, i1)
        minima = _segment_reduce(np.minimum, smooth, np.inf, i0, i1)
        for k in range(200):
            w_max = decoder._window_max(smooth, times, starts[k], ends[k])
            w_range = decoder._window_range(smooth, times, starts[k],
                                            ends[k])
            if w_max is None:
                assert not valid[k]
            else:
                assert valid[k]
                assert maxima[k] == w_max
                assert maxima[k] - minima[k] == w_range
