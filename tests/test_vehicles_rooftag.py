"""Tests for repro.vehicles.rooftag (tagged cars + two-phase decode)."""

import numpy as np
import pytest

from repro.channel.mobility import ConstantSpeed
from repro.channel.scene import MovingObject, PassiveScene
from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.hardware.frontend import ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver
from repro.optics.geometry import Vec3
from repro.optics.materials import TARMAC
from repro.optics.reflection import IlluminationGeometry
from repro.optics.sources import Sun
from repro.tags.packet import Packet
from repro.vehicles.profiles import volvo_v40
from repro.vehicles.rooftag import TaggedCar, TwoPhaseDecoder, tagged_car_surface


def tagged_pass(bits="00", lux=6200.0, height=0.75, seed=3):
    packet = Packet.from_bitstring(bits, symbol_width_m=0.1)
    surface = TaggedCar(car=volvo_v40(), packet=packet).surface()
    receiver = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=seed)
    scene = PassiveScene(source=Sun(ground_lux=lux), receiver_height_m=height,
                         ground=TARMAC,
                         objects=[MovingObject(surface,
                                               ConstantSpeed(5.0, -1.5),
                                               "tagged-car")])
    sim = ChannelSimulator(scene, receiver,
                           SimulatorConfig(sample_rate_hz=2000.0, seed=seed))
    return sim.capture_pass()


#: The Section 5 illumination (cloudy 45-degree sun).
SUN_45 = IlluminationGeometry(
    incident_direction=Vec3(1.0, 0.0, -1.0).normalized(),
    view_direction=Vec3(0.0, 0.0, 1.0),
    diffuse_fraction=0.6,
)


class TestSurfaceComposition:
    def test_tag_on_roof(self):
        car = volvo_v40()
        packet = Packet.from_bitstring("00", symbol_width_m=0.1)
        surface = tagged_car_surface(car, packet)
        roof_start, _ = car.segment_span("roof")
        # Sample inside the tag's first HIGH strip.
        x_tag = roof_start + 0.05 + 0.05
        rho_tag = surface.reflectance_samples(np.array([x_tag]), SUN_45)[0]
        # Tag aluminium outshines bare roof paint.
        rho_roof = car.reflectance_samples(np.array([x_tag]), SUN_45)[0]
        assert rho_tag > rho_roof

    def test_length_is_car_length(self):
        car = volvo_v40()
        packet = Packet.from_bitstring("00", symbol_width_m=0.1)
        assert tagged_car_surface(car, packet).length_m == pytest.approx(
            car.length_m)

    def test_oversized_tag_rejected(self):
        car = volvo_v40()
        long_packet = Packet.from_bitstring("00000000", symbol_width_m=0.1)
        with pytest.raises(ValueError, match="roof"):
            tagged_car_surface(car, long_packet)

    def test_tag_span_accessor(self):
        tc = TaggedCar(car=volvo_v40(),
                       packet=Packet.from_bitstring("00", symbol_width_m=0.1))
        start, end = tc.tag_span_m()
        roof_start, roof_end = tc.car.segment_span("roof")
        assert roof_start < start < end <= roof_end


class TestTwoPhaseDecoder:
    def test_decodes_tagged_car(self):
        result = TwoPhaseDecoder().decode(tagged_pass("00"), n_data_symbols=4)
        assert result.bit_string() == "00"

    def test_decodes_other_code(self):
        result = TwoPhaseDecoder().decode(tagged_pass("10"), n_data_symbols=4)
        assert result.bit_string() == "10"

    def test_try_decode_returns_none_on_failure(self):
        from repro.channel.trace import SignalTrace

        flat = SignalTrace(np.full(2000, 100.0), 2000.0)
        assert TwoPhaseDecoder().try_decode(flat) is None

    def test_missing_long_preamble_raises(self):
        from repro.channel.trace import SignalTrace
        from repro.core.errors import PreambleNotFoundError

        flat = SignalTrace(np.full(2000, 100.0), 2000.0)
        with pytest.raises(PreambleNotFoundError, match="long-duration"):
            TwoPhaseDecoder().decode(flat)
