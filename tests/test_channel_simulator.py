"""Tests for repro.channel.simulator — the core substrate."""

import numpy as np
import pytest

from repro.channel.mobility import ConstantSpeed
from repro.channel.scene import MovingObject, PassiveScene
from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.hardware.frontend import FovCap, ReceiverFrontEnd
from repro.hardware.photodiode import PdGain, Photodiode
from repro.optics.sources import Sun
from repro.optics.materials import TARMAC
from repro.tags.packet import Packet
from repro.tags.surface import TagSurface

from .conftest import build_indoor_scene, build_outdoor_scene


def _receiver(seed=1):
    return ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                            cap=FovCap.paper_cap(), seed=seed)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(sample_rate_hz=0.0)
        with pytest.raises(ValueError):
            SimulatorConfig(spatial_step_m=-0.1)
        with pytest.raises(ValueError):
            SimulatorConfig(kernel_method="banana")
        with pytest.raises(ValueError):
            SimulatorConfig(profile_oversample=0)


class TestGeometry:
    def test_footprint_radius(self):
        sim = ChannelSimulator(build_indoor_scene(height_m=0.5), _receiver())
        fov = _receiver().effective_fov
        expected = 0.5 * np.tan(np.radians(fov.half_angle_deg))
        assert sim.footprint_radius_m == pytest.approx(expected)

    def test_kernel_cached(self):
        sim = ChannelSimulator(build_indoor_scene(), _receiver())
        assert sim.kernel is sim.kernel

    def test_ambient_equivalent_coupling_positive_and_stable(self):
        """C = 2*pi*Omega_eff/Omega_fov is an O(1) constant across
        heights and FoVs (see DESIGN.md)."""
        couplings = []
        for h in (0.2, 0.5, 1.0):
            sim = ChannelSimulator(build_indoor_scene(height_m=h),
                                   _receiver())
            couplings.append(sim.ambient_equivalent_coupling())
        assert all(1.0 < c < 6.0 for c in couplings)
        assert max(couplings) / min(couplings) < 1.3


class TestOpticalWaveform:
    def test_flat_scene_constant(self):
        scene = PassiveScene(source=Sun(ground_lux=1000.0),
                             receiver_height_m=0.5, ground=TARMAC)
        sim = ChannelSimulator(scene, _receiver(),
                               SimulatorConfig(include_noise=False))
        t = np.linspace(0.0, 0.1, 128)
        lux = sim.aperture_illuminance(t)
        assert float(lux.std()) < 1e-6 * float(lux.mean())

    def test_tag_produces_modulation(self):
        sim = ChannelSimulator(build_indoor_scene(), _receiver(),
                               SimulatorConfig(include_noise=False,
                                               sample_rate_hz=500.0))
        trace = sim.optical_pass()
        assert trace.swing() > 0.1 * trace.samples.max()

    def test_high_symbol_brighter_than_low(self):
        """The aluminium strips must read above the napkin strips."""
        scene = build_indoor_scene(bits="00", symbol_width_m=0.05)
        sim = ChannelSimulator(scene, _receiver(),
                               SimulatorConfig(include_noise=False,
                                               sample_rate_hz=500.0))
        trace = sim.optical_pass()
        x = trace.normalized().samples
        # An alternating pattern: both levels visited.
        assert (x > 0.8).sum() > 10
        assert (x < 0.2).sum() > 10


class TestBlur:
    def test_higher_receiver_blurs_more(self):
        """Fig. 2(b): a wider footprint mixes neighbouring symbols."""
        def modulation_depth(height):
            scene = build_indoor_scene(bits="00", symbol_width_m=0.03,
                                       height_m=height)
            sim = ChannelSimulator(scene, _receiver(),
                                   SimulatorConfig(include_noise=False,
                                                   sample_rate_hz=500.0))
            trace = sim.optical_pass()
            x = trace.samples - trace.samples.min()
            return float(x.max())

        d_low = modulation_depth(0.2)
        d_high = modulation_depth(0.6)
        assert d_high < d_low

    def test_narrow_fov_resolves_better(self):
        scene = build_outdoor_scene(symbol_width_m=0.1, height_m=0.25)

        def depth(fe):
            sim = ChannelSimulator(scene, fe,
                                   SimulatorConfig(include_noise=False))
            tr = sim.optical_pass()
            x = tr.samples
            return float(x.max() - x.min()) / float(x.mean())

        wide = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G2))
        narrow = wide.with_cap()
        assert depth(narrow) > depth(wide)


class TestCapture:
    def test_deterministic(self):
        scene = build_indoor_scene()
        a = ChannelSimulator(scene, _receiver(seed=9),
                             SimulatorConfig(seed=9, sample_rate_hz=500.0))
        b = ChannelSimulator(scene, _receiver(seed=9),
                             SimulatorConfig(seed=9, sample_rate_hz=500.0))
        assert np.array_equal(a.capture_pass().samples,
                              b.capture_pass().samples)

    def test_counts_in_adc_range(self):
        sim = ChannelSimulator(build_outdoor_scene(),
                               ReceiverFrontEnd(
                                   detector=Photodiode.opt101(gain=PdGain.G1),
                                   seed=1),
                               SimulatorConfig(seed=1))
        trace = sim.capture_pass()
        assert trace.samples.min() >= 0
        assert trace.samples.max() <= 1023

    def test_meta_populated(self):
        sim = ChannelSimulator(build_indoor_scene(), _receiver(),
                               SimulatorConfig(sample_rate_hz=500.0))
        trace = sim.capture_pass()
        assert trace.meta["kind"] == "rss"
        assert trace.meta["height_m"] == 0.2
        assert "OPT101" in trace.meta["receiver"]

    def test_pass_window_covers_object(self):
        scene = build_indoor_scene()
        sim = ChannelSimulator(scene, _receiver(),
                               SimulatorConfig(sample_rate_hz=500.0))
        t_start, duration = sim.pass_window()
        obj = scene.objects[0]
        t_in, t_out = obj.entry_exit_times(sim.footprint_radius_m)
        assert t_start <= t_in
        assert t_start + duration >= t_out

    def test_pass_window_requires_objects(self):
        scene = PassiveScene(source=Sun(), receiver_height_m=0.5)
        sim = ChannelSimulator(scene, _receiver())
        with pytest.raises(ValueError):
            sim.pass_window()

    def test_bad_duration(self):
        sim = ChannelSimulator(build_indoor_scene(), _receiver())
        with pytest.raises(ValueError):
            sim.capture(0.0)


class TestKernelMethods:
    def test_chord_and_exact_agree(self):
        """The fast chord kernel matches the ray-integration kernel on a
        realistic waveform (cross-validation promised in DESIGN.md)."""
        scene = build_indoor_scene(bits="10", symbol_width_m=0.04)
        traces = {}
        for method in ("chord", "exact"):
            sim = ChannelSimulator(
                scene, _receiver(),
                SimulatorConfig(include_noise=False, sample_rate_hz=400.0,
                                kernel_method=method))
            traces[method] = sim.optical_pass().normalized().samples
        n = min(len(traces["chord"]), len(traces["exact"]))
        rmse = float(np.sqrt(np.mean(
            (traces["chord"][:n] - traces["exact"][:n]) ** 2)))
        assert rmse < 0.05


class TestMultiObject:
    def test_shares_mix_linearly(self):
        tag_h = TagSurface.from_packet(
            Packet.from_bitstring("00", symbol_width_m=0.08))
        scene_full = PassiveScene(
            source=Sun(ground_lux=1000.0), receiver_height_m=0.3,
            ground=TARMAC,
            objects=[MovingObject(tag_h, ConstantSpeed(0.5, -0.5), "a",
                                  fov_share=1.0)])
        scene_half = PassiveScene(
            source=Sun(ground_lux=1000.0), receiver_height_m=0.3,
            ground=TARMAC,
            objects=[MovingObject(tag_h, ConstantSpeed(0.5, -0.5), "a",
                                  fov_share=0.5)])
        fe = _receiver()
        cfg = SimulatorConfig(include_noise=False, sample_rate_hz=400.0)
        full = ChannelSimulator(scene_full, fe, cfg).optical_pass()
        half = ChannelSimulator(scene_half, fe, cfg).optical_pass()
        assert half.swing() == pytest.approx(full.swing() * 0.5, rel=0.15)


class TestHotPathCaching:
    """PR 3 perf work: cached scene-derived quantities and bounded-
    memory chunked evaluation must not change a single sample."""

    def test_rho_chunking_matches_one_shot(self):
        """A tiny chunk budget (many slices) reproduces the one-shot
        matrix product to machine precision.

        Exact bit equality is not guaranteed here: BLAS may reassociate
        the per-row reduction differently for different matrix heights.
        The *default* budget keeps paper-scale captures in one chunk,
        where the computation is literally the pre-chunking one.
        """
        scene = build_indoor_scene(bits="10")
        one_shot = ChannelSimulator(scene, _receiver(),
                                    SimulatorConfig(sample_rate_hz=500.0))
        chunked = ChannelSimulator(scene, _receiver(),
                                   SimulatorConfig(sample_rate_hz=500.0,
                                                   rho_chunk_elements=64))
        t = one_shot.time_grid(1.5)
        reference = one_shot.weighted_luminance(t)
        sliced = chunked.weighted_luminance(t)
        assert np.allclose(sliced, reference, rtol=1e-12, atol=0.0)

    def test_default_budget_single_chunk(self):
        """Paper-scale captures stay in one chunk under the default
        budget, so the default output is bit-identical by construction."""
        config = SimulatorConfig(sample_rate_hz=2000.0)
        sim = ChannelSimulator(build_indoor_scene(bits="10"), _receiver(),
                               config)
        n_offsets = len(sim.kernel.offsets)
        n_samples = len(sim.time_grid(*reversed(sim.pass_window())))
        assert config.rho_chunk_elements // n_offsets >= n_samples

    def test_chunk_budget_validated(self):
        with pytest.raises(ValueError):
            SimulatorConfig(rho_chunk_elements=0)

    def test_repeat_capture_identical_and_cached(self):
        """Back-to-back captures agree exactly and reuse the cached
        geometry/profile instead of recomputing them."""
        sim = ChannelSimulator(build_indoor_scene(bits="10"), _receiver(),
                               SimulatorConfig(sample_rate_hz=500.0,
                                               seed=7))
        first = sim.capture_pass()
        assert sim._geometry is not None
        assert sim._profiles and sim._static_field is not None
        geometry = sim._geometry
        second = sim.capture_pass()
        assert sim._geometry is geometry
        assert np.array_equal(first.samples, second.samples)

    def test_geometry_computed_once_per_capture_batch(self):
        """weighted_luminance derives the illumination geometry once —
        the old code asked the scene twice per call (once directly,
        once inside the profile sampling)."""
        scene = build_indoor_scene(bits="10")
        calls = []
        original = scene.illumination_geometry

        def counting():
            calls.append(1)
            return original()

        scene.illumination_geometry = counting
        sim = ChannelSimulator(scene, _receiver(),
                               SimulatorConfig(sample_rate_hz=500.0))
        sim.capture_pass()
        assert len(calls) == 1
        sim.capture_pass()
        assert len(calls) == 1

    def test_no_object_scene_unchanged(self):
        """The unified rho path covers object-free scenes too."""
        scene = build_indoor_scene()
        scene = PassiveScene(source=scene.source,
                             receiver_height_m=scene.receiver_height_m,
                             objects=[], ground=scene.ground,
                             atmosphere=scene.atmosphere)
        sim = ChannelSimulator(scene, _receiver(),
                               SimulatorConfig(sample_rate_hz=500.0))
        t = sim.time_grid(0.25)
        lum = sim.weighted_luminance(t)
        assert lum.shape == t.shape
        assert np.all(lum >= 0.0)
