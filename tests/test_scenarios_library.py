"""Scenario library: registry, expansion smoke, composition, CLI."""

from __future__ import annotations

import pytest

from repro.engine.cli import main as cli_main
from repro.engine.spec import ScenarioSpec
from repro.scenarios import (
    FAMILIES,
    ScenarioFamily,
    compose,
    describe_families,
    expand_family,
    family_names,
    get_family,
    register,
    seed_stream,
)
from repro.scenarios.samplers import (
    jittered,
    kmh,
    log_uniform,
    pick,
    random_bits,
    uniform,
)

ALL_FAMILIES = family_names()


class TestRegistry:
    def test_at_least_ten_families(self):
        assert len(ALL_FAMILIES) >= 10

    def test_descriptions_listed(self):
        listing = describe_families()
        for name in ALL_FAMILIES:
            assert name in listing

    def test_get_family_by_name(self):
        assert get_family("convoy").name == "convoy"

    def test_unknown_family_lists_known(self):
        with pytest.raises(KeyError, match="convoy"):
            get_family("warp_drive")

    def test_empty_expression_rejected(self):
        with pytest.raises(ValueError):
            get_family("  ")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("convoy", "dup")(lambda base, count, rng: [])

    def test_separator_names_rejected_at_registration(self):
        # '*'/',' are composition syntax — a registered name carrying
        # them could never be resolved by get_family.
        for bad in ("a*b", "a,b"):
            with pytest.raises(ValueError, match="cannot contain"):
                register(bad, "d")(lambda base, count, rng: [])


class TestFamilySmoke:
    """Satellite: every family expands without error, at scale."""

    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_expands_to_at_least_100_valid_specs(self, name):
        specs = expand_family(name, count=100, seed=0)
        assert len(specs) == 100
        assert all(isinstance(s, ScenarioSpec) for s in specs)
        # ScenarioSpec validates in __post_init__; resolving must also
        # succeed (concrete rates, start positions, derived seeds).
        resolved = [s.resolve() for s in specs]
        assert all(r.seed is not None for r in resolved)

    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_expansion_is_essentially_unique(self, name):
        specs = expand_family(name, count=100, seed=0)
        assert len({s.canonical_json() for s in specs}) == 100

    def test_count_respected_for_any_size(self):
        for count in (1, 7, 100, 257):
            assert len(expand_family("fog", count=count)) == count

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            expand_family("fog", count=0)

    def test_template_fields_survive_layers(self):
        template = ScenarioSpec(bits="0110", symbol_width_m=0.07)
        for layer in ("fog", "rain", "night", "variable_speed"):
            for spec in expand_family(layer, count=5, template=template):
                assert spec.bits == "0110"
                assert spec.symbol_width_m == 0.07


class TestComposition:
    def test_compose_two_families(self):
        specs = expand_family("convoy*fog", count=100, seed=1)
        assert len(specs) == 100
        # Every composed spec carries both worlds: convoy traffic
        # fields and a fog visibility.
        assert all(s.ground == "tarmac" for s in specs)
        assert all(s.visibility_m is not None for s in specs)

    def test_comma_syntax_equivalent(self):
        a = expand_family("convoy*fog", count=20, seed=5)
        b = expand_family("convoy,fog", count=20, seed=5)
        assert [s.canonical_json() for s in a] == \
            [s.canonical_json() for s in b]

    def test_three_way_composition(self):
        specs = expand_family("convoy*rain*fluorescent_flicker",
                              count=100, seed=2)
        assert len(specs) == 100
        assert all(s.source == "fluorescent" for s in specs)
        assert all(s.visibility_m is not None for s in specs)
        assert all(s.car is not None for s in specs)

    def test_mul_operator(self):
        fam = FAMILIES["night"] * FAMILIES["fog"]
        assert fam.name == "night*fog"
        assert len(fam.expand(count=12)) == 12

    def test_later_stage_wins_conflicts(self):
        # night sets low sun lux; sunlight_ramp applied after rewrites
        # it with the daylight ramp.
        specs = expand_family("night*sunlight_ramp", count=30, seed=0)
        assert max(s.ground_lux for s in specs) > 1000.0

    def test_compose_requires_a_family(self):
        with pytest.raises(ValueError):
            compose()


class TestScenarioFamilyContract:
    def test_name_validated(self):
        with pytest.raises(ValueError):
            ScenarioFamily(name="Bad Name", description="d",
                           variants=lambda b, c, r: [b] * c)

    def test_description_required(self):
        with pytest.raises(ValueError):
            ScenarioFamily(name="ok", description="",
                           variants=lambda b, c, r: [b] * c)

    def test_wrong_variant_count_caught(self):
        fam = ScenarioFamily(name="short", description="d",
                             variants=lambda b, c, r: [b])
        with pytest.raises(RuntimeError, match="produced 1 specs"):
            fam.expand(count=3)

    def test_seed_stream_deterministic_and_sensitive(self):
        a = seed_stream("x", 1).integers(2**32)
        b = seed_stream("x", 1).integers(2**32)
        c = seed_stream("x", 2).integers(2**32)
        assert a == b
        assert a != c


class TestSamplers:
    def test_scalars_are_plain_python(self, rng):
        assert type(uniform(rng, 0.0, 1.0)) is float
        assert type(log_uniform(rng, 1.0, 10.0)) is float
        assert type(jittered(rng, 5.0)) is float

    def test_log_uniform_range_and_validation(self, rng):
        vals = [log_uniform(rng, 10.0, 1000.0) for _ in range(200)]
        assert all(10.0 <= v <= 1000.0 for v in vals)
        with pytest.raises(ValueError):
            log_uniform(rng, 0.0, 1.0)

    def test_pick_covers_options(self, rng):
        seen = {pick(rng, ("a", "b", None)) for _ in range(100)}
        assert seen == {"a", "b", None}
        with pytest.raises(ValueError):
            pick(rng, ())

    def test_random_bits(self, rng):
        bits = random_bits(rng, 16)
        assert len(bits) == 16 and set(bits) <= {"0", "1"}
        with pytest.raises(ValueError):
            random_bits(rng, 0)

    def test_jittered_validation(self, rng):
        with pytest.raises(ValueError):
            jittered(rng, 1.0, relative=-0.1)

    def test_kmh(self):
        assert kmh(18.0) == pytest.approx(5.0)


class TestCliIntegration:
    """Acceptance: every family is runnable via --scenario."""

    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_sweep_scenario_runs(self, name, capsys):
        assert cli_main(["sweep", "--scenario", name, "--count", "1"]) == 0
        assert "ran 1 scenarios" in capsys.readouterr().out

    def test_sweep_composed_with_axis(self, capsys):
        code = cli_main(["sweep", "--scenario", "night*fog",
                         "--count", "2", "--axis", "seed=1,2",
                         "--group-by", "seed"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ran 4 scenarios" in out
        assert "decode rate by seed" in out

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert cli_main(["sweep", "--scenario", "warp_drive"]) == 2
        assert "warp_drive" in capsys.readouterr().err

    def test_count_without_scenario_rejected(self, capsys):
        assert cli_main(["sweep", "--count", "5",
                         "--axis", "seed=1,2"]) == 2
        assert "--scenario" in capsys.readouterr().err

    def test_scenarios_subcommand_lists(self, capsys):
        assert cli_main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ALL_FAMILIES:
            assert name in out
