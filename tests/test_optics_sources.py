"""Tests for repro.optics.sources."""

import math

import numpy as np
import pytest

from repro.optics.geometry import Vec3
from repro.optics.sources import (
    CompositeSource,
    FluorescentCeiling,
    IncandescentBulb,
    LedLamp,
    Sun,
)


class TestLedLamp:
    def test_ground_peak_under_lamp(self):
        lamp = LedLamp(position=Vec3(0.1, 0.0, 0.3), luminous_intensity=5.0)
        xs = np.linspace(-0.5, 0.5, 201)
        e = lamp.ground_illuminance(xs, 0.0)
        assert xs[np.argmax(e)] == pytest.approx(0.1, abs=0.01)

    def test_inverse_square_with_height(self):
        low = LedLamp(position=Vec3(0, 0, 0.2), luminous_intensity=5.0)
        high = LedLamp(position=Vec3(0, 0, 0.4), luminous_intensity=5.0)
        e_low = float(low.ground_illuminance(0.0, 0.0))
        e_high = float(high.ground_illuminance(0.0, 0.0))
        assert e_low / e_high == pytest.approx(4.0)

    def test_dc_flicker(self):
        lamp = LedLamp()
        t = np.linspace(0.0, 0.1, 100)
        assert np.allclose(lamp.flicker(t), 1.0)

    def test_incident_direction_points_down_and_towards_point(self):
        lamp = LedLamp(position=Vec3(0.0, 0.0, 0.5))
        d = lamp.incident_direction(0.5)
        assert d.z < 0.0
        assert d.x > 0.0
        assert d.norm() == pytest.approx(1.0)

    def test_collimated(self):
        assert LedLamp().diffuse_fraction() == 0.0

    def test_below_ground_rejected(self):
        with pytest.raises(ValueError):
            LedLamp(position=Vec3(0, 0, -0.1))


class TestFluorescentCeiling:
    def test_uniform_ground(self):
        src = FluorescentCeiling(ground_lux=300.0)
        xs = np.linspace(-1.0, 1.0, 11)
        e = src.ground_illuminance(xs, 0.0)
        assert np.allclose(e, e[0])

    def test_ac_ripple_at_100hz(self):
        src = FluorescentCeiling(ground_lux=300.0, ripple_depth=0.35)
        t = np.linspace(0.0, 0.02, 2001)  # one 100 Hz period is 10 ms
        f = src.flicker(t)
        # Mean level preserved; modulation present.
        assert float(np.mean(f)) == pytest.approx(1.0, abs=0.01)
        assert f.max() - f.min() > 0.2
        # Periodicity at 10 ms.
        assert f[0] == pytest.approx(f[1000], abs=1e-6)

    def test_diffuse(self):
        assert FluorescentCeiling().diffuse_fraction() == 1.0

    def test_ripple_depth_bounds(self):
        with pytest.raises(ValueError):
            FluorescentCeiling(ripple_depth=1.0)


class TestIncandescent:
    def test_weaker_ripple_than_fluorescent(self):
        t = np.linspace(0.0, 0.05, 2000)
        fluor = FluorescentCeiling(ripple_depth=0.35).flicker(t)
        inc = IncandescentBulb().flicker(t)
        assert (inc.max() - inc.min()) < (fluor.max() - fluor.min())

    def test_mostly_diffuse(self):
        assert 0.0 < IncandescentBulb().diffuse_fraction() <= 1.0


class TestSun:
    def test_uniform_and_constant(self):
        sun = Sun(ground_lux=6200.0)
        xs = np.linspace(-10.0, 10.0, 7)
        e = sun.ground_illuminance(xs, 0.0)
        assert np.allclose(e, 6200.0)

    def test_incident_direction_elevation(self):
        sun = Sun(elevation_deg=90.0)
        d = sun.incident_direction()
        assert d.z == pytest.approx(-1.0)
        sun45 = Sun(elevation_deg=45.0)
        d45 = sun45.incident_direction()
        assert d45.z == pytest.approx(-math.sin(math.radians(45.0)))

    def test_cloud_drift(self):
        sun = Sun(ground_lux=5000.0, cloud_drift_depth=0.2,
                  cloud_drift_period_s=10.0)
        t = np.linspace(0.0, 10.0, 1001)
        f = sun.flicker(t)
        assert f.max() == pytest.approx(1.2, abs=0.01)
        assert f.min() == pytest.approx(0.8, abs=0.01)

    def test_elevation_bounds(self):
        with pytest.raises(ValueError):
            Sun(elevation_deg=0.0)
        with pytest.raises(ValueError):
            Sun(elevation_deg=91.0)

    def test_noise_floor_equals_ground(self):
        sun = Sun(ground_lux=3700.0)
        assert float(sun.receiver_plane_illuminance(0.0)) == pytest.approx(3700.0)


class TestCompositeSource:
    def test_superposition(self):
        a = Sun(ground_lux=1000.0)
        b = FluorescentCeiling(ground_lux=200.0, ripple_depth=0.0)
        comp = CompositeSource(sources=[a, b])
        e = float(np.asarray(comp.ground_illuminance(0.0, 0.0)))
        assert e == pytest.approx(1200.0)

    def test_diffuse_fraction_weighted(self):
        a = Sun(ground_lux=1000.0, sky_diffuse_fraction=0.0)
        b = FluorescentCeiling(ground_lux=1000.0, ripple_depth=0.0)
        comp = CompositeSource(sources=[a, b])
        assert comp.diffuse_fraction() == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeSource(sources=[])
