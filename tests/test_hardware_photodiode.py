"""Tests for repro.hardware.photodiode (the Fig. 11 PD rows)."""

import numpy as np
import pytest

from repro.hardware.photodiode import (
    OPT101_FOV_DEG,
    OpticalDetector,
    PdGain,
    Photodiode,
    normalized_sensitivity,
)
from repro.optics.geometry import FieldOfView


class TestPdGainTable:
    """The gain enum must carry Fig. 11's numbers verbatim."""

    def test_saturation_values(self):
        assert PdGain.G1.saturation_lux == 450.0
        assert PdGain.G2.saturation_lux == 1200.0
        assert PdGain.G3.saturation_lux == 5000.0

    def test_sensitivity_values(self):
        assert PdGain.G1.relative_sensitivity == 1.0
        assert PdGain.G2.relative_sensitivity == 0.45
        assert PdGain.G3.relative_sensitivity == 0.089

    def test_sensitivity_inverse_to_saturation(self):
        """The paper's columns are ~inversely proportional."""
        for gain in PdGain:
            product = gain.saturation_lux * gain.relative_sensitivity
            assert 420.0 <= product <= 560.0


class TestTransfer:
    def test_linear_below_saturation(self):
        pd = Photodiode.opt101(gain=PdGain.G1)
        e = np.array([0.0, 100.0, 200.0, 400.0])
        v = pd.respond(e)
        assert np.allclose(v, e / 450.0)

    def test_hard_clip_at_saturation(self):
        pd = Photodiode.opt101(gain=PdGain.G1)
        assert pd.respond(np.array([450.0]))[0] == pytest.approx(1.0)
        assert pd.respond(np.array([10_000.0]))[0] == pytest.approx(1.0)

    def test_is_saturated_by(self):
        pd = Photodiode.opt101(gain=PdGain.G2)
        assert not pd.is_saturated_by(1000.0)
        assert pd.is_saturated_by(1200.0)
        assert pd.is_saturated_by(6200.0)

    def test_negative_illuminance_rejected(self):
        pd = Photodiode.opt101()
        with pytest.raises(ValueError):
            pd.respond(np.array([-1.0]))

    def test_gain_switch(self):
        pd = Photodiode.opt101(gain=PdGain.G1)
        pd3 = pd.with_gain(PdGain.G3)
        assert pd3.saturation_lux == 5000.0
        assert pd3.fov.full_angle_deg == pd.fov.full_angle_deg


class TestNoise:
    def test_noise_grows_with_level(self):
        pd = Photodiode.opt101()
        low = float(pd.noise_sigma(np.array([0.0]))[0])
        high = float(pd.noise_sigma(np.array([1.0]))[0])
        assert high > low > 0.0

    def test_negative_noise_config_rejected(self):
        with pytest.raises(ValueError):
            OpticalDetector(name="x", fov=FieldOfView(60.0),
                            saturation_lux=100.0, relative_sensitivity=1.0,
                            noise_rms_fullscale=-0.1)


class TestFov:
    def test_bare_pd_is_wide(self):
        """No lens: the OPT101 must accept a near-hemispherical field,
        which is what makes the Fig. 16(a) roof interference possible."""
        assert OPT101_FOV_DEG >= 90.0


class TestNormalizedSensitivity:
    def test_g1_reference(self):
        assert normalized_sensitivity(
            Photodiode.opt101(gain=PdGain.G1)) == pytest.approx(1.0)

    def test_matches_table_within_tolerance(self):
        for gain, expected in ((PdGain.G2, 0.45), (PdGain.G3, 0.089)):
            measured = normalized_sensitivity(Photodiode.opt101(gain=gain))
            assert measured == pytest.approx(expected, rel=0.25)


class TestValidation:
    def test_bad_saturation(self):
        with pytest.raises(ValueError):
            OpticalDetector(name="x", fov=FieldOfView(60.0),
                            saturation_lux=0.0, relative_sensitivity=1.0)

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            OpticalDetector(name="x", fov=FieldOfView(60.0),
                            saturation_lux=100.0, relative_sensitivity=1.0,
                            bandwidth_hz=0.0)
