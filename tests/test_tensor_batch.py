"""Tests for repro.tensor.batch — the fused cross-scenario executor.

The headline contract is byte-identity: with ``dtype="float64"`` every
record out of :func:`execute_batch` must serialize to exactly the same
``canonical_json`` as the serial :func:`execute_scenario` — across the
bench grid, every registered scenario family, and hypothesis-drawn
specs.  The float32 path trades that for speed and is held to a weaker
(but still deterministic) contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.tensor.batch as batch_mod
from repro.dsp.peaks import Extremum, first_preamble_points
from repro.engine.cache import ResultCache
from repro.engine.executor import execute_scenario
from repro.engine.runner import BatchRunner
from repro.engine.spec import ScenarioSpec, expand_grid
from repro.scenarios.library import expand_family, family_names
from repro.tensor.batch import (
    _first_triple,
    clear_plan_cache,
    execute_batch,
    fast_path_eligible,
    optical_key,
)

#: The perf suite's cheap outdoor scenario (~3 ms per serial run).
FAST = ScenarioSpec(source="sun", detector="led", cap=False,
                    ground="tarmac", bits="00", symbol_width_m=0.1,
                    speed_mps=5.0, receiver_height_m=0.25,
                    start_position_m=-1.5, sample_rate_hz=2000.0,
                    ground_lux=450.0, seed=3)


def _assert_byte_identical(specs):
    serial = [execute_scenario(s) for s in specs]
    batch = execute_batch(specs)
    assert len(batch) == len(serial)
    for ref, got in zip(serial, batch):
        assert got.canonical_json() == ref.canonical_json()


class TestFloat64ByteIdentity:
    def test_bench_grid(self):
        _assert_byte_identical(
            expand_grid(FAST, {"seed": list(range(2, 14))}))

    def test_mixed_groups_and_failures(self):
        # Low light fails to decode; the failing records must match too.
        _assert_byte_identical(
            expand_grid(FAST, {"ground_lux": [450.0, 100.0],
                               "seed": [2, 3, 4]}))

    @pytest.mark.parametrize("family", family_names())
    def test_every_registered_family(self, family):
        _assert_byte_identical(expand_family(family, count=3, seed=1))

    @given(ground_lux=st.sampled_from([120.0, 300.0, 450.0, 700.0]),
           speed=st.sampled_from([3.0, 5.0, 9.0, 14.0]),
           bits=st.sampled_from(["00", "10", "1001"]),
           seeds=st.lists(st.integers(0, 2**31 - 1), min_size=1,
                          max_size=4, unique=True))
    @settings(max_examples=12, deadline=None)
    def test_property_equivalence(self, ground_lux, speed, bits, seeds):
        template = FAST.replace(ground_lux=ground_lux, speed_mps=speed,
                                bits=bits)
        _assert_byte_identical(expand_grid(template, {"seed": seeds}))


class TestFloat32:
    def test_deterministic_across_runs(self):
        specs = expand_grid(FAST, {"seed": [2, 3, 4, 5]})
        first = [r.canonical_json()
                 for r in execute_batch(specs, dtype="float32")]
        clear_plan_cache()
        second = [r.canonical_json()
                  for r in execute_batch(specs, dtype="float32")]
        assert first == second

    def test_verdicts_track_float64_within_tolerance(self):
        # float32 codes can differ from float64 by one ADC step, which
        # may flip a scenario sitting right on a symbol margin; the
        # documented tolerance is that away from the SNR cliff the
        # overwhelming majority of verdicts agree.
        specs = expand_grid(FAST.replace(ground_lux=600.0),
                            {"seed": list(range(2, 14))})
        f64 = execute_batch(specs, dtype="float64")
        f32 = execute_batch(specs, dtype="float32")
        agree = sum(a.stage == b.stage and a.success == b.success
                    for a, b in zip(f64, f32))
        assert agree >= len(specs) - 2
        # Structure is unchanged either way.
        assert all(a.n_samples == b.n_samples
                   for a, b in zip(f64, f32))

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            execute_batch([FAST], dtype="float16")


class TestGrouping:
    def test_optical_key_drops_seed(self):
        a = FAST.replace(seed=1).resolve()
        b = FAST.replace(seed=99).resolve()
        assert optical_key(a) == optical_key(b)
        assert optical_key(a) != optical_key(
            FAST.replace(ground_lux=300.0).resolve())

    def test_speed_jitter_keeps_seed_in_key(self):
        jitter = FAST.replace(motion="speed_jitter")
        a = jitter.replace(seed=1).resolve()
        b = jitter.replace(seed=2).resolve()
        assert optical_key(a) != optical_key(b)
        # ... and those specs still decode identically to serial.
        _assert_byte_identical([a, b])

    def test_one_plan_per_optical_group(self):
        clear_plan_cache()
        execute_batch(expand_grid(FAST, {"ground_lux": [450.0, 440.0],
                                         "seed": [2, 3, 4]}))
        assert len(batch_mod._PLAN_CACHE) == 2

    def test_eligibility_gates(self):
        assert fast_path_eligible(FAST.resolve())
        assert not fast_path_eligible(
            FAST.replace(n_receivers=3).resolve())
        assert not fast_path_eligible(
            FAST.replace(stream_chunk=64).resolve())
        assert not fast_path_eligible(
            FAST.replace(decoder="two_phase").resolve())

    def test_ineligible_specs_delegate_and_match_serial(self):
        specs = [FAST.replace(n_receivers=3).resolve(),
                 FAST.replace(stream_chunk=64).resolve()]
        _assert_byte_identical(specs)


class TestFirstTripleScan:
    @given(st.lists(st.tuples(st.booleans(),
                              st.floats(-10.0, 10.0, allow_nan=False)),
                    min_size=0, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_differential_vs_first_preamble_points(self, seq):
        idx = np.arange(10, 10 + 3 * len(seq), 3)
        val = np.array([v for _, v in seq])
        is_peak = np.array([p for p, _ in seq], dtype=bool)
        extrema = [Extremum(int(idx[j]), idx[j] / 100.0, float(val[j]),
                            "peak" if is_peak[j] else "valley")
                   for j in range(len(seq))]
        oracle = first_preamble_points(extrema)
        got = _first_triple(idx, val, is_peak)
        if oracle is None:
            assert got is None
        else:
            assert got is not None
            assert tuple(extrema[j] for j in got) == oracle


class TestRunnerIntegration:
    def test_tensor_backend_parity_with_process_backend(self):
        specs = expand_grid(FAST, {"seed": [2, 3, 4, 5]})
        serial = BatchRunner(workers=1).run(specs)
        tensor = BatchRunner(backend="tensor").run(specs)
        assert ([r.canonical_json() for r in tensor.records]
                == [r.canonical_json() for r in serial.records])
        assert tensor.stats.backend == "tensor"
        assert serial.stats.backend == "process"

    def test_float64_shares_cache_with_serial(self, tmp_path):
        specs = expand_grid(FAST, {"seed": [2, 3]})
        cache = ResultCache(tmp_path / "cache")
        BatchRunner(backend="tensor", cache=cache).run(specs)
        # A serial runner over the same specs answers from cache.
        result = BatchRunner(workers=1, cache=cache).run(specs)
        assert result.stats.cache_hits == len(specs)

    def test_float32_bypasses_cache(self, tmp_path):
        specs = expand_grid(FAST, {"seed": [2, 3]})
        cache = ResultCache(tmp_path / "cache")
        runner = BatchRunner(backend="tensor", dtype="float32",
                             cache=cache)
        runner.run(specs)
        again = runner.run(specs)
        # Nothing was stored, nothing is served.
        assert again.stats.cache_hits == 0
        assert BatchRunner(cache=cache).run(specs).stats.cache_hits == 0

    def test_dtype_validation(self):
        with pytest.raises(ValueError):
            BatchRunner(backend="tensor", dtype="float16")
        with pytest.raises(ValueError):
            BatchRunner(dtype="float32")  # process backend
        with pytest.raises(ValueError):
            BatchRunner(backend="gpu")
