"""Tests for repro.hardware.amplifier."""

import numpy as np
import pytest

from repro.hardware.amplifier import Amplifier, first_order_lowpass


class TestLowpass:
    def test_dc_preserved(self):
        x = np.full(500, 0.7)
        y = first_order_lowpass(x, 50.0, 1000.0)
        assert np.allclose(y, 0.7, atol=1e-6)

    def test_attenuates_high_frequency(self):
        fs = 2000.0
        t = np.arange(4000) / fs
        slow = np.sin(2 * np.pi * 2.0 * t)
        fast = np.sin(2 * np.pi * 400.0 * t)
        y_slow = first_order_lowpass(slow, 20.0, fs)
        y_fast = first_order_lowpass(fast, 20.0, fs)
        assert np.std(y_fast) < 0.2 * np.std(y_slow)

    def test_transparent_above_nyquist(self):
        x = np.random.default_rng(1).normal(size=256)
        y = first_order_lowpass(x, 10_000.0, 1000.0)
        assert np.allclose(x, y)

    def test_causal_step_response(self):
        """No pre-ringing: output must not move before the step."""
        x = np.concatenate([np.zeros(100), np.ones(100)])
        y = first_order_lowpass(x, 50.0, 1000.0)
        assert np.allclose(y[:100], 0.0, atol=1e-9)
        assert y[-1] == pytest.approx(1.0, abs=0.02)

    def test_empty_input(self):
        out = first_order_lowpass(np.array([]), 10.0, 100.0)
        assert len(out) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            first_order_lowpass(np.zeros(10), 0.0, 100.0)
        with pytest.raises(ValueError):
            first_order_lowpass(np.zeros(10), 10.0, 0.0)


class TestAmplifier:
    def test_gain_applied(self):
        amp = Amplifier(gain=2.0, rail_high=10.0)
        y = amp.amplify(np.full(300, 0.2), 1000.0)
        assert y[-1] == pytest.approx(0.4, abs=0.01)

    def test_rail_clipping(self):
        amp = Amplifier(gain=5.0, rail_low=0.0, rail_high=1.0)
        y = amp.amplify(np.full(300, 0.5), 1000.0)
        assert np.all(y <= 1.0)
        assert y[-1] == pytest.approx(1.0)

    def test_lm358_bandwidth_scales_with_gain(self):
        assert Amplifier.lm358(gain=10.0).bandwidth_hz == pytest.approx(1e5)
        assert Amplifier.lm358(gain=1.0).bandwidth_hz == pytest.approx(1e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            Amplifier(gain=0.0)
        with pytest.raises(ValueError):
            Amplifier(rail_low=1.0, rail_high=0.5)
