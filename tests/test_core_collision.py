"""Tests for repro.core.collision (Section 4.3)."""

import numpy as np
import pytest

from repro.channel.trace import SignalTrace
from repro.core.collision import CollisionAnalyzer, CollisionReport

from .test_core_decoder import synthetic_packet_trace


def two_tone_trace(f1=1.0, f2=2.0, a1=1.0, a2=1.0, fs=500.0, duration=6.0):
    t = np.arange(int(fs * duration)) / fs
    x = 100.0 + 30.0 * (a1 * np.sin(2 * np.pi * f1 * t)
                        + a2 * np.sin(2 * np.pi * f2 * t))
    return SignalTrace(x, fs)


class TestSpectrumPeaks:
    def test_two_components_detected(self):
        analyzer = CollisionAnalyzer(min_separation_hz=0.7)
        freqs = analyzer.spectrum_peaks(two_tone_trace())
        assert len(freqs) == 2
        assert sorted(round(f) for f in freqs) == [1, 2]

    def test_single_component(self):
        analyzer = CollisionAnalyzer()
        freqs = analyzer.spectrum_peaks(two_tone_trace(a2=0.0))
        assert len(freqs) == 1
        assert freqs[0] == pytest.approx(1.0, abs=0.1)

    def test_band_limits_respected(self):
        analyzer = CollisionAnalyzer(f_band_hz=(1.5, 12.0))
        freqs = analyzer.spectrum_peaks(two_tone_trace())
        assert all(f >= 1.5 for f in freqs)


class TestAnalyze:
    def test_clean_packet_decodable_single_component(self):
        analyzer = CollisionAnalyzer()
        trace = synthetic_packet_trace("HLHLHLHL", symbol_duration_s=0.4)
        report = analyzer.analyze(trace, n_data_symbols=4)
        assert report.time_domain_decodable
        assert not report.collision_detected

    def test_expected_bits_gate(self):
        analyzer = CollisionAnalyzer()
        trace = synthetic_packet_trace("HLHLHLHL")
        ok = analyzer.analyze(trace, n_data_symbols=4, expected_bits="00")
        assert ok.time_domain_decodable
        wrong = analyzer.analyze(trace, n_data_symbols=4, expected_bits="11")
        assert not wrong.time_domain_decodable

    def test_undecodable_mixture_still_reports_components(self):
        analyzer = CollisionAnalyzer(min_separation_hz=0.7)
        report = analyzer.analyze(two_tone_trace())
        assert report.collision_detected
        assert report.n_components == 2

    def test_summary_format(self):
        analyzer = CollisionAnalyzer()
        report = analyzer.analyze(two_tone_trace())
        text = report.summary()
        assert "component" in text
        assert "Hz" in text


class TestValidation:
    def test_band_ordering(self):
        with pytest.raises(ValueError):
            CollisionAnalyzer(f_band_hz=(5.0, 1.0))

    def test_report_counts(self):
        report = CollisionReport(time_domain_decodable=False,
                                 decode_result=None,
                                 detected_frequencies_hz=[1.0, 2.0, 3.0])
        assert report.n_components == 3
        assert report.collision_detected
