"""Tests for repro.net.tracker."""

import pytest

from repro.hardware.frontend import ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver
from repro.net.node import Detection, ReceiverNode
from repro.net.tracker import ReceiverNetwork, estimate_track


def det(node, pos, t, bits="10", conf=0.8):
    return Detection(node_id=node, position_m=pos, timestamp_s=t,
                     bits=bits, confidence=conf)


def _node(node_id, pos):
    return ReceiverNode(node_id=node_id, position_m=pos,
                        frontend=ReceiverFrontEnd(
                            detector=LedReceiver.red_5mm(), seed=1))


class TestEstimateTrack:
    def test_exact_speed_recovered(self):
        reports = [det("a", 0.0, 10.0), det("b", 25.0, 15.0),
                   det("c", 50.0, 20.0)]
        track = estimate_track(reports)
        assert track.speed_mps == pytest.approx(5.0)
        assert track.residual_rms_s == pytest.approx(0.0, abs=1e-9)
        assert track.bits == "10"

    def test_noisy_timing_still_close(self):
        reports = [det("a", 0.0, 10.0), det("b", 25.0, 15.2),
                   det("c", 50.0, 19.9)]
        track = estimate_track(reports)
        assert track.speed_mps == pytest.approx(5.0, rel=0.1)
        assert track.residual_rms_s < 0.5

    def test_prediction_downstream(self):
        reports = [det("a", 0.0, 10.0), det("b", 25.0, 15.0)]
        track = estimate_track(reports)
        assert track.predicted_arrival_s(50.0) == pytest.approx(20.0)

    def test_needs_two_positions(self):
        with pytest.raises(ValueError):
            estimate_track([det("a", 0.0, 10.0)])
        with pytest.raises(ValueError):
            estimate_track([det("a", 0.0, 10.0), det("a", 0.0, 11.0)])

    def test_backwards_motion_rejected(self):
        with pytest.raises(ValueError):
            estimate_track([det("a", 0.0, 20.0), det("b", 25.0, 10.0)])


class TestReceiverNetwork:
    def _network(self):
        net = ReceiverNetwork()
        for node_id, pos in (("a", 0.0), ("b", 25.0), ("c", 50.0)):
            net.add_node(_node(node_id, pos))
        net.connect("a", "b")
        net.connect("b", "c")
        return net

    def test_duplicate_node_rejected(self):
        net = self._network()
        with pytest.raises(ValueError):
            net.add_node(_node("a", 1.0))

    def test_connect_unknown_rejected(self):
        net = self._network()
        with pytest.raises(KeyError):
            net.connect("a", "zz")

    def test_nodes_ordered_by_position(self):
        net = self._network()
        assert [n.node_id for n in net.nodes] == ["a", "b", "c"]

    def test_reachability_respects_topology(self):
        net = ReceiverNetwork()
        for node_id, pos in (("a", 0.0), ("b", 25.0), ("c", 50.0)):
            net.add_node(_node(node_id, pos))
        net.connect("a", "b")  # c is isolated
        net.record(det("a", 0.0, 10.0))
        net.record(det("b", 25.0, 15.0))
        net.record(det("c", 50.0, 20.0))
        assert len(net.reachable_detections("a")) == 2
        assert len(net.reachable_detections("c")) == 1

    def test_fusion_recovers_code_despite_one_bad_node(self):
        net = self._network()
        net.record(det("a", 0.0, 10.0, bits="10", conf=0.9))
        net.record(det("b", 25.0, 15.0, bits="", conf=0.0))
        net.record(det("c", 50.0, 20.0, bits="10", conf=0.7))
        fused = net.fuse_at("a", expected_speed_mps=5.0)
        assert len(fused) == 1
        assert fused[0].bits == "10"
        assert fused[0].n_decoded == 2

    def test_track_estimation_through_network(self):
        net = self._network()
        net.record(det("a", 0.0, 10.0))
        net.record(det("b", 25.0, 15.0))
        net.record(det("c", 50.0, 20.0))
        tracks = net.track_at("b", expected_speed_mps=5.0)
        assert len(tracks) == 1
        assert tracks[0].speed_mps == pytest.approx(5.0)
        assert tracks[0].n_nodes == 3

    def test_single_node_pass_skipped_in_tracking(self):
        net = self._network()
        net.record(det("a", 0.0, 10.0))
        assert net.track_at("a", expected_speed_mps=5.0) == []

    def test_record_unknown_node_rejected(self):
        net = self._network()
        with pytest.raises(KeyError):
            net.record(det("zz", 0.0, 1.0))

    def test_garbled_pass_does_not_kill_track_query(self):
        """Regression: a mis-grouped pass whose reports imply a
        non-positive time-vs-position slope used to raise out of
        ``track_at`` and abort the whole query.  Now the unfittable
        group is skipped while fittable passes still come back."""
        net = self._network()
        # Garbled group: downstream node reports an *earlier* time than
        # the timing model predicts, within grouping tolerance, giving
        # a negative fitted slope (a at x=0 t=10.0, b at x=25 t=9.9
        # groups under a high expected speed).
        net.record(det("a", 0.0, 10.0, bits="", conf=0.0))
        net.record(det("b", 25.0, 9.9, bits="", conf=0.0))
        with pytest.raises(ValueError):
            # The raw fitter still refuses the group...
            estimate_track([det("a", 0.0, 10.0), det("b", 25.0, 9.9)])
        # ...but the network query survives and simply skips it.
        assert net.track_at("a", expected_speed_mps=250.0) == []

    def test_garbled_group_skipped_fittable_group_returned(self):
        net = ReceiverNetwork()
        for node_id, pos in (("a", 0.0), ("b", 5.0), ("c", 25.0),
                             ("d", 50.0)):
            net.add_node(_node(node_id, pos))
        for pair in (("a", "b"), ("b", "c"), ("c", "d")):
            net.connect(*pair)
        # Fittable pass at 5 m/s over three distinct positions.
        net.record(det("a", 0.0, 10.0))
        net.record(det("c", 25.0, 15.0))
        net.record(det("d", 50.0, 20.0))
        # Garbled pair much later: zero time gap over 5 m gives a zero
        # slope (within grouping tolerance), which the fitter rejects.
        net.record(det("a", 0.0, 500.0, bits="", conf=0.0))
        net.record(det("b", 5.0, 500.0, bits="", conf=0.0))
        tracks = net.track_at("a", expected_speed_mps=5.0)
        assert len(tracks) == 1
        assert tracks[0].speed_mps == pytest.approx(5.0)
