"""Tests for repro.analysis.sweeps."""

import numpy as np
import pytest

from repro.analysis.sweeps import (
    DecodabilityGrid,
    sweep_decodability,
    sweep_frontier,
    sweep_throughput,
)
from repro.core.capacity import IndoorSetup

QUICK = IndoorSetup(seeds=(11,))


class TestGridStructure:
    def _grid(self):
        return DecodabilityGrid(
            heights_m=np.array([0.2, 0.3, 0.4]),
            widths_m=np.array([0.03, 0.06]),
            decodable=np.array([[True, True],
                                [False, True],
                                [False, False]]))

    def test_max_height_per_width(self):
        grid = self._grid()
        assert grid.max_height_for_width(0) == pytest.approx(0.2)
        assert grid.max_height_for_width(1) == pytest.approx(0.3)

    def test_frontier(self):
        frontier = self._grid().frontier()
        assert frontier == [(0.03, pytest.approx(0.2)),
                            (0.06, pytest.approx(0.3))]

    def test_all_failed_column(self):
        grid = DecodabilityGrid(
            heights_m=np.array([0.2]), widths_m=np.array([0.01]),
            decodable=np.array([[False]]))
        assert grid.max_height_for_width(0) is None
        assert grid.frontier() == []

    def test_render_shows_region(self):
        text = self._grid().render()
        assert "#" in text and "." in text
        assert "symbol width" in text


class TestSweeps:
    def test_decodability_grid_shape(self):
        grid = sweep_decodability(QUICK,
                                  heights_m=np.array([0.2, 0.45]),
                                  widths_m=np.array([0.02, 0.08]))
        assert grid.decodable.shape == (2, 2)
        # Wide symbols low down must decode; narrow symbols high up not.
        assert grid.decodable[0, 1]
        assert not grid.decodable[1, 0]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep_decodability(QUICK, np.array([]), np.array([0.05]))

    def test_frontier_monotone(self):
        frontier = sweep_frontier(QUICK, np.array([0.05, 0.09]),
                                  tolerance_m=0.05)
        assert len(frontier) == 2
        assert frontier[1][1] >= frontier[0][1]

    def test_throughput_decreases(self):
        curve = sweep_throughput(QUICK, np.array([0.2, 0.45]),
                                 tolerance_m=0.006)
        assert len(curve) == 2
        assert curve[0][1] > curve[1][1]
