"""The networked-receiver engine workload (Section 6 as an engine run).

Covers the receiver-array spec block, the executor's multi-node path
(per-node traces, fusion, tracking), record round-tripping through the
cache, the networked scenario families, the fusion-gain sweep, and the
determinism contract extended to multi-receiver batches.
"""

from __future__ import annotations

import json

import networkx as nx
import pytest

from repro.analysis.sweeps import sweep_fusion_gain
from repro.engine import (
    BatchRunner,
    ResultCache,
    RunRecord,
    ScenarioSpec,
    build_network,
    execute_scenario,
    fusion_stats,
    fusion_table,
    node_positions,
    node_seed,
    summarize,
)
from repro.scenarios import expand_family


def road_spec(**overrides) -> ScenarioSpec:
    """A cheap, cleanly-decodable outdoor pass (sun over tarmac)."""
    base = dict(source="sun", detector="led", cap=False, ground="tarmac",
                bits="00", symbol_width_m=0.1, speed_mps=5.0,
                receiver_height_m=0.25, start_position_m=-1.5,
                sample_rate_hz=2000.0, ground_lux=450.0, seed=2)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecReceiverBlock:
    def test_defaults_are_single_receiver(self):
        spec = ScenarioSpec()
        assert spec.n_receivers == 1
        assert spec.topology == "full"

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(n_receivers=0)
        with pytest.raises(ValueError):
            ScenarioSpec(n_receivers=2.0)       # must be an int
        with pytest.raises(ValueError):
            ScenarioSpec(receiver_spacing_m=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(topology="ring")

    def test_new_fields_change_content_hash(self):
        """Cache correctness: every receiver-array field must perturb
        the content hash, or stale single-receiver records would be
        returned for networked sweeps."""
        base = road_spec()
        assert (base.content_hash()
                != base.replace(n_receivers=3).content_hash())
        assert (base.replace(n_receivers=3).content_hash()
                != base.replace(n_receivers=4).content_hash())
        assert (base.replace(n_receivers=3).content_hash()
                != base.replace(n_receivers=3,
                                receiver_spacing_m=1.0).content_hash())
        assert (base.replace(n_receivers=3).content_hash()
                != base.replace(n_receivers=3,
                                topology="chain").content_hash())

    def test_round_trip_through_dict(self):
        spec = road_spec(n_receivers=4, receiver_spacing_m=1.25,
                         topology="partitioned")
        again = ScenarioSpec.from_dict(json.loads(
            json.dumps(spec.to_dict())))
        assert again == spec

    def test_cli_coercion(self):
        from repro.engine.cli import _parse_sets

        updates = _parse_sets(["n_receivers=3", "topology=chain",
                               "receiver_spacing_m=1.5"])
        spec = ScenarioSpec().replace(**updates)
        assert spec.n_receivers == 3
        assert spec.topology == "chain"
        assert spec.receiver_spacing_m == 1.5


class TestNetworkBuilding:
    def test_node_positions_spacing(self):
        spec = road_spec(n_receivers=4, receiver_spacing_m=0.5)
        assert node_positions(spec) == [0.0, 0.5, 1.0, 1.5]

    def test_node_seeds_distinct_and_deterministic(self):
        seeds = [node_seed(42, i) for i in range(16)]
        assert len(set(seeds)) == 16
        assert seeds == [node_seed(42, i) for i in range(16)]
        assert seeds != [node_seed(43, i) for i in range(16)]

    def test_full_topology(self):
        net = build_network(road_spec(n_receivers=4))
        assert net.graph.number_of_edges() == 6
        assert nx.is_connected(net.graph)

    def test_chain_topology(self):
        net = build_network(road_spec(n_receivers=4, topology="chain"))
        assert net.graph.number_of_edges() == 3
        assert nx.is_connected(net.graph)

    def test_partitioned_topology_two_islands(self):
        net = build_network(road_spec(n_receivers=5,
                                      topology="partitioned"))
        components = list(nx.connected_components(net.graph))
        assert sorted(len(c) for c in components) == [2, 3]
        assert {"rx0", "rx1", "rx2"} in components

    def test_nodes_get_distinct_noise_seeds(self):
        net = build_network(road_spec(n_receivers=3))
        seeds = {node.frontend.seed for node in net.nodes}
        assert len(seeds) == 3


class TestNetworkedExecution:
    def test_clean_corridor_record(self):
        record = execute_scenario(road_spec(n_receivers=3,
                                            receiver_spacing_m=1.0))
        assert record.networked
        assert len(record.nodes) == 3
        assert [n["node_id"] for n in record.nodes] == ["rx0", "rx1", "rx2"]
        assert [n["position_m"] for n in record.nodes] == [0.0, 1.0, 2.0]
        assert record.fused_bits == record.sent_bits
        assert record.fused_success and record.success
        assert record.stage == "decoded"
        assert record.decoded_bits == record.fused_bits

    def test_timestamps_increase_along_the_track(self):
        record = execute_scenario(road_spec(n_receivers=3,
                                            receiver_spacing_m=1.0))
        times = [n["timestamp_s"] for n in record.nodes]
        assert times == sorted(times)
        # 1 m apart at ~5 m/s: roughly 0.2 s between nodes.
        for gap in (times[1] - times[0], times[2] - times[1]):
            assert gap == pytest.approx(0.2, abs=0.1)

    def test_speed_estimate_close_to_nominal(self):
        record = execute_scenario(road_spec(n_receivers=3,
                                            receiver_spacing_m=1.0))
        assert record.speed_est_mps == pytest.approx(5.0, rel=0.05)
        assert record.speed_error is not None
        assert record.speed_error < 0.05

    def test_fused_verdict_cannot_beat_any_node_ceiling(self):
        """Fusion picks among node reports, so fused success implies
        some node decoded exactly; the gain field is the difference."""
        record = execute_scenario(road_spec(n_receivers=3))
        if record.fused_success:
            assert record.best_node_success
        assert record.fusion_gain == (float(record.fused_success)
                                      - float(record.best_node_success))

    def test_single_receiver_records_mirror_fused_fields(self):
        record = execute_scenario(road_spec())
        assert not record.networked
        assert record.nodes == []
        assert record.fused_bits == record.decoded_bits
        assert record.fused_success == record.success
        assert record.best_node_success == record.success
        assert record.fusion_gain == 0.0

    def test_simulation_failure_contained(self):
        # A packet that cannot fit any car roof: scene build fails, but
        # the networked record is still produced (not an exception).
        record = execute_scenario(road_spec(
            n_receivers=2, car="volvo_v40", decoder="two_phase",
            bits="01100110", symbol_width_m=0.4))
        assert record.stage == "simulation_failed"
        assert not record.success

    def test_record_round_trip(self):
        record = execute_scenario(road_spec(n_receivers=2))
        again = RunRecord.from_dict(json.loads(
            json.dumps(record.to_dict())))
        assert again == record
        assert again.canonical_json() == record.canonical_json()

    def test_undecoded_group_cannot_shadow_a_decode(self):
        """Regression: the record's verdict must come from the group
        holding actual decodes, not from a larger all-undecoded group
        (failed nodes whose onset estimates drifted out of grouping
        tolerance form their own group)."""
        from repro.engine.executor import _select_fused, _select_track
        from repro.net.fusion import fuse_detections
        from repro.net.node import Detection
        from repro.net.tracker import estimate_track

        def det(node, pos, t, bits, conf):
            return Detection(node_id=node, position_m=pos, timestamp_s=t,
                             bits=bits, confidence=conf)

        decoded_group = fuse_detections([det("rx0", 0.0, 10.0, "10", 0.8)])
        drifted_group = fuse_detections([det("rx1", 1.0, 30.0, "", 0.0),
                                         det("rx2", 2.0, 30.2, "", 0.0),
                                         det("rx3", 3.0, 30.4, "", 0.0)])
        pick = _select_fused([drifted_group, decoded_group])
        assert pick.bits == "10"
        assert _select_fused([]) is None

        wide = estimate_track([det("a", 0.0, 10.0, "10", 0.8),
                               det("b", 5.0, 11.0, "10", 0.8),
                               det("c", 10.0, 12.0, "", 0.0)])
        narrow = estimate_track([det("d", 0.0, 50.0, "", 0.0),
                                 det("e", 5.0, 51.0, "", 0.0)])
        assert _select_track([narrow, wide]) is wide
        assert _select_track([]) is None

    def test_pre_fusion_record_load_mirrors_verdict(self):
        """Regression: a v1.3 record (no fusion fields in its JSON)
        must not read back as a fused failure."""
        record = execute_scenario(road_spec())
        old = {k: v for k, v in record.to_dict().items()
               if k not in ("nodes", "fused_bits", "fused_success",
                            "best_node_success", "fusion_gain",
                            "speed_est_mps", "speed_error")}
        loaded = RunRecord.from_dict(old)
        assert loaded.success
        assert loaded.fused_bits == loaded.decoded_bits
        assert loaded.fused_success and loaded.best_node_success


class TestNetworkedFamilies:
    @pytest.mark.parametrize("family", ["corridor", "sparse_mesh",
                                        "partitioned_net"])
    def test_families_expand_networked(self, family):
        specs = expand_family(family, count=12, seed=5)
        assert len(specs) == 12
        assert all(s.n_receivers >= 2 for s in specs)

    def test_partitioned_family_topology(self):
        specs = expand_family("partitioned_net", count=6, seed=1)
        assert all(s.topology == "partitioned" for s in specs)

    def test_composes_with_regime_layers(self):
        specs = expand_family("corridor*fog", count=9, seed=2)
        assert all(s.n_receivers >= 2 for s in specs)
        assert all(s.visibility_m is not None for s in specs)


class TestFusionReporting:
    def test_fusion_stats_and_summary(self):
        records = BatchRunner().run(
            [road_spec(n_receivers=2), road_spec(n_receivers=3)]).records
        stats = fusion_stats(records)
        assert 0.0 <= stats["fused_rate"] <= 1.0
        assert stats["fused_rate"] <= stats["best_node_rate"]
        text = summarize(records)
        assert "networked passes: 2" in text
        assert "fusion gain" in text

    def test_fusion_table_grouped_by_receiver_count(self):
        records = BatchRunner().run(
            [road_spec(n_receivers=2), road_spec(n_receivers=3)]).records
        table = fusion_table(records, "n_receivers")
        assert "fusion by n_receivers" in table
        assert "2 |" in table and "3 |" in table

    def test_pre_receiver_array_records_group_under_field_default(self):
        """Reports over mixed-vintage result files must not crash: a
        record written before the spec had ``n_receivers`` groups under
        the field default (1) instead of raising KeyError."""
        new = execute_scenario(road_spec(n_receivers=2))
        old_spec = {k: v for k, v in road_spec().resolve().to_dict().items()
                    if k not in ("n_receivers", "receiver_spacing_m",
                                 "topology")}
        old = RunRecord.from_dict(dict(
            execute_scenario(road_spec()).to_dict(), spec=old_spec))
        table = fusion_table([new, old], "n_receivers")
        assert "1 |" in table and "2 |" in table
        with pytest.raises(KeyError):
            fusion_table([new, old], "never_a_field")

    def test_missing_speed_estimate_is_not_a_perfect_one(self):
        """Groups with no tracked speed must say so ('-'/'n/a'), not
        print a flattering 0.000."""
        record = execute_scenario(road_spec())      # n_receivers=1
        stats = fusion_stats([record])
        assert stats["mean_speed_error"] is None
        assert fusion_table([record], "n_receivers").splitlines()[1] \
            .endswith("-")
        # A severed two-node deployment: rx0's island is a single node,
        # so the networked record has no track either.
        severed = execute_scenario(road_spec(n_receivers=2,
                                             topology="partitioned"))
        assert severed.speed_error is None
        assert "speed err n/a" in summarize([severed])


class TestFusionGainSweep:
    def test_noise_stressed_corridor_improvement(self):
        """The Section 6 acceptance claim: on a noise-stressed corridor,
        the fused decode rate with networked receivers is at least the
        single-receiver rate, and never below the per-pass best-node
        rate it can reach."""
        sweep = sweep_fusion_gain(n_receivers=(1, 4), count=12, seed=0,
                                  runner=BatchRunner(workers=2))
        assert sweep.n_receivers == [1, 4]
        single, fused = sweep.fused_rates
        assert fused >= single
        assert fused >= sweep.best_node_rates[0]
        assert len(sweep.records[4]) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_fusion_gain(n_receivers=())
        with pytest.raises(ValueError):
            sweep_fusion_gain(n_receivers=(0, 2))


class TestNetworkedDeterminism:
    """The engine contract extended to multi-receiver batches."""

    def _specs(self):
        return [road_spec(n_receivers=n, receiver_spacing_m=s,
                          topology=t, seed=seed)
                for n, s, t, seed in [(2, 0.8, "full", 3),
                                      (3, 1.0, "chain", 4),
                                      (4, 0.9, "partitioned", 5),
                                      (2, 1.4, "full", 6)]]

    def test_workers_byte_identical(self, tmp_path):
        specs = self._specs()
        serial = BatchRunner(workers=1).run(specs).records
        with BatchRunner(workers=4, chunk_size=1) as runner:
            parallel = runner.run(specs).records
        assert [r.canonical_json() for r in serial] == \
            [r.canonical_json() for r in parallel]

    def test_cache_cold_vs_warm_byte_identical(self, tmp_path):
        specs = self._specs()
        cache = ResultCache(tmp_path)
        runner = BatchRunner(cache=cache)
        cold = runner.run(specs)
        warm = runner.run(specs)
        assert cold.stats.executed == len(specs)
        assert warm.stats.cache_hits == len(specs)
        assert [r.canonical_json() for r in cold.records] == \
            [r.canonical_json() for r in warm.records]
