"""Tests for the repro-engine CLI (run / sweep / report)."""

import json

import pytest

from repro.engine.cli import main

FAST_SETS = ["--set", "source=sun", "--set", "detector=led",
             "--set", "cap=false", "--set", "ground=tarmac",
             "--set", "bits=00", "--set", "symbol_width_m=0.1",
             "--set", "speed_mps=5.0", "--set", "receiver_height_m=0.25",
             "--set", "start_position_m=-1.5",
             "--set", "sample_rate_hz=2000", "--set", "seed=3"]


class TestRun:
    def test_run_prints_record(self, capsys):
        code = main(["run", *FAST_SETS, "--set", "ground_lux=450"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["success"] is True
        assert record["stage"] == "decoded"
        assert record["spec"]["ground_lux"] == 450.0

    def test_run_failure_exit_code(self, capsys):
        assert main(["run", *FAST_SETS, "--set", "ground_lux=100"]) == 1
        assert main(["run", *FAST_SETS, "--set", "ground_lux=100",
                     "--allow-failure"]) == 0

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({
            "source": "sun", "detector": "led", "cap": False,
            "ground": "tarmac", "bits": "00", "symbol_width_m": 0.1,
            "speed_mps": 5.0, "receiver_height_m": 0.25,
            "start_position_m": -1.5, "sample_rate_hz": 2000.0,
            "ground_lux": 450.0, "seed": 3}))
        assert main(["run", "--spec", str(spec_file)]) == 0

    def test_bad_field_is_an_error(self, capsys):
        assert main(["run", "--set", "wavelength=650"]) == 2
        assert "repro-engine" in capsys.readouterr().err


class TestSweep:
    def test_sweep_axes_out_and_cache(self, tmp_path, capsys):
        out = tmp_path / "runs.jsonl"
        cache_dir = tmp_path / "cache"
        argv = ["sweep", *FAST_SETS,
                "--axis", "ground_lux=450,100",
                "--axis", "seed=2,3",
                "--cache-dir", str(cache_dir),
                "--out", str(out),
                "--group-by", "ground_lux"]
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "ran 4 scenarios" in text
        assert "decode rate by ground_lux" in text
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(lines) == 4

        # Second pass answers entirely from the cache.
        assert main(argv) == 0
        assert "4 cached [100%], 0 simulated" in capsys.readouterr().out

    def test_sweep_linspace_axis(self, capsys):
        assert main(["sweep", *FAST_SETS, "--set", "ground_lux=450",
                     "--axis", "seed=1:3:3"]) == 0
        assert "ran 3 scenarios" in capsys.readouterr().out

    def test_sweep_grid_file(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps({
            "template": {"source": "sun", "detector": "led", "cap": False,
                         "ground": "tarmac", "bits": "00",
                         "symbol_width_m": 0.1, "speed_mps": 5.0,
                         "receiver_height_m": 0.25,
                         "start_position_m": -1.5,
                         "sample_rate_hz": 2000.0},
            "axes": {"ground_lux": [450.0, 100.0], "seed": [2, 3]}}))
        assert main(["sweep", "--grid", str(grid_file)]) == 0
        assert "ran 4 scenarios" in capsys.readouterr().out


class TestReport:
    def test_report_reads_results(self, tmp_path, capsys):
        out = tmp_path / "runs.jsonl"
        main(["sweep", *FAST_SETS, "--axis", "ground_lux=450,100",
              "--axis", "seed=2,3", "--out", str(out)])
        capsys.readouterr()
        assert main(["report", str(out), "--group-by", "ground_lux"]) == 0
        text = capsys.readouterr().out
        assert "scenarios: 4" in text
        assert "decode rate by ground_lux" in text

    def test_report_missing_file(self, capsys):
        assert main(["report", "/nonexistent/runs.jsonl"]) == 2


class TestUnknownSpecField:
    """--set with a typo'd field must name the field and list valid
    ones, not die inside float()."""

    def test_unknown_field_names_itself(self, capsys):
        assert main(["run", "--set", "grund_lux=450"]) == 2
        err = capsys.readouterr().err
        assert "unknown spec field 'grund_lux'" in err
        assert "ground_lux" in err          # the valid list is shown

    def test_unknown_axis_field_rejected_too(self, capsys):
        assert main(["sweep", *FAST_SETS,
                     "--axis", "grund_lux=450,100"]) == 2
        assert "unknown spec field" in capsys.readouterr().err

    def test_known_fields_still_coerce(self, capsys):
        assert main(["run", *FAST_SETS, "--set", "ground_lux=450"]) == 0


class TestSweepTensorBackend:
    def test_tensor_sweep_matches_process_sweep(self, tmp_path, capsys):
        base = ["sweep", *FAST_SETS, "--set", "ground_lux=450",
                "--axis", "seed=2,3,4"]
        out_p = tmp_path / "process.jsonl"
        out_t = tmp_path / "tensor.jsonl"
        assert main([*base, "--out", str(out_p)]) == 0
        assert main([*base, "--backend", "tensor",
                     "--out", str(out_t)]) == 0

        def load(path):
            records = [json.loads(line)
                       for line in path.read_text().splitlines()]
            for record in records:
                record.pop("elapsed_s")   # wall clock, not a result
            return records

        assert load(out_p) == load(out_t)

    def test_tensor_float32_runs(self, capsys):
        assert main(["sweep", *FAST_SETS, "--set", "ground_lux=450",
                     "--axis", "seed=2,3", "--backend", "tensor",
                     "--dtype", "float32"]) == 0
        assert "ran 2 scenarios" in capsys.readouterr().out

    def test_float32_requires_tensor_backend(self, capsys):
        assert main(["sweep", *FAST_SETS, "--axis", "seed=2,3",
                     "--dtype", "float32"]) == 2
        assert "tensor" in capsys.readouterr().err


class TestFaultPlanField:
    def test_set_fault_plan_inline_json(self, capsys):
        code = main(["run", *FAST_SETS, "--set", "ground_lux=450",
                     "--set", 'fault_plan={"burst_rate_hz": 20.0}'])
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["fault_plan"]["burst_rate_hz"] == 20.0
        assert record["fault_events"]["noise_bursts"] > 0
        assert code in (0, 1)  # faults may or may not break the decode

    def test_fault_plan_none_accepted(self, capsys):
        assert main(["run", *FAST_SETS, "--set", "ground_lux=450",
                     "--set", "fault_plan=none"]) == 0

    def test_malformed_fault_plan_json_is_usage_error(self, capsys):
        assert main(["run", *FAST_SETS,
                     "--set", "fault_plan={not json"]) == 2
        assert "JSON" in capsys.readouterr().err

    def test_non_object_fault_plan_rejected(self, capsys):
        assert main(["run", *FAST_SETS,
                     "--set", "fault_plan=[1,2]"]) == 2


class TestExecutorErrorExitCodes:
    STUCK = 'fault_plan={"exec_sleep_s": 30.0}'

    def test_run_timeout_exits_3(self, capsys):
        assert main(["run", *FAST_SETS, "--set", "ground_lux=450",
                     "--set", self.STUCK, "--timeout", "1.5"]) == 3
        record = json.loads(capsys.readouterr().out)
        assert record["stage"] == "executor_error"

    def test_allow_failure_does_not_forgive_executor_errors(self, capsys):
        assert main(["run", *FAST_SETS, "--set", "ground_lux=450",
                     "--set", self.STUCK, "--timeout", "1.5",
                     "--allow-failure"]) == 3

    def test_sweep_simulation_failure_exits_3(self, capsys):
        assert main(["sweep", *FAST_SETS,
                     "--set", "symbol_width_m=1e9",
                     "--axis", "seed=1,2"]) == 3
        assert "outside the physics" in capsys.readouterr().err

    def test_sweep_max_failures_aborts_with_exit_3(self, capsys):
        assert main(["sweep", *FAST_SETS,
                     "--set", "symbol_width_m=1e9",
                     "--axis", "seed=1,2,3,4",
                     "--max-failures", "2"]) == 3
        err = capsys.readouterr().err
        assert "aborted" in err

    def test_clean_sweep_still_exits_0(self, capsys):
        assert main(["sweep", *FAST_SETS, "--set", "ground_lux=450",
                     "--axis", "seed=2,3",
                     "--max-failures", "1", "--timeout", "30"]) == 0


class TestChaosCommand:
    def test_chaos_prints_frontier(self, capsys):
        code = main(["chaos", *FAST_SETS, "--set", "ground_lux=450",
                     "--plan", '{"burst_rate_hz": 10.0}',
                     "--intensity", "0,1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos frontier" in out
        assert "degradation" in out

    def test_chaos_writes_records(self, tmp_path, capsys):
        out = tmp_path / "chaos.jsonl"
        assert main(["chaos", *FAST_SETS, "--set", "ground_lux=450",
                     "--plan", '{"saturate_fraction": 0.5}',
                     "--intensity", "0,1", "--out", str(out)]) == 0
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(lines) == 2  # one pinned seed, two rungs
        assert "fault_plan" not in lines[0]["spec"]
        assert lines[1]["spec"]["fault_plan"]["saturate_fraction"] == 0.5

    def test_chaos_empty_plan_is_usage_error(self, capsys):
        assert main(["chaos", *FAST_SETS,
                     "--plan", "{}", "--intensity", "0,1"]) == 2
        assert "empty" in capsys.readouterr().err

    def test_chaos_bad_intensity_is_usage_error(self, capsys):
        assert main(["chaos", *FAST_SETS,
                     "--plan", '{"chunk_drop": 0.1}',
                     "--intensity", ",,"]) == 2

    def test_chaos_fans_seeds_without_explicit_seed(self, capsys):
        pairs = list(zip(FAST_SETS[::2], FAST_SETS[1::2]))
        sets = [arg for flag, value in pairs if value != "seed=3"
                for arg in (flag, value)]
        code = main(["chaos", *sets, "--set", "ground_lux=450",
                     "--count", "3",
                     "--plan", '{"burst_rate_hz": 5.0}',
                     "--intensity", "1"])
        assert code == 0
        assert "3 scenario(s)" in capsys.readouterr().out


class TestSweepProfile:
    def test_profile_prints_stage_table(self, capsys):
        assert main(["sweep", *FAST_SETS, "--set", "ground_lux=450",
                     "--axis", "seed=2,3", "--profile"]) == 0
        text = capsys.readouterr().out
        assert "stage timings over 2 profiled record(s)" in text
        assert "simulate" in text and "decide" in text

    def test_profile_state_restored_after_sweep(self, capsys):
        from repro.exec import profiling_enabled

        before = profiling_enabled()
        assert main(["sweep", *FAST_SETS, "--set", "ground_lux=450",
                     "--axis", "seed=2", "--profile"]) == 0
        assert profiling_enabled() == before

    def test_unprofiled_sweep_prints_no_table(self, capsys):
        assert main(["sweep", *FAST_SETS, "--set", "ground_lux=450",
                     "--axis", "seed=2,3"]) == 0
        assert "stage timings" not in capsys.readouterr().out


class TestCacheBackendFlag:
    def test_sqlite_backend_caches_sweeps(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["sweep", *FAST_SETS, "--set", "ground_lux=450",
                "--axis", "seed=2,3", "--cache-dir", str(cache_dir),
                "--cache-backend", "sqlite"]
        assert main(argv) == 0
        assert (cache_dir / "records.sqlite").exists()
        capsys.readouterr()
        assert main(argv) == 0
        assert "2 cached [100%], 0 simulated" in capsys.readouterr().out

    def test_backend_requires_cache_dir(self, capsys):
        assert main(["sweep", *FAST_SETS, "--set", "ground_lux=450",
                     "--axis", "seed=2", "--cache-backend", "sqlite"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", *FAST_SETS, "--cache-dir", "/tmp/x",
                  "--cache-backend", "redis"])
