"""Tests for the repro-engine CLI (run / sweep / report)."""

import json

import pytest

from repro.engine.cli import main

FAST_SETS = ["--set", "source=sun", "--set", "detector=led",
             "--set", "cap=false", "--set", "ground=tarmac",
             "--set", "bits=00", "--set", "symbol_width_m=0.1",
             "--set", "speed_mps=5.0", "--set", "receiver_height_m=0.25",
             "--set", "start_position_m=-1.5",
             "--set", "sample_rate_hz=2000", "--set", "seed=3"]


class TestRun:
    def test_run_prints_record(self, capsys):
        code = main(["run", *FAST_SETS, "--set", "ground_lux=450"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["success"] is True
        assert record["stage"] == "decoded"
        assert record["spec"]["ground_lux"] == 450.0

    def test_run_failure_exit_code(self, capsys):
        assert main(["run", *FAST_SETS, "--set", "ground_lux=100"]) == 1
        assert main(["run", *FAST_SETS, "--set", "ground_lux=100",
                     "--allow-failure"]) == 0

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({
            "source": "sun", "detector": "led", "cap": False,
            "ground": "tarmac", "bits": "00", "symbol_width_m": 0.1,
            "speed_mps": 5.0, "receiver_height_m": 0.25,
            "start_position_m": -1.5, "sample_rate_hz": 2000.0,
            "ground_lux": 450.0, "seed": 3}))
        assert main(["run", "--spec", str(spec_file)]) == 0

    def test_bad_field_is_an_error(self, capsys):
        assert main(["run", "--set", "wavelength=650"]) == 2
        assert "repro-engine" in capsys.readouterr().err


class TestSweep:
    def test_sweep_axes_out_and_cache(self, tmp_path, capsys):
        out = tmp_path / "runs.jsonl"
        cache_dir = tmp_path / "cache"
        argv = ["sweep", *FAST_SETS,
                "--axis", "ground_lux=450,100",
                "--axis", "seed=2,3",
                "--cache-dir", str(cache_dir),
                "--out", str(out),
                "--group-by", "ground_lux"]
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "ran 4 scenarios" in text
        assert "decode rate by ground_lux" in text
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(lines) == 4

        # Second pass answers entirely from the cache.
        assert main(argv) == 0
        assert "4 cached [100%], 0 simulated" in capsys.readouterr().out

    def test_sweep_linspace_axis(self, capsys):
        assert main(["sweep", *FAST_SETS, "--set", "ground_lux=450",
                     "--axis", "seed=1:3:3"]) == 0
        assert "ran 3 scenarios" in capsys.readouterr().out

    def test_sweep_grid_file(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps({
            "template": {"source": "sun", "detector": "led", "cap": False,
                         "ground": "tarmac", "bits": "00",
                         "symbol_width_m": 0.1, "speed_mps": 5.0,
                         "receiver_height_m": 0.25,
                         "start_position_m": -1.5,
                         "sample_rate_hz": 2000.0},
            "axes": {"ground_lux": [450.0, 100.0], "seed": [2, 3]}}))
        assert main(["sweep", "--grid", str(grid_file)]) == 0
        assert "ran 4 scenarios" in capsys.readouterr().out


class TestReport:
    def test_report_reads_results(self, tmp_path, capsys):
        out = tmp_path / "runs.jsonl"
        main(["sweep", *FAST_SETS, "--axis", "ground_lux=450,100",
              "--axis", "seed=2,3", "--out", str(out)])
        capsys.readouterr()
        assert main(["report", str(out), "--group-by", "ground_lux"]) == 0
        text = capsys.readouterr().out
        assert "scenarios: 4" in text
        assert "decode rate by ground_lux" in text

    def test_report_missing_file(self, capsys):
        assert main(["report", "/nonexistent/runs.jsonl"]) == 2


class TestUnknownSpecField:
    """--set with a typo'd field must name the field and list valid
    ones, not die inside float()."""

    def test_unknown_field_names_itself(self, capsys):
        assert main(["run", "--set", "grund_lux=450"]) == 2
        err = capsys.readouterr().err
        assert "unknown spec field 'grund_lux'" in err
        assert "ground_lux" in err          # the valid list is shown

    def test_unknown_axis_field_rejected_too(self, capsys):
        assert main(["sweep", *FAST_SETS,
                     "--axis", "grund_lux=450,100"]) == 2
        assert "unknown spec field" in capsys.readouterr().err

    def test_known_fields_still_coerce(self, capsys):
        assert main(["run", *FAST_SETS, "--set", "ground_lux=450"]) == 0


class TestSweepTensorBackend:
    def test_tensor_sweep_matches_process_sweep(self, tmp_path, capsys):
        base = ["sweep", *FAST_SETS, "--set", "ground_lux=450",
                "--axis", "seed=2,3,4"]
        out_p = tmp_path / "process.jsonl"
        out_t = tmp_path / "tensor.jsonl"
        assert main([*base, "--out", str(out_p)]) == 0
        assert main([*base, "--backend", "tensor",
                     "--out", str(out_t)]) == 0

        def load(path):
            records = [json.loads(line)
                       for line in path.read_text().splitlines()]
            for record in records:
                record.pop("elapsed_s")   # wall clock, not a result
            return records

        assert load(out_p) == load(out_t)

    def test_tensor_float32_runs(self, capsys):
        assert main(["sweep", *FAST_SETS, "--set", "ground_lux=450",
                     "--axis", "seed=2,3", "--backend", "tensor",
                     "--dtype", "float32"]) == 0
        assert "ran 2 scenarios" in capsys.readouterr().out

    def test_float32_requires_tensor_backend(self, capsys):
        assert main(["sweep", *FAST_SETS, "--axis", "seed=2,3",
                     "--dtype", "float32"]) == 2
        assert "tensor" in capsys.readouterr().err
