"""Tests for repro.core.designer (the Section 4.1 designer questions)."""

import pytest

from repro.core.designer import TagDesigner
from repro.core.decoder import AdaptiveThresholdDecoder
from repro.core.errors import DecodeError, PreambleNotFoundError
from repro.channel.mobility import ConstantSpeed
from repro.channel.scene import MovingObject, PassiveScene
from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.hardware.frontend import FovCap, ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver
from repro.hardware.photodiode import PdGain, Photodiode
from repro.optics.geometry import Vec3
from repro.optics.materials import TARMAC
from repro.optics.sources import LedLamp, Sun
from repro.tags.packet import Packet
from repro.tags.surface import TagSurface


def outdoor_designer(lux=6200.0, height=0.75):
    return TagDesigner(
        source=Sun(ground_lux=lux),
        frontend=ReceiverFrontEnd(detector=LedReceiver.red_5mm()),
        receiver_height_m=height)


def indoor_designer(height=0.2):
    return TagDesigner(
        source=LedLamp(position=Vec3(0.12, 0.0, height),
                       luminous_intensity=2.0),
        frontend=ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                                  cap=FovCap.paper_cap()),
        receiver_height_m=height)


class TestConstraints:
    def test_min_width_grows_with_height(self):
        """Blur scales with height, so recommended strips must widen."""
        low = outdoor_designer(height=0.25).min_symbol_width_m()
        high = outdoor_designer(height=1.0).min_symbol_width_m()
        assert high > 2 * low

    def test_narrow_fov_allows_narrower_strips(self):
        led = outdoor_designer(height=0.25)
        pd = TagDesigner(
            source=Sun(ground_lux=6200.0),
            frontend=ReceiverFrontEnd(detector=Photodiode.opt101()),
            receiver_height_m=0.25)
        assert led.min_symbol_width_m() < pd.min_symbol_width_m()

    def test_contrast_falls_with_ambient(self):
        bright, _ = outdoor_designer(lux=6200.0).contrast_analysis()
        dim, _ = outdoor_designer(lux=100.0).contrast_analysis()
        assert bright > dim

    def test_saturating_receiver_flagged(self):
        designer = TagDesigner(
            source=Sun(ground_lux=6200.0),
            frontend=ReceiverFrontEnd(
                detector=Photodiode.opt101(gain=PdGain.G2)),
            receiver_height_m=0.75)
        _, headroom = designer.contrast_analysis()
        assert headroom < 1.0

    def test_positive_height_required(self):
        with pytest.raises(ValueError):
            TagDesigner(source=Sun(),
                        frontend=ReceiverFrontEnd(
                            detector=LedReceiver.red_5mm()),
                        receiver_height_m=0.0)


class TestDesign:
    def test_car_roof_design_feasible(self):
        """The paper's own deployment must come out feasible."""
        design = outdoor_designer().design(object_length_m=1.4,
                                           speed_mps=5.0)
        assert design.feasible
        assert design.max_payload_bits >= 2
        assert design.symbol_rate_sps > 10.0
        assert design.packet is not None

    def test_bit_rate_is_half_symbol_rate(self):
        design = outdoor_designer().design(1.4, 5.0)
        assert design.bit_rate_bps == pytest.approx(
            design.symbol_rate_sps / 2.0)

    def test_too_short_object_infeasible(self):
        design = outdoor_designer().design(object_length_m=0.2,
                                           speed_mps=5.0)
        assert not design.feasible
        assert design.max_payload_bits == 0
        assert design.packet is None
        assert any("too short" in n for n in design.notes)

    def test_excessive_speed_noted(self):
        design = outdoor_designer().design(1.4, speed_mps=500.0)
        assert not design.feasible
        assert any("speed" in n for n in design.notes)

    def test_dim_site_infeasible(self):
        design = outdoor_designer(lux=50.0, height=0.25).design(1.4, 5.0)
        assert not design.feasible
        assert any("contrast" in n for n in design.notes)

    def test_codebook_attached(self):
        design = outdoor_designer().design(1.4, 5.0, n_codes_needed=4)
        assert design.codebook is not None
        assert design.codebook.size == 4
        assert design.codebook.min_distance >= 1

    def test_codebook_capped_by_payload(self):
        design = outdoor_designer().design(0.9, 5.0, n_codes_needed=1000)
        assert design.codebook is not None
        assert design.codebook.size <= 2**design.max_payload_bits
        assert any("codes" in n for n in design.notes)

    def test_validation(self):
        with pytest.raises(ValueError):
            outdoor_designer().design(0.0, 5.0)
        with pytest.raises(ValueError):
            outdoor_designer().design(1.0, 0.0)

    def test_summary_renders(self):
        text = outdoor_designer().design(1.4, 5.0).summary()
        assert "symbol width" in text
        assert "feasible" in text


class TestDesignActuallyDecodes:
    """The design sheet must survive contact with the simulator."""

    @pytest.mark.parametrize("factory,speed", [
        (outdoor_designer, 5.0),
        (indoor_designer, 0.08),
    ])
    def test_recommended_width_decodes(self, factory, speed):
        designer = factory()
        design = designer.design(object_length_m=1.2, speed_mps=speed)
        assert design.feasible
        bits = "10".ljust(min(design.max_payload_bits, 3), "0")
        packet = Packet.from_bitstring(bits,
                                       symbol_width_m=design.symbol_width_m)
        tag = TagSurface.from_packet(packet)
        scene = PassiveScene(
            source=designer.source,
            receiver_height_m=designer.receiver_height_m,
            ground=TARMAC,
            objects=[MovingObject(
                tag, ConstantSpeed(speed, -(1.0 + packet.length_m)),
                "design-probe")])
        designer.frontend.seed = 5
        sim = ChannelSimulator(scene, designer.frontend,
                               SimulatorConfig(sample_rate_hz=2000.0,
                                               seed=5))
        result = AdaptiveThresholdDecoder().decode(
            sim.capture_pass(), n_data_symbols=2 * len(bits))
        assert result.bit_string() == bits
