"""Shared fixtures: standard scenes, receivers and captures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.mobility import ConstantSpeed
from repro.channel.scene import MovingObject, PassiveScene
from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.hardware.frontend import FovCap, ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver
from repro.hardware.photodiode import PdGain, Photodiode
from repro.optics.geometry import Vec3
from repro.optics.materials import TARMAC
from repro.optics.sources import LedLamp, Sun
from repro.tags.packet import Packet
from repro.tags.surface import TagSurface


@pytest.fixture
def indoor_receiver() -> ReceiverFrontEnd:
    """The paper's dark-room receiver: OPT101 at G1 with the FoV cap."""
    return ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                            cap=FovCap.paper_cap(), seed=42)


@pytest.fixture
def led_receiver() -> ReceiverFrontEnd:
    """The outdoor RX-LED receiver."""
    return ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=42)


def build_indoor_scene(bits: str = "00", symbol_width_m: float = 0.03,
                       height_m: float = 0.2,
                       speed_mps: float = 0.08) -> PassiveScene:
    """Fig. 5 style dark-room scene."""
    packet = Packet.from_bitstring(bits, symbol_width_m=symbol_width_m)
    tag = TagSurface.from_packet(packet)
    return PassiveScene(
        source=LedLamp(position=Vec3(0.12, 0.0, height_m),
                       luminous_intensity=2.0),
        receiver_height_m=height_m,
        objects=[MovingObject(tag, ConstantSpeed(speed_mps, -0.3), "tag")],
    )


def build_outdoor_scene(bits: str = "00", noise_floor_lux: float = 6200.0,
                        height_m: float = 0.75,
                        symbol_width_m: float = 0.1,
                        speed_mps: float = 5.0) -> PassiveScene:
    """Section 5 style outdoor scene (bare tag, no car)."""
    packet = Packet.from_bitstring(bits, symbol_width_m=symbol_width_m)
    tag = TagSurface.from_packet(packet)
    return PassiveScene(
        source=Sun(ground_lux=noise_floor_lux),
        receiver_height_m=height_m,
        ground=TARMAC,
        objects=[MovingObject(tag, ConstantSpeed(speed_mps, -1.5), "tag")],
    )


@pytest.fixture
def indoor_scene() -> PassiveScene:
    """Default Fig. 5 scene ('00', 3 cm symbols, h = 0.2 m)."""
    return build_indoor_scene()


@pytest.fixture
def outdoor_scene() -> PassiveScene:
    """Default Fig. 17(a) scene."""
    return build_outdoor_scene()


@pytest.fixture
def indoor_capture_00(indoor_scene, indoor_receiver):
    """A deterministic clean capture of code '00'."""
    sim = ChannelSimulator(indoor_scene, indoor_receiver,
                           SimulatorConfig(sample_rate_hz=500.0, seed=42))
    return sim.capture_pass()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data generation."""
    return np.random.default_rng(2024)
