"""Tests for repro.optics.propagation."""

import numpy as np
import pytest

from repro.optics.geometry import FieldOfView
from repro.optics.propagation import (
    absolute_gain,
    exact_patch_transfer_weights,
    footprint_kernel,
    patch_transfer_weights,
)


class TestPatchTransfer:
    def test_zero_outside_footprint(self):
        fov = FieldOfView(30.0)
        xs = np.array([-1.0, 1.0])  # far outside at h = 0.5
        w = patch_transfer_weights(xs, 0.5, fov)
        assert np.all(w == 0.0)

    def test_peak_at_nadir(self):
        fov = FieldOfView(40.0)
        xs = np.linspace(-0.3, 0.3, 301)
        w = patch_transfer_weights(xs, 0.5, fov)
        assert np.argmax(w) == len(xs) // 2

    def test_symmetric(self):
        fov = FieldOfView(40.0)
        xs = np.linspace(-0.3, 0.3, 301)
        w = patch_transfer_weights(xs, 0.5, fov)
        assert np.allclose(w, w[::-1])

    def test_bad_height(self):
        with pytest.raises(ValueError):
            patch_transfer_weights(np.array([0.0]), 0.0, FieldOfView(30.0))


class TestExactTransfer:
    def test_same_support_as_chord(self):
        fov = FieldOfView(30.0)
        xs = np.linspace(-0.2, 0.2, 101)
        chord = patch_transfer_weights(xs, 0.5, fov)
        exact = exact_patch_transfer_weights(xs, 0.5, fov)
        assert np.array_equal(chord > 0, exact > 0)

    def test_normalised_shapes_agree(self):
        """Chord approximation vs exact lateral quadrature: close."""
        fov = FieldOfView(24.0)
        xs = np.linspace(-0.06, 0.06, 121)
        chord = patch_transfer_weights(xs, 0.25, fov)
        exact = exact_patch_transfer_weights(xs, 0.25, fov)
        chord = chord / chord.sum()
        exact = exact / exact.sum()
        assert float(np.abs(chord - exact).max()) < 0.15 * float(chord.max())

    def test_lateral_resolution_validation(self):
        with pytest.raises(ValueError):
            exact_patch_transfer_weights(np.array([0.0]), 0.5,
                                         FieldOfView(30.0), n_lateral=2)


class TestFootprintKernel:
    def test_weights_normalised(self):
        kern = footprint_kernel(0.5, FieldOfView(24.0), 0.002)
        assert kern.weights.sum() == pytest.approx(1.0)
        assert np.all(kern.weights >= 0.0)

    def test_gain_positive(self):
        kern = footprint_kernel(0.5, FieldOfView(24.0), 0.002)
        assert kern.gain > 0.0

    def test_gain_height_invariant_for_fixed_fov(self):
        """The effective solid angle does not change with height; the
        amplitude decay of the indoor channel comes from the lamp's
        inverse-square law, not from the footprint transfer."""
        fov = FieldOfView(24.0)
        g1 = footprint_kernel(0.25, fov, 0.001).gain
        g2 = footprint_kernel(0.75, fov, 0.003).gain
        assert g1 == pytest.approx(g2, rel=0.05)

    def test_effective_width_scales_with_height(self):
        fov = FieldOfView(24.0)
        w1 = footprint_kernel(0.25, fov, 0.001).effective_width()
        w2 = footprint_kernel(0.5, fov, 0.002).effective_width()
        assert w2 == pytest.approx(2.0 * w1, rel=0.05)

    def test_wider_fov_wider_kernel(self):
        w_narrow = footprint_kernel(0.5, FieldOfView(16.0), 0.002).effective_width()
        w_wide = footprint_kernel(0.5, FieldOfView(60.0), 0.002).effective_width()
        assert w_wide > 2.0 * w_narrow

    def test_exact_method(self):
        kern = footprint_kernel(0.5, FieldOfView(24.0), 0.002, method="exact")
        assert kern.weights.sum() == pytest.approx(1.0)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            footprint_kernel(0.5, FieldOfView(24.0), 0.002, method="magic")

    def test_coarse_step_rejected(self):
        with pytest.raises(ValueError):
            footprint_kernel(0.1, FieldOfView(16.0), 0.1)


class TestAbsoluteGain:
    def test_matches_kernel_gain(self):
        fov = FieldOfView(24.0)
        g_direct = absolute_gain(0.5, fov)
        g_kernel = footprint_kernel(0.5, fov, 0.0005).gain
        assert g_direct == pytest.approx(g_kernel, rel=0.02)

    def test_wider_fov_more_gain(self):
        assert absolute_gain(0.5, FieldOfView(60.0)) > absolute_gain(
            0.5, FieldOfView(16.0))
