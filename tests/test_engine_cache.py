"""Tests for repro.engine.cache — the content-hash result store."""

import json

import pytest

from repro.engine import ResultCache, RunRecord


def make_record(spec_hash="ab" + "0" * 62, seed=7, success=True):
    return RunRecord(
        spec_hash=spec_hash,
        spec={"bits": "00", "seed": seed},
        seed=seed,
        sent_bits="00",
        decoded_bits="00" if success else "",
        success=success,
        stage="decoded" if success else "preamble_not_found",
        ber=0.0 if success else 1.0,
        n_samples=500,
        trace_duration_s=0.25,
        sample_rate_hz=2000.0,
        noise_floor_lux=450.0,
        elapsed_s=0.01,
    )


class TestRoundtrip:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = make_record()
        cache.put(record)
        assert cache.get(record.spec_hash) == record
        assert record.spec_hash in cache
        assert len(cache) == 1

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" + "1" * 62) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_stats_track_hits_and_writes(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = make_record()
        cache.put(record)
        cache.get(record.spec_hash)
        cache.get("ff" + "2" * 62)
        assert cache.stats.writes == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_timing_survives_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = make_record()
        cache.put(record)
        assert cache.get(record.spec_hash).elapsed_s == record.elapsed_s


class TestRobustness:
    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = make_record()
        cache.put(record)
        cache._path(record.spec_hash).write_text("{not json")
        assert cache.get(record.spec_hash) is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = make_record()
        cache.put(record)
        cache._path(record.spec_hash).write_text(json.dumps({"bogus": 1}))
        assert cache.get(record.spec_hash) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_record(spec_hash="ab" + "0" * 62))
        cache.put(make_record(spec_hash="cd" + "1" * 62))
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_overwrite_updates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_record(success=True))
        cache.put(make_record(success=False))
        assert cache.get(make_record().spec_hash).success is False


class TestCorruptEntries:
    """Regression: membership must mirror readability — a torn file
    that ``get()`` treats as a miss used to satisfy ``in``."""

    def _corrupt(self, cache, record, text):
        path = cache.root / record.spec_hash[:2] / f"{record.spec_hash}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def test_torn_file_not_contained(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = make_record()
        self._corrupt(cache, record, '{"spec_hash": "ab')  # torn write
        assert record.spec_hash not in cache
        assert cache.get(record.spec_hash) is None

    def test_wrong_schema_not_contained(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = make_record()
        self._corrupt(cache, record, '{"unknown_field": 1}')
        assert record.spec_hash not in cache
        assert cache.get(record.spec_hash) is None

    def test_membership_consistent_with_get_after_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = make_record()
        assert record.spec_hash not in cache
        cache.put(record)
        assert record.spec_hash in cache
        assert cache.get(record.spec_hash) == record

    def test_overwriting_corrupt_entry_repairs_membership(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = make_record()
        self._corrupt(cache, record, "not json at all")
        assert record.spec_hash not in cache
        cache.put(record)
        assert record.spec_hash in cache


class TestInvalidation:
    def test_spec_change_misses(self, tmp_path):
        """A changed spec gets a new hash, so stale results never leak."""
        from repro.engine import ScenarioSpec

        cache = ResultCache(tmp_path)
        spec = ScenarioSpec(seed=1)
        record = make_record(spec_hash=spec.content_hash())
        cache.put(record)
        assert cache.get(spec.content_hash()) == record
        nudged = spec.replace(receiver_height_m=0.21)
        assert cache.get(nudged.content_hash()) is None


class TestWriteRetry:
    """Transient IO errors on put() are absorbed by the retry policy."""

    def _flaky_cache(self, tmp_path, fail_times, max_attempts=3):
        import os

        from repro.faults.retry import RetryPolicy

        cache = ResultCache(tmp_path, retry_policy=RetryPolicy(
            max_attempts=max_attempts, base_delay_s=0.0))
        real_replace = os.replace
        state = {"left": fail_times}

        def flaky_replace(src, dst):
            if state["left"] > 0:
                state["left"] -= 1
                raise OSError("transient storage hiccup")
            return real_replace(src, dst)

        return cache, flaky_replace

    def test_transient_error_retried_to_success(self, tmp_path,
                                                monkeypatch):
        import os

        cache, flaky = self._flaky_cache(tmp_path, fail_times=2)
        monkeypatch.setattr(os, "replace", flaky)
        record = make_record()
        cache.put(record)
        monkeypatch.undo()
        assert cache.get(record.spec_hash) == record
        assert cache.stats.writes == 1
        assert cache.stats.write_retries == 2

    def test_persistent_error_propagates_as_oserror(self, tmp_path,
                                                    monkeypatch):
        import os

        cache, flaky = self._flaky_cache(tmp_path, fail_times=99)
        monkeypatch.setattr(os, "replace", flaky)
        with pytest.raises(OSError, match="hiccup"):
            cache.put(make_record())
        monkeypatch.undo()
        assert cache.stats.writes == 0
        assert cache.retry_policy.attempts_made == 3

    def test_no_temp_litter_after_failed_put(self, tmp_path,
                                             monkeypatch):
        import os

        cache, flaky = self._flaky_cache(tmp_path, fail_times=99)
        monkeypatch.setattr(os, "replace", flaky)
        with pytest.raises(OSError):
            cache.put(make_record())
        monkeypatch.undo()
        assert not list(tmp_path.rglob("*.tmp"))

    def test_default_policy_is_bounded(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.retry_policy.max_attempts == 3
        assert cache.retry_policy.base_delay_s == pytest.approx(0.01)
