"""Failure-injection integration tests: how the system breaks.

The paper's Section 3 catalogues the channel's failure modes (noise
floor saturation, distortions, collisions).  These tests drive each
failure through the full simulated stack and assert the system fails
the way the paper says it does — abruptly on saturation, gracefully to
fallbacks otherwise.
"""

import numpy as np
import pytest

from repro.channel.mobility import ConstantSpeed
from repro.channel.scene import MovingObject, PassiveScene
from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.core.decoder import AdaptiveThresholdDecoder
from repro.core.errors import DecodeError, PreambleNotFoundError
from repro.core.pipeline import PipelineStage, ReceiverPipeline
from repro.hardware.frontend import FovCap, ReceiverFrontEnd
from repro.hardware.photodiode import PdGain, Photodiode
from repro.hardware.led_receiver import LedReceiver
from repro.optics.materials import TARMAC
from repro.optics.sources import Sun
from repro.tags.packet import Packet
from repro.tags.surface import TagSurface

from .conftest import build_outdoor_scene


def _capture(scene, frontend, seed=3, fs=2000.0):
    sim = ChannelSimulator(scene, frontend,
                           SimulatorConfig(sample_rate_hz=fs, seed=seed))
    return sim.capture_pass()


class TestSaturationFailure:
    """'These noise floor changes can easily saturate a photodiode,
    which make links disappear abruptly.' (Section 3)"""

    def test_pd_g1_rails_outdoors(self):
        scene = build_outdoor_scene(noise_floor_lux=6200.0)
        frontend = ReceiverFrontEnd(detector=Photodiode.opt101(PdGain.G1),
                                    seed=3)
        trace = _capture(scene, frontend)
        # Railed at full scale for essentially the whole pass.
        assert float((trace.samples >= 1015).mean()) > 0.9

    def test_pipeline_reports_saturated_stage(self):
        scene = build_outdoor_scene(noise_floor_lux=6200.0)
        frontend = ReceiverFrontEnd(detector=Photodiode.opt101(PdGain.G1),
                                    seed=3)
        outcome = ReceiverPipeline().process(_capture(scene, frontend),
                                             n_data_symbols=4)
        assert outcome.stage is PipelineStage.SATURATED

    def test_abrupt_disappearance(self):
        """The link is binary across the saturation boundary: fine
        below, gone above — no graceful degradation."""
        def decodes(lux, gain):
            scene = build_outdoor_scene(bits="00", noise_floor_lux=lux,
                                        height_m=0.25)
            frontend = ReceiverFrontEnd(detector=Photodiode.opt101(gain),
                                        cap=FovCap.paper_cap(), seed=3)
            try:
                result = AdaptiveThresholdDecoder().decode(
                    _capture(scene, frontend), n_data_symbols=4)
            except (PreambleNotFoundError, DecodeError):
                return False
            return result.bit_string() == "00"

        # G2 with the cap: ambient rejection 0.35 puts the effective
        # rail at ~3400 lux ambient.
        assert decodes(1000.0, PdGain.G2)
        assert not decodes(6200.0, PdGain.G2)


class TestTruncatedPasses:
    def test_packet_cut_off_mid_data(self):
        """A capture that ends inside the data field cannot produce a
        full payload and must fail loudly, not fabricate bits."""
        scene = build_outdoor_scene(bits="0110")
        frontend = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=3)
        sim = ChannelSimulator(scene, frontend,
                               SimulatorConfig(sample_rate_hz=2000.0,
                                               seed=3))
        t_start, duration = sim.pass_window()
        trace = sim.capture(duration * 0.55, t_start)  # cut mid-packet
        decoder = AdaptiveThresholdDecoder()
        try:
            result = decoder.decode(trace, n_data_symbols=8)
            assert result.bit_string() != "0110"
        except (PreambleNotFoundError, DecodeError):
            pass  # equally acceptable

    def test_missing_preamble_entirely(self):
        """A capture window that starts after the tag passed sees only
        ground and must raise PreambleNotFound."""
        scene = build_outdoor_scene(bits="00")
        frontend = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=3)
        sim = ChannelSimulator(scene, frontend,
                               SimulatorConfig(sample_rate_hz=2000.0,
                                               seed=3))
        t_start, duration = sim.pass_window()
        late = sim.capture(0.3, t_start + duration + 1.0)
        with pytest.raises(PreambleNotFoundError):
            AdaptiveThresholdDecoder().decode(late, n_data_symbols=4)


class TestContrastInversionRejected:
    def test_inverted_tag_does_not_decode_as_original(self):
        """A tag built with swapped materials (LOW where HIGH should
        be) must not silently decode as the intended payload."""
        from repro.optics.materials import ALUMINUM_TAPE, BLACK_NAPKIN

        packet = Packet.from_bitstring("10", symbol_width_m=0.1)
        inverted = TagSurface.from_packet(packet,
                                          high_material=BLACK_NAPKIN,
                                          low_material=ALUMINUM_TAPE)
        scene = PassiveScene(
            source=Sun(ground_lux=6200.0), receiver_height_m=0.75,
            ground=TARMAC,
            objects=[MovingObject(inverted, ConstantSpeed(5.0, -1.5),
                                  "inverted")])
        frontend = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=3)
        try:
            result = AdaptiveThresholdDecoder().decode(
                _capture(scene, frontend), n_data_symbols=4)
            assert result.bit_string() != "10"
        except (PreambleNotFoundError, DecodeError):
            pass


class TestStationaryObject:
    def test_parked_tag_produces_no_packet(self):
        """An object parked inside the FoV modulates nothing — the
        channel only exists for *moving* surfaces."""
        packet = Packet.from_bitstring("00", symbol_width_m=0.1)
        tag = TagSurface.from_packet(packet)
        scene = PassiveScene(
            source=Sun(ground_lux=6200.0), receiver_height_m=0.75,
            ground=TARMAC,
            objects=[MovingObject(tag, ConstantSpeed(1e-9, -0.4),
                                  "parked")])
        frontend = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=3)
        sim = ChannelSimulator(scene, frontend,
                               SimulatorConfig(sample_rate_hz=2000.0,
                                               seed=3))
        trace = sim.capture(1.0)
        with pytest.raises(PreambleNotFoundError):
            AdaptiveThresholdDecoder().decode(trace, n_data_symbols=4)
