"""Tests for repro.stream.decode and repro.stream.detect."""

import numpy as np
import pytest

from repro.channel.trace import SignalTrace
from repro.core.decoder import AdaptiveThresholdDecoder
from repro.stream import (
    PreambleDetector,
    StreamBuffer,
    StreamDecoder,
    StreamState,
    iter_chunks,
    replay_trace,
)
from repro.tags.encoding import Symbol, manchester_encode


def synthetic_trace(bits="10", fs=100.0, symbol_s=0.5, lead_s=1.0,
                    tail_s=1.0, noise=0.0, seed=0) -> SignalTrace:
    """Clean HLHL preamble + Manchester data as half-sine bumps."""
    symbols = [Symbol.HIGH, Symbol.LOW, Symbol.HIGH, Symbol.LOW]
    symbols += manchester_encode([int(b) for b in bits])
    per = int(round(symbol_s * fs))
    parts = [np.zeros(int(lead_s * fs))]
    for symbol in symbols:
        if symbol is Symbol.HIGH:
            parts.append(np.sin(np.pi * np.linspace(0.0, 1.0, per,
                                                    endpoint=False)))
        else:
            parts.append(np.zeros(per))
    parts.append(np.zeros(int(tail_s * fs)))
    samples = np.concatenate(parts)
    if noise:
        samples = samples + noise * np.random.default_rng(seed).normal(
            size=len(samples))
    return SignalTrace(samples, fs)


class TestStateMachine:
    def test_walks_all_states(self):
        trace = synthetic_trace()
        stream = StreamDecoder(trace.sample_rate_hz, n_data_symbols=4)
        assert stream.state is StreamState.IDLE
        states = {stream.state}
        for chunk in iter_chunks(trace.samples, 16):
            stream.push(chunk)
            states.add(stream.state)
        stream.flush()
        states.add(stream.state)
        assert states == {StreamState.IDLE, StreamState.ACQUIRING,
                          StreamState.DECODING, StreamState.EMITTED}

    def test_push_after_flush_rejected(self):
        stream = StreamDecoder(100.0)
        stream.push(np.zeros(10))
        stream.flush()
        with pytest.raises(RuntimeError):
            stream.push(np.zeros(10))

    def test_flush_is_idempotent(self):
        trace = synthetic_trace()
        stream = StreamDecoder(trace.sample_rate_hz, n_data_symbols=4)
        stream.push(trace.samples)
        first = stream.flush()
        assert len(first) == 1
        assert stream.flush() == []
        assert len([e for e in stream.events if e.kind == "verdict"]) == 1

    def test_bad_n_data_symbols(self):
        with pytest.raises(ValueError):
            StreamDecoder(100.0, n_data_symbols=0)


class TestAcquisitionDecoderSelection:
    def test_adaptive_decoder_shared_with_detector(self):
        from repro.core.decoder import DecoderConfig

        decoder = AdaptiveThresholdDecoder(
            DecoderConfig(threshold_rule="paper"))
        stream = StreamDecoder(100.0, decoder=decoder)
        assert stream.detector.decoder is decoder

    def test_two_phase_wrapper_contributes_inner_adaptive(self):
        """A wrapper decoder's configured inner adaptive decoder drives
        acquisition, so telemetry shares the verdict's thresholds."""
        from repro.core.decoder import DecoderConfig
        from repro.vehicles.rooftag import TwoPhaseDecoder

        inner = AdaptiveThresholdDecoder(
            DecoderConfig(threshold_rule="paper"))
        stream = StreamDecoder(100.0, decoder=TwoPhaseDecoder(decoder=inner))
        assert stream.detector.decoder is inner

    def test_opaque_decoder_falls_back_to_defaults(self):
        class Opaque:
            def decode(self, trace, n_data_symbols=None):
                raise NotImplementedError

        stream = StreamDecoder(100.0, decoder=Opaque())
        assert isinstance(stream.detector.decoder,
                          AdaptiveThresholdDecoder)


class TestEvents:
    def test_full_event_sequence(self):
        trace = synthetic_trace(bits="10")
        stream = StreamDecoder(trace.sample_rate_hz, n_data_symbols=4)
        for chunk in iter_chunks(trace.samples, 8):
            stream.push(chunk)
        stream.flush()
        kinds = [e.kind for e in stream.events]
        assert kinds == ["onset", "first_bit", "verdict"]

    def test_event_timestamps_nondecreasing(self):
        trace = synthetic_trace(bits="1001", noise=0.02)
        stream = StreamDecoder(trace.sample_rate_hz, n_data_symbols=8)
        for chunk in iter_chunks(trace.samples, 5):
            stream.push(chunk)
        stream.flush()
        times = [e.stream_time_s for e in stream.events]
        assert times == sorted(times)

    def test_onset_latency_positive_and_bounded(self):
        trace = synthetic_trace()
        replay = replay_trace(trace, 8, n_data_symbols=4)
        onset = replay.decoder.event("onset")
        # Detection cannot precede the signal, and must lock on within
        # a couple of symbol periods of the A peak.
        assert 0.0 < onset.latency_s < 2.0 * 0.5 + 0.5

    def test_provisional_first_bit_matches_payload(self):
        for bits in ("10", "01"):
            trace = synthetic_trace(bits=bits)
            replay = replay_trace(trace, 8, n_data_symbols=4)
            assert replay.decoder.event("first_bit").bits == bits[0]

    def test_events_carry_session_id(self):
        trace = synthetic_trace()
        stream = StreamDecoder(trace.sample_rate_hz, n_data_symbols=4,
                               session_id="rx7")
        stream.push(trace.samples)
        stream.flush()
        assert all(e.session_id == "rx7" for e in stream.events)

    def test_event_to_dict_round_trips_json(self):
        import json

        trace = synthetic_trace()
        replay = replay_trace(trace, 16, n_data_symbols=4)
        payload = json.dumps([e.to_dict() for e in replay.events])
        assert json.loads(payload)[0]["kind"] == "onset"


class TestParity:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    @pytest.mark.parametrize("bits,noise", [("1001", 0.0), ("10", 0.02)])
    def test_verdict_matches_offline(self, chunk_size, bits, noise):
        trace = synthetic_trace(bits=bits, noise=noise)
        n_data_symbols = 2 * len(bits)
        offline = AdaptiveThresholdDecoder().decode(
            trace, n_data_symbols=n_data_symbols)
        replay = replay_trace(trace, chunk_size,
                              n_data_symbols=n_data_symbols)
        assert replay.verdict.bits == offline.bit_string()
        assert replay.verdict.success == offline.success
        # Not just the payload: the decode result itself is identical.
        assert replay.decoder.result.tau_t == offline.tau_t
        assert replay.decoder.result.symbols == offline.symbols

    def test_failed_offline_decode_fails_identically(self):
        trace = SignalTrace(np.zeros(500), 100.0)
        replay = replay_trace(trace, 32)
        assert replay.verdict.bits == ""
        assert replay.verdict.stage == "preamble_not_found"


class TestDegenerateStreams:
    def test_empty_stream_flushes_cleanly(self):
        stream = StreamDecoder(100.0)
        events = stream.flush()
        assert events[0].stage == "preamble_not_found"

    def test_constant_stream_at_chunk_one(self):
        stream = StreamDecoder(100.0)
        for _ in range(300):
            stream.push(np.array([5.0]))
        verdict = stream.flush()[0]
        assert verdict.bits == ""
        assert stream.state is StreamState.EMITTED

    def test_tiny_stream(self):
        stream = StreamDecoder(100.0)
        stream.push(np.array([1.0, 2.0]))
        assert stream.flush()[0].stage == "preamble_not_found"

    def test_ramp_without_preamble(self):
        stream = StreamDecoder(100.0)
        for chunk in iter_chunks(np.linspace(0.0, 1.0, 400), 16):
            stream.push(chunk)
        assert stream.flush()[0].bits == ""


class TestNormalizerIntegration:
    def test_normalizer_sees_every_sample(self):
        trace = synthetic_trace()
        replay = replay_trace(trace, 17, n_data_symbols=4)
        norm = replay.decoder.normalizer
        assert norm.count == len(trace)
        assert np.array_equal(norm.normalize(trace.samples),
                              trace.normalized().samples)


class TestPreambleDetector:
    def test_scan_cost_stays_incremental(self):
        """The detector must not re-scan the full history per check."""
        fs = 100.0
        quiet = np.zeros(3000)
        buf = StreamBuffer(fs)
        detector = PreambleDetector()
        for chunk in iter_chunks(quiet, 8):
            buf.append(chunk)
            assert detector.check(buf) is None
        naive = detector.n_checks * len(quiet) // 2
        assert detector.n_scanned_samples < naive / 4
        assert detector.n_scanned_samples < 80_000

    def test_detects_after_quiet_leader(self):
        trace = synthetic_trace(lead_s=20.0)
        replay = replay_trace(trace, 16, n_data_symbols=4)
        onset = replay.decoder.event("onset")
        assert onset is not None
        # The A peak sits one half-symbol past the 20 s leader.
        assert onset.signal_time_s == pytest.approx(20.25, abs=0.2)
        assert replay.verdict.bits == "10"

    def test_noisy_quiet_feed_stays_incremental(self):
        """Pure noise (no packet yet) must not pin the scan anchor:
        smoothed noise always has span-relative extrema, but none of
        them clear the 4-sigma signal bound, so the window must stay
        near min_overlap instead of growing toward the cap
        (regression: a 2 kHz noise feed re-scanned 63x the stream)."""
        fs = 2000.0
        rng = np.random.default_rng(1)
        buf = StreamBuffer(fs)
        detector = PreambleDetector()
        per_check = []
        for _ in range(125):
            buf.append(rng.normal(0.0, 1.0, size=64))
            before = detector.n_scanned_samples
            assert detector.check(buf) is None
            per_check.append(detector.n_scanned_samples - before)
        # Steady state: one overlap (1 s = 2000 samples) plus the new
        # chunk, not a window growing toward max_overlap_s (24000).
        assert max(per_check[40:]) <= int(1.0 * fs) + 64 + 100
        assert detector.n_scanned_samples < 4 * buf.n_appended * 10

    def test_bad_overlap_config(self):
        with pytest.raises(ValueError):
            PreambleDetector(min_overlap_s=0.0)
        with pytest.raises(ValueError):
            PreambleDetector(min_overlap_s=2.0, max_overlap_s=1.0)

    def test_bounded_window_on_long_feeds(self):
        """Per-check cost is capped by max_overlap_s."""
        fs = 100.0
        buf = StreamBuffer(fs)
        detector = PreambleDetector(min_overlap_s=0.5, max_overlap_s=2.0)
        rng = np.random.default_rng(0)
        per_check = []
        for _ in range(100):
            buf.append(rng.normal(size=50))
            before = detector.n_scanned_samples
            detector.check(buf)
            per_check.append(detector.n_scanned_samples - before)
        # Late checks scan at most the overlap cap plus one chunk.
        assert max(per_check[10:]) <= int(2.0 * fs) + 50
