"""Satellite: scenario expansion and execution are fully deterministic.

Two layers of guarantee:

* *Expansion*: the same (family, count, seed, template) always yields
  the same spec list, spec for spec.
* *Execution*: running a family's scenarios with ``workers=4`` produces
  records byte-identical (``RunRecord.canonical_json``) to ``workers=1``
  — the engine's determinism contract extended over the whole zoo,
  including the new non-constant motion profiles.
"""

from __future__ import annotations

import pytest

from repro.engine import BatchRunner
from repro.scenarios import expand_family, family_names

ALL_FAMILIES = family_names()


@pytest.mark.parametrize("name", ALL_FAMILIES)
def test_expansion_twice_is_identical(name):
    first = expand_family(name, count=100, seed=7)
    second = expand_family(name, count=100, seed=7)
    assert [s.canonical_json() for s in first] == \
        [s.canonical_json() for s in second]


@pytest.mark.parametrize("name", ALL_FAMILIES)
def test_expansion_seed_sensitivity(name):
    a = [s.canonical_json() for s in expand_family(name, count=10, seed=0)]
    b = [s.canonical_json() for s in expand_family(name, count=10, seed=1)]
    assert a != b


def test_composed_expansion_twice_is_identical():
    expr = "fleet_mix*rain*night"
    a = expand_family(expr, count=50, seed=3)
    b = expand_family(expr, count=50, seed=3)
    assert [s.canonical_json() for s in a] == \
        [s.canonical_json() for s in b]


def test_workers_parallel_byte_identical_across_all_families():
    """workers=1 vs workers=4 over two scenarios of *every* family."""
    specs = [spec
             for name in ALL_FAMILIES
             for spec in expand_family(name, count=2, seed=11)]
    serial = BatchRunner(workers=1).run(specs).records
    parallel = BatchRunner(workers=4, chunk_size=2).run(specs).records
    assert len(serial) == len(specs)
    assert [r.canonical_json() for r in serial] == \
        [r.canonical_json() for r in parallel]


def test_rerun_byte_identical_for_composed_family():
    """A composed family re-run serially reproduces itself exactly."""
    specs = expand_family("variable_speed*fog", count=3, seed=2)
    once = BatchRunner().run(specs).records
    again = BatchRunner().run(specs).records
    assert [r.canonical_json() for r in once] == \
        [r.canonical_json() for r in again]
