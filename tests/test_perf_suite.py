"""Tests for repro.perf — the tracked performance harness.

Timing *values* are machine noise, so these tests pin everything else:
suite mechanics (warmup/repeat accounting, selection, stats), report
serialization, the committed-baseline comparison logic, and the
``repro-engine bench`` CLI wiring.
"""

import json
from pathlib import Path

import pytest

from repro.engine.cli import main as cli_main
from repro.perf import (
    DEFAULT_BASELINE_PATH,
    PerfReport,
    Workload,
    WorkloadTiming,
    compare_reports,
    default_workloads,
    format_comparisons,
    load_report,
    run_suite,
    save_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tiny_workloads(log):
    def make(name, kind):
        def setup(quick):
            log.append((name, "setup", quick))
            return lambda: log.append((name, "run", quick))

        return Workload(name=name, kind=kind, description=f"{name} noop",
                        setup=setup, repeats=3, quick_repeats=2, warmup=1)

    return [make("alpha", "micro"), make("beta", "macro")]


class TestSuiteMechanics:
    def test_warmup_and_repeats_accounting(self):
        log = []
        report = run_suite(workloads=_tiny_workloads(log))
        assert [r.name for r in report.results] == ["alpha", "beta"]
        assert all(r.repeats == 3 for r in report.results)
        # 1 setup + 1 warmup run + 3 timed runs per workload.
        assert log.count(("alpha", "setup", False)) == 1
        assert log.count(("alpha", "run", False)) == 4

    def test_quick_mode_uses_quick_repeats(self):
        log = []
        report = run_suite(quick=True, workloads=_tiny_workloads(log))
        assert report.quick
        assert all(r.repeats == 2 for r in report.results)
        assert log.count(("beta", "run", True)) == 3

    def test_name_selection_and_unknown_rejected(self):
        log = []
        report = run_suite(workloads=_tiny_workloads(log), names=["beta"])
        assert [r.name for r in report.results] == ["beta"]
        with pytest.raises(KeyError):
            run_suite(workloads=_tiny_workloads(log), names=["gamma"])

    def test_repeats_override(self):
        log = []
        report = run_suite(workloads=_tiny_workloads(log), repeats=1)
        assert all(r.repeats == 1 for r in report.results)

    def test_injected_clock_gives_deterministic_times(self):
        ticks = iter(range(100))
        log = []
        report = run_suite(workloads=_tiny_workloads(log), repeats=2,
                           clock=lambda: float(next(ticks)))
        for timing in report.results:
            assert timing.times_s == [1.0, 1.0]
            assert timing.median_s == 1.0
            assert timing.stddev_s == 0.0

    def test_environment_meta_recorded(self):
        report = run_suite(workloads=_tiny_workloads([]), repeats=1)
        assert {"python", "numpy", "cpu_count"} <= report.meta.keys()


class TestStats:
    def test_summary_statistics(self):
        timing = WorkloadTiming(name="w", kind="micro", description="",
                                warmup=0, times_s=[2.0, 1.0, 4.0])
        assert timing.median_s == 2.0
        assert timing.mean_s == pytest.approx(7.0 / 3.0)
        assert timing.min_s == 1.0
        assert timing.max_s == 4.0
        assert timing.stddev_s > 0.0

    def test_json_round_trip(self, tmp_path):
        report = PerfReport(
            results=[WorkloadTiming(name="w", kind="macro",
                                    description="d", warmup=2,
                                    times_s=[0.5, 0.25])],
            quick=True, meta={"python": "3.x"})
        path = save_report(report, tmp_path / "BENCH_perf.json")
        loaded = load_report(path)
        assert loaded.to_dict() == report.to_dict()
        # The artifact itself is machine-readable JSON with the stats
        # the acceptance criteria name.
        raw = json.loads(path.read_text())
        assert raw["workloads"][0]["median_s"] == 0.375
        assert "stddev_s" in raw["workloads"][0]


def _report(medians, quick=True):
    return PerfReport(
        results=[WorkloadTiming(name=name, kind="micro", description="",
                                warmup=0, times_s=[m])
                 for name, m in medians.items()],
        quick=quick)


class TestBaselineComparison:
    def test_regression_flagged_above_tolerance(self):
        baseline = _report({"w": 1.0})
        comparisons = compare_reports(_report({"w": 1.3}), baseline,
                                      tolerance=0.25)
        assert comparisons[0].regressed
        assert comparisons[0].ratio == pytest.approx(1.3)

    def test_within_tolerance_and_improvement_pass(self):
        baseline = _report({"w": 1.0})
        for median in (1.2, 0.5, 1.0):
            (comp,) = compare_reports(_report({"w": median}), baseline,
                                      tolerance=0.25)
            assert not comp.regressed

    def test_missing_workload_is_new_not_regressed(self):
        comparisons = compare_reports(_report({"new_w": 1.0}),
                                      _report({"other": 1.0}))
        assert comparisons[0].baseline_median_s is None
        assert not comparisons[0].regressed
        assert "new" in format_comparisons(comparisons, 0.25)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(_report({"w": 1.0}), _report({"w": 1.0}),
                            tolerance=-0.1)

    def test_committed_baseline_is_valid_and_complete(self):
        """The repo ships a quick-mode baseline covering every tracked
        workload (the CI regression gate depends on it)."""
        baseline = load_report(REPO_ROOT / DEFAULT_BASELINE_PATH)
        assert baseline.quick
        names = {t.name for t in baseline.results}
        expected = {w.name for w in default_workloads()}
        assert expected <= names
        assert len(expected) >= 4
        for timing in baseline.results:
            assert timing.median_s > 0.0

    def test_default_baseline_found_from_any_cwd(self, tmp_path,
                                                 monkeypatch):
        """bench run outside the repo root must still find the
        committed baseline (via the checkout this module lives in)."""
        from repro.perf import default_baseline_path

        monkeypatch.chdir(tmp_path)
        resolved = default_baseline_path()
        assert resolved.exists()
        assert load_report(resolved).results

    def test_committed_bench_artifact_is_valid(self):
        report = load_report(REPO_ROOT / "BENCH_perf.json")
        assert len(report.results) >= 4
        for timing in report.results:
            assert timing.median_s > 0.0 and timing.stddev_s >= 0.0


class TestBenchCli:
    def _bench(self, tmp_path, *extra):
        out = tmp_path / "BENCH_perf.json"
        argv = ["bench", "--quick", "--repeats", "1",
                "--workload", "engine_batch", "--out", str(out), *extra]
        return cli_main(argv), out

    def test_writes_report_and_succeeds_without_baseline(self, tmp_path,
                                                         capsys):
        code, out = self._bench(tmp_path,
                                "--baseline", str(tmp_path / "missing.json"))
        assert code == 0
        data = json.loads(out.read_text())
        assert data["workloads"][0]["name"] == "engine_batch"
        assert "skipping comparison" in capsys.readouterr().out

    def test_update_baseline_then_compare_passes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        code, _ = self._bench(tmp_path, "--baseline", str(baseline),
                              "--update-baseline")
        assert code == 0 and baseline.exists()
        # Generous tolerance: only the exit-code plumbing is under test.
        code, _ = self._bench(tmp_path, "--baseline", str(baseline),
                              "--tolerance", "1000")
        assert code == 0

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        save_report(_report({"engine_batch": 1e-9}), baseline)
        code, _ = self._bench(tmp_path, "--baseline", str(baseline))
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_mode_mismatch_skips_comparison(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        save_report(_report({"engine_batch": 1e-9}, quick=False), baseline)
        code, _ = self._bench(tmp_path, "--baseline", str(baseline))
        assert code == 0
        assert "skipping comparison" in capsys.readouterr().out

    def test_list_workloads(self, capsys):
        assert cli_main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for workload in default_workloads():
            assert workload.name in out


def _timed(name, median, extras=None):
    return WorkloadTiming(name=name, kind="macro", description="",
                          warmup=0, times_s=[median],
                          extras=dict(extras or {}))


class TestMissingWorkloadGate:
    """A baseline workload absent from the current run must FAIL the
    gate — a deleted (or typo'd) workload must never read as green."""

    def test_missing_workload_regresses(self):
        baseline = _report({"engine_batch": 1.0, "tensor_batch": 1.0})
        comparisons = compare_reports(_report({"engine_batch": 1.0}),
                                      baseline)
        missing = [c for c in comparisons if c.name == "tensor_batch"]
        assert len(missing) == 1
        assert missing[0].regressed
        assert missing[0].current_median_s is None
        assert missing[0].baseline_median_s == 1.0
        assert "MISSING" in format_comparisons(comparisons, 0.25)

    def test_names_filter_limits_required_set(self):
        baseline = _report({"engine_batch": 1.0, "tensor_batch": 1.0})
        comparisons = compare_reports(_report({"engine_batch": 1.0}),
                                      baseline, names=["engine_batch"])
        assert all(not c.regressed for c in comparisons)
        assert [c.name for c in comparisons] == ["engine_batch"]

    def test_bench_cli_fails_on_missing_workload(self, tmp_path, capsys):
        """End-to-end: full-baseline + subset-free current run without
        the baseline's extra workload exits nonzero."""
        from repro.perf import run_suite

        baseline_path = tmp_path / "baseline.json"
        baseline = _report({"engine_batch": 1.0,
                            "some_deleted_workload": 1.0})
        save_report(baseline, baseline_path)
        out = tmp_path / "report.json"
        code = cli_main(["bench", "--quick", "--repeats", "1",
                         "--workload", "engine_batch",
                         "--workload", "some_deleted_workload",
                         "--out", str(out),
                         "--baseline", str(baseline_path),
                         "--tolerance", "1000"])
        # run_suite raises KeyError for the unknown workload -> exit 2;
        # drop the selection instead and rely on the names filter.
        assert code == 2

        code = cli_main(["bench", "--quick", "--repeats", "1",
                         "--out", str(out),
                         "--baseline", str(baseline_path),
                         "--tolerance", "1000"])
        assert code == 1
        captured = capsys.readouterr()
        assert "some_deleted_workload" in captured.err
        assert "MISSING" in captured.out


class TestExtrasMetrics:
    def test_extras_round_trip(self, tmp_path):
        report = PerfReport(results=[_timed(
            "w", 0.5, {"scenarios_per_s": 24.0, "peak_rss_mb": 310.0})],
            quick=True)
        loaded = load_report(save_report(report, tmp_path / "r.json"))
        assert loaded.results[0].extras == {"scenarios_per_s": 24.0,
                                            "peak_rss_mb": 310.0}
        assert loaded.to_dict() == report.to_dict()

    def test_throughput_drop_regresses(self):
        baseline = PerfReport(results=[_timed(
            "w", 1.0, {"scenarios_per_s": 100.0})], quick=True)
        current = PerfReport(results=[_timed(
            "w", 1.0, {"scenarios_per_s": 60.0})], quick=True)
        comparisons = compare_reports(current, baseline, tolerance=0.25)
        metric = [c for c in comparisons if c.metric == "scenarios_per_s"]
        assert len(metric) == 1
        assert metric[0].regressed           # 0.6 < 1/1.25
        assert metric[0].name == "w:scenarios_per_s"

    def test_throughput_gain_and_small_drop_pass(self):
        baseline = PerfReport(results=[_timed(
            "w", 1.0, {"scenarios_per_s": 100.0})], quick=True)
        for value in (150.0, 90.0, 100.0):
            current = PerfReport(results=[_timed(
                "w", 1.0, {"scenarios_per_s": value})], quick=True)
            (metric,) = [c for c in compare_reports(current, baseline,
                                                    tolerance=0.25)
                         if c.metric is not None]
            assert not metric.regressed

    def test_peak_rss_gets_generous_tolerance(self):
        from repro.perf.baseline import RSS_TOLERANCE

        baseline = PerfReport(results=[_timed(
            "w", 1.0, {"peak_rss_mb": 100.0})], quick=True)
        ok = PerfReport(results=[_timed(
            "w", 1.0, {"peak_rss_mb": 100.0 * (1.0 + RSS_TOLERANCE)})],
            quick=True)
        bad = PerfReport(results=[_timed(
            "w", 1.0, {"peak_rss_mb": 100.0 * (1.9 + RSS_TOLERANCE)})],
            quick=True)
        (c_ok,) = [c for c in compare_reports(ok, baseline, tolerance=0.1)
                   if c.metric is not None]
        (c_bad,) = [c for c in compare_reports(bad, baseline,
                                               tolerance=0.1)
                    if c.metric is not None]
        assert not c_ok.regressed
        assert c_bad.regressed

    def test_suite_populates_tensor_extras(self):
        """A real quick run of the tensor workloads derives throughput
        extras from the measured median."""
        from repro.perf import run_suite

        report = run_suite(quick=True, names=["tensor_batch"], repeats=1)
        extras = report.results[0].extras
        assert extras["scenarios_per_s"] > 0.0
        assert extras["ksamples_per_s_core"] > 0.0
        assert extras.get("peak_rss_mb", 1.0) > 0.0


class TestProfiledBench:
    """--profile adds stage medians as extras without touching the
    gated metrics (the timing repeats themselves run unprofiled)."""

    def _scenario_workload(self):
        from repro.engine.executor import execute_scenario
        from repro.engine.spec import ScenarioSpec

        def setup(quick):
            spec = ScenarioSpec(
                source="sun", detector="led", cap=False, ground="tarmac",
                bits="00", symbol_width_m=0.1, speed_mps=5.0,
                receiver_height_m=0.25, start_position_m=-1.5,
                sample_rate_hz=2000.0, ground_lux=450.0, seed=3)
            return lambda: execute_scenario(spec)

        return Workload(name="one_scenario", kind="macro",
                        description="single serial scenario", setup=setup,
                        repeats=1, quick_repeats=1, warmup=0)

    def test_stage_extras_recorded(self):
        report = run_suite(workloads=[self._scenario_workload()],
                           repeats=1, profile=True)
        extras = report.results[0].extras
        stage_keys = {k for k in extras if k.startswith("stage_")}
        assert {"stage_build_s", "stage_simulate_s",
                "stage_decide_s"} <= stage_keys
        assert all(extras[k] >= 0.0 for k in stage_keys)
        # The gated timing repeats stay unprofiled and unchanged.
        assert len(report.results[0].times_s) == 1

    def test_no_profile_means_no_stage_extras(self):
        report = run_suite(workloads=[self._scenario_workload()],
                           repeats=1)
        assert not any(k.startswith("stage_")
                       for k in report.results[0].extras)

    def test_stage_extras_never_gate_against_old_baselines(self):
        current = _report({"engine_batch": 1.0})
        current.results[0].extras["stage_decide_s"] = 0.5
        baseline = _report({"engine_batch": 1.0})
        comparisons = compare_reports(current, baseline)
        assert all(not c.regressed for c in comparisons)

    def test_profile_tolerates_traceless_thunks(self):
        log = []
        report = run_suite(workloads=_tiny_workloads(log), repeats=1,
                           profile=True)
        for timing in report.results:
            assert not any(k.startswith("stage_") for k in timing.extras)


class TestStageMedians:
    """Satellite: stage medians are a first-class, printed, diffable
    block — not just print-and-forget extras."""

    def _timing(self, extras):
        return WorkloadTiming(name="w", kind="macro", description="",
                              warmup=0, times_s=[1.0], extras=extras)

    def test_stage_medians_derived_from_extras(self):
        timing = self._timing({"stage_build_s": 0.002,
                               "stage_decide_s": 0.001,
                               "scenarios_per_s": 42.0})
        assert timing.stage_medians_s == {"build": 0.002, "decide": 0.001}

    def test_no_stage_extras_means_empty(self):
        assert self._timing({"scenarios_per_s": 42.0}).stage_medians_s == {}

    def test_to_dict_has_first_class_stages_block(self):
        timing = self._timing({"stage_build_s": 0.002})
        data = timing.to_dict()
        assert data["stages"] == {"build": 0.002}
        # Unprofiled timings keep the block absent, not empty.
        assert "stages" not in self._timing({}).to_dict()

    def test_stages_block_round_trips_via_extras(self, tmp_path):
        report = PerfReport(results=[self._timing({"stage_build_s": 0.5})])
        path = save_report(report, tmp_path / "report.json")
        loaded = load_report(path)
        assert loaded.results[0].stage_medians_s == {"build": 0.5}
        assert json.loads(path.read_text())["workloads"][0]["stages"] == \
            {"build": 0.5}

    def test_stage_regressions_gate_when_in_both_reports(self):
        current = _report({"engine_batch": 1.0})
        current.results[0].extras["stage_decide_s"] = 1.0
        baseline = _report({"engine_batch": 1.0})
        baseline.results[0].extras["stage_decide_s"] = 0.5
        comparisons = compare_reports(current, baseline)
        regressed = [c.name for c in comparisons if c.regressed]
        assert regressed == ["engine_batch:stage_decide_s"]

    def test_format_stage_medians_table(self):
        from repro.perf import format_stage_medians

        report = PerfReport(results=[
            self._timing({"stage_build_s": 0.001, "stage_decide_s": 0.003})])
        table = format_stage_medians(report)
        assert "build" in table and "decide" in table
        assert "75.0%" in table  # 0.003 of 0.004
        assert format_stage_medians(PerfReport()) == ""

    def test_bench_cli_prints_stage_table(self, tmp_path, capsys):
        code = cli_main(["bench", "--quick", "--repeats", "1",
                         "--workload", "engine_batch", "--profile",
                         "--out", str(tmp_path / "r.json"),
                         "--baseline", str(tmp_path / "none.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "stage medians (profiled passes):" in out
        assert "simulate" in out
        saved = json.loads((tmp_path / "r.json").read_text())
        assert "simulate" in saved["workloads"][0]["stages"]
