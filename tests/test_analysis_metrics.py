"""Tests for repro.analysis.metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    bit_error_rate,
    fit_exponential,
    fit_linear,
    symbol_error_rate,
    throughput_sps,
)


class TestErrorRates:
    def test_perfect(self):
        assert symbol_error_rate("HLHL", "HLHL") == 0.0

    def test_one_error(self):
        assert symbol_error_rate("HLHL", "HLHH") == pytest.approx(0.25)

    def test_short_received_counts_missing(self):
        assert symbol_error_rate("HLHL", "HL") == pytest.approx(0.5)

    def test_long_received_counts_extra(self):
        assert symbol_error_rate("HL", "HLHL") == pytest.approx(0.5)

    def test_empty_sent_rejected(self):
        with pytest.raises(ValueError):
            symbol_error_rate("", "HL")

    def test_ber_same_semantics(self):
        assert bit_error_rate("1010", "1011") == pytest.approx(0.25)


class TestThroughput:
    def test_outdoor_case(self):
        assert throughput_sps(5.0, 0.1) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_sps(0.0, 0.1)


class TestLinearFit:
    def test_exact_line(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        fit = fit_linear(x, 2.0 * x + 1.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_linear(np.array([0.0, 1.0]), np.array([1.0, 3.0]))
        assert float(fit.predict(2.0)) == pytest.approx(5.0)

    def test_noisy_r_squared_below_one(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 1, 50)
        y = x + rng.normal(0.0, 0.3, 50)
        fit = fit_linear(x, y)
        assert 0.0 < fit.r_squared < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_linear(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_linear(np.array([1.0, 2.0]), np.array([1.0]))


class TestExponentialFit:
    def test_exact_exponential(self):
        x = np.linspace(0.0, 1.0, 20)
        y = 3.0 * np.exp(-2.0 * x)
        fit = fit_exponential(x, y)
        assert fit.amplitude == pytest.approx(3.0, rel=1e-6)
        assert fit.rate == pytest.approx(-2.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        x = np.linspace(0.0, 1.0, 10)
        fit = fit_exponential(x, 2.0 * np.exp(1.5 * x))
        assert float(fit.predict(0.0)) == pytest.approx(2.0, rel=1e-6)

    def test_non_positive_y_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential(np.array([0.0, 1.0]), np.array([1.0, 0.0]))

    def test_fig6b_style_decay(self):
        """A 9x decay over 0.3 m implies rate ~ -7.3 per metre."""
        x = np.array([0.2, 0.3, 0.4, 0.5])
        y = 9.0 * np.exp(-7.324 * (x - 0.2))
        fit = fit_exponential(x, y)
        assert fit.rate == pytest.approx(-7.324, rel=1e-3)
