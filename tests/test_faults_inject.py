"""Fault injection primitives: determinism, no-op contracts, counters."""

import numpy as np
import pytest

from repro.channel.trace import SignalTrace
from repro.faults.inject import (
    FaultLog,
    apply_signal_faults,
    fault_rng,
    intermittent_window,
    node_fault_roll,
    perturb_chunks,
)
from repro.faults.plan import FaultPlan


def make_trace(n=2000, rate=4000.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / rate
    samples = np.sin(2 * np.pi * 40.0 * t) + 0.05 * rng.standard_normal(n)
    return SignalTrace(samples, rate)


def make_chunks(n_chunks=20, size=16):
    return [np.full(size, float(i)) for i in range(n_chunks)]


class TestFaultRng:
    def test_same_inputs_same_stream(self):
        plan = FaultPlan(chunk_drop=0.3)
        a = fault_rng("stream", 7, plan)
        b = fault_rng("stream", 7, plan)
        assert np.array_equal(a.random(16), b.random(16))

    def test_role_seed_and_plan_all_separate_streams(self):
        plan = FaultPlan(chunk_drop=0.3)
        base = fault_rng("stream", 7, plan).random(16)
        assert not np.array_equal(
            base, fault_rng("signal", 7, plan).random(16))
        assert not np.array_equal(
            base, fault_rng("stream", 8, plan).random(16))
        other = FaultPlan(chunk_drop=0.31)
        assert not np.array_equal(
            base, fault_rng("stream", 7, other).random(16))


class TestFaultLog:
    def test_counts_reports_only_nonzero(self):
        log = FaultLog()
        assert log.counts() == {}
        log.noise_bursts = 3
        assert log.counts() == {"noise_bursts": 3}

    def test_merge_accumulates(self):
        a = FaultLog()
        a.chunks_dropped = 2
        b = FaultLog()
        b.chunks_dropped = 1
        b.dropouts = 5
        a.merge(b)
        assert a.chunks_dropped == 3
        assert a.dropouts == 5
        assert a.total == 8


class TestSignalFaults:
    def test_inactive_plan_is_noop(self):
        trace = make_trace()
        plan = FaultPlan(chunk_drop=0.5)  # stream-only: no signal knobs
        out, log = apply_signal_faults(trace, plan,
                                       fault_rng("signal", 1, plan))
        assert out is trace
        assert log.counts() == {}

    def test_deterministic_for_same_rng_seed(self):
        trace = make_trace()
        plan = FaultPlan(burst_rate_hz=20.0, dropout_rate_hz=10.0,
                         saturate_fraction=0.3, clock_drift_ppm=500.0)
        out1, log1 = apply_signal_faults(trace, plan,
                                         fault_rng("signal", 3, plan))
        out2, log2 = apply_signal_faults(make_trace(), plan,
                                         fault_rng("signal", 3, plan))
        assert np.array_equal(out1.samples, out2.samples)
        assert log1.counts() == log2.counts()

    def test_bursts_change_samples_and_count(self):
        trace = make_trace()
        plan = FaultPlan(burst_rate_hz=50.0)
        out, log = apply_signal_faults(trace, plan,
                                       fault_rng("signal", 3, plan))
        assert log.noise_bursts > 0
        assert not np.array_equal(out.samples, trace.samples)

    def test_saturation_clips_the_top_of_the_swing(self):
        trace = make_trace()
        plan = FaultPlan(saturate_fraction=0.4)
        out, log = apply_signal_faults(trace, plan,
                                       fault_rng("signal", 3, plan))
        assert log.samples_saturated > 0
        assert out.samples.max() < trace.samples.max()
        assert len(out.samples) == len(trace.samples)

    def test_dropouts_hold_last_value(self):
        trace = make_trace()
        plan = FaultPlan(dropout_rate_hz=30.0, dropout_length_s=0.005)
        out, log = apply_signal_faults(trace, plan,
                                       fault_rng("signal", 3, plan))
        assert log.dropouts > 0
        # A dropout is a run of repeated values the clean sine lacks.
        repeats = np.sum(np.diff(out.samples) == 0.0)
        assert repeats > np.sum(np.diff(trace.samples) == 0.0)

    def test_clock_drift_resamples(self):
        trace = make_trace()
        plan = FaultPlan(clock_drift_ppm=50_000.0)
        out, log = apply_signal_faults(trace, plan,
                                       fault_rng("signal", 3, plan))
        assert log.clock_drift == 1
        assert out.sample_rate_hz == trace.sample_rate_hz


class TestChunkFaults:
    def test_empty_plan_returns_inputs(self):
        chunks = make_chunks()
        plan = FaultPlan(burst_rate_hz=5.0)  # signal-only
        out, log = perturb_chunks(chunks, plan,
                                  fault_rng("stream", 1, plan))
        assert len(out) == len(chunks)
        assert all(np.array_equal(a, b) for a, b in zip(out, chunks))
        assert log.counts() == {}

    def test_deterministic(self):
        plan = FaultPlan(chunk_drop=0.2, chunk_duplicate=0.2,
                         chunk_delay=0.2, chunk_reorder=0.2)
        rng1 = fault_rng("stream", 5, plan)
        rng2 = fault_rng("stream", 5, plan)
        out1, log1 = perturb_chunks(make_chunks(), plan, rng1)
        out2, log2 = perturb_chunks(make_chunks(), plan, rng2)
        assert len(out1) == len(out2)
        assert all(np.array_equal(a, b) for a, b in zip(out1, out2))
        assert log1.counts() == log2.counts()

    def test_drop_shrinks_feed(self):
        plan = FaultPlan(chunk_drop=0.5)
        out, log = perturb_chunks(make_chunks(40), plan,
                                  fault_rng("stream", 5, plan))
        assert log.chunks_dropped > 0
        assert len(out) == 40 - log.chunks_dropped

    def test_duplicate_grows_feed(self):
        plan = FaultPlan(chunk_duplicate=0.5)
        out, log = perturb_chunks(make_chunks(40), plan,
                                  fault_rng("stream", 5, plan))
        assert log.chunks_duplicated > 0
        assert len(out) == 40 + log.chunks_duplicated

    def test_reorder_preserves_multiset(self):
        plan = FaultPlan(chunk_reorder=0.8)
        chunks = make_chunks(40)
        out, log = perturb_chunks(chunks, plan,
                                  fault_rng("stream", 5, plan))
        assert log.chunks_reordered > 0
        assert sorted(c[0] for c in out) == sorted(c[0] for c in chunks)
        assert [c[0] for c in out] != [c[0] for c in chunks]

    def test_delay_slips_chunks_late(self):
        plan = FaultPlan(chunk_delay=0.4, delay_chunks=3)
        chunks = make_chunks(40)
        out, log = perturb_chunks(chunks, plan,
                                  fault_rng("stream", 5, plan))
        assert log.chunks_delayed > 0
        assert sorted(c[0] for c in out) == sorted(c[0] for c in chunks)


class TestNodeFaults:
    def test_roll_is_deterministic(self):
        plan = FaultPlan(node_dropout=0.4, node_intermittent=0.4)
        fates1 = [node_fault_roll(plan, fault_rng(f"node:{i}", 2, plan))
                  for i in range(20)]
        fates2 = [node_fault_roll(plan, fault_rng(f"node:{i}", 2, plan))
                  for i in range(20)]
        assert fates1 == fates2
        assert set(fates1) <= {"dropped", "intermittent", "ok"}
        assert "dropped" in fates1  # 20 nodes at p=0.4: some must drop

    def test_no_knobs_always_ok(self):
        plan = FaultPlan(chunk_drop=0.5)
        rng = fault_rng("node:0", 2, plan)
        assert all(node_fault_roll(plan, rng) == "ok" for _ in range(50))

    def test_intermittent_window_keeps_fraction_with_true_timestamps(self):
        trace = make_trace(n=1000)
        plan = FaultPlan(node_intermittent=1.0, intermittent_fraction=0.25)
        out = intermittent_window(trace, plan,
                                  fault_rng("node:1", 2, plan))
        assert len(out.samples) == 250
        offset_s = out.start_time_s - trace.start_time_s
        k = int(round(offset_s * trace.sample_rate_hz))
        assert np.array_equal(out.samples,
                              trace.samples[k:k + 250])

    def test_intermittent_window_floors_at_eight_samples(self):
        trace = make_trace(n=20)
        plan = FaultPlan(node_intermittent=1.0,
                         intermittent_fraction=0.01)
        out = intermittent_window(trace, plan,
                                  fault_rng("node:1", 2, plan))
        assert len(out.samples) == 8
