"""BatchRunner resilience: timeouts, quarantine, fail-fast, retries."""

import pytest

from repro.engine.runner import (
    FAILURE_STAGES,
    BatchAborted,
    BatchRunner,
    RunStats,
)
from repro.engine.spec import ScenarioSpec
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy

#: Cheap outdoor scenario (~5 ms per simulation).
FAST = ScenarioSpec(source="sun", detector="led", cap=False,
                    ground="tarmac", bits="00", symbol_width_m=0.1,
                    speed_mps=5.0, receiver_height_m=0.25,
                    start_position_m=-1.5, sample_rate_hz=2000.0)

#: A spec whose execution stalls long past any test timeout.
STUCK = FAST.replace(seed=99, fault_plan=FaultPlan(exec_sleep_s=30.0))


def canon(records):
    return [r.canonical_json() for r in records]


class TestConstruction:
    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="scenario_timeout_s"):
            BatchRunner(scenario_timeout_s=0.0)

    def test_bad_max_failures_rejected(self):
        with pytest.raises(ValueError, match="max_failures"):
            BatchRunner(max_failures=0)

    def test_timeout_incompatible_with_tensor(self):
        with pytest.raises(ValueError, match="process"):
            BatchRunner(backend="tensor", scenario_timeout_s=5.0)


class TestScenarioTimeout:
    def test_stuck_spec_quarantined_siblings_unharmed(self):
        """One pathological spec among healthy ones: the batch
        completes, the stuck spec becomes an executor_error record,
        and every sibling is byte-identical to a clean batch."""
        healthy = [FAST.replace(seed=k) for k in range(4)]
        specs = healthy[:2] + [STUCK] + healthy[2:]
        with BatchRunner(workers=2, scenario_timeout_s=3.0) as runner:
            result = runner.run(specs)
        assert len(result.records) == len(specs)
        stuck_record = result.records[2]
        assert stuck_record.stage == "executor_error"
        assert "timed out" in stuck_record.error
        assert result.stats.timeouts == 1
        assert result.stats.executor_errors == 1
        assert result.stats.pool_restarts >= 1

        clean = BatchRunner(workers=1).run(healthy)
        survivors = result.records[:2] + result.records[3:]
        assert canon(survivors) == canon(clean.records)

    def test_all_healthy_batch_pays_no_timeout_penalty(self):
        specs = [FAST.replace(seed=k) for k in range(3)]
        with BatchRunner(workers=2, scenario_timeout_s=30.0) as runner:
            result = runner.run(specs)
        assert result.stats.timeouts == 0
        assert canon(result.records) == canon(
            BatchRunner(workers=1).run(specs).records)

    def test_timeout_records_never_cached(self, tmp_path):
        from repro.engine.cache import ResultCache

        with BatchRunner(workers=1, scenario_timeout_s=1.0,
                         cache=ResultCache(tmp_path)) as runner:
            first = runner.run([STUCK])
        assert first.records[0].stage == "executor_error"
        # A second runner must re-execute (and time out again), not
        # replay the synthesized failure from the cache.
        with BatchRunner(workers=1, scenario_timeout_s=1.0,
                         cache=ResultCache(tmp_path)) as runner:
            second = runner.run([STUCK])
        assert runner.cache.stats.hits == 0
        assert second.records[0].stage == "executor_error"


class TestFailFast:
    def test_abort_carries_partial_result(self):
        bad = FAST.replace(symbol_width_m=1e9)  # simulation_failed
        specs = [FAST.replace(seed=1), bad.replace(seed=2),
                 bad.replace(seed=3), FAST.replace(seed=4)]
        runner = BatchRunner(max_failures=2)
        with pytest.raises(BatchAborted) as excinfo:
            runner.run(specs)
        aborted = excinfo.value
        assert aborted.failures == 2
        assert aborted.threshold == 2
        assert len(aborted.result.records) == 3  # stopped at the 2nd
        assert aborted.result.records[0].success

    def test_legitimate_decode_failures_do_not_count(self):
        # A noisy spec that fails to decode is not an executor error.
        noisy = FAST.replace(ground_lux=1.0)
        specs = [noisy.replace(seed=k) for k in range(5)]
        result = BatchRunner(max_failures=1).run(specs)
        assert len(result.records) == 5
        assert all(r.stage not in FAILURE_STAGES for r in result.records)

    def test_under_threshold_batch_completes(self):
        bad = FAST.replace(symbol_width_m=1e9)
        specs = [FAST.replace(seed=1), bad.replace(seed=2),
                 FAST.replace(seed=3)]
        result = BatchRunner(max_failures=5).run(specs)
        assert len(result.records) == 3

    def test_parallel_abort(self):
        bad = FAST.replace(symbol_width_m=1e9)
        specs = ([FAST.replace(seed=k) for k in range(3)]
                 + [bad.replace(seed=k) for k in range(3)])
        with BatchRunner(workers=2, max_failures=2) as runner:
            with pytest.raises(BatchAborted) as excinfo:
                runner.run(specs)
        assert excinfo.value.failures >= 2


class TestRetryPolicyIntegration:
    def test_custom_policy_attached(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0)
        runner = BatchRunner(workers=2, retry_policy=policy)
        assert runner.retry_policy is policy

    def test_default_policy_replicates_classic_restart(self):
        assert BatchRunner().retry_policy.max_attempts == 2


class TestStatsSurfacing:
    def test_fault_events_aggregated(self):
        plan = FaultPlan(burst_rate_hz=20.0)
        specs = [FAST.replace(seed=k, fault_plan=plan) for k in range(3)]
        result = BatchRunner().run(specs)
        assert result.stats.fault_events.get("noise_bursts", 0) > 0
        assert "fault events" in result.stats.summary()

    def test_clean_batch_summary_unchanged(self):
        result = BatchRunner().run([FAST.replace(seed=1)])
        summary = result.stats.summary()
        assert "fault" not in summary
        assert "timed out" not in summary
        assert "executor" not in summary

    def test_stats_fields_default_empty(self):
        stats = RunStats()
        assert stats.executor_errors == 0
        assert stats.timeouts == 0
        assert stats.fault_events == {}
