"""Tests for repro.optics.reflection."""

import math

import numpy as np
import pytest

from repro.optics.geometry import Vec3
from repro.optics.materials import ALUMINUM_TAPE, BLACK_NAPKIN, MIRROR
from repro.optics.reflection import (
    OVERHEAD_GEOMETRY,
    IlluminationGeometry,
    effective_reflectance,
    effective_reflectance_profile,
    mirror_direction,
    phong_lobe_value,
)


class TestMirrorDirection:
    def test_normal_incidence_reflects_back(self):
        r = mirror_direction(Vec3(0, 0, -1))
        assert r.z == pytest.approx(1.0)

    def test_45_degree(self):
        incident = Vec3(1, 0, -1).normalized()
        r = mirror_direction(incident)
        assert r.x == pytest.approx(incident.x)
        assert r.z == pytest.approx(-incident.z)

    def test_unit_length(self):
        r = mirror_direction(Vec3(0.3, -0.2, -0.9))
        assert r.norm() == pytest.approx(1.0)


class TestPhongLobe:
    def test_energy_normalised(self):
        # The lobe is a *radiance* distribution: its flux integral
        # (lobe * cos(theta) over the hemisphere) must be 1, so that
        # multiplying by the specular reflectance conserves energy once
        # the transfer integral applies the emission cosine.
        for n in (2.0, 10.0, 50.0):
            thetas = np.linspace(0.0, math.pi / 2, 20001)
            vals = np.array([phong_lobe_value(n, t) for t in thetas])
            integral = np.trapezoid(
                vals * np.cos(thetas) * 2.0 * math.pi * np.sin(thetas),
                thetas)
            assert integral == pytest.approx(1.0, rel=5e-3)

    def test_sharper_lobe_higher_peak(self):
        assert phong_lobe_value(100.0, 0.0) > phong_lobe_value(5.0, 0.0)

    def test_behind_zero(self):
        assert phong_lobe_value(5.0, math.pi * 0.6) == 0.0

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            phong_lobe_value(-1.0, 0.0)


class TestIlluminationGeometry:
    def test_overhead_cosines(self):
        assert OVERHEAD_GEOMETRY.incidence_cosine() == pytest.approx(1.0)
        assert OVERHEAD_GEOMETRY.view_cosine() == pytest.approx(1.0)
        assert OVERHEAD_GEOMETRY.off_mirror_angle() == pytest.approx(0.0)

    def test_oblique_off_mirror(self):
        geom = IlluminationGeometry(
            incident_direction=Vec3(1, 0, -1).normalized(),
            view_direction=Vec3(0, 0, 1))
        assert geom.off_mirror_angle() == pytest.approx(math.pi / 4)

    def test_diffuse_fraction_bounds(self):
        with pytest.raises(ValueError):
            IlluminationGeometry(Vec3(0, 0, -1), Vec3(0, 0, 1),
                                 diffuse_fraction=1.5)


class TestEffectiveReflectance:
    def test_high_beats_low_overhead(self):
        high = effective_reflectance(ALUMINUM_TAPE, OVERHEAD_GEOMETRY)
        low = effective_reflectance(BLACK_NAPKIN, OVERHEAD_GEOMETRY)
        assert high > 10 * low

    def test_specular_peaks_at_mirror_direction(self):
        on_mirror = effective_reflectance(MIRROR, OVERHEAD_GEOMETRY)
        off = IlluminationGeometry(
            incident_direction=Vec3(1, 0, -1).normalized(),
            view_direction=Vec3(0, 0, 1))
        off_mirror = effective_reflectance(MIRROR, off)
        assert on_mirror > 100 * off_mirror

    def test_diffuse_material_direction_independent(self):
        nap_overhead = effective_reflectance(BLACK_NAPKIN, OVERHEAD_GEOMETRY)
        oblique = IlluminationGeometry(
            incident_direction=Vec3(1, 0, -1).normalized(),
            view_direction=Vec3(0, 0, 1))
        nap_oblique = effective_reflectance(BLACK_NAPKIN, oblique)
        # Almost all of the napkin's reflectance is diffuse.
        assert nap_oblique == pytest.approx(nap_overhead, rel=0.1)

    def test_backlit_collimated_is_zero(self):
        geom = IlluminationGeometry(
            incident_direction=Vec3(0, 0, 1),  # coming from below
            view_direction=Vec3(0, 0, 1))
        assert effective_reflectance(ALUMINUM_TAPE, geom) == 0.0

    def test_diffuse_illumination_softens_specular(self):
        """Under fully diffuse light a mirror reads rho/pi, not a spike."""
        diffuse_geom = IlluminationGeometry(
            incident_direction=Vec3(0, 0, -1),
            view_direction=Vec3(0, 0, 1),
            diffuse_fraction=1.0)
        value = effective_reflectance(MIRROR, diffuse_geom)
        assert value == pytest.approx(MIRROR.reflectance / math.pi, rel=0.05)

    def test_oblique_sun_keeps_tape_brighter_than_napkin(self):
        """Crinkled tape must stay readable under 45-degree sun (Sec. 5)."""
        sun_geom = IlluminationGeometry(
            incident_direction=Vec3(1, 0, -1).normalized(),
            view_direction=Vec3(0, 0, 1),
            diffuse_fraction=0.0)
        high = effective_reflectance(ALUMINUM_TAPE, sun_geom)
        low = effective_reflectance(BLACK_NAPKIN, sun_geom)
        assert high > 3 * low


class TestProfile:
    def test_profile_matches_scalars(self):
        mats = [ALUMINUM_TAPE, BLACK_NAPKIN, ALUMINUM_TAPE]
        profile = effective_reflectance_profile(mats, OVERHEAD_GEOMETRY)
        expected = [effective_reflectance(m, OVERHEAD_GEOMETRY) for m in mats]
        assert np.allclose(profile, expected)

    def test_memoisation_consistency(self):
        mats = [ALUMINUM_TAPE] * 50 + [BLACK_NAPKIN] * 50
        profile = effective_reflectance_profile(mats, OVERHEAD_GEOMETRY)
        assert len(set(np.round(profile[:50], 12))) == 1
        assert len(set(np.round(profile[50:], 12))) == 1
