"""Differential tests for repro.tensor.rmq against numpy oracles.

Every primitive here carries an *exactness* contract (identical floats
/ identical indices to the obvious sequential formulation), so each
test is a randomized differential against the direct numpy answer.
"""

import numpy as np
import pytest

from repro.tensor.rmq import (
    build_table,
    grid_searchsorted,
    log_table,
    range_query,
)


class TestLogTable:
    def test_matches_floor_log2(self):
        table = log_table(2000)
        for i in range(1, 2001):
            assert table[i] == i.bit_length() - 1

    def test_cached_instance_reused(self):
        assert log_table(64) is log_table(64)


class TestRangeQuery:
    @pytest.mark.parametrize("op,reducer", [(np.maximum, np.max),
                                            (np.minimum, np.min)])
    def test_random_ranges_bit_identical(self, op, reducer):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(5, 257))
        table = build_table(x, op)
        log = log_table(x.shape[1])
        rows = rng.integers(0, 5, size=300)
        a = rng.integers(0, 256, size=300)
        b = a + 1 + rng.integers(0, 257 - a)
        got = range_query(table, log, op, rows, a, b)
        for k in range(300):
            assert got[k] == reducer(x[rows[k], a[k]:b[k]])

    def test_max_len_capped_table_answers_short_ranges(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(3, 500))
        capped = build_table(x, np.maximum, max_len=32)
        full = build_table(x, np.maximum)
        assert capped.shape[0] < full.shape[0]
        log = log_table(500)
        rows = rng.integers(0, 3, size=200)
        a = rng.integers(0, 468, size=200)
        b = a + 1 + rng.integers(0, 32, size=200)
        np.testing.assert_array_equal(
            range_query(capped, log, np.maximum, rows, a, b),
            range_query(full, log, np.maximum, rows, a, b))


class TestGridSearchsorted:
    def test_matches_np_searchsorted_including_exact_ties(self):
        rng = np.random.default_rng(9)
        fs, t0, n = 2000.0, -0.73, 1500
        times = t0 + np.arange(n) / fs
        v = np.concatenate([
            rng.uniform(t0 - 0.1, t0 + n / fs + 0.1, size=200),
            times[rng.integers(0, n, size=50)],       # exact grid hits
            [t0, times[-1], t0 - 1.0, times[-1] + 1.0],
        ])
        np.testing.assert_array_equal(
            grid_searchsorted(times, t0, fs, v),
            np.searchsorted(times, v, side="left"))

    def test_preserves_input_shape(self):
        fs, t0 = 100.0, 0.0
        times = t0 + np.arange(50) / fs
        v = np.full((2, 3, 4), 0.123)
        assert grid_searchsorted(times, t0, fs, v).shape == (2, 3, 4)
