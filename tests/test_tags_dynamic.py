"""Tests for repro.tags.dynamic (LCD/e-ink tags — Section 6 extension)."""

import numpy as np
import pytest

from repro.optics.reflection import OVERHEAD_GEOMETRY
from repro.tags.dynamic import DynamicTag, DynamicTechnology
from repro.tags.packet import Packet
from repro.tags.surface import TagSurface


def _packets():
    return [Packet.from_bitstring("00", symbol_width_m=0.05),
            Packet.from_bitstring("11", symbol_width_m=0.05)]


class TestPassCycling:
    def test_queue_cycles(self):
        tag = DynamicTag(packets=_packets())
        s0 = tag.surface_for_pass()
        s1 = tag.surface_for_pass()
        s2 = tag.surface_for_pass()
        xs = np.linspace(0.0, s0.length_m, 64)
        p0 = s0.reflectance_samples(xs, OVERHEAD_GEOMETRY)
        p1 = s1.reflectance_samples(xs, OVERHEAD_GEOMETRY)
        p2 = s2.reflectance_samples(xs, OVERHEAD_GEOMETRY)
        assert not np.allclose(p0, p1)   # different payloads
        assert np.allclose(p0, p2)       # cycle wraps

    def test_explicit_pass_index(self):
        tag = DynamicTag(packets=_packets())
        xs = np.linspace(0.0, 0.3, 32)
        a = tag.surface_for_pass(0).reflectance_samples(xs, OVERHEAD_GEOMETRY)
        b = tag.surface_for_pass(0).reflectance_samples(xs, OVERHEAD_GEOMETRY)
        assert np.allclose(a, b)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            DynamicTag(packets=_packets()).surface_for_pass(-1)

    def test_empty_queue_rejected(self):
        with pytest.raises(ValueError):
            DynamicTag(packets=[])


class TestContrast:
    def test_dynamic_contrast_below_tape(self):
        """Switchable surfaces trade contrast for reconfigurability."""
        static = TagSurface.from_packet(_packets()[0])
        dynamic = DynamicTag(packets=_packets()).surface_for_pass(0)
        xs = np.linspace(0.0, static.length_m, 256)
        static_profile = static.reflectance_samples(xs, OVERHEAD_GEOMETRY)
        dyn_profile = dynamic.reflectance_samples(xs, OVERHEAD_GEOMETRY)
        static_contrast = static_profile.max() - static_profile.min()
        dyn_contrast = dyn_profile.max() - dyn_profile.min()
        assert 0.0 < dyn_contrast < static_contrast

    def test_lcd_lower_contrast_than_eink(self):
        eink = DynamicTag(packets=_packets(),
                          technology=DynamicTechnology.E_INK)
        lcd = DynamicTag(packets=_packets(),
                         technology=DynamicTechnology.LCD_SHUTTER)
        xs = np.linspace(0.0, 0.6, 256)
        ce = np.ptp(eink.surface_for_pass(0).reflectance_samples(
            xs, OVERHEAD_GEOMETRY))
        cl = np.ptp(lcd.surface_for_pass(0).reflectance_samples(
            xs, OVERHEAD_GEOMETRY))
        assert cl < ce


class TestEnergy:
    def test_eink_bistable_cheaper_at_long_intervals(self):
        """'at an increased carbon footprint' — the LCD pays hold power."""
        eink = DynamicTag(packets=_packets(),
                          technology=DynamicTechnology.E_INK)
        lcd = DynamicTag(packets=_packets(),
                         technology=DynamicTechnology.LCD_SHUTTER)
        assert (eink.reconfiguration_energy_j(60.0)
                < lcd.reconfiguration_energy_j(60.0))

    def test_energy_grows_with_interval_for_lcd(self):
        lcd = DynamicTag(packets=_packets(),
                         technology=DynamicTechnology.LCD_SHUTTER)
        assert lcd.reconfiguration_energy_j(10.0) < lcd.reconfiguration_energy_j(100.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            DynamicTag(packets=_packets()).reconfiguration_energy_j(0.0)


class TestTechnology:
    def test_lcd_faster_than_eink(self):
        assert (DynamicTechnology.LCD_SHUTTER.switch_time_s
                < DynamicTechnology.E_INK.switch_time_s)

    def test_eink_zero_hold_power(self):
        assert DynamicTechnology.E_INK.hold_power_w == 0.0
        assert DynamicTechnology.LCD_SHUTTER.hold_power_w > 0.0
