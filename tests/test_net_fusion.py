"""Tests for repro.net.fusion."""

import pytest

from repro.net.fusion import fuse_detections, group_by_pass
from repro.net.node import Detection


def det(node, pos, t, bits, conf):
    return Detection(node_id=node, position_m=pos, timestamp_s=t,
                     bits=bits, confidence=conf)


class TestFusion:
    def test_unanimous(self):
        obs = fuse_detections([det("a", 0.0, 1.0, "10", 0.9),
                               det("b", 5.0, 2.0, "10", 0.8)])
        assert obs.bits == "10"
        assert obs.n_decoded == 2
        assert obs.agreement == pytest.approx(1.0)

    def test_majority_by_confidence(self):
        """One confident node outvotes two shaky ones."""
        obs = fuse_detections([det("a", 0.0, 1.0, "10", 0.9),
                               det("b", 5.0, 2.0, "11", 0.2),
                               det("c", 10.0, 3.0, "11", 0.3)])
        assert obs.bits == "10"

    def test_undecoded_do_not_vote(self):
        obs = fuse_detections([det("a", 0.0, 1.0, "", 0.0),
                               det("b", 5.0, 2.0, "01", 0.5),
                               det("c", 10.0, 3.0, "", 0.0)])
        assert obs.bits == "01"
        assert obs.n_reports == 3
        assert obs.n_decoded == 1

    def test_nothing_decoded(self):
        obs = fuse_detections([det("a", 0.0, 1.0, "", 0.0)])
        assert obs.bits == ""
        assert obs.agreement == 0.0

    def test_tie_breaks_to_earlier_report(self):
        obs = fuse_detections([det("b", 5.0, 2.0, "11", 0.5),
                               det("a", 0.0, 1.0, "00", 0.5)])
        assert obs.bits == "00"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fuse_detections([])


class TestGrouping:
    def test_single_pass_grouped(self):
        """Detections consistent with one object at 5 m/s cluster."""
        reports = [det("a", 0.0, 10.0, "10", 0.9),
                   det("b", 25.0, 15.0, "10", 0.9),   # 25 m at 5 m/s
                   det("c", 50.0, 20.0, "10", 0.9)]
        groups = group_by_pass(reports, expected_speed_mps=5.0)
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_two_passes_separated(self):
        reports = [det("a", 0.0, 10.0, "10", 0.9),
                   det("b", 25.0, 15.0, "10", 0.9),
                   det("a", 0.0, 100.0, "01", 0.9),
                   det("b", 25.0, 105.0, "01", 0.9)]
        groups = group_by_pass(reports, expected_speed_mps=5.0)
        assert len(groups) == 2
        assert all(len(g) == 2 for g in groups)

    def test_tolerance_respected(self):
        reports = [det("a", 0.0, 10.0, "10", 0.9),
                   det("b", 25.0, 18.0, "10", 0.9)]  # 3 s late
        strict = group_by_pass(reports, 5.0, tolerance_s=1.0)
        loose = group_by_pass(reports, 5.0, tolerance_s=5.0)
        assert len(strict) == 2
        assert len(loose) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            group_by_pass([], 0.0)
        with pytest.raises(ValueError):
            group_by_pass([], 5.0, tolerance_s=0.0)
