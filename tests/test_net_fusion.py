"""Tests for repro.net.fusion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fusion import fuse_detections, group_by_pass
from repro.net.node import Detection


def det(node, pos, t, bits, conf):
    return Detection(node_id=node, position_m=pos, timestamp_s=t,
                     bits=bits, confidence=conf)


class TestFusion:
    def test_unanimous(self):
        obs = fuse_detections([det("a", 0.0, 1.0, "10", 0.9),
                               det("b", 5.0, 2.0, "10", 0.8)])
        assert obs.bits == "10"
        assert obs.n_decoded == 2
        assert obs.agreement == pytest.approx(1.0)

    def test_majority_by_confidence(self):
        """One confident node outvotes two shaky ones."""
        obs = fuse_detections([det("a", 0.0, 1.0, "10", 0.9),
                               det("b", 5.0, 2.0, "11", 0.2),
                               det("c", 10.0, 3.0, "11", 0.3)])
        assert obs.bits == "10"

    def test_undecoded_do_not_vote(self):
        obs = fuse_detections([det("a", 0.0, 1.0, "", 0.0),
                               det("b", 5.0, 2.0, "01", 0.5),
                               det("c", 10.0, 3.0, "", 0.0)])
        assert obs.bits == "01"
        assert obs.n_reports == 3
        assert obs.n_decoded == 1

    def test_nothing_decoded(self):
        obs = fuse_detections([det("a", 0.0, 1.0, "", 0.0)])
        assert obs.bits == ""
        assert obs.agreement == 0.0

    def test_tie_breaks_to_earlier_report(self):
        obs = fuse_detections([det("b", 5.0, 2.0, "11", 0.5),
                               det("a", 0.0, 1.0, "00", 0.5)])
        assert obs.bits == "00"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fuse_detections([])


class TestGrouping:
    def test_single_pass_grouped(self):
        """Detections consistent with one object at 5 m/s cluster."""
        reports = [det("a", 0.0, 10.0, "10", 0.9),
                   det("b", 25.0, 15.0, "10", 0.9),   # 25 m at 5 m/s
                   det("c", 50.0, 20.0, "10", 0.9)]
        groups = group_by_pass(reports, expected_speed_mps=5.0)
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_two_passes_separated(self):
        reports = [det("a", 0.0, 10.0, "10", 0.9),
                   det("b", 25.0, 15.0, "10", 0.9),
                   det("a", 0.0, 100.0, "01", 0.9),
                   det("b", 25.0, 105.0, "01", 0.9)]
        groups = group_by_pass(reports, expected_speed_mps=5.0)
        assert len(groups) == 2
        assert all(len(g) == 2 for g in groups)

    def test_tolerance_respected(self):
        reports = [det("a", 0.0, 10.0, "10", 0.9),
                   det("b", 25.0, 18.0, "10", 0.9)]  # 3 s late
        strict = group_by_pass(reports, 5.0, tolerance_s=1.0)
        loose = group_by_pass(reports, 5.0, tolerance_s=5.0)
        assert len(strict) == 2
        assert len(loose) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            group_by_pass([], 0.0)
        with pytest.raises(ValueError):
            group_by_pass([], 5.0, tolerance_s=0.0)


class TestAgreementBounds:
    """Regression: agreement must stay inside its documented [0, 1]."""

    def test_zero_confidence_vote_cannot_push_agreement_above_one(self):
        """The 1.000002 bug: the vote floored a zero-confidence report
        to 1e-6 but the total divided by the raw sum, so the winner
        held more mass than 'everything'."""
        obs = fuse_detections([det("a", 0.0, 1.0, "10", 0.9),
                               det("b", 5.0, 2.0, "10", 0.0)])
        assert obs.bits == "10"
        assert obs.agreement <= 1.0
        assert obs.agreement == pytest.approx(1.0)

    def test_all_zero_confidence_unanimous_group_agrees_fully(self):
        """Unanimous zero-confidence reports used to report 0.0."""
        obs = fuse_detections([det("a", 0.0, 1.0, "01", 0.0),
                               det("b", 5.0, 2.0, "01", 0.0),
                               det("c", 9.0, 3.0, "01", 0.0)])
        assert obs.bits == "01"
        assert obs.agreement == pytest.approx(1.0)

    def test_split_vote_agreement_fraction(self):
        obs = fuse_detections([det("a", 0.0, 1.0, "10", 0.6),
                               det("b", 5.0, 2.0, "11", 0.3)])
        assert obs.bits == "10"
        assert 0.0 < obs.agreement < 1.0
        assert obs.agreement == pytest.approx(0.6 / 0.9, rel=1e-4)

    @given(reports=st.lists(
        st.tuples(st.sampled_from(["", "0", "10", "11", "0110"]),
                  st.floats(min_value=0.0, max_value=1.0,
                            allow_nan=False)),
        min_size=1, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_agreement_always_in_unit_interval(self, reports):
        detections = [det(f"n{i}", float(i), float(i), bits, conf)
                      for i, (bits, conf) in enumerate(reports)]
        obs = fuse_detections(detections)
        assert 0.0 <= obs.agreement <= 1.0
        if obs.n_decoded == 0:
            assert obs.agreement == 0.0


class TestGroupingProperties:
    """Property tests for group_by_pass (satellite)."""

    @staticmethod
    def _group_keys(groups):
        return {frozenset((d.node_id, d.timestamp_s) for d in g)
                for g in groups}

    @given(data=st.lists(
        st.tuples(st.integers(min_value=0, max_value=50),
                  st.floats(min_value=0.0, max_value=40.0,
                            allow_nan=False)),
        min_size=1, max_size=10,
        unique_by=lambda item: item[0]),
        seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=100, deadline=None)
    def test_grouping_is_permutation_invariant(self, data, seed):
        """Report arrival order must not change the pass clustering
        (timestamps are unique, so sorting fully determines order)."""
        import random

        detections = [det(f"n{i}", pos, float(t), "10", 0.5)
                      for i, (t, pos) in enumerate(data)]
        groups = group_by_pass(detections, expected_speed_mps=5.0)
        shuffled = list(detections)
        random.Random(seed).shuffle(shuffled)
        regrouped = group_by_pass(shuffled, expected_speed_mps=5.0)
        assert self._group_keys(groups) == self._group_keys(regrouped)
        assert sum(len(g) for g in groups) == len(detections)

    @given(headway_s=st.floats(min_value=2.5, max_value=30.0,
                               allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_convoy_members_with_wide_headway_stay_separate(self,
                                                            headway_s):
        """Two convoy vehicles crossing two nodes: each vehicle's pair
        of reports groups together, never across vehicles, for any
        headway beyond the tolerance."""
        speed, gap_m = 5.0, 25.0
        reports = []
        for v in range(2):
            t0 = 10.0 + v * headway_s
            reports.append(det("a", 0.0, t0, "10", 0.9))
            reports.append(det("b", gap_m, t0 + gap_m / speed, "10", 0.9))
        groups = group_by_pass(reports, expected_speed_mps=speed,
                               tolerance_s=1.0)
        assert len(groups) == 2
        assert all(len(g) == 2 for g in groups)
        for group in groups:
            assert len({d.node_id for d in group}) == 2

    def test_convoy_headway_inside_tolerance_merges(self):
        """The edge case: headway below the tolerance is
        indistinguishable from timing jitter, so the members merge."""
        speed, gap_m = 5.0, 25.0
        reports = []
        for v in range(2):
            t0 = 10.0 + v * 0.5            # 0.5 s < 1 s tolerance
            reports.append(det("a", 0.0, t0, "10", 0.9))
            reports.append(det("b", gap_m, t0 + gap_m / speed, "10", 0.9))
        groups = group_by_pass(reports, expected_speed_mps=speed,
                               tolerance_s=1.0)
        assert len(groups) == 1
