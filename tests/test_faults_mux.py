"""SessionMux resilience: poison isolation, watchdogs, sibling parity."""

import asyncio

import numpy as np
import pytest

from repro.stream import SessionMux, StreamDecoder, iter_chunks, replay_traces

from .test_stream_decode import synthetic_trace


class Exploding(StreamDecoder):
    """Raises mid-stream once enough samples have been ingested."""

    def push(self, chunk):
        if self.buffer.n_appended > 64:
            raise RuntimeError("decoder blew up")
        return super().push(chunk)


def _mux_with(decoders, trace, chunk_size=16, **mux_kwargs):
    mux = SessionMux(**mux_kwargs)
    feeds = {}
    for sid, factory in decoders.items():
        mux.add_session(sid, factory(trace.sample_rate_hz))
        feeds[sid] = iter_chunks(trace.samples, chunk_size)
    return mux, feeds


class TestPoisonIsolation:
    def test_poisoned_session_contained_with_isolate_errors(self):
        trace = synthetic_trace()
        mux, feeds = _mux_with(
            {"boom": Exploding, "good": StreamDecoder},
            trace, isolate_errors=True)
        asyncio.run(mux.run(feeds))
        boom = mux.session("boom")
        assert boom.failed
        assert "decoder blew up" in boom.error
        assert isinstance(boom.exception, RuntimeError)
        good = mux.session("good")
        assert not good.failed
        assert good.verdict().bits == "10"

    def test_default_reraises_after_siblings_complete(self):
        """Without isolation the first stored exception propagates,
        but only after every sibling has run to completion."""
        trace = synthetic_trace()
        mux, feeds = _mux_with(
            {"boom": Exploding, "good": StreamDecoder}, trace)
        with pytest.raises(RuntimeError, match="decoder blew up"):
            asyncio.run(mux.run(feeds))
        assert mux.session("good").verdict().bits == "10"

    def test_poison_does_not_deadlock_blocked_producer(self):
        """The poisoned session's remaining chunks are drained and
        discarded so a producer parked on the full queue unblocks."""
        trace = synthetic_trace()
        mux, feeds = _mux_with({"boom": Exploding}, trace,
                               queue_chunks=1, isolate_errors=True)
        asyncio.run(mux.run(feeds))  # must terminate
        assert mux.session("boom").failed

    def test_decode_errors_counted_on_stats(self):
        trace = synthetic_trace()
        mux, feeds = _mux_with({"boom": Exploding}, trace,
                               isolate_errors=True)
        asyncio.run(mux.run(feeds))
        stats = mux.session("boom").stats
        assert stats.decode_errors == 1
        assert stats.to_dict()["decode_errors"] == 1

    def test_failed_sessions_listing(self):
        trace = synthetic_trace()
        mux, feeds = _mux_with(
            {"boom": Exploding, "good": StreamDecoder},
            trace, isolate_errors=True)
        asyncio.run(mux.run(feeds))
        assert [s.session_id for s in mux.failed_sessions()] == ["boom"]

    def test_sibling_verdicts_byte_identical_to_clean_mux(self):
        """A poisoned sibling must not perturb healthy sessions: their
        detections match a mux that never had the poisoned session."""
        trace = synthetic_trace()
        dirty, dirty_feeds = _mux_with(
            {"good1": StreamDecoder, "boom": Exploding,
             "good2": StreamDecoder}, trace, isolate_errors=True)
        asyncio.run(dirty.run(dirty_feeds))
        clean, clean_feeds = _mux_with(
            {"good1": StreamDecoder, "good2": StreamDecoder}, trace)
        asyncio.run(clean.run(clean_feeds))

        def snapshot(mux, sid):
            detection = mux.session(sid).detection()
            return (detection.bits, detection.confidence,
                    detection.timestamp_s)

        for sid in ("good1", "good2"):
            assert snapshot(dirty, sid) == snapshot(clean, sid)

    def test_failed_sessions_excluded_from_fusion(self):
        trace = synthetic_trace()
        mux, feeds = _mux_with(
            {"boom": Exploding, "good": StreamDecoder},
            trace, isolate_errors=True)
        asyncio.run(mux.run(feeds))
        detections = mux.detections()
        assert len(detections) == 1


class TestWatchdog:
    @staticmethod
    def _endless():
        """A feed that never ends: the canonical stuck session."""
        while True:
            yield np.zeros(16)

    def test_stuck_session_times_out_siblings_finish(self):
        trace = synthetic_trace()
        mux, feeds = _mux_with(
            {"slow": StreamDecoder, "good": StreamDecoder},
            trace, watchdog_s=0.2, isolate_errors=True)
        feeds["slow"] = self._endless()
        asyncio.run(mux.run(feeds))
        slow = mux.session("slow")
        assert slow.failed
        assert slow.stats.timed_out
        assert "watchdog" in slow.error
        assert mux.session("good").verdict().bits == "10"

    def test_watchdog_never_reraised(self):
        """Timeouts are an availability verdict, not a code bug — even
        without isolate_errors they stay contained."""
        trace = synthetic_trace()
        mux, feeds = _mux_with({"slow": StreamDecoder}, trace,
                               watchdog_s=0.2)
        feeds["slow"] = self._endless()
        asyncio.run(mux.run(feeds))  # no raise
        assert mux.session("slow").stats.timed_out

    def test_generous_watchdog_is_invisible(self):
        trace = synthetic_trace()
        mux = replay_traces({"s0": (trace, 4, None)}, chunk_size=16,
                            watchdog_s=30.0)
        session = mux.session("s0")
        assert not session.failed
        assert not session.stats.timed_out
        assert session.verdict().bits == "10"

    def test_bad_watchdog_rejected(self):
        with pytest.raises(ValueError, match="watchdog"):
            SessionMux(watchdog_s=0.0)


class TestChunkOverrides:
    def test_replay_traces_accepts_per_session_chunks(self):
        trace = synthetic_trace()
        chunks = list(iter_chunks(trace.samples, 16))
        mux = replay_traces({"s0": (trace, 4, None)}, chunk_size=16,
                            chunks_by_session={"s0": chunks})
        assert mux.session("s0").verdict().bits == "10"

    def test_unknown_override_rejected(self):
        trace = synthetic_trace()
        with pytest.raises(KeyError, match="ghost"):
            replay_traces({"s0": (trace, 4, None)}, chunk_size=16,
                          chunks_by_session={"ghost": []})

    def test_lossy_feed_decodes_or_fails_soft(self):
        """Dropping chunks from the transport must never raise out of
        the mux — the session fails soft (no verdict) or still decodes."""
        from repro.faults.inject import fault_rng, perturb_chunks
        from repro.faults.plan import FaultPlan

        trace = synthetic_trace()
        plan = FaultPlan(chunk_drop=0.3)
        chunks = list(iter_chunks(trace.samples, 16))
        lossy, _ = perturb_chunks(chunks, plan, fault_rng("stream", 0, plan))
        mux = replay_traces({"s0": (trace, 4, None)}, chunk_size=16,
                            chunks_by_session={"s0": lossy})
        session = mux.session("s0")
        assert not session.failed
        verdict = session.verdict()
        assert verdict is not None
        assert isinstance(verdict.bits, str)
