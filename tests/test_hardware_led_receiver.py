"""Tests for repro.hardware.led_receiver (the Fig. 11 LED row)."""

import pytest

from repro.hardware.led_receiver import (
    RX_LED_FOV_DEG,
    RX_LED_RELATIVE_SENSITIVITY,
    RX_LED_SATURATION_LUX,
    LedReceiver,
)
from repro.hardware.photodiode import OPT101_FOV_DEG, Photodiode, PdGain


class TestFig11Row:
    def test_saturation(self):
        assert LedReceiver.red_5mm().saturation_lux == 35_000.0

    def test_sensitivity(self):
        assert LedReceiver.red_5mm().relative_sensitivity == 0.013

    def test_constants_match(self):
        led = LedReceiver.red_5mm()
        assert led.saturation_lux == RX_LED_SATURATION_LUX
        assert led.relative_sensitivity == RX_LED_RELATIVE_SENSITIVITY


class TestKeyProperties:
    """Section 4.4: 'narrow FoV and narrow optical bandwidth'."""

    def test_fov_much_narrower_than_pd(self):
        assert RX_LED_FOV_DEG < OPT101_FOV_DEG / 4.0

    def test_less_sensitive_than_every_pd_gain(self):
        led = LedReceiver.red_5mm()
        for gain in PdGain:
            pd = Photodiode.opt101(gain=gain)
            assert led.slope_per_lux < pd.slope_per_lux

    def test_higher_saturation_than_every_pd_gain(self):
        led = LedReceiver.red_5mm()
        for gain in PdGain:
            assert led.saturation_lux > gain.saturation_lux

    def test_daylight_headroom(self):
        """The RX-LED must survive >10 klux outdoor noise floors."""
        led = LedReceiver.red_5mm()
        assert not led.is_saturated_by(10_000.0)
        assert led.is_saturated_by(35_000.0)

    def test_spectral_fraction_bounds(self):
        led = LedReceiver.red_5mm()
        assert 0.0 < led.spectral_fraction <= 1.0


class TestPhotovoltaicMode:
    def test_photovoltaic_quieter(self):
        """Photovoltaic mode minimises dark current (the paper's choice)."""
        pv = LedReceiver.red_5mm(photovoltaic=True)
        pc = LedReceiver.red_5mm(photovoltaic=False)
        assert pv.noise_rms_fullscale < pc.noise_rms_fullscale

    def test_mode_tagged_in_name(self):
        assert "photoconductive" in LedReceiver.red_5mm(
            photovoltaic=False).name
