"""Executor motion profiles: spec.motion -> channel.mobility wiring."""

from __future__ import annotations

import pytest

from repro.channel.mobility import (
    ConstantSpeed,
    PiecewiseConstantSpeed,
    SpeedJitter,
)
from repro.engine import ScenarioSpec, build_scene, execute_scenario
from repro.tags.packet import Packet
from repro.vehicles.profiles import volvo_v40
from repro.vehicles.rooftag import TaggedCar


def _motion_of(spec: ScenarioSpec):
    return build_scene(spec.resolve()).objects[0].motion


class TestMotionWiring:
    def test_constant_default(self):
        assert isinstance(_motion_of(ScenarioSpec()), ConstantSpeed)

    def test_speed_jitter_carries_param_and_seed(self):
        motion = _motion_of(ScenarioSpec(motion="speed_jitter",
                                         motion_param=0.25, seed=9))
        assert isinstance(motion, SpeedJitter)
        assert motion.relative_deviation == 0.25
        assert motion.seed == 9

    def test_bare_tag_doubling_breaks_at_packet_midpoint(self):
        spec = ScenarioSpec(bits="10", motion="speed_doubling")
        motion = _motion_of(spec)
        assert isinstance(motion, PiecewiseConstantSpeed)
        packet = Packet.from_bitstring(spec.bits,
                                       symbol_width_m=spec.symbol_width_m)
        # Bare tag: leading edge of the object IS the packet's leading
        # edge, so the change fires half a packet past the receiver.
        assert motion.breakpoints_m[0] == pytest.approx(
            packet.length_m / 2.0)
        assert motion.speeds_mps[1] == pytest.approx(2 * spec.speed_mps)

    def test_car_doubling_accounts_for_roof_offset(self):
        """The speed change must fire when the *packet* midpoint passes
        the receiver — on a car the packet rides on the roof, well
        behind the object's leading edge."""
        spec = ScenarioSpec(bits="00", symbol_width_m=0.1,
                            car="volvo_v40", decoder="two_phase",
                            start_position_m=-1.5,
                            motion="speed_doubling")
        motion = _motion_of(spec)
        assert isinstance(motion, PiecewiseConstantSpeed)
        car = volvo_v40()
        packet = Packet.from_bitstring(spec.bits,
                                       symbol_width_m=spec.symbol_width_m)
        tag_offset = (car.segment_span("roof")[0]
                      + TaggedCar(car=car, packet=packet).roof_offset_m)
        expected = tag_offset + packet.length_m / 2.0
        assert motion.breakpoints_m[0] == pytest.approx(expected)
        # Sanity: the breakpoint lies inside the tag's span on the car,
        # not ahead of the whole vehicle.
        assert expected > tag_offset

    def test_all_motions_execute_for_car_and_tag(self):
        for car in (None, "volvo_v40"):
            for motion, param in (("constant", 0.0),
                                  ("speed_doubling", 0.0),
                                  ("speed_jitter", 0.15)):
                spec = ScenarioSpec(
                    bits="00", symbol_width_m=0.1, car=car,
                    decoder="two_phase" if car else "adaptive",
                    start_position_m=-1.5, motion=motion,
                    motion_param=param, seed=4)
                record = execute_scenario(spec)
                assert record.stage != "simulation_failed", record.error
