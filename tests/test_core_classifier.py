"""Tests for repro.core.classifier (DTW fallback, Section 4.2)."""

import numpy as np
import pytest

from repro.channel.mobility import speed_doubling_profile
from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.core.classifier import DtwClassifier
from repro.core.errors import ClassificationError
from repro.tags.packet import Packet

from .conftest import build_indoor_scene
from .test_core_decoder import synthetic_packet_trace


class TestTemplates:
    def test_add_and_list(self):
        clf = DtwClassifier()
        clf.add_template("00", synthetic_packet_trace("HLHLHLHL"))
        assert len(clf.templates) == 1
        assert clf.templates[0].label == "00"

    def test_multiple_exemplars_allowed(self):
        clf = DtwClassifier()
        clf.add_template("00", synthetic_packet_trace("HLHLHLHL", seed=1,
                                                      noise=2.0))
        clf.add_template("00", synthetic_packet_trace("HLHLHLHL", seed=2,
                                                      noise=2.0))
        assert len(clf.templates) == 2

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            DtwClassifier().add_template("", synthetic_packet_trace("HLHL"))

    def test_template_conditioned(self):
        clf = DtwClassifier(resample_points=64)
        t = clf.add_template("x", synthetic_packet_trace("HLHLHLHL"))
        assert len(t.samples) == 64
        assert t.samples.min() >= 0.0
        assert t.samples.max() <= 1.0

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            DtwClassifier(resample_points=4)


class TestClassification:
    def _trained(self):
        clf = DtwClassifier()
        clf.add_template("00", synthetic_packet_trace("HLHLHLHL"))
        clf.add_template("10", synthetic_packet_trace("HLHLLHHL"))
        return clf

    def test_classifies_clean_copy(self):
        clf = self._trained()
        query = synthetic_packet_trace("HLHLLHHL", noise=3.0, seed=5)
        result = clf.classify(query)
        assert result.label == "10"

    def test_classifies_speed_distorted(self):
        """Slowed/accelerated copies still match their own template."""
        clf = self._trained()
        query = synthetic_packet_trace("HLHLLHHL", symbol_duration_s=0.6)
        assert clf.classify(query).label == "10"

    def test_distances_reported_per_label(self):
        clf = self._trained()
        result = clf.classify(synthetic_packet_trace("HLHLHLHL"))
        assert set(result.distances) == {"00", "10"}
        assert result.distances["00"] < result.distances["10"]

    def test_margin_above_one(self):
        clf = self._trained()
        result = clf.classify(synthetic_packet_trace("HLHLHLHL"))
        assert result.margin >= 1.0

    def test_single_template_infinite_margin(self):
        clf = DtwClassifier()
        clf.add_template("00", synthetic_packet_trace("HLHLHLHL"))
        result = clf.classify(synthetic_packet_trace("HLHLHLHL"))
        assert result.margin == float("inf")
        assert result.confident

    def test_no_templates_raises(self):
        with pytest.raises(ClassificationError):
            DtwClassifier().classify(synthetic_packet_trace("HLHL"))

    def test_amplitude_invariance(self):
        clf = self._trained()
        base = synthetic_packet_trace("HLHLLHHL")
        scaled_samples = base.samples * 10.0 + 500.0
        from repro.channel.trace import SignalTrace
        scaled = SignalTrace(scaled_samples, base.sample_rate_hz)
        assert clf.classify(scaled).label == "10"


class TestFig8EndToEnd:
    def test_variable_speed_classified(self, indoor_receiver):
        """The full Fig. 8 pipeline through the channel simulator."""
        clf = DtwClassifier()
        cfg = SimulatorConfig(sample_rate_hz=500.0, seed=6)
        for bits in ("00", "10"):
            scene = build_indoor_scene(bits=bits)
            trace = ChannelSimulator(scene, indoor_receiver, cfg).capture_pass()
            clf.add_template(bits, trace)

        packet = Packet.from_bitstring("10", symbol_width_m=0.03)
        scene = build_indoor_scene(bits="10")
        scene.objects[0].motion = speed_doubling_profile(
            packet.length_m, 0.08, -0.3)
        distorted = ChannelSimulator(
            scene, indoor_receiver,
            SimulatorConfig(sample_rate_hz=500.0, seed=9)).capture_pass()
        result = clf.classify(distorted)
        assert result.label == "10"
        assert result.distances["10"] < result.distances["00"]
