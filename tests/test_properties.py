"""Property-based tests (hypothesis) on core data structures/invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.channel.trace import SignalTrace
from repro.dsp.dtw import dtw_distance
from repro.dsp.filters import moving_average
from repro.dsp.normalize import (
    min_max_normalize,
    resample_to_length,
    z_normalize,
)
from repro.tags.framing import FrameError, FramedPayload, crc4
from repro.hardware.adc import Adc
from repro.optics.geometry import FieldOfView, GroundFootprint, Vec3
from repro.optics.photometry import lux_to_watts_per_m2, watts_per_m2_to_lux
from repro.optics.propagation import footprint_kernel
from repro.tags.codebook import build_max_distance_codebook, hamming_distance
from repro.tags.encoding import manchester_decode, manchester_encode
from repro.tags.packet import Packet

bits_strategy = st.lists(st.integers(min_value=0, max_value=1),
                         min_size=1, max_size=24)
finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
small_arrays = st.lists(finite_floats, min_size=2, max_size=64)


class TestManchesterProperties:
    @given(bits=bits_strategy)
    def test_round_trip(self, bits):
        assert manchester_decode(manchester_encode(bits)) == bits

    @given(bits=bits_strategy)
    def test_balanced_symbols(self, bits):
        """Manchester output is DC-balanced: equal HIGH and LOW counts."""
        symbols = manchester_encode(bits)
        highs = sum(1 for s in symbols if s.value == "H")
        assert highs == len(symbols) // 2

    @given(bits=bits_strategy)
    def test_no_triple_runs(self, bits):
        """Manchester never produces three identical symbols in a row."""
        symbols = [s.value for s in manchester_encode(bits)]
        for i in range(len(symbols) - 2):
            assert not (symbols[i] == symbols[i + 1] == symbols[i + 2])


class TestPacketProperties:
    @given(bits=bits_strategy,
           width=st.floats(min_value=1e-3, max_value=0.5,
                           allow_nan=False))
    def test_length_formula(self, bits, width):
        packet = Packet.from_bits(bits, symbol_width_m=width)
        assert packet.length_m == pytest.approx(
            (4 + 2 * len(bits)) * width)

    @given(bits=bits_strategy)
    def test_symbol_string_round_trip(self, bits):
        packet = Packet.from_bits(bits)
        recovered = Packet.from_symbol_string(packet.symbol_string())
        assert recovered.data_bits == packet.data_bits


class TestDtwProperties:
    @given(xs=small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_identity(self, xs):
        arr = np.asarray(xs)
        assert dtw_distance(arr, arr, band_fraction=None) == 0.0

    @given(xs=small_arrays, ys=small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, xs, ys):
        a, b = np.asarray(xs), np.asarray(ys)
        assert dtw_distance(a, b, band_fraction=None) == pytest.approx(
            dtw_distance(b, a, band_fraction=None), rel=1e-9, abs=1e-9)

    @given(xs=small_arrays, ys=small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_non_negative(self, xs, ys):
        assert dtw_distance(np.asarray(xs), np.asarray(ys),
                            band_fraction=None) >= 0.0

    @given(xs=small_arrays,
           shift=st.floats(min_value=-100.0, max_value=100.0,
                           allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_shift_both_invariant(self, xs, shift):
        """Shifting both sequences together changes nothing."""
        a = np.asarray(xs)
        assert dtw_distance(a + shift, a + shift,
                            band_fraction=None) == pytest.approx(0.0)

    @given(xs=small_arrays, ys=small_arrays,
           narrow=st.floats(min_value=0.05, max_value=0.45,
                            allow_nan=False),
           widen=st.floats(min_value=0.0, max_value=0.55,
                           allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_monotone_band_widening(self, xs, ys, narrow, widen):
        """Widening the Sakoe-Chiba band never increases the distance.

        A wider band is a superset of alignment paths, so the optimal
        cost can only drop; the unbanded distance is the lower bound.
        """
        a, b = np.asarray(xs), np.asarray(ys)
        d_narrow = dtw_distance(a, b, band_fraction=narrow)
        d_wide = dtw_distance(a, b, band_fraction=narrow + widen)
        d_free = dtw_distance(a, b, band_fraction=None)
        assert d_wide <= d_narrow + 1e-9
        assert d_free <= d_wide + 1e-9


class TestDspProperties:
    @given(xs=small_arrays,
           window=st.integers(min_value=1, max_value=15))
    def test_moving_average_bounded(self, xs, window):
        """Smoothing never exceeds the input's range."""
        x = np.asarray(xs)
        out = moving_average(x, window)
        assert out.min() >= x.min() - 1e-9
        assert out.max() <= x.max() + 1e-9

    @given(xs=small_arrays)
    def test_min_max_into_unit_interval(self, xs):
        out = min_max_normalize(np.asarray(xs))
        assert np.all(out >= 0.0)
        assert np.all(out <= 1.0)

    @given(xs=small_arrays, n=st.integers(min_value=2, max_value=100))
    def test_resample_preserves_bounds(self, xs, n):
        x = np.asarray(xs)
        out = resample_to_length(x, n)
        assert len(out) == n
        assert out.min() >= x.min() - 1e-9
        assert out.max() <= x.max() + 1e-9

    @given(xs=small_arrays,
           scale=st.floats(min_value=1e-3, max_value=1e3,
                           allow_nan=False),
           shift=st.floats(min_value=-1e3, max_value=1e3,
                           allow_nan=False))
    def test_min_max_affine_invariant(self, xs, scale, shift):
        """Positive affine rescaling leaves the normalised signal
        unchanged — the property the DTW classifier relies on to
        compare passes captured under different ambient levels."""
        x = np.asarray(xs)
        y = scale * x + shift
        # Skip degenerate cases where the shift swallows the signal's
        # range in float64 (catastrophic cancellation, not a property
        # of the normaliser).
        assume(x.max() == x.min()
               or y.max() - y.min() > 1e-7 * max(1.0, np.abs(y).max()))
        direct = min_max_normalize(x)
        rescaled = min_max_normalize(y)
        assert rescaled == pytest.approx(direct, abs=1e-6)

    @given(xs=small_arrays)
    def test_min_max_hits_unit_endpoints(self, xs):
        x = np.asarray(xs)
        out = min_max_normalize(x)
        if x.max() > x.min():
            assert out.min() == pytest.approx(0.0)
            assert out.max() == pytest.approx(1.0)
        else:
            assert np.all(out == 0.0)

    @given(xs=small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_z_normalize_moments(self, xs):
        x = np.asarray(xs)
        out = z_normalize(x)
        if x.std() > 1e-6 * max(1.0, abs(x).max()):
            assert out.mean() == pytest.approx(0.0, abs=1e-6)
            assert out.std() == pytest.approx(1.0, rel=1e-6)

    @given(xs=small_arrays)
    def test_resample_identity(self, xs):
        """Resampling to the input length is the identity."""
        x = np.asarray(xs)
        assert resample_to_length(x, len(x)) == pytest.approx(x)


class TestFramingProperties:
    @given(object_id=st.integers(min_value=0, max_value=63),
           type_code=st.integers(min_value=0, max_value=3))
    def test_encode_decode_round_trip(self, object_id, type_code):
        frame = FramedPayload(object_id=object_id, type_code=type_code)
        recovered = FramedPayload.from_bits(frame.to_bits())
        assert recovered == frame

    @given(id_bits=st.integers(min_value=1, max_value=12),
           type_bits=st.integers(min_value=1, max_value=8),
           data=st.data())
    def test_round_trip_any_field_widths(self, id_bits, type_bits, data):
        object_id = data.draw(st.integers(0, 2**id_bits - 1))
        type_code = data.draw(st.integers(0, 2**type_bits - 1))
        frame = FramedPayload(object_id=object_id, type_code=type_code,
                              id_bits=id_bits, type_bits=type_bits)
        bits = frame.to_bits()
        assert len(bits) == frame.n_bits
        assert FramedPayload.from_bits(bits, id_bits=id_bits,
                                       type_bits=type_bits) == frame

    @given(object_id=st.integers(min_value=0, max_value=63),
           type_code=st.integers(min_value=0, max_value=3),
           flip=st.integers(min_value=0, max_value=11))
    def test_single_bit_flip_detected(self, object_id, type_code, flip):
        """CRC-4 catches every single-bit error on the 12-bit frame."""
        bits = FramedPayload(object_id=object_id,
                             type_code=type_code).to_bits()
        corrupted = (bits[:flip]
                     + ("1" if bits[flip] == "0" else "0")
                     + bits[flip + 1:])
        assert FramedPayload.try_from_bits(corrupted) is None

    @given(object_id=st.integers(min_value=0, max_value=63),
           type_code=st.integers(min_value=0, max_value=3),
           flips=st.sets(st.integers(min_value=0, max_value=11),
                         min_size=2, max_size=2))
    def test_double_bit_flip_detected(self, object_id, type_code, flips):
        """The primitive CRC-4-ITU polynomial catches all double-bit
        errors on frames shorter than its period (15 bits)."""
        bits = list(FramedPayload(object_id=object_id,
                                  type_code=type_code).to_bits())
        for i in flips:
            bits[i] = "1" if bits[i] == "0" else "0"
        assert FramedPayload.try_from_bits("".join(bits)) is None

    @given(bits=st.text(alphabet="01", min_size=1, max_size=24))
    def test_crc4_width_and_determinism(self, bits):
        checksum = crc4(bits)
        assert len(checksum) == 4
        assert set(checksum) <= {"0", "1"}
        assert crc4(bits) == checksum

    @given(bits=st.text(alphabet="01", min_size=1, max_size=20))
    def test_crc4_appended_residue_is_zero(self, bits):
        """Appending the checksum makes the CRC of the whole zero —
        the classic systematic-CRC identity."""
        assert crc4(bits + crc4(bits)) == "0000"

    @given(garbage=st.text(alphabet="01", min_size=1, max_size=24))
    def test_from_bits_never_crashes(self, garbage):
        """Arbitrary decoder output either parses or raises FrameError
        — nothing else escapes."""
        try:
            FramedPayload.from_bits(garbage)
        except FrameError:
            pass


class TestAdcProperties:
    @given(v=st.lists(st.floats(min_value=-2.0, max_value=3.0,
                                allow_nan=False),
                      min_size=1, max_size=64))
    def test_codes_in_range(self, v):
        adc = Adc.mcp3008()
        codes = adc.convert(np.asarray(v))
        assert codes.min() >= 0
        assert codes.max() <= adc.max_code

    @given(a=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           b=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_monotone(self, a, b):
        adc = Adc.mcp3008()
        ca, cb = adc.convert(np.array([a, b]))
        if a <= b:
            assert ca <= cb


class TestPhotometryProperties:
    @given(lux=st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_conversion_round_trip(self, lux):
        assert watts_per_m2_to_lux(
            lux_to_watts_per_m2(lux)) == pytest.approx(lux, rel=1e-9)


class TestGeometryProperties:
    @given(x=st.floats(min_value=-10, max_value=10, allow_nan=False),
           y=st.floats(min_value=-10, max_value=10, allow_nan=False),
           z=st.floats(min_value=-10, max_value=10, allow_nan=False))
    def test_normalization_unit(self, x, y, z):
        v = Vec3(x, y, z)
        if v.norm() > 1e-6:
            assert v.normalized().norm() == pytest.approx(1.0)

    @given(height=st.floats(min_value=0.05, max_value=3.0,
                            allow_nan=False),
           angle=st.floats(min_value=5.0, max_value=120.0,
                           allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_kernel_normalised_for_any_geometry(self, height, angle):
        fov = FieldOfView(angle)
        radius = GroundFootprint.from_receiver(height, fov).radius
        kern = footprint_kernel(height, fov, radius / 16.0)
        assert kern.weights.sum() == pytest.approx(1.0)
        assert np.all(kern.weights >= 0.0)
        assert kern.gain > 0.0


class TestCodebookProperties:
    @given(n_bits=st.integers(min_value=2, max_value=6),
           n_codes=st.integers(min_value=2, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_greedy_codebook_valid(self, n_bits, n_codes):
        n_codes = min(n_codes, 2**n_bits)
        book = build_max_distance_codebook(n_bits, n_codes)
        assert book.size == n_codes
        assert book.min_distance >= 1
        # Every pair respects the reported minimum.
        for i, a in enumerate(book.codes):
            for b in book.codes[i + 1:]:
                assert hamming_distance(a, b) >= book.min_distance


class TestTraceProperties:
    @given(xs=st.lists(st.floats(min_value=0.0, max_value=1023.0,
                                 allow_nan=False),
                       min_size=2, max_size=128))
    def test_normalized_trace_invariants(self, xs):
        trace = SignalTrace(np.asarray(xs), 100.0)
        norm = trace.normalized()
        assert len(norm) == len(trace)
        assert norm.samples.min() >= 0.0
        assert norm.samples.max() <= 1.0
