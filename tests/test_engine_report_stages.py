"""Tests for stage-timing reporting and the centralized stage names."""

from repro.core.pipeline import PipelineStage
from repro.engine import RunRecord, stage_stats, stage_table
from repro.engine.records import STAGES, RecordStage
from repro.exec import ExecStage, StageTrace


def make_record(seed=7, trace=None):
    return RunRecord(
        spec_hash="ab" + "0" * 62,
        spec={"bits": "00", "seed": seed},
        seed=seed,
        sent_bits="00",
        decoded_bits="00",
        success=True,
        stage="decoded",
        ber=0.0,
        n_samples=500,
        trace_duration_s=0.25,
        sample_rate_hz=2000.0,
        noise_floor_lux=450.0,
        elapsed_s=0.01,
        stage_trace=trace,
    )


def make_trace(build=0.5, decide=1.5, **counters):
    trace = StageTrace()
    trace.add(ExecStage.BUILD, build)
    trace.add(ExecStage.DECIDE, decide)
    for name, n in counters.items():
        trace.count(name, n)
    return trace


class TestStageNames:
    def test_pipeline_stage_is_the_record_enum(self):
        # One enum for every layer: repro.core.pipeline re-exports it.
        assert PipelineStage is RecordStage

    def test_record_stages_cover_the_outcome_tuple(self):
        assert STAGES == ("executor_error", "simulation_failed",
                          "preamble_not_found", "decode_failed",
                          "bit_errors", "decoded")
        assert all(stage in RecordStage._value2member_map_
                   for stage in STAGES)


class TestStageStats:
    def test_empty_and_unprofiled(self):
        assert stage_stats([])["n_profiled"] == 0
        stats = stage_stats([make_record()])
        assert stats["n_profiled"] == 0
        assert stats["total_s"] == 0.0
        assert stats["stages"] == {}

    def test_aggregates_across_profiled_records(self):
        records = [
            make_record(trace=make_trace(build=0.5, decide=1.5, rows=2)),
            make_record(trace=make_trace(build=0.5, decide=1.5)),
            make_record(),  # unprofiled records do not dilute the mean
        ]
        stats = stage_stats(records)
        assert stats["n_profiled"] == 2
        assert stats["total_s"] == 4.0
        assert stats["stages"]["build"] == {
            "total_s": 1.0, "mean_s": 0.5, "share": 0.25}
        assert stats["stages"]["decide"]["share"] == 0.75
        assert stats["counters"] == {"rows": 2}

    def test_stages_in_pipeline_order(self):
        trace = StageTrace()
        trace.add(ExecStage.DECIDE, 1.0)
        trace.add(ExecStage.BUILD, 1.0)
        trace.add(ExecStage.ACQUIRE, 1.0)
        stats = stage_stats([make_record(trace=trace)])
        assert list(stats["stages"]) == ["build", "acquire", "decide"]


class TestStageTable:
    def test_hints_without_traces(self):
        text = stage_table([make_record()])
        assert "--profile" in text
        assert "REPRO_EXEC_PROFILE" in text

    def test_renders_rows_and_counters(self):
        record = make_record(trace=make_trace(rows=3))
        text = stage_table([record])
        assert "1 profiled record" in text
        assert "build" in text and "decide" in text
        assert "counters: rows=3" in text
        # decide holds 75% of the time: its bar dominates build's.
        build_row = next(l for l in text.splitlines() if "build" in l)
        decide_row = next(l for l in text.splitlines() if "decide" in l)
        assert decide_row.count("#") > build_row.count("#")


class TestTraceSerialization:
    def test_trace_rides_only_in_timed_payloads(self):
        record = make_record(trace=make_trace(rows=1))
        assert "stage_trace" in record.to_dict()
        assert "stage_trace" not in record.to_dict(include_timing=False)
        assert "stage_trace" not in record.canonical_json()

    def test_unprofiled_record_omits_the_key(self):
        assert "stage_trace" not in make_record().to_dict()

    def test_roundtrip_through_dict(self):
        record = make_record(trace=make_trace(rows=1))
        back = RunRecord.from_dict(record.to_dict())
        assert isinstance(back.stage_trace, StageTrace)
        assert back.stage_trace.timings_s == record.stage_trace.timings_s
        assert back.stage_trace.counters == record.stage_trace.counters

    def test_trace_excluded_from_equality(self):
        assert make_record(trace=make_trace()) == make_record()
