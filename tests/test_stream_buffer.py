"""Tests for repro.stream.buffer."""

import numpy as np
import pytest

from repro.stream.buffer import StreamBuffer


class TestConstruction:
    def test_bad_rate(self):
        with pytest.raises(ValueError):
            StreamBuffer(0.0)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            StreamBuffer(100.0, max_samples=0)

    def test_empty_state(self):
        buf = StreamBuffer(100.0, start_time_s=2.0)
        assert len(buf) == 0
        assert buf.n_appended == 0
        assert buf.end_time_s == 2.0
        assert buf.first_time_s == 2.0


class TestAppend:
    def test_chunks_accumulate(self):
        buf = StreamBuffer(100.0)
        buf.append(np.arange(5.0))
        buf.append(np.arange(5.0, 12.0))
        assert len(buf) == 12
        assert buf.n_appended == 12
        assert buf.end_time_s == pytest.approx(0.12)
        assert np.array_equal(buf.suffix(0.0), np.arange(12.0))

    def test_empty_chunk_is_noop(self):
        buf = StreamBuffer(100.0)
        buf.append(np.empty(0))
        assert len(buf) == 0 and buf.n_appended == 0

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            StreamBuffer(100.0).append(np.zeros((2, 2)))

    def test_growth_past_initial_allocation(self):
        buf = StreamBuffer(100.0)
        data = np.arange(5000.0)
        for start in range(0, 5000, 37):
            buf.append(data[start:start + 37])
        assert np.array_equal(buf.suffix(0.0), data)


class TestBoundedMode:
    def test_drops_oldest(self):
        buf = StreamBuffer(100.0, max_samples=10)
        buf.append(np.arange(25.0))
        assert len(buf) == 10
        assert buf.n_dropped == 15
        assert buf.first_index == 15
        assert np.array_equal(buf.suffix(0.0), np.arange(15.0, 25.0))

    def test_sliding_across_many_appends(self):
        buf = StreamBuffer(100.0, max_samples=8)
        data = np.arange(100.0)
        for start in range(0, 100, 3):
            buf.append(data[start:start + 3])
        assert len(buf) == 8
        assert np.array_equal(buf.suffix(0.0), data[-8:])
        assert buf.n_appended == 100
        assert buf.n_dropped == 92

    def test_oversized_chunk_keeps_tail(self):
        buf = StreamBuffer(100.0, max_samples=4)
        buf.append(np.arange(3.0))
        buf.append(np.arange(10.0, 30.0))
        assert np.array_equal(buf.suffix(0.0), [26.0, 27.0, 28.0, 29.0])
        assert buf.n_appended == 23
        assert buf.n_dropped == 19

    def test_first_time_shifts_with_drops(self):
        buf = StreamBuffer(10.0, start_time_s=1.0, max_samples=5)
        buf.append(np.arange(12.0))
        assert buf.first_time_s == pytest.approx(1.0 + 7 / 10.0)


class TestWindows:
    def test_window_is_view(self):
        buf = StreamBuffer(100.0)
        buf.append(np.arange(20.0))
        view = buf.window(0.05, 0.10)
        assert np.shares_memory(view, buf._data)
        assert np.array_equal(view, np.arange(5.0, 10.0))

    def test_window_with_time_reports_first_sample_time(self):
        buf = StreamBuffer(100.0, start_time_s=1.0)
        buf.append(np.arange(20.0))
        view, t0 = buf.window_with_time(1.055, 1.10)
        assert t0 == pytest.approx(1.06)
        assert np.array_equal(view, np.arange(6.0, 10.0))

    def test_window_clips_to_available(self):
        buf = StreamBuffer(100.0)
        buf.append(np.arange(10.0))
        assert np.array_equal(buf.window(-5.0, 50.0), np.arange(10.0))

    def test_empty_window(self):
        buf = StreamBuffer(100.0)
        buf.append(np.arange(10.0))
        assert len(buf.window(5.0, 6.0)) == 0

    def test_bad_window(self):
        with pytest.raises(ValueError):
            StreamBuffer(100.0).window(1.0, 1.0)

    def test_window_after_drop_clips_to_retained(self):
        buf = StreamBuffer(100.0, max_samples=10)
        buf.append(np.arange(25.0))
        # The first 15 samples are gone; asking for them yields what is
        # still retained.
        assert np.array_equal(buf.window(0.0, 0.20),
                              np.arange(15.0, 20.0))


class TestToTrace:
    def test_round_trip(self):
        buf = StreamBuffer(100.0, start_time_s=0.5)
        buf.append(np.arange(30.0))
        trace = buf.to_trace(meta={"origin": "test"})
        assert trace.sample_rate_hz == 100.0
        assert trace.start_time_s == 0.5
        assert trace.meta["origin"] == "test"
        assert np.array_equal(trace.samples, np.arange(30.0))

    def test_trace_is_a_copy(self):
        buf = StreamBuffer(100.0)
        buf.append(np.arange(5.0))
        trace = buf.to_trace()
        buf.append(np.arange(5.0))
        assert len(trace) == 5

    def test_dropped_history_noted_in_meta(self):
        buf = StreamBuffer(100.0, max_samples=4)
        buf.append(np.arange(10.0))
        trace = buf.to_trace()
        assert trace.meta["stream_dropped_samples"] == 6
        assert trace.start_time_s == pytest.approx(0.06)


class TestOversizedChunkAccounting:
    """Pinned regression values for the oversized-chunk append branch.

    The branch replaces the whole retained history with the chunk's
    tail; its bookkeeping (``n_dropped`` counting both the evicted
    history and the chunk's own discarded head, and the derived
    ``first_index``/``first_time_s``) is pinned here sample for sample.
    """

    def test_chunk_exactly_at_capacity_evicts_all_history(self):
        buf = StreamBuffer(100.0, max_samples=8)
        buf.append(np.arange(5.0))
        buf.append(np.arange(100.0, 108.0))     # len == max_samples
        assert len(buf) == 8
        assert np.array_equal(buf.suffix(0.0), np.arange(100.0, 108.0))
        # 5 old samples evicted, nothing of the chunk itself dropped.
        assert buf.n_dropped == 5
        assert buf.n_appended == 13
        assert buf.first_index == 5
        assert buf.first_time_s == pytest.approx(5 / 100.0)

    def test_chunk_larger_than_capacity_on_nonempty_buffer(self):
        buf = StreamBuffer(100.0, start_time_s=2.0, max_samples=4)
        buf.append(np.arange(3.0))
        buf.append(np.arange(10.0, 16.0))       # 6 > max_samples
        assert np.array_equal(buf.suffix(0.0), [12.0, 13.0, 14.0, 15.0])
        # 3 history + 2 chunk-head samples dropped.
        assert buf.n_dropped == 5
        assert buf.n_appended == 9
        assert buf.first_index == 5
        assert buf.first_time_s == pytest.approx(2.0 + 5 / 100.0)

    def test_oversized_chunk_into_empty_buffer(self):
        buf = StreamBuffer(50.0, max_samples=3)
        buf.append(np.arange(7.0))
        assert np.array_equal(buf.suffix(0.0), [4.0, 5.0, 6.0])
        assert buf.n_dropped == 4
        assert buf.first_index == 4
        assert buf.first_time_s == pytest.approx(4 / 50.0)

    def test_windows_after_oversized_append_stay_consistent(self):
        buf = StreamBuffer(100.0, max_samples=4)
        buf.append(np.arange(3.0))
        buf.append(np.arange(10.0, 16.0))
        view, t_first = buf.window_with_time(0.0, 1.0)
        assert np.array_equal(view, [12.0, 13.0, 14.0, 15.0])
        assert t_first == pytest.approx(buf.first_time_s)
