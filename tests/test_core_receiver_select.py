"""Tests for repro.core.receiver_select (Section 4.4 policy)."""

import pytest

from repro.core.errors import SaturatedReceiverError
from repro.core.receiver_select import DualReceiverController, ReceiverChoice


class TestSelection:
    def test_dark_room_picks_most_sensitive(self):
        choice = DualReceiverController().select(50.0)
        assert choice.name == "PD-G1"

    def test_medium_room_escalates_gain(self):
        """At 450 lux G1 saturates (Fig. 11): the policy must step down."""
        choice = DualReceiverController().select(450.0)
        assert choice.name in ("PD-G2", "PD-G3")

    def test_outdoor_daylight_picks_led(self):
        """Above PD-G3's 5 klux limit only the RX-LED survives."""
        choice = DualReceiverController().select(10_000.0)
        assert choice.name == "RX-LED"

    def test_paper_outdoor_noise_floors_pick_led(self):
        controller = DualReceiverController()
        for lux in (6200.0, 5500.0):
            assert controller.select(lux).name == "RX-LED"

    def test_extreme_light_raises(self):
        with pytest.raises(SaturatedReceiverError):
            DualReceiverController().select(60_000.0)

    def test_headroom_above_one(self):
        choice = DualReceiverController().select(1000.0)
        assert choice.headroom > 1.0

    def test_negative_ambient_rejected(self):
        with pytest.raises(ValueError):
            DualReceiverController().select(-1.0)


class TestPolicyVariants:
    def test_margin_shrinks_usable_range(self):
        tight = DualReceiverController(margin=2.0)
        loose = DualReceiverController(margin=1.0)
        # 300 lux * 2.0 margin = 600 > 450: G1 unusable under the tight
        # policy but fine under the loose one.
        assert loose.select(300.0).name == "PD-G1"
        assert tight.select(300.0).name != "PD-G1"

    def test_robust_policy_prefers_headroom(self):
        robust = DualReceiverController(prefer_sensitivity=False)
        assert robust.select(50.0).name == "RX-LED"

    def test_margin_below_one_rejected(self):
        with pytest.raises(ValueError):
            DualReceiverController(margin=0.5)


class TestChoicesAndTable:
    def test_choices_ordered_by_sensitivity(self):
        options = DualReceiverController().choices(50.0)
        names = [c.name for c in options]
        assert names == ["PD-G1", "PD-G2", "PD-G3", "RX-LED"]

    def test_choices_thin_out_with_light(self):
        controller = DualReceiverController()
        assert len(controller.choices(50.0)) > len(controller.choices(3000.0))

    def test_selection_table_covers_saturation(self):
        controller = DualReceiverController()
        rows = controller.selection_table([100.0, 2000.0, 10_000.0, 80_000.0])
        assert rows[0][1] == "PD-G1"
        assert rows[-1][1] == "saturated"

    def test_frontend_is_usable(self):
        import numpy as np

        choice = DualReceiverController().select(450.0)
        codes = choice.frontend.capture(np.full(200, 450.0),
                                        sample_rate_hz=500.0)
        assert codes.max() < 1023  # not railed
