"""Streaming parity properties: the chunk-invariance acceptance bar.

Two guarantees are pinned here:

* **Chunk-size invariance** — replaying any scenario's captured trace
  through the online runtime at chunk sizes 1, 7, 64 and whole-trace
  yields byte-identical final verdicts to the offline decoder, with
  monotonically nondecreasing event timestamps, across *every
  registered scenario family* (hypothesis additionally samples
  arbitrary chunk sizes on a synthetic trace);
* **OnlineNormalizer parity** — covered sample-exactly in
  test_stream_normalize.py; here hypothesis drives it through the
  StreamDecoder's own ingestion path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DecodeError, PreambleNotFoundError
from repro.engine.executor import build_decoder, build_simulator
from repro.engine.spec import ScenarioSpec
from repro.scenarios import family_names, get_family
from repro.stream import StreamDecoder, iter_chunks, replay_trace

from .test_stream_decode import synthetic_trace

CHUNK_SIZES = (1, 7, 64, None)  # None = the whole trace in one chunk

#: Template kept small so every family's pass stays cheap to capture.
_TEMPLATE = ScenarioSpec(bits="10")


def _family_case(name):
    """One deterministic (spec, trace, offline outcome) per family."""
    spec = get_family(name).expand(count=1, seed=0,
                                   template=_TEMPLATE)[0]
    spec = spec.replace(n_receivers=1, stream_chunk=0).resolve()
    trace = build_simulator(spec).capture_pass()
    decoder = build_decoder(spec)
    n_data_symbols = 2 * len(spec.bits)
    try:
        result = decoder.decode(trace, n_data_symbols=n_data_symbols)
        offline = ("returned", result.bit_string(), result.success)
    except PreambleNotFoundError:
        offline = ("preamble_not_found", "", False)
    except DecodeError:
        offline = ("decode_failed", "", False)
    return spec, trace, n_data_symbols, offline


_case_cache: dict = {}


def _cached_case(name):
    if name not in _case_cache:
        _case_cache[name] = _family_case(name)
    return _case_cache[name]


@pytest.mark.parametrize("family", family_names())
def test_chunk_invariance_across_registered_families(family):
    """The acceptance criterion: for every registered family, streaming
    at any chunk size reproduces the offline verdict byte-for-byte."""
    spec, trace, n_data_symbols, offline = _cached_case(family)
    kind, offline_bits, offline_success = offline
    for chunk_size in CHUNK_SIZES:
        size = len(trace) if chunk_size is None else chunk_size
        replay = replay_trace(trace, max(1, size),
                              n_data_symbols=n_data_symbols,
                              decoder=build_decoder(spec))
        verdict = replay.verdict
        assert verdict.bits == offline_bits, (
            f"{family}: chunk {chunk_size} verdict {verdict.bits!r} "
            f"!= offline {offline_bits!r}")
        assert verdict.success == offline_success
        if kind == "returned":
            assert replay.decoder.result is not None
            assert replay.decoder.result.bit_string() == offline_bits
        else:
            assert verdict.stage == kind
        times = [e.stream_time_s for e in replay.events]
        assert times == sorted(times), (
            f"{family}: chunk {chunk_size} event times not monotone")


@settings(max_examples=20, deadline=None)
@given(chunk_size=st.integers(min_value=1, max_value=700))
def test_chunk_invariance_property_synthetic(chunk_size):
    """Hypothesis over arbitrary chunk sizes on a synthetic pass."""
    trace = synthetic_trace(bits="1001")
    offline_bits = "1001"
    replay = replay_trace(trace, chunk_size, n_data_symbols=8)
    assert replay.verdict.bits == offline_bits
    times = [e.stream_time_s for e in replay.events]
    assert times == sorted(times)
    assert [e.kind for e in replay.events] == ["onset", "first_bit",
                                               "verdict"]


@settings(max_examples=20, deadline=None)
@given(chunk_size=st.integers(min_value=1, max_value=300),
       seed=st.integers(min_value=0, max_value=5))
def test_normalizer_parity_through_stream_decoder(chunk_size, seed):
    """The decoder-embedded normalizer matches trace.normalized()
    after the full pass, for any ingestion chunking."""
    rng = np.random.default_rng(seed)
    samples = rng.normal(500.0, 30.0, size=400)
    from repro.channel.trace import SignalTrace

    trace = SignalTrace(samples, 200.0)
    stream = StreamDecoder(trace.sample_rate_hz)
    for chunk in iter_chunks(trace.samples, chunk_size):
        stream.push(chunk)
    stream.flush()
    assert np.array_equal(stream.normalizer.normalize(samples),
                          trace.normalized().samples)


def test_latencies_shrink_with_chunk_size():
    """On a real simulated pass, finer chunking detects the packet no
    later than coarser chunking — the stream clock advances in chunk
    quanta, so big chunks can only learn about the preamble late."""
    spec = ScenarioSpec(source="sun", detector="led", cap=False,
                        ground="tarmac", bits="1001", symbol_width_m=0.1,
                        speed_mps=5.0, receiver_height_m=0.25,
                        start_position_m=-1.5, sample_rate_hz=2000.0,
                        ground_lux=450.0, seed=3).resolve()
    trace = build_simulator(spec).capture_pass()
    onsets = []
    for chunk_size in (1, 64, len(trace)):
        replay = replay_trace(trace, chunk_size, n_data_symbols=8)
        onset = replay.latency("onset")
        assert onset is not None
        onsets.append(onset)
        assert replay.verdict.bits == "1001"
    assert onsets[0] <= onsets[1] <= onsets[2]
