"""RetryPolicy: backoff shape, deterministic jitter, call semantics."""

import pytest

from repro.faults.retry import RetryExhausted, RetryPolicy


class TestDelays:
    def test_exponential_shape(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1, backoff=2.0)
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.4])

    def test_cap_bounds_every_delay(self):
        policy = RetryPolicy(max_attempts=6, base_delay_s=1.0,
                             backoff=10.0, cap_delay_s=5.0)
        assert all(d <= 5.0 for d in policy.delays())

    def test_zero_base_retries_immediately(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        assert policy.delays() == [0.0, 0.0]

    def test_jitter_stays_relative(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=1.0, jitter=0.5)
        for _ in range(50):
            assert 0.5 <= policy.delay_s(0) <= 1.5

    def test_jitter_is_seed_deterministic(self):
        a = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                        jitter=0.4, seed=7)
        b = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                        jitter=0.4, seed=7)
        assert a.delays() == b.delays()

    def test_different_seeds_different_jitter(self):
        a = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                        jitter=0.4, seed=1)
        b = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                        jitter=0.4, seed=2)
        assert a.delays() != b.delays()

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay_s(-1)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_s": -0.1},
        {"backoff": 0.5},
        {"cap_delay_s": -1.0},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ])
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCall:
    def test_success_first_try(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(lambda: 42) == 42
        assert policy.attempts_made == 1
        assert policy.retries == 0

    def test_retries_then_succeeds(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky, retry_on=(OSError,)) == "ok"
        assert len(calls) == 3
        assert policy.retries == 2

    def test_exhaustion_raises_with_last_error(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        boom = OSError("disk gone")

        def always():
            raise boom

        with pytest.raises(RetryExhausted) as excinfo:
            policy.call(always, retry_on=(OSError,))
        assert excinfo.value.attempts == 2
        assert excinfo.value.last is boom

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        calls = []

        def bad():
            calls.append(1)
            raise KeyError("logic bug")

        with pytest.raises(KeyError):
            policy.call(bad, retry_on=(OSError,))
        assert len(calls) == 1

    def test_sleep_is_injectable_and_accounted(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.5,
                             backoff=2.0)
        slept = []

        def flaky():
            if len(slept) < 2:
                raise OSError("transient")
            return True

        assert policy.call(flaky, retry_on=(OSError,),
                           sleep=slept.append)
        assert slept == pytest.approx([0.5, 1.0])
        assert policy.total_wait_s == pytest.approx(1.5)
