#!/usr/bin/env python3
"""Quickstart: one passive-light link, end to end.

Builds the paper's outdoor configuration — the sun as the emitter, an
aluminium-tape/black-napkin tag moving at 18 km/h, and a 5 mm LED used
as the receiver — then transmits a payload and decodes it from the
disturbed reflected light.

Run:  python examples/quickstart.py
"""

from repro import LedReceiver, Packet, PassiveLink, ReceiverFrontEnd, Sun
from repro.analysis.reporting import format_series
from repro.optics.materials import TARMAC


def main() -> None:
    link = PassiveLink(
        source=Sun(ground_lux=6200.0),          # cloudy noon, Section 5.3
        frontend=ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=11),
        receiver_height_m=0.75,
        ground=TARMAC,
        seed=11,
    )

    budget = link.link_budget(Packet.from_bitstring("10",
                                                    symbol_width_m=0.1))
    print("Link budget:")
    print(f"  ambient noise floor : {budget.ambient_lux:8.0f} lux")
    print(f"  HIGH-strip signal   : {budget.high_signal_lux:8.1f} lux")
    print(f"  LOW-strip signal    : {budget.low_signal_lux:8.1f} lux")
    print(f"  saturation headroom : {budget.saturation_headroom:8.2f}x")
    print(f"  estimated SNR       : {budget.estimated_snr:8.1f}")
    print(f"  feasible            : {budget.feasible()}")
    print()

    report = link.transmit("10", speed_mps=5.0, symbol_width_m=0.1)
    print(f"sent bits    : {report.sent_bits}")
    print(f"decoded bits : {report.decoded_bits}")
    print(f"success      : {report.success}")
    print(f"symbol rate  : {report.symbol_rate_sps:.0f} symbols/s")
    print()

    trace = report.trace.normalized()
    times = trace.times()
    step = max(1, len(trace) // 40)
    print(format_series(times[::step].tolist(),
                        trace.samples[::step].tolist(),
                        "time (s)", "normalized RSS"))


if __name__ == "__main__":
    main()
