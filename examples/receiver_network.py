#!/usr/bin/env python3
"""Networked receivers end to end: nodes, fusion, tracking, the sweep.

Three acts:

1. **Hand-built network** — three `ReceiverNode`s along a sunny road,
   each capturing its *own* trace of the same pass; the network fuses
   the payload reports and estimates the object's speed.
2. **Corridor sweep** — the `corridor` scenario family (2-5 fused
   receivers per pass at the RX-LED saturation cliff) through the
   engine with caching; fusion columns come with the summary.
3. **The Section 6 improvement curve** — `sweep_fusion_gain` replays
   the same noise-stressed passes at 1..5 receivers and tabulates the
   fused decode rate against the single-receiver baseline.

Run:  python examples/receiver_network.py [--workers N] [--cache-dir DIR]

The same sweep from the shell::

    repro-engine sweep --scenario corridor --count 60 \\
        --workers 8 --cache-dir .engine-cache
"""

import argparse
import dataclasses
import os

from repro.analysis.sweeps import sweep_fusion_gain
from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.engine import (
    BatchRunner,
    ResultCache,
    ScenarioSpec,
    build_network,
    build_scene,
    summarize,
)
from repro.scenarios import expand_family

CORRIDOR_PASS = ScenarioSpec(
    source="sun", detector="led", cap=False, ground="tarmac",
    bits="10", symbol_width_m=0.1, speed_mps=5.0,
    receiver_height_m=0.25, start_position_m=-1.5,
    sample_rate_hz=2000.0, ground_lux=450.0, seed=7,
    n_receivers=3, receiver_spacing_m=1.0,
)


def act_one() -> None:
    print("=== 1. One pass, three receivers, by hand ===")
    spec = CORRIDOR_PASS.resolve()
    scene = build_scene(spec)
    network = build_network(spec)
    for node in network.nodes:
        node_scene = dataclasses.replace(scene,
                                         receiver_x_m=node.position_m)
        sim = ChannelSimulator(
            node_scene, node.frontend,
            SimulatorConfig(sample_rate_hz=spec.sample_rate_hz,
                            include_noise=spec.include_noise,
                            seed=node.frontend.seed))
        detection = node.observe(sim.capture_pass(), n_data_symbols=4)
        network.record(detection)
        print(f"  {node.node_id} @ {node.position_m:.1f} m: "
              f"bits={detection.bits!r} conf={detection.confidence:.2f} "
              f"t={detection.timestamp_s:.3f}s "
              f"({detection.timestamp_source})")
    for fused in network.fuse_at("rx0", spec.speed_mps):
        print(f"  fused: {fused.bits!r} agreement={fused.agreement:.2f} "
              f"({fused.n_decoded}/{fused.n_reports} decoded)")
    for track in network.track_at("rx0", spec.speed_mps):
        print(f"  track: {track.speed_mps:.2f} m/s over "
              f"{track.n_nodes} nodes "
              f"(true {spec.speed_mps:.2f} m/s)")


def act_two(workers: int, cache_dir: str) -> None:
    print("\n=== 2. Corridor sweep through the engine ===")
    specs = expand_family("corridor", count=60, seed=0)
    runner = BatchRunner(workers=workers, cache=ResultCache(cache_dir))
    result = runner.run(specs)
    print(result.stats.summary())
    print(summarize(result.records))


def act_three(workers: int, cache_dir: str) -> None:
    print("\n=== 3. The Section 6 improvement curve ===")
    runner = BatchRunner(workers=workers, cache=ResultCache(cache_dir))
    sweep = sweep_fusion_gain(n_receivers=(1, 2, 3, 4, 5), count=60,
                              seed=0, runner=runner)
    print(sweep.render())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int,
                        default=max(1, os.cpu_count() or 1))
    parser.add_argument("--cache-dir", default=".engine-cache")
    args = parser.parse_args()
    act_one()
    act_two(args.workers, args.cache_dir)
    act_three(args.workers, args.cache_dir)


if __name__ == "__main__":
    main()
