#!/usr/bin/env python3
"""The streaming-decode runtime end to end: one session to a fleet.

Three acts:

1. **Single session** — capture one outdoor pass, replay it
   chunk-by-chunk through a `StreamDecoder`, and watch the event
   stream (onset -> first bit -> verdict) with its sample-clock
   latencies; verify the verdict is byte-identical to the offline
   decoder's at several chunk sizes (the parity guarantee).
2. **32 concurrent sessions** — the asyncio `SessionMux` drives 32
   live sessions with bounded ingest queues (backpressure) and
   per-session throughput stats.
3. **Fusion** — the sessions' verdicts feed the `repro.net` fusion
   layer: a confidence-weighted cross-session vote recovers the
   payload even when individual sessions fail.

Run:  python examples/streaming_replay.py [--sessions N] [--chunk C]

The same replay from the shell::

    repro-engine stream --set source=sun --set detector=led \\
        --set cap=false --set ground=tarmac --set bits=1001 \\
        --sessions 32 --count 32 --chunk 64
"""

import argparse
import time

from repro.core.decoder import AdaptiveThresholdDecoder
from repro.engine import ScenarioSpec, build_simulator
from repro.stream import replay_trace, replay_traces

OUTDOOR = ScenarioSpec(source="sun", detector="led", cap=False,
                       ground="tarmac", bits="1001", symbol_width_m=0.1,
                       speed_mps=5.0, receiver_height_m=0.25,
                       start_position_m=-1.5, sample_rate_hz=2000.0,
                       ground_lux=450.0)


def act_one_single_session(chunk: int) -> None:
    print("=== Act 1: one streaming session " + "=" * 30)
    spec = OUTDOOR.replace(seed=3).resolve()
    trace = build_simulator(spec).capture_pass()
    offline = AdaptiveThresholdDecoder().decode(trace, n_data_symbols=8)

    replay = replay_trace(trace, chunk, n_data_symbols=8)
    print(f"captured {len(trace)} samples @ {trace.sample_rate_hz:.0f} Hz; "
          f"replayed in {replay.n_chunks} chunks of {chunk}")
    for event in replay.events:
        print(f"  {event.kind:>9s} @ stream t={event.stream_time_s:.3f}s "
              f"(signal t={event.signal_time_s:.3f}s, "
              f"latency {event.latency_s * 1e3:+.1f} ms) "
              f"bits={event.bits!r}")

    print("parity across chunk sizes (offline verdict: "
          f"{offline.bit_string()!r}):")
    for size in (1, 7, 64, len(trace)):
        verdict = replay_trace(trace, size, n_data_symbols=8).verdict
        assert verdict.bits == offline.bit_string()
        print(f"  chunk {size:>5d} -> {verdict.bits!r}  (identical)")


def act_two_concurrent_sessions(sessions: int, chunk: int):
    print(f"\n=== Act 2: {sessions} concurrent sessions " + "=" * 22)
    feeds = {}
    for i in range(sessions):
        spec = OUTDOOR.replace(seed=i).resolve()
        trace = build_simulator(spec).capture_pass()
        feeds[f"rx{i:02d}"] = (trace, 8, None)
    started = time.perf_counter()
    mux = replay_traces(feeds, chunk_size=chunk, queue_chunks=4)
    wall = time.perf_counter() - started

    decoded = sum(s.verdict().bits == "1001"
                  for s in mux.sessions.values())
    samples = sum(s.stats.n_samples for s in mux.sessions.values())
    waits = sum(s.stats.backpressure_waits for s in mux.sessions.values())
    onsets = sorted(s.decoder.latency("onset")
                    for s in mux.sessions.values()
                    if s.decoder.latency("onset") is not None)
    onset_p50 = (f"{onsets[len(onsets) // 2] * 1e3:.1f} ms" if onsets
                 else "n/a (no session locked on)")
    print(f"{sessions} sessions, {samples} samples in {wall:.2f}s wall "
          f"({samples / wall / 1e3:.0f} ksamples/s aggregate)")
    print(f"decoded {decoded}/{sessions}; onset latency p50 {onset_p50}; "
          f"{waits} backpressure waits")
    return mux


def act_three_fusion(mux) -> None:
    print("\n=== Act 3: cross-session fusion " + "=" * 30)
    for fused in mux.fused():
        print(f"fused verdict {fused.bits!r}: support {fused.support:.2f} "
              f"from {fused.n_decoded}/{fused.n_reports} decoded sessions, "
              f"agreement {fused.agreement:.2f}")
        if fused.n_decoded:
            assert fused.bits == "1001"
        else:
            print("  (no session decoded this run — try more sessions; "
                  "the vote needs at least one payload report)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--chunk", type=int, default=64)
    args = parser.parse_args()

    act_one_single_session(args.chunk)
    mux = act_two_concurrent_sessions(args.sessions, args.chunk)
    act_three_fusion(mux)


if __name__ == "__main__":
    main()
