#!/usr/bin/env python3
"""A 500-scenario outdoor grid through the execution engine.

Sweeps the Fig. 15/17 outdoor link — sun, bare tag at 18 km/h, RX-LED —
over 5 noise floors x 4 receiver heights x 5 symbol widths x 5 noise
seeds = 500 scenarios, executed as one batch across every core, with
results cached on disk so a re-run answers in milliseconds.

Run:  python examples/engine_sweep.py [--workers N] [--cache-dir DIR]

The same sweep from the shell::

    repro-engine sweep \\
        --set source=sun --set detector=led --set cap=false \\
        --set ground=tarmac --set bits=00 --set speed_mps=5.0 \\
        --set start_position_m=-1.5 --set sample_rate_hz=2000 \\
        --axis ground_lux=100,450,1000,3700,6200 \\
        --axis receiver_height_m=0.25,0.5,0.75,1.0 \\
        --axis symbol_width_m=0.06,0.08,0.1,0.12,0.14 \\
        --axis seed=2,3,4,5,6 \\
        --workers 8 --cache-dir .engine-cache --group-by ground_lux
"""

import argparse
import os

from repro.engine import (
    BatchRunner,
    ResultCache,
    ScenarioSpec,
    expand_grid,
    group_table,
    summarize,
)

AXES = {
    "ground_lux": [100.0, 450.0, 1000.0, 3700.0, 6200.0],
    "receiver_height_m": [0.25, 0.5, 0.75, 1.0],
    "symbol_width_m": [0.06, 0.08, 0.1, 0.12, 0.14],
    "seed": [2, 3, 4, 5, 6],
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int,
                        default=max(1, os.cpu_count() or 1))
    parser.add_argument("--cache-dir", default=".engine-cache")
    args = parser.parse_args()

    template = ScenarioSpec(
        source="sun", detector="led", cap=False, ground="tarmac",
        bits="00", speed_mps=5.0, start_position_m=-1.5,
        sample_rate_hz=2000.0)
    specs = expand_grid(template, AXES)
    print(f"expanded {len(specs)} scenarios; "
          f"running on {args.workers} workers "
          f"(cache: {args.cache_dir})")

    runner = BatchRunner(workers=args.workers,
                         cache=ResultCache(args.cache_dir))
    result = runner.run(specs)
    print(f"done in {result.stats.elapsed_s:.1f}s "
          f"({result.stats.cache_hits} cached, "
          f"{result.stats.executed} simulated)")
    print()
    print(summarize(result.records))
    print()
    print(group_table(result.records, "ground_lux"))
    print()
    print(group_table(result.records, "receiver_height_m"))
    print()
    print(group_table(result.records, "symbol_width_m"))


if __name__ == "__main__":
    main()
