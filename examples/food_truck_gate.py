#!/usr/bin/env python3
"""The paper's Fig. 1 scenario: a gate reading codes off food trucks.

A single photodiode box watches a gate.  Trucks wear reflective tags
encoding their cargo type; the gate's receiver is chosen automatically
for the ambient conditions (Section 4.4), decodes each pass, and falls
back to FFT collision analysis when two trucks squeeze through together
(Section 4.3).

Run:  python examples/food_truck_gate.py
"""

from repro import (
    ChannelSimulator,
    ConstantSpeed,
    DualReceiverController,
    MovingObject,
    Packet,
    PassiveScene,
    SimulatorConfig,
    Sun,
    TagSurface,
)
from repro.core.collision import CollisionAnalyzer
from repro.optics.materials import TARMAC

TRUCK_CODES = {
    "00": "taco truck",
    "01": "ice-cream van",
    "10": "coffee cart",
    "11": "noodle wagon",
}

GATE_HEIGHT_M = 0.75
TRUCK_SPEED_MPS = 3.0
SYMBOL_WIDTH_M = 0.12
AMBIENT_LUX = 5500.0


def make_scene(codes_and_shares, seed, speed_mps=TRUCK_SPEED_MPS):
    """One gate pass; several trucks may share the FoV laterally."""
    objects = []
    for bits, share, width in codes_and_shares:
        packet = Packet.from_bitstring(bits, symbol_width_m=width)
        tag = TagSurface.from_packet(packet, label=TRUCK_CODES[bits])
        objects.append(MovingObject(tag,
                                    ConstantSpeed(speed_mps, -1.8),
                                    TRUCK_CODES[bits], fov_share=share))
    return PassiveScene(source=Sun(ground_lux=AMBIENT_LUX),
                        receiver_height_m=GATE_HEIGHT_M, ground=TARMAC,
                        objects=objects)


def main() -> None:
    # Pick the receiver for today's light (Section 4.4).
    controller = DualReceiverController()
    choice = controller.select(AMBIENT_LUX)
    print(f"ambient: {AMBIENT_LUX:.0f} lux -> receiver: {choice.name} "
          f"(headroom {choice.headroom:.1f}x)")
    print()

    analyzer = CollisionAnalyzer()

    # --- Single trucks passing the gate ------------------------------
    print("Single passes:")
    for seed, bits in enumerate(TRUCK_CODES, start=20):
        frontend = choice.frontend
        frontend.seed = seed
        sim = ChannelSimulator(
            make_scene([(bits, 1.0, SYMBOL_WIDTH_M)], seed), frontend,
            SimulatorConfig(seed=seed))
        report = analyzer.analyze(sim.capture_pass(),
                                  n_data_symbols=2 * len(bits))
        decoded = (report.decode_result.bit_string()
                   if report.decode_result else "")
        label = TRUCK_CODES.get(decoded, "???")
        status = "OK " if decoded == bits else "ERR"
        print(f"  [{status}] sent {bits} ({TRUCK_CODES[bits]:>14}) -> "
              f"decoded {decoded or '--'} ({label})")
    print()

    # --- Two trucks side by side: a 'packet collision' ---------------
    # A low-frequency packet (wide strips) and a high-frequency one
    # (narrow strips) creep through together at walking pace: the
    # symbol rates are ~2.5 and ~5 Hz (Fig. 10's setup).
    print("Two trucks abreast (equal FoV share):")
    frontend = choice.frontend
    frontend.seed = 31
    sim = ChannelSimulator(
        make_scene([("00", 0.5, 0.20), ("11", 0.5, 0.10)], 31,
                   speed_mps=1.0),
        frontend, SimulatorConfig(seed=31))
    report = analyzer.analyze(sim.capture_pass())
    print(f"  time-domain decodable: {report.time_domain_decodable}")
    print(f"  spectral components  : "
          f"{[f'{f:.2f} Hz' for f in report.detected_frequencies_hz]}")
    if report.collision_detected:
        print("  -> collision detected: two distinct objects under the "
              "gate (Fig. 10, Case 3)")


if __name__ == "__main__":
    main()
