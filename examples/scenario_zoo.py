#!/usr/bin/env python3
"""Three composed scenario families through the engine cache.

Draws 60 scenarios from each of three compositions —

* ``convoy*fog``                 — convoys pushing through fog banks,
* ``highway*night``              — fast passes under night-time ambient,
* ``fleet_mix*variable_speed``   — a mixed fleet with mid-packet speed
  changes and speed jitter (the Fig. 8 distortion regime at scale)

— and runs all 180 as one parallel batch with the on-disk result cache,
so a second invocation answers from cache in milliseconds.

Run:  python examples/scenario_zoo.py [--workers N] [--cache-dir DIR]

The same sweeps from the shell::

    repro-engine scenarios
    repro-engine sweep --scenario convoy,fog --count 60 \\
        --workers 8 --cache-dir .engine-cache --group-by car
"""

import argparse
import os

from repro.engine import BatchRunner, ResultCache, group_table, summarize
from repro.scenarios import expand_family

COMPOSITIONS = ("convoy*fog", "highway*night", "fleet_mix*variable_speed")
COUNT = 60


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int,
                        default=max(1, os.cpu_count() or 1))
    parser.add_argument("--cache-dir", default=".engine-cache")
    args = parser.parse_args()

    batches = {expr: expand_family(expr, count=COUNT, seed=0)
               for expr in COMPOSITIONS}
    specs = [spec for family in batches.values() for spec in family]
    print(f"expanded {len(specs)} scenarios from "
          f"{len(COMPOSITIONS)} compositions; "
          f"running on {args.workers} workers (cache: {args.cache_dir})")

    runner = BatchRunner(workers=args.workers,
                         cache=ResultCache(args.cache_dir))
    result = runner.run(specs)
    print(f"done in {result.stats.elapsed_s:.1f}s "
          f"({result.stats.cache_hits} cached, "
          f"{result.stats.executed} simulated)")

    offset = 0
    for expr, family_specs in batches.items():
        records = result.records[offset:offset + len(family_specs)]
        offset += len(family_specs)
        print()
        print(f"=== {expr} ===")
        print(summarize(records))
        print(group_table(records, "motion" if "variable_speed" in expr
                          else "car"))


if __name__ == "__main__":
    main()
