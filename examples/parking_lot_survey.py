#!/usr/bin/env python3
"""The Section 5 outdoor application plus the Section 6 network.

Three sun-powered RX-LED poles along a parking-lot lane watch passing
cars.  For each pass the system:

1. recognises the car model from its bare optical signature
   (Figs. 13-14);
2. uses the hood-peak/windshield-valley *long-duration preamble* to
   decode the roof tag (Section 5.2's two-phase decoding);
3. shares detections across the receiver network, fusing the payload
   vote and estimating the car's speed from inter-pole timing
   (the Section 6 networking extension).

Run:  python examples/parking_lot_survey.py
"""

from repro import (
    ChannelSimulator,
    ConstantSpeed,
    LedReceiver,
    MovingObject,
    Packet,
    PassiveScene,
    ReceiverFrontEnd,
    SimulatorConfig,
    Sun,
)
from repro.net.node import ReceiverNode
from repro.net.tracker import ReceiverNetwork
from repro.optics.materials import TARMAC
from repro.vehicles import (
    TaggedCar,
    TwoPhaseDecoder,
    bmw_3_series,
    extract_signature,
    match_car,
    volvo_v40,
)

POLE_POSITIONS_M = [0.0, 15.0, 30.0]
POLE_HEIGHT_M = 0.75
NOISE_FLOOR_LUX = 6200.0
CAR_SPEED_MPS = 5.0           # 18 km/h
FLEET_CODES = {"00": "visitor", "10": "staff", "01": "delivery"}


def car_pass(surface, name, pole_offset_m, seed):
    scene = PassiveScene(
        source=Sun(ground_lux=NOISE_FLOOR_LUX),
        receiver_height_m=POLE_HEIGHT_M, ground=TARMAC,
        objects=[MovingObject(surface,
                              ConstantSpeed(CAR_SPEED_MPS,
                                            -1.5 - pole_offset_m),
                              name)])
    frontend = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=seed)
    sim = ChannelSimulator(scene, frontend,
                           SimulatorConfig(sample_rate_hz=2000.0, seed=seed))
    return sim.capture_pass()


def main() -> None:
    candidates = [volvo_v40(), bmw_3_series()]

    # --- Phase 1: identify bare cars by signature ---------------------
    print("Car identification from optical signatures (Figs. 13-14):")
    for seed, car in enumerate(candidates, start=70):
        trace = car_pass(car, car.model, 0.0, seed)
        signature = extract_signature(trace)
        matched = match_car(signature, candidates)
        print(f"  {car.model:>14}: pattern {signature.pattern} -> "
              f"{matched.model if matched else 'unknown'}")
    print()

    # --- Phase 2: tagged car through the networked poles --------------
    bits = "10"
    tagged = TaggedCar(car=volvo_v40(),
                       packet=Packet.from_bitstring(bits,
                                                    symbol_width_m=0.1))
    net = ReceiverNetwork()
    for i, pos in enumerate(POLE_POSITIONS_M):
        net.add_node(ReceiverNode(
            node_id=f"pole{i}", position_m=pos,
            frontend=ReceiverFrontEnd(detector=LedReceiver.red_5mm(),
                                      seed=80 + i),
            decoder=TwoPhaseDecoder()))
        if i > 0:
            net.connect(f"pole{i - 1}", f"pole{i}")

    decoder = TwoPhaseDecoder()
    print(f"A {tagged.car.model} with a '{bits}' roof tag "
          f"({FLEET_CODES[bits]}) drives the lane:")
    for i, pos in enumerate(POLE_POSITIONS_M):
        trace = car_pass(tagged.surface(), "tagged-car", pos, 80 + i)
        # Per-pole two-phase decode (long preamble, then Section 4.1).
        result = decoder.try_decode(trace, n_data_symbols=2 * len(bits))
        local_bits = result.bit_string() if result else "--"
        print(f"  pole{i} @ {pos:4.1f} m: decoded {local_bits}")
        net.record(net.node(f"pole{i}").observe(trace,
                                                n_data_symbols=2 * len(bits)))
    print()

    # --- Phase 3: the network's fused verdict -------------------------
    fused = net.fuse_at("pole0", expected_speed_mps=CAR_SPEED_MPS)
    tracks = net.track_at("pole0", expected_speed_mps=CAR_SPEED_MPS)
    for obs, track in zip(fused, tracks):
        role = FLEET_CODES.get(obs.bits, "unknown")
        print("Network verdict:")
        print(f"  code      : {obs.bits} ({role}), "
              f"{obs.n_decoded}/{obs.n_reports} poles decoded, "
              f"agreement {obs.agreement:.0%}")
        print(f"  speed     : {track.speed_mps:.2f} m/s "
              f"({track.speed_mps * 3.6:.1f} km/h)")
        print(f"  next pole : would pass x=45 m at "
              f"t={track.predicted_arrival_s(45.0):.2f} s")


if __name__ == "__main__":
    main()
