#!/usr/bin/env python3
"""Hospital trolleys under fluorescent ceiling lights.

The paper's intro: "Emergency, treatment, and housekeeping trolleys
could embed codes to inform their physical locations in a hospital."
This example runs the indoor channel of Fig. 7 — ceiling fluorescents
with 100 Hz AC ripple — and shows the two-tier receive strategy of
Section 4.2: threshold decoding for steadily pushed trolleys, DTW
classification for one that is pushed erratically (its speed doubles
mid-packet, like Fig. 8).  Codes come from a max-Hamming-distance
codebook so the classifier's confusions stay far apart.

Run:  python examples/hospital_trolleys.py
"""

from repro import (
    ChannelSimulator,
    ConstantSpeed,
    DtwClassifier,
    FluorescentCeiling,
    MovingObject,
    Packet,
    PassiveScene,
    Photodiode,
    ReceiverFrontEnd,
    SimulatorConfig,
    TagSurface,
)
from repro.channel.mobility import speed_doubling_profile
from repro.core.pipeline import PipelineStage, ReceiverPipeline
from repro.hardware.frontend import FovCap
from repro.hardware.photodiode import PdGain
from repro.tags.codebook import build_max_distance_codebook

CORRIDOR_HEIGHT_M = 0.2       # reader mounted low on the corridor wall
SYMBOL_WIDTH_M = 0.06
TROLLEY_SPEED_MPS = 0.25      # brisk walking push

#: 4 trolley classes from a 4-bit codebook with maximal separation.
CODEBOOK = build_max_distance_codebook(n_bits=4, n_codes=4)
TROLLEYS = {
    "".join(map(str, code)): name
    for code, name in zip(CODEBOOK.codes,
                          ("emergency", "treatment", "housekeeping",
                           "meal service"))
}


def reader_frontend(seed):
    """The corridor reader: capped PD at G2 (lit room, Fig. 11)."""
    return ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G2),
                            cap=FovCap.paper_cap(), seed=seed)


def trolley_pass(bits, motion, seed):
    packet = Packet.from_bitstring(bits, symbol_width_m=SYMBOL_WIDTH_M)
    tag = TagSurface.from_packet(packet, label=TROLLEYS[bits])
    scene = PassiveScene(
        source=FluorescentCeiling(ground_lux=300.0, height=2.3),
        receiver_height_m=CORRIDOR_HEIGHT_M,
        objects=[MovingObject(tag, motion, TROLLEYS[bits])])
    sim = ChannelSimulator(scene, reader_frontend(seed),
                           SimulatorConfig(sample_rate_hz=2000.0, seed=seed))
    return sim.capture_pass(), packet


def main() -> None:
    print(f"codebook: {CODEBOOK.size} codes of {CODEBOOK.n_bits} bits, "
          f"min Hamming distance {CODEBOOK.min_distance}")
    print()

    # Build the clean-template database from calibration passes.
    classifier = DtwClassifier()
    for bits in TROLLEYS:
        trace, _ = trolley_pass(
            bits, ConstantSpeed(TROLLEY_SPEED_MPS, -0.5), seed=40)
        classifier.add_template(bits, trace)
    pipeline = ReceiverPipeline(classifier=classifier)

    # --- Steady pushes: stage-2 threshold decoding -------------------
    print("Steady trolleys (threshold decoding):")
    for seed, bits in enumerate(TROLLEYS, start=50):
        trace, packet = trolley_pass(
            bits, ConstantSpeed(TROLLEY_SPEED_MPS, -0.5), seed=seed)
        outcome = pipeline.process(trace, n_data_symbols=2 * len(bits))
        status = "OK " if outcome.bits == bits else "ERR"
        print(f"  [{status}] {TROLLEYS[bits]:>13}: sent {bits} -> "
              f"{outcome.bits or '--'} via {outcome.stage.value}")
    print()

    # --- An erratic push: DTW classification (Section 4.2) ------------
    bits = list(TROLLEYS)[1]
    packet = Packet.from_bitstring(bits, symbol_width_m=SYMBOL_WIDTH_M)
    motion = speed_doubling_profile(packet.length_m, TROLLEY_SPEED_MPS, -0.5)
    trace, _ = trolley_pass(bits, motion, seed=60)
    outcome = classifier.classify(trace)
    distances = {k: round(v, 1) for k, v in outcome.distances.items()}
    print("Erratic trolley (speed doubles mid-packet, Fig. 8):")
    print(f"  DTW distances : {distances}")
    print(f"  classified as : {outcome.label} "
          f"({TROLLEYS[outcome.label]}), margin {outcome.margin:.2f}x")
    print(f"  correct       : {outcome.label == bits}")


if __name__ == "__main__":
    main()
