#!/usr/bin/env python3
"""Fault injection end to end: from a clean pass to a chaos frontier.

Three acts:

1. **One faulted pass** — run the same scenario clean and under a
   mixed fault plan (burst noise + saturation + chunk loss) and
   compare: same physics, same noise draw, corrupted capture.  Rerun
   the faulted spec to show the corruption is byte-deterministic.
2. **Chaos frontier** — scale the fault mix across an intensity
   ladder with `sweep_fault_intensity` and print decode rate vs
   corruption level: the measured degradation frontier.
3. **Resilience** — a pathological spec (an injected executor stall)
   in the middle of a healthy batch: the per-scenario timeout
   quarantines it into an `executor_error` record while every
   sibling completes untouched.

Run:  python examples/chaos_sweep.py [--count N] [--workers W]

The same frontier from the shell::

    repro-engine chaos --set source=sun --set detector=led \\
        --set cap=false --set ground=tarmac --set bits=00 \\
        --set symbol_width_m=0.1 --set speed_mps=5.0 \\
        --set receiver_height_m=0.25 --set start_position_m=-1.5 \\
        --set sample_rate_hz=2000 --count 24 \\
        --plan '{"burst_rate_hz": 10, "saturate_fraction": 0.4, \\
                 "chunk_drop": 0.15}' --intensity 0,0.25,0.5,0.75,1
"""

import argparse

from repro.engine import BatchRunner, ScenarioSpec
from repro.engine.executor import execute_scenario
from repro.engine.report import robustness_table
from repro.faults import FaultPlan, sweep_fault_intensity

OUTDOOR = ScenarioSpec(source="sun", detector="led", cap=False,
                       ground="tarmac", bits="00", symbol_width_m=0.1,
                       speed_mps=5.0, receiver_height_m=0.25,
                       start_position_m=-1.5, sample_rate_hz=2000.0,
                       ground_lux=450.0)

MIX = FaultPlan(burst_rate_hz=10.0, saturate_fraction=0.4,
                chunk_drop=0.15)


def act_one_faulted_pass() -> None:
    print("=== Act 1: one faulted pass " + "=" * 34)
    clean_spec = OUTDOOR.replace(seed=3)
    faulted_spec = clean_spec.replace(fault_plan=MIX)
    clean = execute_scenario(clean_spec)
    faulted = execute_scenario(faulted_spec)
    print(f"clean:   stage={clean.stage:<18s} ber={clean.ber:.3f}")
    print(f"faulted: stage={faulted.stage:<18s} ber={faulted.ber:.3f} "
          f"events={faulted.fault_events}")
    again = execute_scenario(faulted_spec)
    assert again.canonical_json() == faulted.canonical_json()
    print("rerun of the faulted spec is byte-identical (deterministic "
          "corruption)\n")


def act_two_chaos_frontier(count: int, workers: int) -> None:
    print("=== Act 2: the chaos frontier " + "=" * 32)
    specs = [OUTDOOR.replace(seed=k) for k in range(count)]
    with BatchRunner(workers=workers) as runner:
        sweep = sweep_fault_intensity(
            specs, MIX, [0.0, 0.25, 0.5, 0.75, 1.0], runner)
    print(sweep.render())
    print(f"degradation first->last rung: {sweep.degradation():+.2f} "
          "decode rate\n")
    records = [r for point in sweep.points for r in point.records]
    print(robustness_table(records, "ground_lux"))
    print()


def act_three_timeout_quarantine(workers: int) -> None:
    print("=== Act 3: timeout + quarantine " + "=" * 30)
    stuck = OUTDOOR.replace(seed=99,
                            fault_plan=FaultPlan(exec_sleep_s=30.0))
    healthy = [OUTDOOR.replace(seed=k) for k in range(4)]
    specs = healthy[:2] + [stuck] + healthy[2:]
    with BatchRunner(workers=workers, scenario_timeout_s=3.0) as runner:
        result = runner.run(specs)
    print(result.stats.summary())
    for record in result.records:
        tag = record.error or record.stage
        print(f"  seed={record.seed:>2d}  {tag}")
    assert result.records[2].stage == "executor_error"
    assert all(r.stage != "executor_error"
               for i, r in enumerate(result.records) if i != 2)
    print("the stuck spec was quarantined; every sibling executed\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=12,
                        help="scenarios per frontier rung (default: 12)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (default: 2)")
    args = parser.parse_args()
    act_one_faulted_pass()
    act_two_chaos_frontier(args.count, args.workers)
    act_three_timeout_quarantine(args.workers)


if __name__ == "__main__":
    main()
