"""Frequency-domain analysis (Section 4.3, 'Packet' collisions).

When two packets share the FoV equally, the time-domain signal is an
undecodable superposition — but the FFT still reveals "the presence of
two different types of object" as two distinct spectral peaks
(Fig. 10(f)).  This module computes the paper's ``P(f)`` power spectrum
and extracts dominant symbol-rate peaks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from .filters import detrend

__all__ = ["PowerSpectrum", "power_spectrum", "dominant_frequencies",
           "symbol_fundamental_hz"]


@dataclass
class PowerSpectrum:
    """A one-sided power spectrum.

    Attributes:
        frequencies_hz: frequency bins (>= 0).
        power: spectral magnitude per bin (the paper's ``P(f)``).
    """

    frequencies_hz: np.ndarray
    power: np.ndarray

    def __post_init__(self) -> None:
        self.frequencies_hz = np.asarray(self.frequencies_hz, dtype=float)
        self.power = np.asarray(self.power, dtype=float)
        if self.frequencies_hz.shape != self.power.shape:
            raise ValueError("frequency and power arrays must match")

    def band(self, f_lo: float, f_hi: float) -> "PowerSpectrum":
        """Restrict to a frequency band."""
        if f_hi <= f_lo:
            raise ValueError("f_hi must exceed f_lo")
        mask = (self.frequencies_hz >= f_lo) & (self.frequencies_hz <= f_hi)
        return PowerSpectrum(self.frequencies_hz[mask], self.power[mask])

    def peak_frequency(self) -> float:
        """Frequency of the strongest bin."""
        if len(self.power) == 0:
            raise ValueError("empty spectrum")
        return float(self.frequencies_hz[int(np.argmax(self.power))])


def symbol_fundamental_hz(symbol_width_m: float, speed_mps: float) -> float:
    """Fundamental frequency of an alternating HL pattern.

    A HIGH/LOW alternation with symbol width ``w`` moving at speed ``v``
    completes one period every two symbols: ``f0 = v / (2 w)``.
    """
    if symbol_width_m <= 0.0 or speed_mps <= 0.0:
        raise ValueError("symbol width and speed must be positive")
    return speed_mps / (2.0 * symbol_width_m)


def power_spectrum(samples: np.ndarray, sample_rate_hz: float,
                   detrend_window_s: float | None = 1.0,
                   zero_pad_factor: int = 4) -> PowerSpectrum:
    """Magnitude spectrum of an RSS trace, baseline-removed and windowed.

    Args:
        samples: RSS samples.
        sample_rate_hz: sampling rate.
        detrend_window_s: moving-average baseline width to remove before
            the FFT (None disables; the paper's spectra have no DC spike
            so their pipeline clearly removes the baseline).
        zero_pad_factor: FFT zero padding for finer frequency bins.
    """
    x = np.asarray(samples, dtype=float)
    if sample_rate_hz <= 0.0:
        raise ValueError("sample rate must be positive")
    if len(x) < 8:
        raise ValueError(f"need at least 8 samples, got {len(x)}")
    if zero_pad_factor < 1:
        raise ValueError("zero pad factor must be >= 1")
    if detrend_window_s is not None:
        window = max(3, int(round(detrend_window_s * sample_rate_hz)))
        x = detrend(x, window)
    x = x * np.hanning(len(x))
    n_fft = int(2 ** np.ceil(np.log2(len(x) * zero_pad_factor)))
    spectrum = np.abs(np.fft.rfft(x, n=n_fft))
    freqs = np.fft.rfftfreq(n_fft, d=1.0 / sample_rate_hz)
    return PowerSpectrum(freqs, spectrum)


def dominant_frequencies(spectrum: PowerSpectrum, max_peaks: int = 4,
                         min_relative_height: float = 0.35,
                         min_separation_hz: float = 0.8,
                         f_min_hz: float = 0.3,
                         min_snr_vs_median: float | None = None) -> list[float]:
    """Distinct dominant spectral peaks, strongest first.

    Args:
        spectrum: input spectrum.
        max_peaks: cap on the number of returned peaks.
        min_relative_height: peaks below this fraction of the strongest
            peak are ignored.
        min_separation_hz: peaks closer than this to an already-accepted
            peak are treated as the same component (harmonic sidelobes).
        f_min_hz: ignore the near-DC region.
        min_snr_vs_median: when set, every accepted peak must also stand
            at least this factor above the band's median power — this is
            what separates a genuine symbol-rate line from the random
            crests of a white-noise spectrum.

    Returns:
        Peak frequencies in Hz, ordered by descending power.
    """
    if max_peaks < 1:
        raise ValueError("max_peaks must be >= 1")
    banded = spectrum.band(f_min_hz, float(spectrum.frequencies_hz[-1]))
    if len(banded.power) < 3:
        return []
    height = min_relative_height * float(banded.power.max())
    if min_snr_vs_median is not None:
        floor = float(np.median(banded.power))
        height = max(height, min_snr_vs_median * floor)
    idx, props = sp_signal.find_peaks(banded.power, height=height)
    if len(idx) == 0:
        return []
    order = np.argsort(props["peak_heights"])[::-1]
    chosen: list[float] = []
    for k in order:
        f = float(banded.frequencies_hz[idx[k]])
        if any(abs(f - c) < min_separation_hz for c in chosen):
            continue
        chosen.append(f)
        if len(chosen) >= max_peaks:
            break
    return chosen
