"""Smoothing and detrending filters used by the decoders.

The receiver's RSS stream carries 100 Hz lamp ripple (Fig. 7), detector
noise and slow baseline drift (clouds, car body underneath).  The
decoders pre-condition the signal with the small set of filters here —
nothing exotic, because the paper's receiver is a constrained embedded
platform.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

__all__ = [
    "moving_average",
    "detrend",
    "lowpass",
    "notch_ac_ripple",
    "median_filter",
]


def moving_average(samples: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge-replication padding.

    Args:
        samples: input signal.
        window: window length in samples, >= 1 (even lengths are bumped
            to the next odd number so the filter stays centred).
    """
    x = np.asarray(samples, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or len(x) == 0:
        return x.copy()
    if window % 2 == 0:
        window += 1
    window = min(window, 2 * len(x) - 1)
    half = window // 2
    padded = np.concatenate([np.full(half, x[0]), x, np.full(half, x[-1])])
    kernel = np.ones(window) / window
    return np.convolve(padded, kernel, mode="valid")


def detrend(samples: np.ndarray, window: int) -> np.ndarray:
    """Remove a slow baseline estimated by a wide moving average.

    Used before FFT analysis so the spectrum is not dominated by the
    packet envelope (Section 4.3).
    """
    x = np.asarray(samples, dtype=float)
    if len(x) == 0:
        return x.copy()
    baseline = moving_average(x, window)
    return x - baseline


def lowpass(samples: np.ndarray, cutoff_hz: float, sample_rate_hz: float,
            order: int = 4) -> np.ndarray:
    """Zero-phase Butterworth low-pass (filtfilt).

    Zero-phase filtering keeps symbol edges where they are, which
    matters because the decoder's tau_t windows are anchored on peak
    timestamps.
    """
    if cutoff_hz <= 0.0:
        raise ValueError(f"cutoff must be positive, got {cutoff_hz}")
    if sample_rate_hz <= 0.0:
        raise ValueError("sample rate must be positive")
    x = np.asarray(samples, dtype=float)
    if cutoff_hz >= sample_rate_hz / 2.0:
        return x.copy()
    if len(x) < 3 * (order + 1):
        return x.copy()
    b, a = sp_signal.butter(order, cutoff_hz / (sample_rate_hz / 2.0))
    return sp_signal.filtfilt(b, a, x)


def notch_ac_ripple(samples: np.ndarray, sample_rate_hz: float,
                    ripple_hz: float = 100.0, quality: float = 8.0) -> np.ndarray:
    """Remove the lamp's AC ripple with an IIR notch.

    Fig. 7's "thicker lines" come from the 100 Hz rectified-mains ripple
    of fluorescent lights; notching it recovers the clean symbol
    envelope when the symbol rate is well below the ripple frequency.
    """
    if sample_rate_hz <= 0.0:
        raise ValueError("sample rate must be positive")
    if ripple_hz <= 0.0 or ripple_hz >= sample_rate_hz / 2.0:
        return np.asarray(samples, dtype=float).copy()
    x = np.asarray(samples, dtype=float)
    if len(x) < 12:
        return x.copy()
    b, a = sp_signal.iirnotch(ripple_hz, quality, fs=sample_rate_hz)
    return sp_signal.filtfilt(b, a, x)


def median_filter(samples: np.ndarray, window: int) -> np.ndarray:
    """Median filter for impulse (glint) rejection.

    Specular glints off crinkled tape produce sample-length spikes;
    a short median removes them without smearing symbol edges.
    """
    x = np.asarray(samples, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or len(x) == 0:
        return x.copy()
    if window % 2 == 0:
        window += 1
    window = min(window, len(x) if len(x) % 2 == 1 else len(x) - 1)
    if window < 3:
        return x.copy()
    return sp_signal.medfilt(x, kernel_size=window)
