"""Peak and valley detection for preamble acquisition.

The adaptive decoder (Section 4.1) anchors its thresholds on "the first
two peaks and the first valley present in the preamble, points A, B and
C in Fig. 5(a)".  This module finds prominence-filtered extrema robustly
on noisy RSS traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

try:  # pragma: no cover - exercised whenever scipy ships the module
    from scipy.signal import _peak_finding_utils as _pfu
except Exception:  # pragma: no cover - older/newer scipy layouts
    _pfu = None

__all__ = ["Extremum", "find_peaks_and_valleys", "first_preamble_points"]


def _prominent_peaks(x: np.ndarray, prominence: float,
                     distance: int | None) -> np.ndarray:
    """Indices of peaks with at least ``prominence``, like ``find_peaks``.

    ``sp_signal.find_peaks`` spends most of its time in Python argument
    plumbing; for the common prominence-only case this calls the same
    two C routines it wraps (local maxima, then prominences with
    unrestricted ``wlen``) directly.  The filter ``proms >= prominence``
    is the exact bound ``_select_by_property`` applies, so the selected
    indices are identical; any scipy layout change falls back to the
    public wrapper.
    """
    if _pfu is None or distance is not None:
        idx, _ = sp_signal.find_peaks(x, prominence=prominence,
                                      distance=distance)
        return idx
    try:
        peaks, _, _ = _pfu._local_maxima_1d(
            np.ascontiguousarray(x, dtype=np.float64))
        if len(peaks) == 0:
            return peaks
        proms, _, _ = _pfu._peak_prominences(
            np.ascontiguousarray(x, dtype=np.float64), peaks, -1)
    except Exception:  # pragma: no cover - private-API drift
        idx, _ = sp_signal.find_peaks(x, prominence=prominence,
                                      distance=distance)
        return idx
    return peaks[proms >= prominence]


@dataclass(frozen=True)
class Extremum:
    """One detected signal extremum.

    Attributes:
        index: sample index.
        time_s: timestamp.
        value: signal value at the extremum.
        kind: ``"peak"`` or ``"valley"``.
    """

    index: int
    time_s: float
    value: float
    kind: str


def find_peaks_and_valleys(samples: np.ndarray, sample_rate_hz: float,
                           start_time_s: float = 0.0,
                           min_prominence: float | None = None,
                           min_distance_s: float | None = None,
                           ) -> list[Extremum]:
    """All prominent peaks and valleys, in time order.

    Args:
        samples: the (usually smoothed) RSS trace.
        sample_rate_hz: sampling rate.
        start_time_s: timestamp of the first sample.
        min_prominence: minimum prominence; defaults to 20 % of the
            signal's peak-to-peak range (adaptive, per the paper's "no
            a-priori calibration" requirement).
        min_distance_s: minimum spacing between same-kind extrema.
    """
    x = np.asarray(samples, dtype=float)
    if sample_rate_hz <= 0.0:
        raise ValueError("sample rate must be positive")
    if len(x) < 3:
        # Too short to contain an interior extremum — the degenerate
        # windows streaming acquisition probes must read as "no
        # extrema", never raise.
        return []
    span = float(x.max() - x.min())
    if span == 0.0 or not np.isfinite(span):
        # All-constant (or non-finite) windows have no usable extrema;
        # a NaN/inf span would otherwise poison the prominence
        # threshold handed to scipy.
        return []
    prominence = (min_prominence if min_prominence is not None
                  else 0.2 * span)
    distance = None
    if min_distance_s is not None:
        distance = max(1, int(round(min_distance_s * sample_rate_hz)))

    peak_idx = _prominent_peaks(x, prominence, distance)
    valley_idx = _prominent_peaks(-x, prominence, distance)
    out = [Extremum(int(i), start_time_s + i / sample_rate_hz,
                    float(x[i]), "peak") for i in peak_idx]
    out += [Extremum(int(i), start_time_s + i / sample_rate_hz,
                     float(x[i]), "valley") for i in valley_idx]
    out.sort(key=lambda e: e.index)
    return out


def first_preamble_points(extrema: list[Extremum],
                          ) -> tuple[Extremum, Extremum, Extremum] | None:
    """Locate points A (peak), B (valley), C (peak) of the preamble.

    Scans for the first peak -> valley -> peak triple in time order,
    skipping any leading valleys (the trace may start on the dark ground
    before the first HIGH strip arrives).

    Returns:
        ``(A, B, C)`` or None if the pattern is absent.
    """
    peaks_seen: list[Extremum] = []
    a: Extremum | None = None
    b: Extremum | None = None
    for ext in extrema:
        if ext.kind == "peak":
            if a is None:
                a = ext
            elif b is not None:
                return (a, b, ext)
            else:
                # Two peaks without a valley between them: restart from
                # the later, stronger anchor.
                if ext.value > a.value:
                    a = ext
        else:  # valley
            if a is not None and b is None:
                b = ext
            elif a is not None and b is not None and ext.value < b.value:
                b = ext
    return None
