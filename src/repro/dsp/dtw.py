"""Dynamic Time Warping (Section 4.2, channel distortion).

"While many signal processing techniques could be used for
classification problems, we use Dynamic Time Warping (DTW) to showcase
our basic idea.  DTW is a method used in many areas to measure the
similarity of two signals."

The paper reports *normalized distances*: between the distorted packet
of Fig. 8 and the two clean templates of Fig. 5 the distances are 326
(wrong template) and 172 (correct template), with a self-distance of 131
— self-distance is non-zero because their normalisation divides by the
path length and compares independently noisy captures.

This implementation provides the classic O(n*m) dynamic program with an
optional Sakoe-Chiba band, path extraction, and path-length
normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DtwResult", "dtw_distance", "dtw"]


@dataclass
class DtwResult:
    """Outcome of one DTW alignment.

    Attributes:
        distance: accumulated cost along the optimal path.
        normalized_distance: accumulated cost divided by path length.
        path: optimal alignment as (i, j) index pairs, if requested.
    """

    distance: float
    normalized_distance: float
    path: list[tuple[int, int]] | None = None


def _cost_matrix(a: np.ndarray, b: np.ndarray,
                 band: int | None) -> np.ndarray:
    """Accumulated-cost matrix with absolute-difference local cost."""
    n, m = len(a), len(b)
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        if band is None:
            j_lo, j_hi = 1, m
        else:
            centre = int(round(i * m / n))
            j_lo = max(1, centre - band)
            j_hi = min(m, centre + band)
        ai = a[i - 1]
        for j in range(j_lo, j_hi + 1):
            cost = abs(ai - b[j - 1])
            acc[i, j] = cost + min(acc[i - 1, j],      # insertion
                                   acc[i, j - 1],      # deletion
                                   acc[i - 1, j - 1])  # match
    return acc


def _traceback(acc: np.ndarray) -> list[tuple[int, int]]:
    """Recover the optimal path from the accumulated-cost matrix."""
    i, j = acc.shape[0] - 1, acc.shape[1] - 1
    path: list[tuple[int, int]] = []
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = (acc[i - 1, j - 1], acc[i - 1, j], acc[i, j - 1])
        best = int(np.argmin(moves))
        if best == 0:
            i, j = i - 1, j - 1
        elif best == 1:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return path


def dtw(a: np.ndarray, b: np.ndarray, band_fraction: float | None = 0.2,
        return_path: bool = False) -> DtwResult:
    """Align two sequences and return their DTW distance.

    Args:
        a: first sequence (1-D).
        b: second sequence (1-D).
        band_fraction: Sakoe-Chiba band half-width as a fraction of the
            longer sequence; None disables the constraint.  A band both
            speeds the O(n*m) DP up and prevents degenerate warpings
            (the paper's speed never changes by more than 2x).
        return_path: include the alignment path in the result.

    Raises:
        ValueError: on empty inputs or an infeasible band.
    """
    x = np.asarray(a, dtype=float).ravel()
    y = np.asarray(b, dtype=float).ravel()
    if len(x) == 0 or len(y) == 0:
        raise ValueError("cannot align empty sequences")
    band: int | None = None
    if band_fraction is not None:
        if band_fraction <= 0.0:
            raise ValueError(f"band fraction must be positive, got {band_fraction}")
        band = max(1, int(round(band_fraction * max(len(x), len(y)))))
        # The band must at least cover the length difference or no
        # monotone path exists.
        band = max(band, abs(len(x) - len(y)) + 1)
    acc = _cost_matrix(x, y, band)
    distance = float(acc[-1, -1])
    if not np.isfinite(distance):
        raise ValueError("no feasible alignment path (band too narrow)")
    path = _traceback(acc)
    normalized = distance / len(path) if path else 0.0
    return DtwResult(distance=distance, normalized_distance=normalized,
                     path=path if return_path else None)


def dtw_distance(a: np.ndarray, b: np.ndarray,
                 band_fraction: float | None = 0.2) -> float:
    """Plain DTW distance (accumulated optimal-path cost)."""
    return dtw(a, b, band_fraction=band_fraction).distance
