"""Dynamic Time Warping (Section 4.2, channel distortion).

"While many signal processing techniques could be used for
classification problems, we use Dynamic Time Warping (DTW) to showcase
our basic idea.  DTW is a method used in many areas to measure the
similarity of two signals."

The paper reports *normalized distances*: between the distorted packet
of Fig. 8 and the two clean templates of Fig. 5 the distances are 326
(wrong template) and 172 (correct template), with a self-distance of 131
— self-distance is non-zero because their normalisation divides by the
path length and compares independently noisy captures.

This implementation provides the classic O(n*m) dynamic program with an
optional Sakoe-Chiba band, path extraction, and path-length
normalisation.  Two interchangeable dynamic-program kernels exist:

* ``implementation="reference"`` — the original pure-Python double
  loop, kept as the readable oracle;
* ``implementation="vectorized"`` — an anti-diagonal (wavefront)
  NumPy kernel.  Cells on one anti-diagonal ``i + j = d`` depend only
  on diagonals ``d-1``/``d-2``, so each diagonal is one vector update.
  It fills exactly the same cells in the same arithmetic order as the
  reference, so the accumulated-cost matrix — and therefore distances,
  normalised distances and paths — are bit-identical.
* ``implementation="compiled"`` — the numba-JIT banded loop from
  :mod:`repro.tensor.kernels`.  Optional: it raises ``RuntimeError``
  when numba is absent or disabled via ``REPRO_DISABLE_NUMBA``.

``implementation="auto"`` (the default) picks the compiled kernel when
available, else the vectorized one, once the cost matrix is large
enough to amortise per-call overhead; small problems stay on the
pure-Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DtwResult", "dtw_distance", "dtw"]

#: Cost-matrix cell count above which the wavefront kernel beats the
#: pure-Python loop (the crossover sits around a few thousand cells;
#: below it the per-diagonal NumPy call overhead dominates).
VECTORIZE_MIN_CELLS = 4096

_COMPILED_STATE: bool | None = None


def _compiled_available() -> bool:
    """Cached probe for the optional compiled kernel.

    Lazy so this module never imports :mod:`repro.tensor` (which itself
    imports ``_band_limits`` from here) at load time, and cached so the
    ``auto`` path pays the probe exactly once per process.
    """
    global _COMPILED_STATE
    if _COMPILED_STATE is None:
        try:
            from ..tensor.kernels import HAVE_NUMBA
            _COMPILED_STATE = bool(HAVE_NUMBA)
        except Exception:
            _COMPILED_STATE = False
    return _COMPILED_STATE


@dataclass
class DtwResult:
    """Outcome of one DTW alignment.

    Attributes:
        distance: accumulated cost along the optimal path.
        normalized_distance: accumulated cost divided by path length.
        path: optimal alignment as (i, j) index pairs, if requested.
    """

    distance: float
    normalized_distance: float
    path: list[tuple[int, int]] | None = None


def _cost_matrix(a: np.ndarray, b: np.ndarray,
                 band: int | None) -> np.ndarray:
    """Accumulated-cost matrix with absolute-difference local cost."""
    n, m = len(a), len(b)
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        if band is None:
            j_lo, j_hi = 1, m
        else:
            centre = int(round(i * m / n))
            j_lo = max(1, centre - band)
            j_hi = min(m, centre + band)
        ai = a[i - 1]
        for j in range(j_lo, j_hi + 1):
            cost = abs(ai - b[j - 1])
            acc[i, j] = cost + min(acc[i - 1, j],      # insertion
                                   acc[i, j - 1],      # deletion
                                   acc[i - 1, j - 1])  # match
    return acc


def _band_limits(n: int, m: int,
                 band: int | None) -> tuple[np.ndarray, np.ndarray]:
    """Inclusive per-row column bounds ``(j_lo, j_hi)``, rows 1..n.

    Mirrors the reference loop exactly: ``centre = round(i * m / n)``
    (round-half-even, as Python's :func:`round` on a float) clamped to
    ``[1, m]`` with half-width ``band``.
    """
    i = np.arange(1, n + 1, dtype=np.int64)
    if band is None:
        return (np.ones(n, dtype=np.int64),
                np.full(n, m, dtype=np.int64))
    centre = np.rint(i * m / n).astype(np.int64)
    j_lo = np.maximum(1, centre - band)
    j_hi = np.minimum(m, centre + band)
    return j_lo, j_hi


def _cost_matrix_vectorized(a: np.ndarray, b: np.ndarray,
                            band: int | None) -> np.ndarray:
    """Wavefront (anti-diagonal) evaluation of the same DP.

    Within one anti-diagonal ``i + j = d`` every cell is independent,
    so the whole diagonal updates as one vector expression.  The cell
    set and per-cell arithmetic match :func:`_cost_matrix` exactly.
    """
    n, m = len(a), len(b)
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    j_lo, j_hi = _band_limits(n, m, band)
    rows = np.arange(1, n + 1, dtype=np.int64)
    # i + j_lo[i] and i + j_hi[i] are strictly increasing in i, so the
    # rows intersecting diagonal d form one contiguous range found by
    # bisection.
    lo_sum = rows + j_lo
    hi_sum = rows + j_hi
    # Rolling diagonal buffers indexed by row i: for cell (i, j = d - i)
    # the three predecessors live at prev[i - 1] (up), prev[i] (left)
    # and prev2[i - 1] (diagonal), all contiguous slices.
    prev2 = np.full(n + 1, np.inf)  # diagonal d - 2
    prev2[0] = 0.0
    prev = np.full(n + 1, np.inf)   # diagonal d - 1
    for d in range(2, n + m + 1):
        i_min = max(1, d - m, int(np.searchsorted(hi_sum, d)) + 1)
        i_max = min(n, d - 1, int(np.searchsorted(lo_sum, d, side="right")))
        cur = np.full(n + 1, np.inf)
        if i_min <= i_max:
            # b is indexed by j - 1 = d - i - 1, descending as i ascends.
            b_rev = b[d - i_max - 1:d - i_min][::-1]
            cost = np.abs(a[i_min - 1:i_max] - b_rev)
            best = np.minimum(
                np.minimum(prev[i_min - 1:i_max], prev[i_min:i_max + 1]),
                prev2[i_min - 1:i_max])
            cur[i_min:i_max + 1] = cost + best
            i = np.arange(i_min, i_max + 1)
            acc[i, d - i] = cur[i_min:i_max + 1]
        prev2, prev = prev, cur
    return acc


def _traceback(acc: np.ndarray) -> list[tuple[int, int]]:
    """Recover the optimal path from the accumulated-cost matrix.

    Moves are ranked diagonal, up, left with first-wins tie-breaking —
    the same order ``np.argmin`` over ``(diag, up, left)`` would pick.
    """
    i, j = acc.shape[0] - 1, acc.shape[1] - 1
    path: list[tuple[int, int]] = []
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        diag = acc[i - 1, j - 1]
        up = acc[i - 1, j]
        left = acc[i, j - 1]
        if diag <= up and diag <= left:
            i, j = i - 1, j - 1
        elif up <= left:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return path


def dtw(a: np.ndarray, b: np.ndarray, band_fraction: float | None = 0.2,
        return_path: bool = False,
        implementation: str = "auto") -> DtwResult:
    """Align two sequences and return their DTW distance.

    Args:
        a: first sequence (1-D).
        b: second sequence (1-D).
        band_fraction: Sakoe-Chiba band half-width as a fraction of the
            longer sequence; None disables the constraint.  A band both
            speeds the O(n*m) DP up and prevents degenerate warpings
            (the paper's speed never changes by more than 2x).
        return_path: include the alignment path in the result.
        implementation: ``"auto"`` (size-based choice), ``"reference"``
            (pure-Python loop), ``"vectorized"`` (wavefront kernel) or
            ``"compiled"`` (optional numba kernel).  All kernels
            produce bit-identical results.

    Raises:
        ValueError: on empty inputs, an infeasible band, or an unknown
            implementation name.
        RuntimeError: on ``implementation="compiled"`` when numba is
            unavailable or disabled.
    """
    if implementation not in ("auto", "reference", "vectorized",
                              "compiled"):
        raise ValueError(
            f"implementation must be 'auto', 'reference', 'vectorized' "
            f"or 'compiled', got {implementation!r}")
    x = np.asarray(a, dtype=float).ravel()
    y = np.asarray(b, dtype=float).ravel()
    if len(x) == 0 or len(y) == 0:
        raise ValueError("cannot align empty sequences")
    band: int | None = None
    if band_fraction is not None:
        if band_fraction <= 0.0:
            raise ValueError(f"band fraction must be positive, got {band_fraction}")
        band = max(1, int(round(band_fraction * max(len(x), len(y)))))
        # The band must at least cover the length difference or no
        # monotone path exists.
        band = max(band, abs(len(x) - len(y)) + 1)
    if implementation == "auto":
        # Count the cells the DP actually evaluates: a narrow band
        # shrinks the work to ~n rows of (2*band + 1) columns, where
        # the loop's small constant beats per-diagonal NumPy overhead.
        columns = len(y) if band is None else min(len(y), 2 * band + 1)
        if len(x) * columns >= VECTORIZE_MIN_CELLS:
            implementation = ("compiled" if _compiled_available()
                              else "vectorized")
        else:
            implementation = "reference"
    if implementation == "compiled":
        from ..tensor.kernels import compiled_cost_matrix
        acc = compiled_cost_matrix(x, y, band)
    else:
        kernel = (_cost_matrix_vectorized
                  if implementation == "vectorized" else _cost_matrix)
        acc = kernel(x, y, band)
    distance = float(acc[-1, -1])
    if not np.isfinite(distance):
        raise ValueError("no feasible alignment path (band too narrow)")
    path = _traceback(acc)
    normalized = distance / len(path) if path else 0.0
    return DtwResult(distance=distance, normalized_distance=normalized,
                     path=path if return_path else None)


def dtw_distance(a: np.ndarray, b: np.ndarray,
                 band_fraction: float | None = 0.2,
                 implementation: str = "auto") -> float:
    """Plain DTW distance (accumulated optimal-path cost)."""
    return dtw(a, b, band_fraction=band_fraction,
               implementation=implementation).distance
