"""Signal normalisation helpers.

The paper plots "Normalized RSS" (min-max over the displayed window) and
the DTW classifier compares signals after amplitude and length
normalisation, since two passes of the same packet can differ in both
ambient level and speed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["min_max_normalize", "z_normalize", "resample_to_length"]


def min_max_normalize(samples: np.ndarray) -> np.ndarray:
    """Scale a signal to [0, 1]; constant signals map to zeros."""
    x = np.asarray(samples, dtype=float)
    if len(x) == 0:
        return x.copy()
    lo, hi = float(x.min()), float(x.max())
    if hi == lo:
        return np.zeros_like(x)
    return (x - lo) / (hi - lo)


def z_normalize(samples: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance scaling; constant signals map to zeros."""
    x = np.asarray(samples, dtype=float)
    if len(x) == 0:
        return x.copy()
    mu = float(x.mean())
    sigma = float(x.std())
    if sigma == 0.0:
        return np.zeros_like(x)
    return (x - mu) / sigma


def resample_to_length(samples: np.ndarray, n: int) -> np.ndarray:
    """Linear-interpolation resample to exactly ``n`` samples.

    Used to bring signals of different durations onto a common support
    before DTW (speed differences then appear as *warping*, not as
    length mismatch).

    Raises:
        ValueError: for ``n < 2`` or an input shorter than 2 samples.
    """
    x = np.asarray(samples, dtype=float)
    if n < 2:
        raise ValueError(f"target length must be >= 2, got {n}")
    if len(x) < 2:
        raise ValueError(f"input must have >= 2 samples, got {len(x)}")
    old = np.linspace(0.0, 1.0, len(x))
    new = np.linspace(0.0, 1.0, n)
    return np.interp(new, old, x)
