"""Signal-processing substrate: filters, peaks, spectra, DTW."""

from .dtw import DtwResult, dtw, dtw_distance
from .filters import (
    detrend,
    lowpass,
    median_filter,
    moving_average,
    notch_ac_ripple,
)
from .normalize import min_max_normalize, resample_to_length, z_normalize
from .peaks import Extremum, find_peaks_and_valleys, first_preamble_points
from .spectrum import (
    PowerSpectrum,
    dominant_frequencies,
    power_spectrum,
    symbol_fundamental_hz,
)

__all__ = [
    "DtwResult", "dtw", "dtw_distance",
    "detrend", "lowpass", "median_filter", "moving_average",
    "notch_ac_ripple",
    "min_max_normalize", "resample_to_length", "z_normalize",
    "Extremum", "find_peaks_and_valleys", "first_preamble_points",
    "PowerSpectrum", "dominant_frequencies", "power_spectrum",
    "symbol_fundamental_hz",
]
