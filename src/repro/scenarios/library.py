"""The scenario zoo: named, registered traffic-scenario families.

Every family is a :class:`~repro.scenarios.base.ScenarioFamily` turning
one template :class:`~repro.engine.ScenarioSpec` into an arbitrary
number of concrete, seeded variants.  Families come in two styles:

* **Traffic families** (``convoy``, ``intersection``, ``highway``,
  ``parking_crawl``, ``fleet_mix``, ``receiver_matrix``) describe a
  whole world: who drives past the receiver, how fast, over what
  ground, read by which detector.
* **Regime layers** (``sunlight_ramp``, ``fluorescent_flicker``,
  ``night``, ``rain``, ``fog``, ``dirty_tags``, ``variable_speed``)
  perturb only the fields of their concern, so they stack onto any
  traffic family via :func:`~repro.scenarios.base.compose` — e.g.
  ``expand_family("convoy*rain*fluorescent_flicker")``.

Multi-vehicle families flatten to one spec per vehicle *pass*: the
receiver observes a sequence of single-object passes (the paper's
Section 5 setup), so a 7-car convoy expands to 7 engine scenarios with
correlated speeds and a shared fleet draw.
"""

from __future__ import annotations

import numpy as np

from ..engine.spec import CARS, PD_GAINS, ScenarioSpec
from ..vehicles.profiles import car_by_name
from .base import ScenarioFamily, VariantFn, compose
from .samplers import jittered, kmh, log_uniform, pick, uniform

__all__ = ["FAMILIES", "register", "get_family", "family_names",
           "expand_family", "describe_families"]


#: The global family registry, name -> family.
FAMILIES: dict[str, ScenarioFamily] = {}

#: Payload pool shared by the traffic families (the paper's two codes
#: plus a couple of longer frames).
_PAYLOADS = ("00", "10", "0110", "1001", "1010")

#: Offset between a roof's leading edge and the tag (rooftag default).
_ROOF_OFFSET_M = 0.05

#: Usable roof length per car model, derived from the vehicle profiles
#: — the physical budget a roof-mounted packet must fit into.
_ROOF_BUDGET_M = {
    name: (lambda span: span[1] - span[0] - _ROOF_OFFSET_M)(
        car_by_name(name).segment_span("roof"))
    for name in CARS
}


def _payload_for(rng, car: str | None, symbol_width_m: float) -> str:
    """A payload whose physical packet fits its carrier.

    A packet spans ``(4 + 2 * n_data_bits)`` symbols (preamble + the
    Manchester-coded data); roof-mounted packets must fit the car's
    roof segment or the scene cannot be built at all.  Bare tags have
    no length budget.
    """
    if car is None:
        return pick(rng, _PAYLOADS)
    budget = _ROOF_BUDGET_M[car]
    fitting = [p for p in _PAYLOADS
               if (4 + 2 * len(p)) * symbol_width_m <= budget]
    return pick(rng, fitting) if fitting else "00"


def register(name: str, description: str):
    """Decorator: wrap a variant function into a registered family."""
    def wrap(fn: VariantFn) -> ScenarioFamily:
        if "*" in name or "," in name:
            # Reserved composition separators: a registered name
            # containing them could never be resolved by get_family.
            raise ValueError(
                f"registered family names cannot contain '*' or ',', "
                f"got {name!r}")
        if name in FAMILIES:
            raise ValueError(f"family {name!r} already registered")
        family = ScenarioFamily(name=name, description=description,
                                variants=fn)
        FAMILIES[name] = family
        return family
    return wrap


def family_names() -> list[str]:
    """Registered family names, sorted."""
    return sorted(FAMILIES)


def get_family(expr: str) -> ScenarioFamily:
    """Resolve a family expression to a (possibly composed) family.

    ``expr`` is one registered name, or several joined with ``*`` or
    ``,`` — ``"convoy*rain"`` and ``"convoy,rain"`` both mean convoy
    passes fanned out over rain densities.
    """
    names = [n.strip() for n in expr.replace(",", "*").split("*")
             if n.strip()]
    if not names:
        raise ValueError(f"empty family expression: {expr!r}")
    missing = [n for n in names if n not in FAMILIES]
    if missing:
        known = ", ".join(family_names())
        raise KeyError(f"unknown scenario families {missing}; "
                       f"known: {known}")
    return compose(*(FAMILIES[n] for n in names))


def expand_family(expr: str, count: int = 100, seed: int = 0,
                  template: ScenarioSpec | None = None,
                  ) -> list[ScenarioSpec]:
    """Expand a family expression to ``count`` concrete specs."""
    return get_family(expr).expand(count=count, seed=seed,
                                   template=template)


def describe_families() -> str:
    """One line per registered family, for the CLI listing."""
    width = max(len(n) for n in FAMILIES)
    return "\n".join(f"{name:<{width}}  {FAMILIES[name].description}"
                     for name in family_names())


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------

def _road(base: ScenarioSpec) -> ScenarioSpec:
    """The Section 5 outdoor link: sun over tarmac, RX-LED, 10 cm
    symbols, standard -1.5 m approach."""
    return base.replace(
        source="sun", detector="led", cap=False, ground="tarmac",
        symbol_width_m=0.1, start_position_m=-1.5,
        sample_rate_hz=2000.0, car=None, dirt=0.0)


# ----------------------------------------------------------------------
# Traffic families
# ----------------------------------------------------------------------

@register("convoy",
          "multi-vehicle convoys at ~18 km/h: correlated speeds, mixed "
          "fleet, one spec per member pass")
def _convoy(base: ScenarioSpec, count: int,
            rng: np.random.Generator) -> list[ScenarioSpec]:
    road = _road(base).replace(receiver_height_m=0.75,
                               decoder="two_phase")
    specs: list[ScenarioSpec] = []
    while len(specs) < count:
        # One convoy: 3-8 vehicles sharing a lead speed and lux draw.
        size = int(rng.integers(3, 9))
        lead_speed = uniform(rng, kmh(10.0), kmh(30.0))
        lux = log_uniform(rng, 1500.0, 12000.0)
        for _ in range(min(size, count - len(specs))):
            car = pick(rng, CARS)
            specs.append(road.replace(
                car=car,
                bits=_payload_for(rng, car, road.symbol_width_m),
                speed_mps=jittered(rng, lead_speed, 0.06),
                ground_lux=jittered(rng, lux, 0.03)))
    return specs


@register("intersection",
          "crossing traffic: slow turners and fast through-cars under "
          "two receiver heights")
def _intersection(base: ScenarioSpec, count: int,
                  rng: np.random.Generator) -> list[ScenarioSpec]:
    road = _road(base)
    specs = []
    for _ in range(count):
        turning = bool(rng.integers(2))
        speed = (uniform(rng, kmh(5.0), kmh(13.0)) if turning
                 else uniform(rng, kmh(20.0), kmh(40.0)))
        car = pick(rng, CARS)
        specs.append(road.replace(
            car=car,
            bits=_payload_for(rng, car, road.symbol_width_m),
            decoder="two_phase",
            speed_mps=speed,
            receiver_height_m=pick(rng, (0.75, 1.0)),
            ground_lux=log_uniform(rng, 1000.0, 10000.0)))
    return specs


@register("highway",
          "high-speed bare-tag passes (30-80 km/h, freight/trailer "
          "tags) with stretched symbols under bright sun")
def _highway(base: ScenarioSpec, count: int,
             rng: np.random.Generator) -> list[ScenarioSpec]:
    # Stretched symbols exceed any car's roof budget, so highway tags
    # ride bare (trailer decks, cargo roofs) and decode adaptively.
    road = _road(base)
    specs = []
    for _ in range(count):
        specs.append(road.replace(
            car=None,
            bits=pick(rng, _PAYLOADS),
            decoder="adaptive",
            speed_mps=uniform(rng, kmh(30.0), kmh(80.0)),
            symbol_width_m=uniform(rng, 0.15, 0.3),
            receiver_height_m=uniform(rng, 0.75, 1.2),
            ground_lux=log_uniform(rng, 3000.0, 20000.0)))
    return specs


@register("parking_crawl",
          "work-plane crawl: hand-pushed speeds under the LED lamp "
          "(the Section 4 dark-room regime)")
def _parking_crawl(base: ScenarioSpec, count: int,
                   rng: np.random.Generator) -> list[ScenarioSpec]:
    specs = []
    for _ in range(count):
        specs.append(base.replace(
            source="led_lamp", detector="pd", cap=True,
            ground="black_paper_ground", car=None, decoder="adaptive",
            start_position_m=None, sample_rate_hz=None,
            bits=pick(rng, _PAYLOADS),
            pd_gain=pick(rng, PD_GAINS),
            lamp_intensity_cd=uniform(rng, 1.5, 3.0),
            speed_mps=uniform(rng, 0.04, 0.15),
            symbol_width_m=uniform(rng, 0.03, 0.08),
            receiver_height_m=uniform(rng, 0.2, 0.5)))
    return specs


@register("fleet_mix",
          "fleet sampler: tagged cars and bare (possibly dirty) tags "
          "drawn from one traffic stream")
def _fleet_mix(base: ScenarioSpec, count: int,
               rng: np.random.Generator) -> list[ScenarioSpec]:
    road = _road(base)
    specs = []
    for _ in range(count):
        carrier = pick(rng, CARS + (None,))
        specs.append(road.replace(
            car=carrier,
            dirt=0.0 if carrier else uniform(rng, 0.0, 0.5),
            decoder="two_phase" if carrier else "adaptive",
            bits=_payload_for(rng, carrier, road.symbol_width_m),
            speed_mps=uniform(rng, kmh(12.0), kmh(30.0)),
            receiver_height_m=uniform(rng, 0.6, 1.1),
            ground_lux=log_uniform(rng, 800.0, 12000.0)))
    return specs


@register("receiver_matrix",
          "receiver design sweep: PD gains G1-G3 vs RX-LED, capped and "
          "bare, across heights and ambient levels")
def _receiver_matrix(base: ScenarioSpec, count: int,
                     rng: np.random.Generator) -> list[ScenarioSpec]:
    road = _road(base)
    specs = []
    for _ in range(count):
        detector = pick(rng, ("pd", "led"))
        specs.append(road.replace(
            detector=detector,
            pd_gain=pick(rng, PD_GAINS) if detector == "pd" else "G1",
            cap=bool(rng.integers(2)),
            bits="00",
            speed_mps=kmh(18.0),
            receiver_height_m=uniform(rng, 0.2, 1.0),
            ground_lux=log_uniform(rng, 80.0, 20000.0)))
    return specs


# ----------------------------------------------------------------------
# Networked receiver deployments (the Section 6 future-work setup)
# ----------------------------------------------------------------------

@register("corridor",
          "networked corridor: 2-5 fused receivers along a noise-"
          "stressed road, one engine scenario per pass")
def _corridor(base: ScenarioSpec, count: int,
              rng: np.random.Generator) -> list[ScenarioSpec]:
    # Bright-sun glare holds every individual node right at the RX-LED
    # saturation cliff (~21-23 klux at these heights), where single
    # receivers decode a coin-flip of passes — the regime where fusing
    # the array's independent noise draws visibly lifts the decode rate.
    road = _road(base)
    specs = []
    for _ in range(count):
        specs.append(road.replace(
            car=None, decoder="adaptive",
            bits=pick(rng, _PAYLOADS),
            n_receivers=int(rng.integers(2, 6)),
            receiver_spacing_m=uniform(rng, 0.8, 2.0),
            topology="full",
            speed_mps=uniform(rng, kmh(15.0), kmh(30.0)),
            receiver_height_m=uniform(rng, 0.75, 0.85),
            ground_lux=log_uniform(rng, 20000.0, 23500.0)))
    return specs


@register("sparse_mesh",
          "sparsely deployed receivers (2-4 nodes, 2-6 m apart, full or "
          "chain links) tracking variable-speed passes")
def _sparse_mesh(base: ScenarioSpec, count: int,
                 rng: np.random.Generator) -> list[ScenarioSpec]:
    road = _road(base)
    specs = []
    for _ in range(count):
        motion = pick(rng, ("constant", "speed_jitter"))
        specs.append(road.replace(
            car=None, decoder="adaptive",
            bits=pick(rng, _PAYLOADS),
            n_receivers=int(rng.integers(2, 5)),
            receiver_spacing_m=uniform(rng, 2.0, 6.0),
            topology=pick(rng, ("full", "chain")),
            motion=motion,
            motion_param=(uniform(rng, 0.05, 0.2)
                          if motion == "speed_jitter" else 0.0),
            speed_mps=uniform(rng, kmh(15.0), kmh(40.0)),
            receiver_height_m=uniform(rng, 0.6, 1.1),
            ground_lux=log_uniform(rng, 3000.0, 15000.0)))
    return specs


@register("partitioned_net",
          "a severed deployment: 4-8 receivers split into two disjoint "
          "meshes, fusion limited to the upstream island")
def _partitioned_net(base: ScenarioSpec, count: int,
                     rng: np.random.Generator) -> list[ScenarioSpec]:
    road = _road(base)
    specs = []
    for _ in range(count):
        specs.append(road.replace(
            car=None, decoder="adaptive",
            bits=pick(rng, _PAYLOADS),
            n_receivers=int(rng.integers(4, 9)),
            receiver_spacing_m=uniform(rng, 0.8, 1.6),
            topology="partitioned",
            speed_mps=uniform(rng, kmh(12.0), kmh(30.0)),
            receiver_height_m=uniform(rng, 0.6, 1.0),
            ground_lux=log_uniform(rng, 5000.0, 25000.0)))
    return specs


# ----------------------------------------------------------------------
# Ambient-light regime layers
# ----------------------------------------------------------------------

@register("sunlight_ramp",
          "layer: daylight ramp from dawn to noon (log-spaced ground "
          "lux under the sun)")
def _sunlight_ramp(base: ScenarioSpec, count: int,
                   rng: np.random.Generator) -> list[ScenarioSpec]:
    # A deterministic dawn->noon ramp (plus per-point jitter) rather
    # than i.i.d. draws: consumers get ordered coverage of the range.
    lo, hi = 80.0, 30000.0
    positions = np.linspace(0.0, 1.0, count)
    specs = []
    for pos in positions:
        lux = lo * (hi / lo) ** float(pos)
        specs.append(base.replace(source="sun",
                                  ground_lux=jittered(rng, lux, 0.05)))
    return specs


@register("fluorescent_flicker",
          "layer: AC-driven ceiling fluorescents (100 Hz ripple) at "
          "varying luminaire heights and levels")
def _fluorescent_flicker(base: ScenarioSpec, count: int,
                         rng: np.random.Generator) -> list[ScenarioSpec]:
    specs = []
    for _ in range(count):
        specs.append(base.replace(
            source="fluorescent",
            ground_lux=log_uniform(rng, 150.0, 1500.0),
            fluorescent_height_m=uniform(rng, 2.0, 3.5)))
    return specs


@register("night",
          "layer: night-time ambient (10-150 lux skyglow/streetlight "
          "residual)")
def _night(base: ScenarioSpec, count: int,
           rng: np.random.Generator) -> list[ScenarioSpec]:
    specs = []
    for _ in range(count):
        specs.append(base.replace(
            source="sun",
            ground_lux=log_uniform(rng, 10.0, 150.0)))
    return specs


# ----------------------------------------------------------------------
# Weather and degradation layers
# ----------------------------------------------------------------------

@register("rain",
          "layer: rain attenuation (0.7-3 km visibility on the "
          "surface-to-receiver path)")
def _rain(base: ScenarioSpec, count: int,
          rng: np.random.Generator) -> list[ScenarioSpec]:
    return [base.replace(visibility_m=log_uniform(rng, 700.0, 3000.0))
            for _ in range(count)]


@register("fog",
          "layer: fog banks from haze to dense (50-800 m visibility)")
def _fog(base: ScenarioSpec, count: int,
         rng: np.random.Generator) -> list[ScenarioSpec]:
    return [base.replace(visibility_m=log_uniform(rng, 50.0, 800.0))
            for _ in range(count)]


@register("dirty_tags",
          "layer: bare tags with surface degradation (dust, mud) up to "
          "60% contrast loss")
def _dirty_tags(base: ScenarioSpec, count: int,
                rng: np.random.Generator) -> list[ScenarioSpec]:
    specs = []
    for _ in range(count):
        specs.append(base.replace(
            car=None, decoder="adaptive",
            dirt=uniform(rng, 0.05, 0.6)))
    return specs


@register("variable_speed",
          "layer: non-constant motion — mid-packet speed doubling and "
          "smooth speed jitter (the Fig. 8 distortion regime)")
def _variable_speed(base: ScenarioSpec, count: int,
                    rng: np.random.Generator) -> list[ScenarioSpec]:
    specs = []
    for _ in range(count):
        motion = pick(rng, ("speed_doubling", "speed_jitter"))
        specs.append(base.replace(
            motion=motion,
            motion_param=(uniform(rng, 0.05, 0.3)
                          if motion == "speed_jitter" else 0.0),
            speed_mps=jittered(rng, base.speed_mps, 0.1)))
    return specs
