"""repro.scenarios — the composable traffic-scenario library.

A registry of named :class:`ScenarioFamily` generators that expand to
arbitrarily many concrete :class:`~repro.engine.ScenarioSpec`s for the
execution engine, plus :func:`compose` for stacking families (convoys
in the rain under flickering lights).

Quickstart::

    from repro.engine import BatchRunner
    from repro.scenarios import expand_family, family_names

    print(family_names())                     # the zoo
    specs = expand_family("convoy*fog", count=200, seed=1)
    result = BatchRunner.local().run(specs)
    print(result.success_rate())

From the shell::

    repro-engine scenarios
    repro-engine sweep --scenario convoy,fog --count 200 --workers 8
"""

from .base import ScenarioFamily, VariantFn, compose, seed_stream
from .library import (
    FAMILIES,
    describe_families,
    expand_family,
    family_names,
    get_family,
    register,
)

__all__ = [
    "FAMILIES", "ScenarioFamily", "VariantFn", "compose",
    "describe_families", "expand_family", "family_names", "get_family",
    "register", "seed_stream",
]
