"""Scenario families: composable generators of :class:`ScenarioSpec`s.

A :class:`ScenarioFamily` is a named, deterministic transform from one
base spec to ``count`` concrete variant specs.  Base-style families
(convoys, intersections, parking lots) rewrite most of the spec to
describe their world; layer-style families (fog, night, dirty tags,
variable speed) perturb only the fields of their concern — which is
what makes them stack: :func:`compose` chains families so that e.g.
``convoy x rain x fluorescent_flicker`` fans every convoy pass out over
rain densities and flicker regimes.

Everything is seeded through :func:`seed_stream`, a content-derived RNG
factory, so the same ``(family, count, seed, template)`` always expands
to the same spec list — the property the engine's determinism contract
and the result cache build on.
"""

from __future__ import annotations

import hashlib
import math
import re
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..engine.spec import ScenarioSpec

__all__ = ["ScenarioFamily", "VariantFn", "compose", "seed_stream"]


#: A variant generator: (base spec, count, rng) -> exactly ``count`` specs.
VariantFn = Callable[[ScenarioSpec, int, np.random.Generator],
                     Sequence[ScenarioSpec]]

#: Family names must survive CLI composition syntax (``a*b`` / ``a,b``);
#: '*'-joined segments are reserved for composed families.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\*[a-z][a-z0-9_]*)*$")


def seed_stream(*parts: object) -> np.random.Generator:
    """A deterministic RNG derived from arbitrary hashable parts.

    The parts (family name, user seed, spec content, stage index, ...)
    are stringified and hashed, so any distinct combination yields an
    independent, reproducible stream — no global RNG state anywhere.
    """
    token = "\x1f".join(str(p) for p in parts)
    digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
    return np.random.default_rng(int.from_bytes(digest, "big"))


@dataclass(frozen=True)
class ScenarioFamily:
    """A named generator of scenario variants.

    Attributes:
        name: registry key; lowercase identifier (``convoy``, ``fog``).
        description: one-line summary shown by ``repro-engine scenarios``.
        variants: the generator; must return exactly the requested
            number of specs for any count >= 1.
    """

    name: str
    description: str
    variants: VariantFn

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"family name must be a lowercase identifier, "
                f"got {self.name!r}")
        if not self.description:
            raise ValueError("family needs a description")

    def expand(self, count: int = 100, seed: int = 0,
               template: ScenarioSpec | None = None) -> list[ScenarioSpec]:
        """Generate ``count`` concrete specs, deterministically.

        Args:
            count: number of scenarios to produce, >= 1.
            seed: expansion seed; same seed -> identical spec list.
            template: base spec the family varies; defaults to the
                engine's default :class:`ScenarioSpec`.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        base = template if template is not None else ScenarioSpec()
        rng = seed_stream("family", self.name, seed, base.canonical_json())
        specs = list(self.variants(base, count, rng))
        if len(specs) != count:
            raise RuntimeError(
                f"family {self.name!r} produced {len(specs)} specs "
                f"for count={count}")
        return specs

    def __mul__(self, other: "ScenarioFamily") -> "ScenarioFamily":
        """``convoy * fog`` composes two families (see :func:`compose`)."""
        return compose(self, other)


def _stage_counts(total: int, n_stages: int) -> list[int]:
    """Per-stage variant counts whose product is >= ``total``, balanced.

    The product intentionally overshoots (next integer root); the
    composed expansion trims the tail back to ``total``.
    """
    per = max(1, math.ceil(total ** (1.0 / n_stages)))
    while per ** n_stages < total:
        per += 1
    return [per] * n_stages


def compose(*families: ScenarioFamily) -> ScenarioFamily:
    """Stack families into one: each stage fans out every spec so far.

    The first family expands the template, the second expands each of
    those specs, and so on — Cartesian-product semantics with balanced
    per-stage counts (``ceil(count ** (1/k))`` variants per stage),
    trimmed to the requested total.  Later stages win field conflicts
    because they run on the earlier stages' output.
    """
    if not families:
        raise ValueError("compose needs at least one family")
    if len(families) == 1:
        return families[0]
    name = "*".join(f.name for f in families)
    description = " x ".join(f.name for f in families) + " (composed)"

    def variants(base: ScenarioSpec, count: int,
                 rng: np.random.Generator) -> list[ScenarioSpec]:
        specs = [base]
        for family, stage_count in zip(families,
                                       _stage_counts(count, len(families))):
            fanned: list[ScenarioSpec] = []
            for spec in specs:
                # Child streams are drawn from the composed rng in a
                # fixed order, so the whole tree is reproducible.
                child = np.random.default_rng(rng.integers(2**63))
                fanned.extend(family.variants(spec, stage_count, child))
            specs = fanned
        return specs[:count]

    return ScenarioFamily(name=name, description=description,
                          variants=variants)
