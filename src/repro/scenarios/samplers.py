"""Deterministic parameter samplers for scenario generation.

Thin wrappers over :class:`numpy.random.Generator` that return plain
Python scalars (specs are JSON-serialised and hashed — numpy scalar
types must not leak into them) plus a couple of domain helpers shared
by the family definitions in :mod:`repro.scenarios.library`.
"""

from __future__ import annotations

import math
from typing import Sequence, TypeVar

import numpy as np

from ..channel.mobility import KMH_TO_MPS

__all__ = ["uniform", "log_uniform", "pick", "jittered", "random_bits",
           "kmh", "KMH_TO_MPS"]

T = TypeVar("T")


def uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    """One uniform draw in [lo, hi), as a plain float."""
    return float(rng.uniform(lo, hi))


def log_uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    """One log-uniform draw — for scale-type quantities (lux levels,
    visibilities) that span decades."""
    if lo <= 0.0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got [{lo}, {hi}]")
    return float(math.exp(rng.uniform(math.log(lo), math.log(hi))))


def pick(rng: np.random.Generator, options: Sequence[T]) -> T:
    """One choice from a sequence (by index, so options may be None)."""
    if not options:
        raise ValueError("cannot pick from an empty sequence")
    return options[int(rng.integers(len(options)))]


def jittered(rng: np.random.Generator, value: float,
             relative: float = 0.1) -> float:
    """``value`` perturbed by a uniform relative deviation."""
    if relative < 0.0:
        raise ValueError(f"relative jitter must be >= 0, got {relative}")
    return float(value * (1.0 + rng.uniform(-relative, relative)))


def random_bits(rng: np.random.Generator, n_bits: int) -> str:
    """A random 0/1 payload string of the given length."""
    if n_bits < 1:
        raise ValueError(f"need at least 1 bit, got {n_bits}")
    return "".join("1" if rng.integers(2) else "0" for _ in range(n_bits))


def kmh(value_kmh: float) -> float:
    """Speed in km/h as m/s (the paper quotes road speeds in km/h)."""
    return value_kmh * KMH_TO_MPS
