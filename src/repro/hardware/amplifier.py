"""Amplifier stage (LM358N on the OpenVLC board).

The detector's normalised output is buffered and amplified before the
ADC.  The LM358N is a slow, single-supply op-amp: its gain-bandwidth
product and slew rate bound how fast an edge can move through the chain,
and its output clips near the supply rails.  For the passive channel's
sub-100 Hz signals the amplifier is essentially transparent; it matters
at the margins of the "maximal supported speed" analysis (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

__all__ = ["Amplifier", "first_order_lowpass"]


def first_order_lowpass(samples: np.ndarray, cutoff_hz: float,
                        sample_rate_hz: float) -> np.ndarray:
    """Apply a first-order (RC) low-pass filter to a sampled signal.

    Used for both the detector's photoresponse and the amplifier's
    bandwidth limit.  A single-pole IIR preserves causality (edges lag,
    they don't pre-ring), matching analogue behaviour.

    Args:
        samples: input signal.
        cutoff_hz: -3 dB frequency, > 0.
        sample_rate_hz: sampling frequency, > 0.

    Returns:
        Filtered signal, same shape as the input.
    """
    if cutoff_hz <= 0.0:
        raise ValueError(f"cutoff must be positive, got {cutoff_hz}")
    if sample_rate_hz <= 0.0:
        raise ValueError(f"sample rate must be positive, got {sample_rate_hz}")
    x = np.asarray(samples, dtype=float)
    if x.size == 0:
        return x.copy()
    if cutoff_hz >= sample_rate_hz / 2.0:
        # Pole above Nyquist: the filter is transparent at this rate.
        return x.copy()
    # Bilinear-transform single pole.
    b, a = sp_signal.butter(1, cutoff_hz / (sample_rate_hz / 2.0))
    zi = sp_signal.lfilter_zi(b, a) * x[0]
    y, _ = sp_signal.lfilter(b, a, x, zi=zi)
    return y


@dataclass
class Amplifier:
    """A rail-limited voltage amplifier.

    Attributes:
        gain: voltage gain applied to the detector's normalised output.
        bandwidth_hz: closed-loop -3 dB bandwidth.
        rail_low: lower output clip (normalised volts).
        rail_high: upper output clip (normalised volts).
        input_offset: additive offset (op-amp V_os referred to output).
    """

    gain: float = 1.0
    bandwidth_hz: float = 10_000.0
    rail_low: float = 0.0
    rail_high: float = 1.0
    input_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.gain <= 0.0:
            raise ValueError(f"gain must be positive, got {self.gain}")
        if self.bandwidth_hz <= 0.0:
            raise ValueError("bandwidth must be positive")
        if self.rail_high <= self.rail_low:
            raise ValueError("rail_high must exceed rail_low")

    @classmethod
    def lm358(cls, gain: float = 1.0) -> "Amplifier":
        """The board's LM358N buffer (GBW ~1 MHz; effective BW = GBW/gain)."""
        return cls(gain=gain, bandwidth_hz=1.0e6 / max(gain, 1.0),
                   rail_low=0.0, rail_high=1.0, input_offset=0.0)

    def amplify(self, samples: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Amplify, band-limit and rail-clip a sampled signal."""
        x = np.asarray(samples, dtype=float)
        y = first_order_lowpass(x * self.gain + self.input_offset,
                                self.bandwidth_hz, sample_rate_hz)
        return np.clip(y, self.rail_low, self.rail_high)
