"""The complete receiver front end: optics cap, detector, amplifier, ADC.

This chain turns the optical waveform produced by the channel simulator
(ambient-referred illuminance at the receiver aperture) into the RSS
sample stream that the paper's decoding algorithms consume.

The :class:`FovCap` models the "small physical cap (1.2x1.2x2.8 cm)"
of Section 5.2: it narrows the acceptance cone (suppressing interference
from surfaces adjacent to the tag, e.g. the car's metal roof) at the cost
of less impinging light — the paper explicitly accepts "the RSS drop
resulting from the smaller impinging light on the receiver".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..optics.geometry import FieldOfView
from .adc import Adc
from .amplifier import Amplifier, first_order_lowpass
from .photodiode import OpticalDetector

__all__ = ["FovCap", "ReceiverFrontEnd"]


@dataclass(frozen=True)
class FovCap:
    """A physical aperture that narrows a detector's field of view.

    The paper's cap is a small open-ended box in front of the photodiode:
    the acceptance half angle becomes ``atan(half_opening / depth)``.

    Attributes:
        opening_m: side length of the square opening (m).
        depth_m: depth of the cap (m).
        transmission: fraction of in-FoV light that still reaches the
            detector (walls absorb some skew rays).
        ambient_rejection: fraction of stray off-axis ambient light that
            leaks past the cap (caps cut background much harder than
            boresight signal).
    """

    opening_m: float = 0.012
    depth_m: float = 0.028
    transmission: float = 0.65
    ambient_rejection: float = 0.35

    def __post_init__(self) -> None:
        if self.opening_m <= 0.0 or self.depth_m <= 0.0:
            raise ValueError("cap dimensions must be positive")
        if not 0.0 < self.transmission <= 1.0:
            raise ValueError("transmission must be in (0, 1]")
        if not 0.0 < self.ambient_rejection <= 1.0:
            raise ValueError("ambient rejection factor must be in (0, 1]")

    @classmethod
    def paper_cap(cls) -> "FovCap":
        """The 1.2 x 1.2 x 2.8 cm cap from Section 5.2."""
        return cls(opening_m=0.012, depth_m=0.028)

    @property
    def full_angle_deg(self) -> float:
        """Full acceptance angle allowed by the cap geometry."""
        half = math.degrees(math.atan2(self.opening_m / 2.0, self.depth_m))
        return 2.0 * half

    def capped_fov(self, detector_fov: FieldOfView) -> FieldOfView:
        """Resulting FoV: the narrower of cap and detector."""
        return FieldOfView(min(detector_fov.full_angle_deg,
                               self.full_angle_deg))


@dataclass
class ReceiverFrontEnd:
    """Detector (+ optional cap) -> amplifier -> ADC signal chain.

    Attributes:
        detector: the optical detector (photodiode or RX-LED).
        cap: optional FoV-narrowing cap.
        amplifier: analog gain/buffer stage.
        adc: analog-to-digital converter.
        seed: RNG seed for the noise processes (deterministic captures).
    """

    detector: OpticalDetector
    cap: FovCap | None = None
    amplifier: Amplifier = field(default_factory=Amplifier.lm358)
    adc: Adc = field(default_factory=Adc.mcp3008)
    seed: int | None = None

    @property
    def effective_fov(self) -> FieldOfView:
        """FoV after applying the cap, if any."""
        if self.cap is None:
            return self.detector.fov
        return self.cap.capped_fov(self.detector.fov)

    @property
    def signal_transmission(self) -> float:
        """Optical transmission for in-FoV (footprint) light."""
        return 1.0 if self.cap is None else self.cap.transmission

    @property
    def ambient_transmission(self) -> float:
        """Optical transmission for stray/off-axis ambient light."""
        return 1.0 if self.cap is None else self.cap.ambient_rejection

    @property
    def sample_rate_hz(self) -> float:
        """Sampling rate of the output RSS stream."""
        return self.adc.sample_rate_hz

    def with_cap(self, cap: FovCap | None = None) -> "ReceiverFrontEnd":
        """A copy of this front end with a cap mounted (paper cap default)."""
        return ReceiverFrontEnd(
            detector=self.detector,
            cap=cap if cap is not None else FovCap.paper_cap(),
            amplifier=self.amplifier,
            adc=self.adc,
            seed=self.seed,
        )

    def saturates_at(self, ambient_lux: float) -> bool:
        """Whether an ambient noise floor rails this receiver.

        This is the Fig. 11 "supported noise floor" question: the
        detector clips when the (cap-attenuated) ambient level reaches
        its saturation input.
        """
        return (ambient_lux * self.ambient_transmission
                >= self.detector.saturation_lux)

    def capture(self, illuminance_lux: np.ndarray,
                sample_rate_hz: float | None = None,
                rng: np.random.Generator | None = None) -> np.ndarray:
        """Convert an optical waveform into ADC codes (the RSS stream).

        The input must already be the ambient-referred illuminance at the
        aperture *after* cap attenuation has been applied by the channel
        simulator (which knows which part of the light is footprint
        signal and which is stray ambient).

        Args:
            illuminance_lux: optical waveform at the detector (lux).
            sample_rate_hz: sampling rate of the waveform; defaults to
                the ADC's nominal rate.
            rng: noise generator; defaults to one seeded from ``seed``.

        Returns:
            Integer RSS codes, same length as the input.
        """
        fs = sample_rate_hz if sample_rate_hz is not None else self.adc.sample_rate_hz
        if fs <= 0.0:
            raise ValueError(f"sample rate must be positive, got {fs}")
        e = np.asarray(illuminance_lux, dtype=float)
        if e.ndim != 1:
            raise ValueError("expected a 1-D waveform")
        if np.any(e < 0.0):
            raise ValueError("illuminance cannot be negative")
        if rng is None:
            rng = np.random.default_rng(self.seed)

        # 1. Detector photoresponse: band limit, then saturate.
        smoothed = first_order_lowpass(e, self.detector.bandwidth_hz, fs)
        v = self.detector.respond(smoothed)
        # 2. Detector noise (thermal + shot), referred to the output.
        v = v + rng.normal(0.0, 1.0, size=v.shape) * self.detector.noise_sigma(v)
        v = np.clip(v, 0.0, 1.0)
        # 3. Amplifier: gain, bandwidth, rails.
        v = self.amplifier.amplify(v, fs)
        # 4. Quantisation.
        return self.adc.convert(v)

    def describe(self) -> str:
        """One-line summary used in experiment reports."""
        cap = f" + cap({self.effective_fov.full_angle_deg:.1f} deg)" if self.cap else ""
        return (f"{self.detector.name}{cap}, FoV {self.effective_fov.full_angle_deg:.1f} deg, "
                f"sat {self.detector.saturation_lux:.0f} lux, "
                f"{self.adc.bits}-bit @ {self.adc.sample_rate_hz:.0f} S/s")
