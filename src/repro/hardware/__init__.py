"""Receiver hardware substrate: detectors, analog chain, ADC, board."""

from .adc import Adc
from .amplifier import Amplifier, first_order_lowpass
from .board import EvaluationBoard, ReceiverKind
from .energy import (
    CAMERA_POWER_W,
    OPT101_POWER_W,
    AutonomyReport,
    PowerBudget,
    SolarPanel,
    autonomy,
    camera_receiver_budget,
    photodiode_receiver_budget,
)
from .frontend import FovCap, ReceiverFrontEnd
from .led_receiver import (
    RX_LED_FOV_DEG,
    RX_LED_RELATIVE_SENSITIVITY,
    RX_LED_SATURATION_LUX,
    LedReceiver,
)
from .photodiode import (
    OPT101_FOV_DEG,
    OpticalDetector,
    PdGain,
    Photodiode,
    normalized_sensitivity,
)

__all__ = [
    "Adc",
    "Amplifier",
    "first_order_lowpass",
    "EvaluationBoard",
    "ReceiverKind",
    "CAMERA_POWER_W", "OPT101_POWER_W", "AutonomyReport", "PowerBudget",
    "SolarPanel", "autonomy", "camera_receiver_budget",
    "photodiode_receiver_budget",
    "FovCap",
    "ReceiverFrontEnd",
    "LedReceiver",
    "RX_LED_FOV_DEG",
    "RX_LED_RELATIVE_SENSITIVITY",
    "RX_LED_SATURATION_LUX",
    "OpticalDetector",
    "PdGain",
    "Photodiode",
    "OPT101_FOV_DEG",
    "normalized_sensitivity",
]
