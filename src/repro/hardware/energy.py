"""Energy and sustainability model (the paper's Section 1 argument).

The paper's case for photodiode receivers over cameras is energetic:
"cameras consume orders of magnitude more energy than simpler
photodiodes: upwards of 1000 mW vs 1.5 mW (power consumption of the
photodiode used in our system)", and "this low power requirement would
enable a small solar panel — the size of a credit card — to harvest
enough energy from the surrounding lights for our system to work
autonomously".

This module quantifies both claims: a receiver power budget (detector +
analog chain + ADC + a duty-cycled MCU), a solar-harvest model for a
panel under the scene's own ambient light, and an autonomy verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..optics.photometry import lux_to_watts_per_m2

__all__ = ["PowerBudget", "SolarPanel", "AutonomyReport",
           "OPT101_POWER_W", "RX_LED_POWER_W", "CAMERA_POWER_W",
           "photodiode_receiver_budget", "camera_receiver_budget",
           "autonomy"]

#: Measured OPT101 consumption quoted in the paper (1.5 mW).
OPT101_POWER_W = 1.5e-3

#: An LED in photovoltaic mode *generates* current; its readout chain
#: cost is negligible next to the amplifier.
RX_LED_POWER_W = 0.0

#: The paper's camera comparison point ("upwards of 1000 mW").
CAMERA_POWER_W = 1.0

#: Credit-card solar panel: 85.6 x 54 mm.
CREDIT_CARD_AREA_M2 = 0.0856 * 0.054


@dataclass(frozen=True)
class PowerBudget:
    """Continuous power draw of one receiver box.

    Attributes:
        name: configuration label.
        detector_w: optical detector consumption.
        analog_w: amplifier/buffer/mux chain.
        adc_w: converter at its sampling rate.
        controller_w: duty-cycled MCU average.
    """

    name: str
    detector_w: float
    analog_w: float
    adc_w: float
    controller_w: float

    def __post_init__(self) -> None:
        for field_name in ("detector_w", "analog_w", "adc_w",
                           "controller_w"):
            if getattr(self, field_name) < 0.0:
                raise ValueError(f"{field_name} cannot be negative")

    @property
    def total_w(self) -> float:
        """Total continuous draw."""
        return (self.detector_w + self.analog_w + self.adc_w
                + self.controller_w)

    def daily_energy_j(self) -> float:
        """Energy over 24 h of continuous operation."""
        return self.total_w * 86_400.0


def photodiode_receiver_budget(use_rx_led: bool = False,
                               sample_rate_hz: float = 2_000.0,
                               duty_cycle: float = 1.0) -> PowerBudget:
    """Budget for the paper's tiny-box receiver.

    Args:
        use_rx_led: RX-LED instead of the OPT101 (photovoltaic — free).
        sample_rate_hz: ADC rate; the MCP3008 draws ~0.5 mW at full tilt
            and scales roughly linearly below that.
        duty_cycle: fraction of time the box is actively sampling (a
            gate that wakes on a light change can duty-cycle hard).
    """
    if not 0.0 < duty_cycle <= 1.0:
        raise ValueError(f"duty cycle must be in (0, 1], got {duty_cycle}")
    if sample_rate_hz <= 0.0:
        raise ValueError("sample rate must be positive")
    detector = RX_LED_POWER_W if use_rx_led else OPT101_POWER_W
    adc = 0.5e-3 * min(1.0, sample_rate_hz / 200_000.0) + 0.1e-3
    return PowerBudget(
        name="tiny-box" + ("-rx-led" if use_rx_led else "-pd"),
        detector_w=detector * duty_cycle,
        analog_w=0.7e-3 * duty_cycle,       # LM358 + buffer + mux
        adc_w=adc * duty_cycle,
        controller_w=2.0e-3 * duty_cycle,   # low-power MCU average
    )


def camera_receiver_budget() -> PowerBudget:
    """The camera-based alternative the paper argues against."""
    return PowerBudget(
        name="camera",
        detector_w=CAMERA_POWER_W,
        analog_w=0.0,
        adc_w=0.0,
        controller_w=0.2,                   # image processing overhead
    )


@dataclass(frozen=True)
class SolarPanel:
    """A small photovoltaic panel harvesting the scene's ambient light.

    Attributes:
        area_m2: panel area (credit card by default).
        efficiency: cell efficiency under the relevant spectrum.
        harvesting_efficiency: converter/storage chain efficiency.
    """

    area_m2: float = CREDIT_CARD_AREA_M2
    efficiency: float = 0.18
    harvesting_efficiency: float = 0.8

    def __post_init__(self) -> None:
        if self.area_m2 <= 0.0:
            raise ValueError("panel area must be positive")
        if not 0.0 < self.efficiency <= 0.5:
            raise ValueError("cell efficiency must be in (0, 0.5]")
        if not 0.0 < self.harvesting_efficiency <= 1.0:
            raise ValueError("harvesting efficiency must be in (0, 1]")

    def harvest_w(self, ambient_lux: float) -> float:
        """Continuous harvested power under an ambient level."""
        if ambient_lux < 0.0:
            raise ValueError("ambient level cannot be negative")
        irradiance = lux_to_watts_per_m2(ambient_lux)
        return (irradiance * self.area_m2 * self.efficiency
                * self.harvesting_efficiency)


@dataclass(frozen=True)
class AutonomyReport:
    """Can this receiver run off its own scene's light?

    Attributes:
        budget: the consumer.
        harvest_w: harvested power at the site.
        margin: harvest over consumption (> 1 means autonomous).
    """

    budget: PowerBudget
    harvest_w: float
    margin: float

    @property
    def autonomous(self) -> bool:
        """True when the panel out-produces the receiver."""
        return self.margin > 1.0


def autonomy(budget: PowerBudget, ambient_lux: float,
             panel: SolarPanel | None = None) -> AutonomyReport:
    """Autonomy verdict for a receiver at a site.

    Args:
        budget: the receiver's power budget.
        ambient_lux: the site's ambient level (the paper's noise floor).
        panel: harvesting panel (credit-card default).
    """
    panel = panel or SolarPanel()
    harvest = panel.harvest_w(ambient_lux)
    margin = harvest / budget.total_w if budget.total_w > 0.0 else float("inf")
    return AutonomyReport(budget=budget, harvest_w=harvest, margin=margin)
