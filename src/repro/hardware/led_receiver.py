"""LED used as a light receiver (RX-LED).

Section 4.4 proposes pairing the photodiode with a 5 mm red LED acting as
a receiver, operated in **photovoltaic mode** ("as solar cells") to
minimise dark current.  Compared to the photodiode the RX-LED has:

* a much **narrower FoV** — an LED's epoxy lens restricts acceptance to
  roughly its emission beam; this is what lets the outdoor receiver at
  75-100 cm resolve 10 cm symbols (Fig. 17) where the bare photodiode
  blurs them together;
* a **narrow optical bandwidth** — an LED only detects wavelengths at or
  below its emission band, rejecting most of the broadband ambient
  spectrum; together with the lower junction gain this yields the 0.013
  relative sensitivity and the 35 klux saturation of Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..optics.geometry import FieldOfView
from .photodiode import OpticalDetector

__all__ = ["LedReceiver", "RX_LED_FOV_DEG", "RX_LED_SATURATION_LUX",
           "RX_LED_RELATIVE_SENSITIVITY"]

#: Full acceptance angle of the 5 mm clear-lens red LED.
RX_LED_FOV_DEG = 16.0

#: Ambient-referred saturation of the RX-LED (Fig. 11).
RX_LED_SATURATION_LUX = 35_000.0

#: Sensitivity relative to the photodiode at G1 (Fig. 11).
RX_LED_RELATIVE_SENSITIVITY = 0.013

#: Fraction of a broadband white spectrum that falls inside the LED's
#: narrow detection band (red LEDs detect roughly the red/near-red slice).
RX_LED_SPECTRAL_FRACTION = 0.18


@dataclass
class LedReceiver(OpticalDetector):
    """A 5 mm LED (HLMP-EG08-YZ000) operated as a photovoltaic receiver.

    Attributes:
        photovoltaic: True when biased as a solar cell (the paper's
            choice); photoconductive mode would add dark-current noise.
        spectral_fraction: fraction of broadband light inside the LED's
            optical bandwidth (affects absolute current, already folded
            into the ambient-referred sensitivity).
    """

    photovoltaic: bool = True
    spectral_fraction: float = RX_LED_SPECTRAL_FRACTION

    @classmethod
    def red_5mm(cls, photovoltaic: bool = True,
                fov_deg: float = RX_LED_FOV_DEG) -> "LedReceiver":
        """Build the paper's RX-LED.

        In photovoltaic mode dark current is minimal, so the noise floor
        is set by thermal noise alone; photoconductive mode raises the
        noise floor (the reason the paper avoids it).
        """
        noise = 1.2e-3 if photovoltaic else 3.0e-3
        return cls(
            name="RX-LED" + ("" if photovoltaic else "-photoconductive"),
            fov=FieldOfView(fov_deg),
            saturation_lux=RX_LED_SATURATION_LUX,
            relative_sensitivity=RX_LED_RELATIVE_SENSITIVITY,
            bandwidth_hz=800.0,
            noise_rms_fullscale=noise,
            shot_noise_coefficient=1.5e-3,
            photovoltaic=photovoltaic,
            spectral_fraction=RX_LED_SPECTRAL_FRACTION,
        )

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.spectral_fraction <= 1.0:
            raise ValueError(
                f"spectral fraction must be in (0, 1], got {self.spectral_fraction}")
