"""The evaluation board: a two-receiver OpenVLC-style platform (Fig. 3).

The paper's board carries both optical receivers — a low-power LED
(receiver 1) and the OPT101 photodiode (receiver 2) — plus the analog
chain (74HCT244N buffer, LM358N amplifier, ADG444 multiplexer, MCP3008
ADC).  The multiplexer selects which receiver feeds the ADC; gain levels
G1-G3 reconfigure the photodiode.  Section 4.4's conclusion is that a
receiver with *both* components "can alleviate the noise floor problem by
properly selecting the component" for the ambient conditions; the
selection policy itself lives in :mod:`repro.core.receiver_select`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .adc import Adc
from .amplifier import Amplifier
from .frontend import FovCap, ReceiverFrontEnd
from .led_receiver import LedReceiver
from .photodiode import PdGain, Photodiode

__all__ = ["ReceiverKind", "EvaluationBoard"]


class ReceiverKind(Enum):
    """Which optical component is routed to the ADC."""

    PHOTODIODE = "photodiode"
    RX_LED = "rx_led"


@dataclass
class EvaluationBoard:
    """A board with both optical receivers and a shared ADC.

    Attributes:
        pd_gain: current photodiode gain setting.
        pd_cap: optional FoV cap mounted on the photodiode.
        sample_rate_hz: ADC sampling rate (2 kS/s outdoors in the paper).
        seed: RNG seed passed to the front ends.
    """

    pd_gain: PdGain = PdGain.G2
    pd_cap: FovCap | None = None
    sample_rate_hz: float = 2_000.0
    seed: int | None = None

    def __post_init__(self) -> None:
        self._adc = Adc.mcp3008(sample_rate_hz=self.sample_rate_hz)
        self._amplifier = Amplifier.lm358()

    def photodiode_frontend(self, gain: PdGain | None = None,
                            cap: FovCap | None | str = "board") -> ReceiverFrontEnd:
        """Front end using the OPT101 receiver.

        Args:
            gain: overrides the board's gain setting for this capture.
            cap: a cap to mount; the string ``"board"`` (default) keeps
                whatever is mounted on the board, ``None`` removes it.
        """
        chosen_cap = self.pd_cap if cap == "board" else cap
        return ReceiverFrontEnd(
            detector=Photodiode.opt101(gain=gain if gain is not None else self.pd_gain),
            cap=chosen_cap,
            amplifier=self._amplifier,
            adc=self._adc,
            seed=self.seed,
        )

    def led_frontend(self) -> ReceiverFrontEnd:
        """Front end using the RX-LED receiver (no cap: already narrow)."""
        return ReceiverFrontEnd(
            detector=LedReceiver.red_5mm(),
            cap=None,
            amplifier=self._amplifier,
            adc=self._adc,
            seed=self.seed,
        )

    def frontend(self, kind: ReceiverKind) -> ReceiverFrontEnd:
        """Select a receiver via the multiplexer."""
        if kind is ReceiverKind.PHOTODIODE:
            return self.photodiode_frontend()
        if kind is ReceiverKind.RX_LED:
            return self.led_frontend()
        raise ValueError(f"unknown receiver kind: {kind!r}")

    def all_frontends(self) -> dict[str, ReceiverFrontEnd]:
        """All receiver configurations the board supports (for sweeps)."""
        out: dict[str, ReceiverFrontEnd] = {}
        for gain in PdGain:
            out[f"PD-{gain.name}"] = self.photodiode_frontend(gain=gain, cap=None)
        out["RX-LED"] = self.led_frontend()
        return out
