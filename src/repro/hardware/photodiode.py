"""Photodiode receiver model (TI OPT101, as used on the OpenVLC board).

Fig. 11 of the paper characterises the optical receivers by two numbers,
measured with the device facing the ambient light:

=========  ================  ============================
Receiver   Saturation (lux)  Sensitivity (norm. to PD G1)
=========  ================  ============================
PD (G1)    450               1
PD (G2)    1200              0.45
PD (G3)    5000              0.089
LED        35000             0.013
=========  ================  ============================

The numbers encode a fixed-output-swing device whose gain setting trades
input range against sensitivity: sensitivity is (nearly exactly) inversely
proportional to the saturation illuminance (450/1200 = 0.375, 450/5000 =
0.09, 450/35000 = 0.013).  The model therefore uses the *ambient-referred*
saturation level as the full-scale input and derives the transfer slope
from it, while reporting the paper's tabulated sensitivity values.

The OPT101 is a wide-FoV device; Section 5.2 has to narrow it with a
physical cap to decode under interference, which is modelled by
:class:`repro.hardware.frontend.FovCap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..optics.geometry import FieldOfView

__all__ = ["PdGain", "OpticalDetector", "Photodiode", "OPT101_FOV_DEG"]

#: Full field-of-view angle of the bare OPT101 package.  The OPT101 has
#: a flat window and no lens: its angular response is near-Lambertian,
#: accepting light over most of the hemisphere.  This width is what
#: makes the bare photodiode collect interference from surfaces around
#: the tag (the car-roof problem of Fig. 16(a)) until a cap narrows it.
OPT101_FOV_DEG = 110.0

#: Reference saturation (G1) used to normalise sensitivities, lux.
_REFERENCE_SATURATION_LUX = 450.0


class PdGain(Enum):
    """OPT101 transimpedance gain settings used in the paper.

    G1 is the highest gain (most sensitive, easiest to saturate); G3 the
    lowest.  Values carry ``(saturation_lux, relative_sensitivity)``
    exactly as tabulated in Fig. 11.
    """

    G1 = (450.0, 1.0)
    G2 = (1200.0, 0.45)
    G3 = (5000.0, 0.089)

    @property
    def saturation_lux(self) -> float:
        """Ambient-referred illuminance at which the output rails."""
        return self.value[0]

    @property
    def relative_sensitivity(self) -> float:
        """Sensitivity normalised to G1 (paper's Fig. 11 column)."""
        return self.value[1]


@dataclass
class OpticalDetector:
    """A generic light-to-voltage detector with saturation and noise.

    The transfer is linear up to ``saturation_lux`` then hard-clipped —
    the paper's "links disappear abruptly" saturation behaviour (Section
    3, *Noise floor*).  The output is normalised so that full scale
    (saturation) maps to 1.0; downstream stages (amplifier, ADC) work on
    this normalised voltage.

    Attributes:
        name: device identifier for reports.
        fov: angular acceptance.
        saturation_lux: ambient-referred full-scale input (lux).
        relative_sensitivity: sensitivity normalised to the PD at G1.
        bandwidth_hz: -3 dB electrical bandwidth (first-order response);
            limits the maximal supported object speed (Section 6).
        noise_rms_fullscale: RMS additive noise, as a fraction of full
            scale (thermal + dark-current noise floor).
        shot_noise_coefficient: signal-dependent noise scale; the noise
            variance grows linearly with the detected level.
    """

    name: str
    fov: FieldOfView
    saturation_lux: float
    relative_sensitivity: float
    bandwidth_hz: float = 1_000.0
    noise_rms_fullscale: float = 1.0e-3
    shot_noise_coefficient: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.saturation_lux <= 0.0:
            raise ValueError("saturation must be positive")
        if self.relative_sensitivity <= 0.0:
            raise ValueError("sensitivity must be positive")
        if self.bandwidth_hz <= 0.0:
            raise ValueError("bandwidth must be positive")
        if self.noise_rms_fullscale < 0.0 or self.shot_noise_coefficient < 0.0:
            raise ValueError("noise levels cannot be negative")

    @property
    def slope_per_lux(self) -> float:
        """Normalised output volts per input lux (below saturation)."""
        return 1.0 / self.saturation_lux

    def respond(self, illuminance_lux: np.ndarray) -> np.ndarray:
        """Noise-free static transfer: normalised output in [0, 1]."""
        e = np.asarray(illuminance_lux, dtype=float)
        if np.any(e < 0.0):
            raise ValueError("illuminance cannot be negative")
        return np.clip(e * self.slope_per_lux, 0.0, 1.0)

    def is_saturated_by(self, illuminance_lux: float) -> bool:
        """Whether a given ambient level rails the detector."""
        return illuminance_lux >= self.saturation_lux

    def noise_sigma(self, level_fullscale: np.ndarray) -> np.ndarray:
        """RMS noise (fraction of full scale) at the given output level."""
        level = np.clip(np.asarray(level_fullscale, dtype=float), 0.0, 1.0)
        variance = (self.noise_rms_fullscale**2
                    + (self.shot_noise_coefficient**2) * level)
        return np.sqrt(variance)


@dataclass
class Photodiode(OpticalDetector):
    """The OPT101 photodiode with a selectable gain level."""

    gain: PdGain = PdGain.G2

    @classmethod
    def opt101(cls, gain: PdGain = PdGain.G2,
               fov_deg: float = OPT101_FOV_DEG) -> "Photodiode":
        """Build an OPT101 model at the given gain setting.

        The OPT101's photovoltaic-mode bandwidth at these transimpedance
        gains is in the low kHz — far above the sub-100 Hz signal band of
        the passive channel, so it never limits the indoor experiments
        but does bound the maximal supported vehicle speed.
        """
        return cls(
            name=f"OPT101-{gain.name}",
            fov=FieldOfView(fov_deg),
            saturation_lux=gain.saturation_lux,
            relative_sensitivity=gain.relative_sensitivity,
            bandwidth_hz=2_000.0,
            noise_rms_fullscale=1.5e-3,
            shot_noise_coefficient=2.0e-3,
            gain=gain,
        )

    def with_gain(self, gain: PdGain) -> "Photodiode":
        """Return a copy of this photodiode at a different gain setting."""
        return Photodiode.opt101(gain=gain, fov_deg=self.fov.full_angle_deg)


def normalized_sensitivity(detector: OpticalDetector) -> float:
    """Measured sensitivity normalised to PD G1, from the transfer slope.

    Useful to verify that the model's slope reproduces Fig. 11's
    sensitivity column: ``slope / slope(G1) = 450 / saturation``.
    """
    return detector.slope_per_lux * _REFERENCE_SATURATION_LUX
