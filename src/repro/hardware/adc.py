"""Analog-to-digital conversion (MCP3008 on the OpenVLC board).

The MCP3008 is a 10-bit SAR converter; the outdoor evaluation samples at
2 kS/s (Section 5).  The RSS values plotted throughout the paper are its
output codes (0..1023 before normalisation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Adc"]


@dataclass
class Adc:
    """An ideal-linearity SAR ADC with quantisation and clipping.

    Attributes:
        bits: resolution (10 for the MCP3008).
        v_ref_fullscale: input level (normalised volts) mapped to the
            maximum code; inputs are clipped to [0, v_ref_fullscale].
        sample_rate_hz: nominal sampling rate.
    """

    bits: int = 10
    v_ref_fullscale: float = 1.0
    sample_rate_hz: float = 2_000.0

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 24:
            raise ValueError(f"bits must be in [1, 24], got {self.bits}")
        if self.v_ref_fullscale <= 0.0:
            raise ValueError("reference must be positive")
        if self.sample_rate_hz <= 0.0:
            raise ValueError("sample rate must be positive")

    @classmethod
    def mcp3008(cls, sample_rate_hz: float = 2_000.0) -> "Adc":
        """The board's converter at the paper's outdoor sampling rate."""
        return cls(bits=10, v_ref_fullscale=1.0, sample_rate_hz=sample_rate_hz)

    @property
    def max_code(self) -> int:
        """Largest output code (``2**bits - 1``)."""
        return (1 << self.bits) - 1

    @property
    def lsb(self) -> float:
        """Input step per code."""
        return self.v_ref_fullscale / self.max_code

    def convert(self, samples: np.ndarray) -> np.ndarray:
        """Quantise a normalised-voltage signal into integer codes.

        Args:
            samples: input voltages (any shape).

        Returns:
            Integer codes, same shape, dtype int32.
        """
        x = np.asarray(samples, dtype=float)
        codes = np.round(np.clip(x, 0.0, self.v_ref_fullscale) / self.lsb)
        return codes.astype(np.int32)

    def to_volts(self, codes: np.ndarray) -> np.ndarray:
        """Map codes back to the centre of their quantisation bins."""
        c = np.asarray(codes)
        if np.any((c < 0) | (c > self.max_code)):
            raise ValueError(f"codes must be in [0, {self.max_code}]")
        return c.astype(float) * self.lsb
