"""Passive 'packets': coding, packet format, physical tag surfaces."""

from .codebook import (
    Codebook,
    build_max_distance_codebook,
    hamming_distance,
    min_pairwise_distance,
)
from .dynamic import DynamicTag, DynamicTechnology
from .framing import FrameError, FramedPayload, crc4
from .encoding import (
    ManchesterError,
    Symbol,
    manchester_decode,
    manchester_encode,
    symbols_from_string,
    symbols_to_string,
)
from .packet import PREAMBLE, Packet
from .surface import CompositeSurface, LinearSurface, Strip, TagSurface

__all__ = [
    "Codebook",
    "build_max_distance_codebook",
    "hamming_distance",
    "min_pairwise_distance",
    "DynamicTag",
    "DynamicTechnology",
    "ManchesterError",
    "Symbol",
    "manchester_decode",
    "manchester_encode",
    "symbols_from_string",
    "symbols_to_string",
    "PREAMBLE",
    "Packet",
    "FrameError",
    "FramedPayload",
    "crc4",
    "CompositeSurface",
    "LinearSurface",
    "Strip",
    "TagSurface",
]
