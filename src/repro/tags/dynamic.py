"""Dynamic tags: switchable reflective surfaces (Section 6, future work).

"Encoding dynamic information is feasible by adopting advance materials
whose reflection is adjustable (e.g. E-ink screens or LCD shutters)."

A dynamic tag holds a queue of packets and re-renders its strip pattern
between passes (e-ink: slow, bistable, zero hold power) or continuously
(LCD shutter: fast, needs power — "at an increased carbon footprint", as
the paper notes when discussing Retro-VLC).  The channel simulator asks
the tag for its surface *for a given pass*, so successive passes of the
same physical object can carry different payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..optics.materials import Material
from .packet import Packet
from .surface import TagSurface

__all__ = ["DynamicTechnology", "DynamicTag"]


class DynamicTechnology(Enum):
    """Reconfigurable-surface technologies with their switching costs."""

    #: Bistable electrophoretic display: ~0.5 s refresh, no hold power.
    E_INK = ("e_ink", 0.5, 0.0)
    #: Liquid-crystal shutter: ~5 ms switching, continuous hold power.
    LCD_SHUTTER = ("lcd_shutter", 0.005, 0.2)

    @property
    def switch_time_s(self) -> float:
        """Time to re-render the full surface pattern."""
        return self.value[1]

    @property
    def hold_power_w(self) -> float:
        """Power needed to hold the pattern (0 for bistable tech)."""
        return self.value[2]


#: Contrast ratios achievable by each technology relative to the
#: aluminium-tape / black-napkin pair (LCD shutters and e-ink have lower
#: optical contrast than tape vs napkin).
_CONTRAST_SCALE = {
    DynamicTechnology.E_INK: 0.55,
    DynamicTechnology.LCD_SHUTTER: 0.40,
}


@dataclass
class DynamicTag:
    """A reconfigurable tag cycling through a queue of packets.

    Attributes:
        packets: payload queue; pass ``k`` renders ``packets[k % len]``.
        technology: the switchable-surface technology.
        high_material: material representing HIGH at full contrast.
        low_material: material representing LOW at full contrast.
        label: name for reports.
    """

    packets: list[Packet]
    technology: DynamicTechnology = DynamicTechnology.E_INK
    high_material: Material | None = None
    low_material: Material | None = None
    label: str = "dynamic-tag"

    def __post_init__(self) -> None:
        if not self.packets:
            raise ValueError("a dynamic tag needs at least one packet")
        self._pass_index = 0

    def _contrast_materials(self) -> tuple[Material, Material]:
        """HIGH/LOW materials scaled to the technology's contrast."""
        from ..optics.materials import ALUMINUM_TAPE, BLACK_NAPKIN

        high = self.high_material or ALUMINUM_TAPE
        low = self.low_material or BLACK_NAPKIN
        scale = _CONTRAST_SCALE[self.technology]
        # Shrink the reflectance gap symmetrically around its midpoint.
        mid = (high.reflectance + low.reflectance) / 2.0
        half_gap = (high.reflectance - low.reflectance) / 2.0 * scale
        high_scaled = Material(
            name=f"{high.name}@{self.technology.name.lower()}",
            reflectance=min(1.0, mid + half_gap),
            specular_fraction=high.specular_fraction * scale,
            specular_exponent=high.specular_exponent,
        )
        low_scaled = Material(
            name=f"{low.name}@{self.technology.name.lower()}",
            reflectance=max(0.0, mid - half_gap),
            specular_fraction=low.specular_fraction,
            specular_exponent=low.specular_exponent,
        )
        return high_scaled, low_scaled

    def surface_for_pass(self, pass_index: int | None = None) -> TagSurface:
        """Render the surface shown during a given pass.

        Args:
            pass_index: explicit pass number; defaults to an internal
                counter that advances on each call.
        """
        if pass_index is None:
            pass_index = self._pass_index
            self._pass_index += 1
        if pass_index < 0:
            raise ValueError(f"pass index cannot be negative, got {pass_index}")
        packet = self.packets[pass_index % len(self.packets)]
        high, low = self._contrast_materials()
        return TagSurface.from_packet(
            packet, high_material=high, low_material=low,
            label=f"{self.label}#pass{pass_index}")

    def reconfiguration_energy_j(self, interval_s: float) -> float:
        """Energy to hold + switch the pattern once per ``interval_s``.

        Quantifies the paper's "increased carbon footprint" remark: an
        LCD tag pays hold power continuously, an e-ink tag only pays
        during the switch.

        Args:
            interval_s: time between pattern changes, > 0.
        """
        if interval_s <= 0.0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        switch_energy = 0.05 * self.technology.switch_time_s
        hold_energy = self.technology.hold_power_w * interval_s
        return switch_energy + hold_energy
