"""Physical tag surfaces: strips of reflective material on moving objects.

A :class:`TagSurface` is the physical realisation of a :class:`Packet`:
one strip of material per symbol (aluminium tape for HIGH, black napkin
for LOW by default), laid along the direction of motion.  Tags and other
linear objects (car roofs, composite car+tag surfaces) expose a common
protocol — a length and a sampled effective-reflectance profile — that
the channel simulator sweeps under the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..optics.materials import ALUMINUM_TAPE, BLACK_NAPKIN, Material
from ..optics.reflection import (
    OVERHEAD_GEOMETRY,
    IlluminationGeometry,
    effective_reflectance,
)
from .encoding import Symbol
from .packet import Packet

__all__ = ["LinearSurface", "Strip", "TagSurface", "CompositeSurface"]


@runtime_checkable
class LinearSurface(Protocol):
    """Anything that can be swept under the receiver along a line."""

    @property
    def length_m(self) -> float:
        """Physical length along the direction of motion."""
        ...

    def reflectance_samples(self, xs_local: np.ndarray,
                            geometry: IlluminationGeometry) -> np.ndarray:
        """Effective reflectance (1/sr) at local positions in [0, length]."""
        ...


@dataclass(frozen=True)
class Strip:
    """One contiguous strip of a single material.

    Attributes:
        material: the strip's surface material.
        width_m: extent along the direction of motion (m).
    """

    material: Material
    width_m: float

    def __post_init__(self) -> None:
        if self.width_m <= 0.0:
            raise ValueError(f"strip width must be positive, got {self.width_m}")


@dataclass
class TagSurface:
    """A passive 'packet' as a sequence of material strips.

    Attributes:
        strips: the physical strips, in order of arrival under the
            receiver.
        label: optional human-readable name for reports.
    """

    strips: list[Strip]
    label: str = "tag"

    def __post_init__(self) -> None:
        if not self.strips:
            raise ValueError("a tag surface needs at least one strip")
        # Cache strip boundaries for fast profile sampling.
        widths = np.array([s.width_m for s in self.strips])
        self._edges = np.concatenate(([0.0], np.cumsum(widths)))

    @classmethod
    def from_packet(cls, packet: Packet,
                    high_material: Material = ALUMINUM_TAPE,
                    low_material: Material = BLACK_NAPKIN,
                    label: str | None = None) -> "TagSurface":
        """Materialise a packet: one strip per symbol, constant width."""
        strips = [
            Strip(high_material if s is Symbol.HIGH else low_material,
                  packet.symbol_width_m)
            for s in packet.symbols
        ]
        return cls(strips=strips,
                   label=label or f"tag[{packet.symbol_string()}]")

    @property
    def length_m(self) -> float:
        """Total tag length along the direction of motion."""
        return float(self._edges[-1])

    @property
    def min_feature_m(self) -> float:
        """Narrowest strip width — the resolution the simulator must hit."""
        return min(s.width_m for s in self.strips)

    def material_at(self, x_local: float) -> Material | None:
        """Material at a local position, or None outside the tag."""
        if x_local < 0.0 or x_local > self.length_m:
            return None
        idx = int(np.searchsorted(self._edges, x_local, side="right")) - 1
        idx = min(max(idx, 0), len(self.strips) - 1)
        return self.strips[idx].material

    def reflectance_samples(self, xs_local: np.ndarray,
                            geometry: IlluminationGeometry = OVERHEAD_GEOMETRY,
                            ) -> np.ndarray:
        """Sampled effective-reflectance profile of the tag.

        Positions outside [0, length] get reflectance 0 (the caller
        substitutes the ground's own reflectance there).
        """
        xs = np.asarray(xs_local, dtype=float)
        # Memoise per material: tags alternate between just two values.
        values = {s.material.name: effective_reflectance(s.material, geometry)
                  for s in self.strips}
        idx = np.searchsorted(self._edges, xs, side="right") - 1
        idx = np.clip(idx, 0, len(self.strips) - 1)
        per_strip = np.array([values[s.material.name] for s in self.strips])
        out = per_strip[idx]
        outside = (xs < 0.0) | (xs > self.length_m)
        return np.where(outside, 0.0, out)

    def degraded(self, dirt_factor: float) -> "TagSurface":
        """A dirt-degraded copy (Section 3's 'dirt on top of the surfaces')."""
        return TagSurface(
            strips=[Strip(s.material.degraded(dirt_factor), s.width_m)
                    for s in self.strips],
            label=f"{self.label}+dirt{dirt_factor:.2f}",
        )

    def symbol_count(self) -> int:
        """Number of strips (symbols) on the tag."""
        return len(self.strips)


@dataclass
class CompositeSurface:
    """Several surfaces laid end to end (e.g. a car with a roof tag).

    Attributes:
        parts: ``(offset_m, surface)`` pairs; offsets are the local
            position of each part's leading edge, and parts later in the
            list override earlier ones where they overlap.
        total_length_m: overall length; defaults to the furthest part end.
        base_reflectance: effective reflectance of uncovered stretches.
    """

    parts: list[tuple[float, "LinearSurface"]]
    total_length_m: float | None = None
    base_reflectance: float = 0.0

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("a composite surface needs at least one part")
        for offset, part in self.parts:
            if offset < 0.0:
                raise ValueError(f"part offset cannot be negative, got {offset}")
            if part.length_m <= 0.0:
                raise ValueError("parts must have positive length")
        end = max(offset + part.length_m for offset, part in self.parts)
        if self.total_length_m is None:
            self.total_length_m = end
        elif self.total_length_m < end:
            raise ValueError(
                f"total length {self.total_length_m} is shorter than the "
                f"furthest part end {end}")

    @property
    def length_m(self) -> float:
        """Overall composite length."""
        assert self.total_length_m is not None
        return self.total_length_m

    @property
    def min_feature_m(self) -> float:
        """Narrowest feature over all parts that declare one."""
        features = [getattr(part, "min_feature_m", part.length_m)
                    for _, part in self.parts]
        return min(features)

    def reflectance_samples(self, xs_local: np.ndarray,
                            geometry: IlluminationGeometry = OVERHEAD_GEOMETRY,
                            ) -> np.ndarray:
        """Profile of the composite: later parts override earlier ones."""
        xs = np.asarray(xs_local, dtype=float)
        out = np.full(xs.shape, self.base_reflectance, dtype=float)
        for offset, part in self.parts:
            local = xs - offset
            covered = (local >= 0.0) & (local <= part.length_m)
            if np.any(covered):
                out[covered] = part.reflectance_samples(local[covered], geometry)
        outside = (xs < 0.0) | (xs > self.length_m)
        out[outside] = 0.0
        return out
