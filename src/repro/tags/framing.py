"""Payload framing: structured fields + checksum over the raw channel.

The paper's packets carry raw bits; its motivating applications
(KarTrak-style wagon tags, cargo types, trolley ids) need structure and
*self-validation* — a gate cannot always keep a list of every legal
code.  This module frames a payload as ``id + type + CRC-4``, so a
receiver can reject corrupted decodes without prior knowledge, which is
what the staged pipeline otherwise needs ``expected_bits`` for.

The CRC-4-ITU polynomial (x^4 + x + 1) detects all single- and
double-bit errors on the short payloads this channel carries.
"""

from __future__ import annotations

from dataclasses import dataclass

from .packet import Packet

__all__ = ["FrameError", "FramedPayload", "crc4"]

#: CRC-4-ITU generator polynomial, x^4 + x + 1 (0b10011).
_CRC4_POLY = 0b10011


class FrameError(ValueError):
    """Raised when a bit string is not a valid frame."""


def crc4(bits: str) -> str:
    """CRC-4-ITU over a bit string, returned as 4 bits.

    Args:
        bits: message bits ('0'/'1' characters, non-empty).
    """
    if not bits or any(c not in "01" for c in bits):
        raise ValueError(f"bits must be a non-empty 0/1 string, got {bits!r}")
    register = 0
    for c in bits + "0000":
        register = (register << 1) | (c == "1")
        if register & 0b10000:
            register ^= _CRC4_POLY
    return format(register & 0b1111, "04b")


@dataclass(frozen=True)
class FramedPayload:
    """A structured tag payload: object id + type code + CRC-4.

    Attributes:
        object_id: the tagged object's identifier.
        type_code: application-defined class (cargo type, trolley role).
        id_bits: field width for the id.
        type_bits: field width for the type code.
    """

    object_id: int
    type_code: int
    id_bits: int = 6
    type_bits: int = 2

    def __post_init__(self) -> None:
        if not 1 <= self.id_bits <= 24 or not 1 <= self.type_bits <= 8:
            raise ValueError("field widths out of range")
        if not 0 <= self.object_id < 2**self.id_bits:
            raise ValueError(
                f"object id {self.object_id} does not fit in "
                f"{self.id_bits} bits")
        if not 0 <= self.type_code < 2**self.type_bits:
            raise ValueError(
                f"type code {self.type_code} does not fit in "
                f"{self.type_bits} bits")

    @property
    def message_bits(self) -> str:
        """The id+type fields, before the checksum."""
        return (format(self.object_id, f"0{self.id_bits}b")
                + format(self.type_code, f"0{self.type_bits}b"))

    def to_bits(self) -> str:
        """Full frame: message + CRC-4."""
        message = self.message_bits
        return message + crc4(message)

    def to_packet(self, symbol_width_m: float = 0.1) -> Packet:
        """The physical packet carrying this frame."""
        return Packet.from_bitstring(self.to_bits(),
                                     symbol_width_m=symbol_width_m)

    @property
    def n_bits(self) -> int:
        """Total frame length in bits (message + 4 CRC bits)."""
        return self.id_bits + self.type_bits + 4

    @classmethod
    def from_bits(cls, bits: str, id_bits: int = 6,
                  type_bits: int = 2) -> "FramedPayload":
        """Parse and validate a decoded bit string.

        Raises:
            FrameError: on wrong length or checksum mismatch.
        """
        expected_len = id_bits + type_bits + 4
        if len(bits) != expected_len:
            raise FrameError(
                f"frame must be {expected_len} bits, got {len(bits)}")
        if any(c not in "01" for c in bits):
            raise FrameError(f"frame must be binary, got {bits!r}")
        message, checksum = bits[:-4], bits[-4:]
        if crc4(message) != checksum:
            raise FrameError(
                f"checksum mismatch: computed {crc4(message)}, "
                f"received {checksum}")
        return cls(object_id=int(message[:id_bits], 2),
                   type_code=int(message[id_bits:], 2),
                   id_bits=id_bits, type_bits=type_bits)

    @classmethod
    def try_from_bits(cls, bits: str, id_bits: int = 6,
                      type_bits: int = 2) -> "FramedPayload | None":
        """Like :meth:`from_bits` but returns None on invalid frames."""
        try:
            return cls.from_bits(bits, id_bits=id_bits, type_bits=type_bits)
        except FrameError:
            return None
