"""Codebooks with maximised inter-Hamming distance (Section 4.2).

Under channel distortion the paper falls back from decoding to
*classification*: "Clearly, in this case we will not be able to use 2^N
codes.  We will be constrained to use far less codes making sure that
their inter-Hamming distances are maximized."

This module selects such code sets greedily and provides the distance
tooling the DTW classifier needs to reason about confusability.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["hamming_distance", "min_pairwise_distance", "Codebook",
           "build_max_distance_codebook"]


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of positions where two equal-length codes differ.

    Raises:
        ValueError: if the codes have different lengths.
    """
    if len(a) != len(b):
        raise ValueError(f"codes must have equal length, got {len(a)} and {len(b)}")
    return sum(1 for x, y in zip(a, b) if x != y)


def min_pairwise_distance(codes: Sequence[Sequence[int]]) -> int:
    """Minimum Hamming distance over all pairs (0 for fewer than 2 codes)."""
    if len(codes) < 2:
        return 0
    return min(hamming_distance(a, b)
               for a, b in itertools.combinations(codes, 2))


@dataclass(frozen=True)
class Codebook:
    """A set of equal-length bit codes used for classification.

    Attributes:
        codes: the selected codewords.
        n_bits: code length.
    """

    codes: tuple[tuple[int, ...], ...]
    n_bits: int

    def __post_init__(self) -> None:
        if not self.codes:
            raise ValueError("a codebook needs at least one code")
        for code in self.codes:
            if len(code) != self.n_bits:
                raise ValueError(
                    f"code {code} has length {len(code)}, expected {self.n_bits}")
            if any(b not in (0, 1) for b in code):
                raise ValueError(f"codes must be binary, got {code}")
        if len(set(self.codes)) != len(self.codes):
            raise ValueError("codebook contains duplicate codes")

    @property
    def size(self) -> int:
        """Number of codewords."""
        return len(self.codes)

    @property
    def min_distance(self) -> int:
        """Minimum pairwise Hamming distance of the book."""
        return min_pairwise_distance(self.codes)

    def correctable_errors(self) -> int:
        """Bit errors correctable by nearest-code classification."""
        return max(0, (self.min_distance - 1) // 2)

    def nearest(self, observed: Sequence[int]) -> tuple[tuple[int, ...], int]:
        """Classify an observed bit vector to the nearest codeword.

        Returns:
            ``(codeword, distance)`` of the best match; ties break towards
            the earlier codeword in the book (deterministic).
        """
        best_code = self.codes[0]
        best_dist = hamming_distance(observed, best_code)
        for code in self.codes[1:]:
            d = hamming_distance(observed, code)
            if d < best_dist:
                best_code, best_dist = code, d
        return best_code, best_dist


def build_max_distance_codebook(n_bits: int, n_codes: int) -> Codebook:
    """Greedily pick ``n_codes`` codewords maximising the min distance.

    A farthest-point greedy construction: start from the all-zeros word,
    then repeatedly add the word whose minimum distance to the chosen set
    is largest.  Exact for the small code sizes the paper needs (the
    classification fallback uses "far less" than 2^N codes).

    Args:
        n_bits: code length (kept small: the search is exhaustive).
        n_codes: number of codewords, ``2 <= n_codes <= 2**n_bits``.

    Raises:
        ValueError: if the request is infeasible or too large to search.
    """
    if n_bits < 1 or n_bits > 16:
        raise ValueError(f"n_bits must be in [1, 16], got {n_bits}")
    if not 1 <= n_codes <= 2**n_bits:
        raise ValueError(
            f"cannot pick {n_codes} distinct codes of {n_bits} bits")
    universe = [tuple(int(b) for b in format(i, f"0{n_bits}b"))
                for i in range(2**n_bits)]
    chosen: list[tuple[int, ...]] = [universe[0]]
    while len(chosen) < n_codes:
        best_candidate = None
        best_score = -1
        for cand in universe:
            if cand in chosen:
                continue
            score = min(hamming_distance(cand, c) for c in chosen)
            if score > best_score:
                best_candidate, best_score = cand, score
        assert best_candidate is not None
        chosen.append(best_candidate)
    return Codebook(codes=tuple(chosen), n_bits=n_bits)
