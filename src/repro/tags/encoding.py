"""Symbol alphabet and Manchester coding (Section 4, "Coding").

The channel alphabet has two symbols: **HIGH** (a strongly reflective
strip — aluminium tape) and **LOW** (a weakly reflective strip — black
napkin).  Bits are Manchester coded "to enable an easy and stable
decoding at the receiver":

* bit ``0``  ->  HIGH-LOW
* bit ``1``  ->  LOW-HIGH

Manchester coding guarantees a transition inside every bit, which is what
lets the adaptive decoder track the symbol clock without calibration.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Sequence

__all__ = [
    "Symbol",
    "manchester_encode",
    "manchester_decode",
    "symbols_from_string",
    "symbols_to_string",
    "ManchesterError",
]


class Symbol(Enum):
    """One reflective strip's worth of channel state."""

    HIGH = "H"
    LOW = "L"

    def inverted(self) -> "Symbol":
        """The opposite symbol."""
        return Symbol.LOW if self is Symbol.HIGH else Symbol.HIGH

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ManchesterError(ValueError):
    """Raised when a symbol sequence is not a valid Manchester stream."""


#: bit value -> symbol pair
_BIT_TO_SYMBOLS: dict[int, tuple[Symbol, Symbol]] = {
    0: (Symbol.HIGH, Symbol.LOW),
    1: (Symbol.LOW, Symbol.HIGH),
}

#: symbol pair -> bit value
_SYMBOLS_TO_BIT: dict[tuple[Symbol, Symbol], int] = {
    v: k for k, v in _BIT_TO_SYMBOLS.items()
}


def manchester_encode(bits: Iterable[int]) -> list[Symbol]:
    """Encode a bit sequence into Manchester symbols.

    Args:
        bits: iterable of 0/1 values (booleans accepted).

    Returns:
        A list of ``2 * len(bits)`` symbols.

    Raises:
        ManchesterError: if any element is not a 0/1 value.
    """
    out: list[Symbol] = []
    for i, bit in enumerate(bits):
        if bit not in (0, 1, False, True):
            raise ManchesterError(f"bit {i} is {bit!r}; expected 0 or 1")
        out.extend(_BIT_TO_SYMBOLS[int(bit)])
    return out


def manchester_decode(symbols: Sequence[Symbol]) -> list[int]:
    """Decode Manchester symbols back into bits.

    Args:
        symbols: sequence of symbols; length must be even.

    Returns:
        Decoded bits, one per symbol pair.

    Raises:
        ManchesterError: on odd length or an invalid (HH/LL) pair.
    """
    if len(symbols) % 2 != 0:
        raise ManchesterError(
            f"Manchester stream must have even length, got {len(symbols)}")
    bits: list[int] = []
    for i in range(0, len(symbols), 2):
        pair = (symbols[i], symbols[i + 1])
        bit = _SYMBOLS_TO_BIT.get(pair)
        if bit is None:
            raise ManchesterError(
                f"invalid Manchester pair {pair[0]}{pair[1]} at symbol {i}")
        bits.append(bit)
    return bits


def symbols_from_string(text: str) -> list[Symbol]:
    """Parse a compact symbol string like ``"HLHL"`` (dots are ignored).

    The paper writes packets as e.g. ``'HLHL.LHHL'`` with a dot between
    preamble and data; this parser accepts that notation directly.
    """
    out: list[Symbol] = []
    for i, ch in enumerate(text):
        if ch in ".,- ":
            continue
        if ch.upper() == "H":
            out.append(Symbol.HIGH)
        elif ch.upper() == "L":
            out.append(Symbol.LOW)
        else:
            raise ValueError(f"invalid symbol character {ch!r} at index {i}")
    return out


def symbols_to_string(symbols: Iterable[Symbol]) -> str:
    """Render symbols as a compact ``"HLHL"`` string."""
    return "".join(s.value for s in symbols)
