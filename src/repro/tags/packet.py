"""Packet format: fixed preamble + Manchester-coded data (Fig. 4).

"Each packet has two fields: preamble and data.  The preamble is fixed
and consists of four symbols HIGH-LOW-HIGH-LOW. [...] The Data field
comes after the preamble and includes 2N symbols, representing the
modulated N-bit data."

The symbol width is constant *within* a packet but may differ *between*
packets — each moving object picks its own width, materials and speed,
and the receiver adapts per packet (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .encoding import (
    ManchesterError,
    Symbol,
    manchester_decode,
    manchester_encode,
    symbols_from_string,
    symbols_to_string,
)

__all__ = ["PREAMBLE", "Packet"]

#: The fixed four-symbol preamble: HIGH-LOW-HIGH-LOW.
PREAMBLE: tuple[Symbol, ...] = (
    Symbol.HIGH, Symbol.LOW, Symbol.HIGH, Symbol.LOW,
)


@dataclass(frozen=True)
class Packet:
    """A passive-channel packet.

    Attributes:
        data_bits: the N payload bits.
        symbol_width_m: physical width of one symbol strip (m); constant
            within the packet.
    """

    data_bits: tuple[int, ...]
    symbol_width_m: float = 0.03

    def __post_init__(self) -> None:
        if not self.data_bits:
            raise ValueError("a packet needs at least one data bit")
        if any(b not in (0, 1) for b in self.data_bits):
            raise ValueError(f"data bits must be 0/1, got {self.data_bits}")
        if self.symbol_width_m <= 0.0:
            raise ValueError(
                f"symbol width must be positive, got {self.symbol_width_m}")

    @classmethod
    def from_bits(cls, bits: Sequence[int],
                  symbol_width_m: float = 0.03) -> "Packet":
        """Build a packet from a bit sequence."""
        return cls(data_bits=tuple(int(b) for b in bits),
                   symbol_width_m=symbol_width_m)

    @classmethod
    def from_bitstring(cls, bits: str, symbol_width_m: float = 0.03) -> "Packet":
        """Build a packet from a string like ``"10"``."""
        if not bits or any(c not in "01" for c in bits):
            raise ValueError(f"bit string must be non-empty 0/1, got {bits!r}")
        return cls.from_bits([int(c) for c in bits], symbol_width_m)

    @classmethod
    def from_symbol_string(cls, text: str,
                           symbol_width_m: float = 0.03) -> "Packet":
        """Build a packet from the paper's notation, e.g. ``'HLHL.LHHL'``.

        The leading four symbols must be the fixed preamble; the rest must
        be a valid Manchester stream.
        """
        symbols = symbols_from_string(text)
        if tuple(symbols[:4]) != PREAMBLE:
            raise ValueError(
                f"packet must start with the HLHL preamble, got "
                f"{symbols_to_string(symbols[:4])!r}")
        data_symbols = symbols[4:]
        if not data_symbols:
            raise ValueError("packet has no data symbols after the preamble")
        try:
            bits = manchester_decode(data_symbols)
        except ManchesterError as exc:
            raise ValueError(f"invalid data field: {exc}") from exc
        return cls.from_bits(bits, symbol_width_m)

    @property
    def data_symbols(self) -> list[Symbol]:
        """The 2N Manchester symbols of the data field."""
        return manchester_encode(self.data_bits)

    @property
    def symbols(self) -> list[Symbol]:
        """All symbols: preamble followed by data."""
        return list(PREAMBLE) + self.data_symbols

    @property
    def n_symbols(self) -> int:
        """Total symbol count (4 preamble + 2N data)."""
        return 4 + 2 * len(self.data_bits)

    @property
    def length_m(self) -> float:
        """Physical length of the packet on the object's surface."""
        return self.n_symbols * self.symbol_width_m

    def symbol_string(self) -> str:
        """Paper-style rendering: ``'HLHL.LHHL'``."""
        return (symbols_to_string(PREAMBLE) + "."
                + symbols_to_string(self.data_symbols))

    def bit_string(self) -> str:
        """Payload as a string of 0/1 characters."""
        return "".join(str(b) for b in self.data_bits)

    def with_symbol_width(self, symbol_width_m: float) -> "Packet":
        """Same payload at a different symbol width."""
        return Packet(self.data_bits, symbol_width_m)

    def duration_at_speed(self, speed_mps: float) -> float:
        """Time for the whole packet to cross a point at constant speed."""
        if speed_mps <= 0.0:
            raise ValueError(f"speed must be positive, got {speed_mps}")
        return self.length_m / speed_mps

    def symbol_rate_at_speed(self, speed_mps: float) -> float:
        """Channel symbol rate (symbols/second) at a given speed."""
        if speed_mps <= 0.0:
            raise ValueError(f"speed must be positive, got {speed_mps}")
        return speed_mps / self.symbol_width_m
