"""The staged receive pipeline.

Section 4 presents three progressively weaker ways to extract
information, and Section 5.2 adds a vehicle-specific acquisition phase:

1. (vehicles) detect the car's **long-duration preamble** — hood peak
   followed by windshield valley — to know when to start decoding;
2. **threshold decoding** (clean channel, Section 4.1);
3. **DTW classification** against clean templates (distorted channel,
   Section 4.2);
4. **FFT collision analysis** (overlapping packets, Section 4.3) —
   partial information only.

:class:`ReceiverPipeline` runs the stages in order and reports which
one produced the answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..channel.trace import SignalTrace
from ..engine.records import RecordStage
from .classifier import ClassificationResult, DtwClassifier
from .collision import CollisionAnalyzer, CollisionReport
from .decoder import AdaptiveThresholdDecoder, DecodeResult
from .errors import ClassificationError, DecodeError, PreambleNotFoundError

__all__ = ["PipelineStage", "PipelineResult", "ReceiverPipeline"]

#: Which mechanism produced the pipeline's answer.  An alias of the
#: repo-wide :class:`repro.engine.records.RecordStage` — the pipeline's
#: outcomes (``SATURATED``/``DECODED``/``CLASSIFIED``/``COLLISION``/
#: ``FAILED``) are members of the one shared stage enum, so identity
#: comparisons against either name keep working.
PipelineStage = RecordStage


@dataclass
class PipelineResult:
    """Everything the pipeline learned from one capture.

    Attributes:
        stage: the stage that produced the answer.
        bits: recovered payload ('' when nothing was recovered).
        decode_result: stage-2 output, when acquisition succeeded.
        classification: stage-3 output, when attempted.
        collision_report: stage-4 output, when attempted.
    """

    stage: PipelineStage
    bits: str = ""
    decode_result: DecodeResult | None = None
    classification: ClassificationResult | None = None
    collision_report: CollisionReport | None = None

    @property
    def recovered(self) -> bool:
        """True when a payload (decoded or classified) was recovered."""
        return self.stage in (PipelineStage.DECODED, PipelineStage.CLASSIFIED)


class ReceiverPipeline:
    """Saturation check -> decode -> classify -> collision analysis.

    Attributes:
        decoder: stage-2 threshold decoder.
        classifier: stage-3 DTW classifier (skipped when it has no
            templates).
        collision_analyzer: stage-4 spectral analyser.
        saturation_fraction: captures whose samples rail at/above this
            fraction of full scale for >25 % of the time are declared
            saturated (the paper's "links disappear abruptly").
    """

    def __init__(self, decoder: AdaptiveThresholdDecoder | None = None,
                 classifier: DtwClassifier | None = None,
                 collision_analyzer: CollisionAnalyzer | None = None,
                 saturation_fraction: float = 0.98,
                 adc_max_code: int = 1023) -> None:
        if not 0.5 <= saturation_fraction <= 1.0:
            raise ValueError("saturation fraction must be in [0.5, 1]")
        self.decoder = decoder or AdaptiveThresholdDecoder()
        self.classifier = classifier
        self.collision_analyzer = (collision_analyzer
                                   or CollisionAnalyzer(decoder=self.decoder))
        self.saturation_fraction = saturation_fraction
        self.adc_max_code = adc_max_code

    # ------------------------------------------------------------------
    def is_saturated(self, trace: SignalTrace) -> bool:
        """Railed-capture detection on the raw codes."""
        if len(trace.samples) == 0:
            return False
        rail = self.saturation_fraction * self.adc_max_code
        frac_railed = float((trace.samples >= rail).mean())
        return frac_railed > 0.25

    def process(self, trace: SignalTrace,
                n_data_symbols: int | None = None,
                expected_bits: str | None = None) -> PipelineResult:
        """Run the staged receive chain on one capture.

        Args:
            trace: RSS capture.
            n_data_symbols: expected data-field length, if known.
            expected_bits: when provided, a stage-2 decode only counts
                if the payload matches (deployments validate against a
                known code list or checksum).
        """
        if self.is_saturated(trace):
            return PipelineResult(stage=PipelineStage.SATURATED)

        # Stage 2: adaptive-threshold decoding.
        decode_result: DecodeResult | None = None
        try:
            decode_result = self.decoder.decode(
                trace, n_data_symbols=n_data_symbols)
            if decode_result.success:
                bits = decode_result.bit_string()
                if expected_bits is None or bits == expected_bits:
                    return PipelineResult(stage=PipelineStage.DECODED,
                                          bits=bits,
                                          decode_result=decode_result)
        except (PreambleNotFoundError, DecodeError):
            decode_result = None

        # Stage 3: DTW classification against clean templates.
        classification: ClassificationResult | None = None
        if self.classifier is not None and self.classifier.templates:
            try:
                classification = self.classifier.classify(trace)
            except ClassificationError:
                classification = None
            if classification is not None and classification.confident:
                return PipelineResult(stage=PipelineStage.CLASSIFIED,
                                      bits=classification.label,
                                      decode_result=decode_result,
                                      classification=classification)

        # Stage 4: collision analysis — partial information.
        report = self.collision_analyzer.analyze(
            trace, n_data_symbols=n_data_symbols)
        if report.collision_detected:
            return PipelineResult(stage=PipelineStage.COLLISION,
                                  decode_result=decode_result,
                                  classification=classification,
                                  collision_report=report)

        return PipelineResult(stage=PipelineStage.FAILED,
                              decode_result=decode_result,
                              classification=classification,
                              collision_report=report)
