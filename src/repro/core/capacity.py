"""Channel capacity analysis (Section 4.1 and Fig. 6).

The paper's designer-facing questions:

* "What symbol width should the designer use on objects to be able to
  decode information?"  -> :func:`max_decodable_height` /
  :func:`min_decodable_width` map the decodable region of Fig. 6(a).
* "And given this symbol width, what channel capacity can the designer
  expect?" -> :func:`throughput_symbols_per_second` reproduces the
  Fig. 6(b) curve (throughput = speed / narrowest decodable width).

Probes run the full simulation stack — scene, optics, receiver, decoder
— on the paper's indoor setup: LED lamp and receiver at equal heights,
12 cm apart, dark room, objects at 8 cm/s, with decodability decided by
majority vote over noise seeds.

Also here: the "maximal supported speed of an object" analysis promised
in Section 6 — bounded by the detector's response time and the
receiver's sampling rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from ..channel.mobility import ConstantSpeed
from ..channel.scene import MovingObject, PassiveScene
from ..channel.simulator import ChannelSimulator, SimulatorConfig
from ..hardware.frontend import FovCap, ReceiverFrontEnd
from ..hardware.photodiode import PdGain, Photodiode
from ..optics.geometry import Vec3
from ..optics.sources import LedLamp
from ..tags.packet import Packet
from ..tags.surface import TagSurface
from .decoder import AdaptiveThresholdDecoder, DecoderConfig
from .errors import DecodeError, PreambleNotFoundError

__all__ = ["IndoorSetup", "probe_decodable", "min_decodable_width",
           "max_decodable_height", "throughput_symbols_per_second",
           "max_supported_speed_mps"]


@dataclass(frozen=True)
class IndoorSetup:
    """The controlled dark-room configuration of Sections 4.1-4.3.

    Attributes:
        lamp_intensity_cd: the LED lamp's on-axis intensity.
        lamp_offset_m: horizontal lamp-receiver distance (12 cm in the
            paper's Fig. 5 setup).
        speed_mps: object speed (8 cm/s in the Fig. 6 experiments).
        data_bits: payload used by the decodability probes.
        pd_gain: photodiode gain (G1: dark room, maximum sensitivity).
        seeds: noise seeds for the majority vote.
        threshold_rule: decoder thresholding variant.
    """

    lamp_intensity_cd: float = 2.0
    lamp_offset_m: float = 0.12
    speed_mps: float = 0.08
    data_bits: str = "10"
    pd_gain: PdGain = PdGain.G1
    seeds: tuple[int, ...] = (11, 23, 47)
    threshold_rule: str = "midpoint"

    def frontend(self, seed: int | None = None) -> ReceiverFrontEnd:
        """The indoor receiver: capped OPT101 (narrow acceptance)."""
        return ReceiverFrontEnd(
            detector=Photodiode.opt101(gain=self.pd_gain),
            cap=FovCap.paper_cap(),
            seed=seed,
        )

    def packet(self, symbol_width_m: float) -> Packet:
        """The probe packet at a given symbol width."""
        return Packet.from_bitstring(self.data_bits,
                                     symbol_width_m=symbol_width_m)

    def scene(self, height_m: float, symbol_width_m: float,
              speed_mps: float | None = None) -> PassiveScene:
        """Assemble the dark-room scene for one probe."""
        if height_m <= 0.0:
            raise ValueError(f"height must be positive, got {height_m}")
        if symbol_width_m <= 0.0:
            raise ValueError(
                f"symbol width must be positive, got {symbol_width_m}")
        speed = speed_mps if speed_mps is not None else self.speed_mps
        packet = self.packet(symbol_width_m)
        tag = TagSurface.from_packet(packet)
        # Start upstream so the capture window sees quiet ground first.
        start = -(0.6 * height_m + 3.0 * symbol_width_m)
        lamp = LedLamp(position=Vec3(self.lamp_offset_m, 0.0, height_m),
                       luminous_intensity=self.lamp_intensity_cd)
        return PassiveScene(
            source=lamp,
            receiver_height_m=height_m,
            objects=[MovingObject(surface=tag,
                                  motion=ConstantSpeed(speed, start),
                                  name="probe-tag")],
        )

    def sample_rate_hz(self, symbol_width_m: float,
                       speed_mps: float | None = None) -> float:
        """A rate giving ~40 samples per symbol, clamped to [200, 2000]."""
        speed = speed_mps if speed_mps is not None else self.speed_mps
        symbol_duration = symbol_width_m / speed
        return float(np.clip(40.0 / symbol_duration, 200.0, 2000.0))


def probe_decodable(setup: IndoorSetup, height_m: float,
                    symbol_width_m: float,
                    speed_mps: float | None = None) -> bool:
    """Whether a (height, width) point decodes correctly.

    Majority vote across the setup's noise seeds: a point counts as
    decodable when more than half of the simulated passes recover the
    exact payload.
    """
    packet = setup.packet(symbol_width_m)
    scene = setup.scene(height_m, symbol_width_m, speed_mps)
    decoder = AdaptiveThresholdDecoder(
        DecoderConfig(threshold_rule=setup.threshold_rule))
    fs = setup.sample_rate_hz(symbol_width_m, speed_mps)
    successes = 0
    for seed in setup.seeds:
        sim = ChannelSimulator(
            scene, setup.frontend(seed=seed),
            SimulatorConfig(sample_rate_hz=fs, seed=seed))
        trace = sim.capture_pass()
        try:
            result = decoder.decode(
                trace, n_data_symbols=2 * len(packet.data_bits))
        except (PreambleNotFoundError, DecodeError):
            continue
        if result.bit_string() == packet.bit_string():
            successes += 1
    return successes * 2 > len(setup.seeds)


def min_decodable_width(setup: IndoorSetup, height_m: float,
                        width_lo_m: float = 0.005,
                        width_hi_m: float = 0.12,
                        tolerance_m: float = 0.002) -> float | None:
    """Narrowest decodable symbol width at a height (bisection).

    Returns None when even the widest probe fails (the height is beyond
    the channel's reach — the flat ceiling of Fig. 6(a)).
    """
    if not probe_decodable(setup, height_m, width_hi_m):
        return None
    if probe_decodable(setup, height_m, width_lo_m):
        return width_lo_m
    lo, hi = width_lo_m, width_hi_m
    while hi - lo > tolerance_m:
        mid = (lo + hi) / 2.0
        if probe_decodable(setup, height_m, mid):
            hi = mid
        else:
            lo = mid
    return hi


def max_decodable_height(setup: IndoorSetup, symbol_width_m: float,
                         height_lo_m: float = 0.18,
                         height_hi_m: float = 1.0,
                         tolerance_m: float = 0.01) -> float | None:
    """Greatest decodable receiver height for a symbol width (bisection).

    Returns None when even the lowest probe height fails.
    """
    if not probe_decodable(setup, height_lo_m, symbol_width_m):
        return None
    if probe_decodable(setup, height_hi_m, symbol_width_m):
        return height_hi_m
    lo, hi = height_lo_m, height_hi_m
    while hi - lo > tolerance_m:
        mid = (lo + hi) / 2.0
        if probe_decodable(setup, mid, symbol_width_m):
            lo = mid
        else:
            hi = mid
    return lo


def throughput_symbols_per_second(setup: IndoorSetup, height_m: float,
                                  **width_search_kwargs) -> float | None:
    """Channel throughput at a height (Fig. 6(b)).

    "Using a constant speed of 8 cm/s, we have identified the narrowest
    symbol width that makes the packet decodable" — throughput is then
    ``speed / width`` in symbols per second.
    """
    width = min_decodable_width(setup, height_m, **width_search_kwargs)
    if width is None:
        return None
    return setup.speed_mps / width


def max_supported_speed_mps(symbol_width_m: float,
                            detector_bandwidth_hz: float,
                            sample_rate_hz: float,
                            samples_per_symbol: int = 6,
                            bandwidth_margin: float = 3.0) -> float:
    """Maximal object speed the receiver chain can follow (Section 6).

    "This is mainly determined by the PD's response time to light
    changes and the receiver's sampling rate."  Two ceilings apply:

    * sampling: the ADC must place ``samples_per_symbol`` samples on
      each symbol -> ``v <= w * fs / samples_per_symbol``;
    * response time: the detector's first-order response must settle
      within a symbol -> symbol rate at most ``bandwidth / margin``
      -> ``v <= w * bandwidth / margin``.

    Args:
        symbol_width_m: physical symbol width on the object.
        detector_bandwidth_hz: detector -3 dB bandwidth.
        sample_rate_hz: ADC sampling rate.
        samples_per_symbol: minimum samples the decoder needs per
            symbol window.
        bandwidth_margin: settle factor (3 time-constants ~ 95 %).
    """
    if symbol_width_m <= 0.0:
        raise ValueError("symbol width must be positive")
    if detector_bandwidth_hz <= 0.0 or sample_rate_hz <= 0.0:
        raise ValueError("bandwidth and sample rate must be positive")
    if samples_per_symbol < 1:
        raise ValueError("samples_per_symbol must be >= 1")
    if bandwidth_margin <= 0.0:
        raise ValueError("bandwidth margin must be positive")
    v_sampling = symbol_width_m * sample_rate_hz / samples_per_symbol
    v_response = symbol_width_m * detector_bandwidth_hz / bandwidth_margin
    return min(v_sampling, v_response)
