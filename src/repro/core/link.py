"""High-level passive link API.

:class:`PassiveLink` is the library's front door: pick an ambient
source, a receiver and a geometry, then ``transmit()`` a payload by
sweeping its tag under the receiver and decoding what arrives.  It wires
together the scene builder, channel simulator, receiver front end and
the adaptive decoder, and reports a link budget alongside the decode.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

import numpy as np

from ..channel.distortion import CLEAR, Atmosphere
from ..channel.mobility import ConstantSpeed, MotionProfile
from ..channel.scene import MovingObject, PassiveScene
from ..channel.simulator import ChannelSimulator, SimulatorConfig
from ..channel.trace import SignalTrace
from ..hardware.frontend import ReceiverFrontEnd
from ..optics.materials import BLACK_PAPER_GROUND, Material
from ..optics.sources import AmbientLightSource
from ..tags.packet import Packet
from ..tags.surface import TagSurface
from .decoder import AdaptiveThresholdDecoder, DecodeResult, DecoderConfig
from .errors import DecodeError, PreambleNotFoundError

__all__ = ["LinkBudget", "LinkReport", "PassiveLink"]


@dataclass(frozen=True)
class LinkBudget:
    """Illuminance accounting for one link configuration.

    Attributes:
        ambient_lux: noise-floor level at the receiver.
        high_signal_lux: ambient-equivalent signal while a HIGH strip
            fills the footprint.
        low_signal_lux: same for a LOW strip.
        swing_lux: HIGH - LOW contrast before blur and noise.
        saturation_lux: the receiver's clip level.
        saturation_headroom: clip level / (ambient + high); < 1 means
            the link rails on HIGH symbols.
        estimated_snr: swing over the receiver's input-referred noise.
    """

    ambient_lux: float
    high_signal_lux: float
    low_signal_lux: float
    swing_lux: float
    saturation_lux: float
    saturation_headroom: float
    estimated_snr: float

    def feasible(self, min_snr: float = 4.0) -> bool:
        """Quick feasibility verdict: unsaturated and enough SNR."""
        return self.saturation_headroom > 1.0 and self.estimated_snr >= min_snr


@dataclass
class LinkReport:
    """Result of one ``transmit()`` call.

    Attributes:
        sent_bits: the payload that was physically encoded.
        decoded_bits: what the decoder recovered ('' on failure).
        success: exact payload match.
        trace: the captured RSS stream.
        decode_result: full decoder output (None when acquisition
            failed).
        symbol_rate_sps: channel symbol rate during the pass.
        budget: the link budget for this configuration.
    """

    sent_bits: str
    decoded_bits: str
    success: bool
    trace: SignalTrace
    decode_result: DecodeResult | None
    symbol_rate_sps: float
    budget: LinkBudget


class PassiveLink:
    """An end-to-end passive communication link.

    Attributes:
        source: the ambient emitter.
        frontend: the receiver chain.
        receiver_height_m: receiver height above the tag plane.
        ground: uncovered-plane material.
        atmosphere: air state.
        decoder: decoding algorithm (adaptive thresholds by default).
        sample_rate_hz: RSS sampling rate.
    """

    def __init__(self, source: AmbientLightSource,
                 frontend: ReceiverFrontEnd,
                 receiver_height_m: float,
                 ground: Material = BLACK_PAPER_GROUND,
                 atmosphere: Atmosphere = CLEAR,
                 decoder: AdaptiveThresholdDecoder | None = None,
                 sample_rate_hz: float = 2_000.0,
                 seed: int | None = 7) -> None:
        self.source = source
        self.frontend = frontend
        self.receiver_height_m = receiver_height_m
        self.ground = ground
        self.atmosphere = atmosphere
        self.decoder = decoder or AdaptiveThresholdDecoder()
        self.sample_rate_hz = sample_rate_hz
        self.seed = seed

    # ------------------------------------------------------------------
    def build_scene(self, surface: TagSurface,
                    motion: MotionProfile) -> PassiveScene:
        """Scene for one pass of one tag."""
        return PassiveScene(
            source=self.source,
            receiver_height_m=self.receiver_height_m,
            objects=[MovingObject(surface=surface, motion=motion,
                                  name=surface.label)],
            ground=self.ground,
            atmosphere=self.atmosphere,
        )

    def simulator(self, scene: PassiveScene,
                  include_noise: bool = True) -> ChannelSimulator:
        """Channel simulator bound to this link's receiver."""
        return ChannelSimulator(
            scene, self.frontend,
            SimulatorConfig(sample_rate_hz=self.sample_rate_hz,
                            include_noise=include_noise, seed=self.seed))

    # ------------------------------------------------------------------
    def link_budget(self, packet: Packet) -> LinkBudget:
        """Static link budget for a packet on this link.

        Uses two probe scenes — footprint fully covered by a HIGH strip
        and by a LOW strip — to measure the contrast the receiver will
        see before blur and noise.
        """
        from ..optics.materials import ALUMINUM_TAPE, BLACK_NAPKIN
        from ..optics.reflection import effective_reflectance

        scene = self.build_scene(
            TagSurface.from_packet(packet),
            ConstantSpeed(1.0, -10.0))
        sim = self.simulator(scene, include_noise=False)
        geometry = scene.illumination_geometry()
        coupling = sim.ambient_equivalent_coupling()
        e_ground = float(np.asarray(
            self.source.ground_illuminance(0.0, 0.0)))
        ambient = scene.nominal_noise_floor_lux()
        atm = self.atmosphere.signal_attenuation(self.receiver_height_m)
        tx = self.frontend.signal_transmission

        high = (effective_reflectance(ALUMINUM_TAPE, geometry)
                * e_ground * coupling * atm * tx)
        low = (effective_reflectance(BLACK_NAPKIN, geometry)
               * e_ground * coupling * atm * tx)
        ambient_at_detector = ambient * self.frontend.ambient_transmission
        sat = self.frontend.detector.saturation_lux
        total_high = ambient_at_detector + high
        headroom = sat / total_high if total_high > 0.0 else float("inf")
        # Input-referred receiver noise at the operating level.
        level = min(1.0, total_high / sat)
        sigma_fullscale = float(self.frontend.detector.noise_sigma(level))
        noise_lux = sigma_fullscale * sat
        snr = (high - low) / noise_lux if noise_lux > 0.0 else float("inf")
        return LinkBudget(
            ambient_lux=ambient,
            high_signal_lux=high,
            low_signal_lux=low,
            swing_lux=high - low,
            saturation_lux=sat,
            saturation_headroom=headroom,
            estimated_snr=snr,
        )

    # ------------------------------------------------------------------
    def transmit(self, payload: str | Packet, speed_mps: float,
                 start_position_m: float | None = None,
                 symbol_width_m: float | None = None) -> LinkReport:
        """Sweep a payload's tag under the receiver and decode it.

        Args:
            payload: bit string (e.g. ``"10"``) or a prepared packet.
            speed_mps: constant pass speed.
            start_position_m: leading-edge start; defaults to upstream
                of the footprint with margin.
            symbol_width_m: strip width for string payloads; defaults to
                roughly half the footprint diameter so the symbols are
                resolvable at this link's height (explicit packets keep
                their own width).
        """
        if isinstance(payload, Packet):
            packet = payload
        else:
            if symbol_width_m is None:
                # Resolvable-by-construction default: the footprint's
                # effective blur width at this height.
                fov = self.frontend.effective_fov
                footprint = (2.0 * self.receiver_height_m
                             * math.tan(fov.half_angle_rad))
                symbol_width_m = max(0.01, round(0.7 * footprint, 3))
            packet = Packet.from_bitstring(payload,
                                           symbol_width_m=symbol_width_m)
        if speed_mps <= 0.0:
            raise ValueError(f"speed must be positive, got {speed_mps}")
        tag = TagSurface.from_packet(packet)
        if start_position_m is None:
            start_position_m = -(0.6 * self.receiver_height_m
                                 + 3.0 * packet.symbol_width_m)
        scene = self.build_scene(
            tag, ConstantSpeed(speed_mps, start_position_m))
        sim = self.simulator(scene)
        trace = sim.capture_pass()

        decode_result: DecodeResult | None = None
        decoded = ""
        try:
            decode_result = self.decoder.decode(
                trace, n_data_symbols=2 * len(packet.data_bits))
            decoded = decode_result.bit_string()
        except (PreambleNotFoundError, DecodeError):
            pass

        return LinkReport(
            sent_bits=packet.bit_string(),
            decoded_bits=decoded,
            success=decoded == packet.bit_string() and decoded != "",
            trace=trace,
            decode_result=decode_result,
            symbol_rate_sps=packet.symbol_rate_at_speed(speed_mps),
            budget=self.link_budget(packet),
        )
