"""The adaptive-threshold decoder (Section 4.1).

The receiver turns the RSS waveform into symbols with two per-packet
thresholds and **no calibration**:

* Find the first two peaks and the first valley of the preamble —
  points A, B, C in Fig. 5(a) — then set

  ``tau_r = ((rA - rB) + (rC - rB)) / 2``      (magnitude threshold)
  ``tau_t = ((tB - tA) + (tC - tB)) / 2``      (symbol period)

* Group subsequent samples into windows of length ``tau_t``; a window
  whose maximum exceeds the magnitude threshold is HIGH, else LOW.

The thresholds are per-packet because "we do not modulate information
with a common transmitter, but we rather let each packet determine its
own parameters: symbol width, materials used and speed".

``tau_r`` as written is a peak-to-valley *swing*; comparing a window max
against it directly implicitly assumes the valley level sits near zero
(true for the paper's normalised dark-room plots).  The faithful rule is
available as ``threshold_rule="paper"``; the default ``"midpoint"`` rule
compares against ``rB + tau_r / 2``, which is identical for
valley-anchored signals and strictly more robust on raw ADC counts with
a non-zero pedestal (see DESIGN.md Section 5 and the threshold-rule
ablation bench).
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

import numpy as np

from ..channel.trace import SignalTrace
from ..dsp.filters import moving_average
from ..dsp.peaks import Extremum, find_peaks_and_valleys, first_preamble_points
from ..exec.graph import ExecStage, StageTrace, maybe_stage
from ..tags.encoding import ManchesterError, Symbol, manchester_decode
from ..tags.packet import PREAMBLE
from .errors import DecodeError, PreambleNotFoundError

__all__ = ["DecoderConfig", "SymbolWindow", "DecodeResult",
           "AdaptiveThresholdDecoder"]

#: The preamble's known symbol pattern as HIGH flags (H, L, H, L).
_EXPECTED_HIGH = np.array([True, False, True, False])


def _window_slices(times: np.ndarray, starts: np.ndarray,
                   ends: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                              np.ndarray]:
    """Sample-index bounds for many ``[start, end)`` time windows.

    Vector form of the bounds used by ``_window_max``/``_window_range``:
    ``valid`` marks windows containing at least one sample.
    """
    i0 = np.searchsorted(times, starts, side="left")
    i1 = np.searchsorted(times, ends, side="left")
    return i0, i1, (i1 > i0) & (i0 < len(times))


def _segment_reduce(ufunc: np.ufunc, values: np.ndarray, pad: float,
                    i0: np.ndarray, i1: np.ndarray) -> np.ndarray:
    """Apply ``ufunc`` over many ``values[i0:i1]`` segments at once.

    Segments are evaluated with one ``ufunc.reduceat`` call on start/end
    index pairs interleaved into a single index vector (the odd-position
    results cover the gaps *between* windows and are discarded).  A
    sentinel ``pad`` element keeps an end index equal to ``len(values)``
    legal.  Entries for empty segments (``i1 <= i0``) are meaningless —
    callers must mask them with the ``valid`` flags of
    :func:`_window_slices`.
    """
    if i0.size == 0:
        return np.empty(i0.shape)
    padded = np.append(values, pad)
    idx = np.empty(i0.size * 2, dtype=np.intp)
    idx[0::2] = i0.ravel()
    idx[1::2] = i1.ravel()
    return ufunc.reduceat(padded, idx)[0::2].reshape(i0.shape)


@dataclass(frozen=True)
class DecoderConfig:
    """Tuning knobs of the adaptive decoder.

    Attributes:
        threshold_rule: ``"midpoint"`` (robust) or ``"paper"`` (literal
            tau_r comparison) — see the module docstring.
        smoothing_window_s: pre-smoothing moving-average width; None
            picks a width that suppresses ADC noise without touching
            the preamble peaks (1/20 of the preamble period estimate is
            ideal, but the period is unknown before acquisition, so a
            small fixed fraction of the trace is used).
        min_prominence_fraction: peak prominence threshold, relative to
            the trace's peak-to-peak span.
        max_symbols: safety cap on emitted symbols in auto-length mode.
        window_shrink_fraction: fraction trimmed from *each side* of a
            decision window before taking its maximum.  FoV blur makes
            symbol transitions gradual; a misaligned full-width window
            catches the neighbouring HIGH's shoulder and misreads a LOW.
            0 reproduces the paper's literal full-window max.
        clock_refinement: refine (tau_t, phase) against the known HLHL
            preamble after the A/B/C estimate.  Peak timestamps on
            blurred, noisy tops jitter by a few milliseconds; the error
            accumulates across data windows.  The refinement stays
            within the paper's constraint — it uses only the fixed
            preamble, no calibration — and falls back to the raw
            estimate when no candidate reproduces HLHL.
        clock_search_span: relative tau_t search range (+-).
        min_preamble_swing_fraction: acquisition sanity bound — the
            candidate preamble's swing (tau_r) must be at least this
            fraction of the trace's full range, or the triple is
            rejected as noise.  Kept well below 1 because FoV blur
            attenuates the preamble's single-symbol peaks relative to
            double-HIGH runs in the data field.
    """

    threshold_rule: str = "midpoint"
    smoothing_window_s: float | None = None
    min_prominence_fraction: float = 0.2
    max_symbols: int = 256
    window_shrink_fraction: float = 0.22
    clock_refinement: bool = True
    clock_search_span: float = 0.15
    min_preamble_swing_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.threshold_rule not in ("midpoint", "paper"):
            raise ValueError(
                f"threshold_rule must be 'midpoint' or 'paper', "
                f"got {self.threshold_rule!r}")
        if not 0.0 < self.min_prominence_fraction < 1.0:
            raise ValueError("prominence fraction must be in (0, 1)")
        if self.max_symbols < 1:
            raise ValueError("max_symbols must be >= 1")
        if not 0.0 <= self.window_shrink_fraction < 0.5:
            raise ValueError("window shrink fraction must be in [0, 0.5)")
        if not 0.0 < self.clock_search_span < 0.5:
            raise ValueError("clock search span must be in (0, 0.5)")
        if not 0.0 < self.min_preamble_swing_fraction < 1.0:
            raise ValueError("preamble swing fraction must be in (0, 1)")


@dataclass(frozen=True)
class SymbolWindow:
    """One tau_t-long decision window.

    Attributes:
        t_start_s: window start time.
        t_end_s: window end time.
        max_value: maximum RSS inside the window.
        symbol: the decision.
    """

    t_start_s: float
    t_end_s: float
    max_value: float
    symbol: Symbol


@dataclass
class DecodeResult:
    """Everything the decoder extracted from one packet.

    Attributes:
        symbols: decoded data-field symbols (after the preamble).
        bits: Manchester-decoded payload, or None when the symbol
            stream is not a valid Manchester sequence.
        tau_r: magnitude threshold (swing units, per the paper).
        tau_t: symbol period estimate (s).
        threshold_level: absolute RSS level used for HIGH/LOW decisions.
        anchor_points: the (A, B, C) preamble extrema.
        windows: the data-field decision windows.
        preamble_verified: whether re-decoding the preamble region with
            the derived thresholds reproduces HLHL.
    """

    symbols: list[Symbol]
    bits: list[int] | None
    tau_r: float
    tau_t: float
    threshold_level: float
    anchor_points: tuple[Extremum, Extremum, Extremum]
    windows: list[SymbolWindow] = field(default_factory=list)
    preamble_verified: bool = False

    @property
    def success(self) -> bool:
        """True when a valid Manchester payload was recovered."""
        return self.bits is not None and len(self.bits) > 0

    def symbol_string(self) -> str:
        """Data symbols in the paper's 'HLHL' notation."""
        return "".join(s.value for s in self.symbols)

    def bit_string(self) -> str:
        """Payload bits as '0'/'1' characters ('' when decoding failed)."""
        if self.bits is None:
            return ""
        return "".join(str(b) for b in self.bits)


class AdaptiveThresholdDecoder:
    """Implements the paper's calibration-free RSS decoder."""

    def __init__(self, config: DecoderConfig | None = None) -> None:
        self.config = config or DecoderConfig()

    # ------------------------------------------------------------------
    def _smoothing_scales(self, trace: SignalTrace) -> list[int]:
        """Candidate smoothing windows, finest first."""
        cfg = self.config
        if cfg.smoothing_window_s is not None:
            window = max(1, int(round(cfg.smoothing_window_s
                                      * trace.sample_rate_hz)))
            return [window]
        n = len(trace.samples)
        scales = [max(3, n // 200), max(5, n // 64), max(7, n // 32)]
        # Deduplicate while preserving order.
        out: list[int] = []
        for s in scales:
            if s not in out:
                out.append(s)
        return out

    def _plausible_preamble(self,
                            points: tuple[Extremum, Extremum, Extremum],
                            span: float, noise_sigma: float) -> bool:
        """Sanity checks that reject noise-triggered anchor triples.

        The preamble's HIGH-LOW swing is the dominant feature of a tag
        pass, and its two half-periods are equal (constant symbol width
        and, during the preamble, constant speed): require the swing to
        be a substantial fraction of the trace range, to clear the raw
        noise floor, and the A-B / B-C spacings to be consistent.
        """
        a, b, c = points
        tau_r = ((a.value - b.value) + (c.value - b.value)) / 2.0
        if tau_r < self.config.min_preamble_swing_fraction * span:
            return False
        # A real packet's swing towers over the sample-to-sample noise;
        # smoothed noise wiggles do not.
        if tau_r < 4.0 * noise_sigma:
            return False
        d1 = b.time_s - a.time_s
        d2 = c.time_s - b.time_s
        if d1 <= 0.0 or d2 <= 0.0:
            return False
        return abs(d1 - d2) <= 0.6 * min(d1, d2)

    def _acquire(self, trace: SignalTrace,
                 stage_trace: StageTrace | None = None,
                 ) -> tuple[tuple[Extremum, Extremum, Extremum], np.ndarray]:
        """Multi-scale preamble acquisition.

        Small signals (Fig. 15's ~15-count swings) need heavier
        smoothing before their preamble outgrows the noise; clean strong
        signals must not be over-smoothed or narrow symbols blur away.
        Scales are tried finest-first and the first plausible triple
        wins; the accepted smoothed waveform is reused for the decision
        windows so thresholds and decisions see the same signal.

        When profiled, the smoothing passes count as the ``normalize``
        stage and the extrema search as ``acquire``.

        Raises:
            PreambleNotFoundError: when no scale yields a plausible
                peak-valley-peak triple.
        """
        last_reason = "trace is constant; no preamble"
        raw = np.asarray(trace.samples, dtype=float)
        if len(raw) == 0:
            # Streaming probes degenerate windows (empty suffixes,
            # sub-symbol fragments); acquisition must answer "no
            # preamble", not crash on an empty max().
            raise PreambleNotFoundError("empty trace; no preamble")
        if len(raw) > 3:
            noise_sigma = float(np.std(np.diff(raw))) / math.sqrt(2.0)
        else:
            noise_sigma = 0.0
        for window in self._smoothing_scales(trace):
            with maybe_stage(stage_trace, ExecStage.NORMALIZE):
                smooth = moving_average(trace.samples, window)
            with maybe_stage(stage_trace, ExecStage.ACQUIRE):
                span = float(smooth.max() - smooth.min())
                if span <= 0.0:
                    continue
                extrema = find_peaks_and_valleys(
                    smooth, trace.sample_rate_hz, trace.start_time_s,
                    min_prominence=(self.config.min_prominence_fraction
                                    * span))
                points = first_preamble_points(extrema)
                if points is None:
                    last_reason = (f"no peak-valley-peak pattern among "
                                   f"{len(extrema)} extrema")
                    continue
                if not self._plausible_preamble(points, span, noise_sigma):
                    last_reason = ("candidate preamble rejected: swing, "
                                   "noise floor or spacing implausible")
                    continue
                return points, smooth
        raise PreambleNotFoundError(last_reason)

    def acquire_preamble(self, trace: SignalTrace,
                         ) -> tuple[Extremum, Extremum, Extremum]:
        """Find the A/B/C anchor points of the preamble.

        Raises:
            PreambleNotFoundError: when no peak-valley-peak triple with
                sufficient prominence exists.
        """
        points, _ = self._acquire(trace)
        return points

    @staticmethod
    def thresholds(points: tuple[Extremum, Extremum, Extremum],
                   ) -> tuple[float, float]:
        """Compute (tau_r, tau_t) from the anchor points — Section 4.1."""
        a, b, c = points
        tau_r = ((a.value - b.value) + (c.value - b.value)) / 2.0
        tau_t = ((b.time_s - a.time_s) + (c.time_s - b.time_s)) / 2.0
        if tau_r <= 0.0:
            raise PreambleNotFoundError(
                f"non-positive magnitude threshold tau_r={tau_r:.3g}; "
                "anchor points are not a real peak-valley-peak triple")
        if tau_t <= 0.0:
            raise PreambleNotFoundError(
                f"non-positive period tau_t={tau_t:.3g}")
        return tau_r, tau_t

    def _threshold_level(self, tau_r: float, valley_value: float) -> float:
        if self.config.threshold_rule == "paper":
            return tau_r
        return valley_value + tau_r / 2.0

    def _window_max(self, smooth: np.ndarray, times: np.ndarray,
                    w_start: float, w_end: float) -> float | None:
        """Max of the smoothed signal in [w_start, w_end), or None."""
        i0 = int(np.searchsorted(times, w_start, side="left"))
        i1 = int(np.searchsorted(times, w_end, side="left"))
        if i1 <= i0 or i0 >= len(smooth):
            return None
        return float(smooth[i0:i1].max())

    def _window_range(self, smooth: np.ndarray, times: np.ndarray,
                      w_start: float, w_end: float) -> float | None:
        """Peak-to-peak excursion inside [w_start, w_end), or None."""
        i0 = int(np.searchsorted(times, w_start, side="left"))
        i1 = int(np.searchsorted(times, w_end, side="left"))
        if i1 <= i0 or i0 >= len(smooth):
            return None
        segment = smooth[i0:i1]
        return float(segment.max() - segment.min())

    def _refine_clock(self, smooth: np.ndarray, times: np.ndarray,
                      points: tuple[Extremum, Extremum, Extremum],
                      tau_t: float, tau_r: float, level: float,
                      n_data_symbols: int | None = None,
                      ) -> tuple[float, float]:
        """Search (tau_t, phase) that best reproduces the HLHL preamble.

        Candidates are scored on two terms using only per-packet
        information:

        * the worst signed margin of the four *preamble* windows against
          their known HLHL pattern (must be positive);
        * the *flatness* of the data windows — the payload is unknown,
          but under the correct clock each (shrunk) window sits inside
          one symbol where the signal is locally flat, while a drifting
          clock centres symbol transitions inside windows, inflating
          their internal peak-to-peak excursion.

        The whole scale x delta x window search is evaluated as one
        broadcast tensor (window extrema via ``_segment_reduce``); it
        returns bit-identical results to the literal triple loop kept
        as :meth:`_refine_clock_reference`.

        Returns:
            ``(tau_t, anchor)`` where ``anchor`` is the start time of
            preamble symbol 1; data windows begin at ``anchor + 4 tau_t``.
        """
        base_anchor = points[0].time_s - 0.5 * tau_t
        span = self.config.clock_search_span
        n_probe = min(n_data_symbols if n_data_symbols else 8, 12)

        scales = np.linspace(1.0 - span, 1.0 + span, 13)
        rel_deltas = np.linspace(-0.35, 0.35, 15)
        cand_tau = tau_t * scales
        shrink = self.config.window_shrink_fraction * cand_tau
        anchors = base_anchor + rel_deltas[None, :] * cand_tau[:, None]

        tau_c = cand_tau[:, None, None]
        shrink_c = shrink[:, None, None]
        anchor_c = anchors[:, :, None]

        # Preamble windows k = 0..3, expected H, L, H, L: the candidate
        # survives only when every window exists and every margin
        # against `level` is positive.
        ks = np.arange(4.0)
        i0, i1, valid = _window_slices(
            times, anchor_c + ks * tau_c + shrink_c,
            anchor_c + (ks + 1.0) * tau_c - shrink_c)
        w_max = _segment_reduce(np.maximum, smooth, -np.inf, i0, i1)
        margins = np.where(_EXPECTED_HIGH, w_max - level, level - w_max)
        min_margin = margins.min(axis=-1)
        ok = valid.all(axis=-1) & (min_margin > 0.0)
        if not ok.any():
            return tau_t, base_anchor

        # Data-window roughness: mean internal peak-to-peak excursion of
        # the probe windows before the first one falling off the trace.
        data_start = anchor_c + 4.0 * tau_c
        kd = np.arange(float(max(n_probe, 0)))
        j0, j1, d_valid = _window_slices(
            times, data_start + kd * tau_c + shrink_c,
            data_start + (kd + 1.0) * tau_c - shrink_c)
        seg_max = _segment_reduce(np.maximum, smooth, -np.inf, j0, j1)
        seg_min = _segment_reduce(np.minimum, smooth, np.inf, j0, j1)
        ranges = np.where(d_valid, seg_max - seg_min, 0.0)
        counts = np.cumprod(d_valid, axis=-1).sum(axis=-1)
        roughness = np.zeros(ok.shape)
        # Group candidates by probe count so each group's mean reduces
        # over a contiguous prefix — the same summation np.mean performs
        # in the reference loop, keeping scores bit-identical.
        for count in np.unique(counts):
            if count < 1:
                continue
            sel = counts == count
            roughness[sel] = np.mean(ranges[..., :int(count)],
                                     axis=-1)[sel]

        # All terms normalised by tau_r so the deviation penalty has a
        # consistent meaning across signal amplitudes.
        score = (min_margin / tau_r
                 - 0.5 * roughness / tau_r
                 - 0.9 * np.abs(scales - 1.0)[:, None]
                 - 0.25 * np.abs(rel_deltas)[None, :])
        score = np.where(ok, score, -np.inf)
        s_idx, d_idx = np.unravel_index(int(np.argmax(score)), score.shape)
        return float(cand_tau[s_idx]), float(anchors[s_idx, d_idx])

    def _refine_clock_reference(self, smooth: np.ndarray, times: np.ndarray,
                                points: tuple[Extremum, Extremum, Extremum],
                                tau_t: float, tau_r: float, level: float,
                                n_data_symbols: int | None = None,
                                ) -> tuple[float, float]:
        """The literal scale x delta x window triple loop.

        Kept as the readable oracle for :meth:`_refine_clock`; the
        equivalence suite asserts both return identical values.
        """
        a = points[0]
        base_anchor = a.time_s - 0.5 * tau_t
        shrink_frac = self.config.window_shrink_fraction
        span = self.config.clock_search_span
        expected_high = (True, False, True, False)
        n_probe = min(n_data_symbols if n_data_symbols else 8, 12)
        best: tuple[float, float] | None = None
        best_score = -np.inf
        for scale in np.linspace(1.0 - span, 1.0 + span, 13):
            cand_tau = tau_t * scale
            shrink = shrink_frac * cand_tau
            for rel_delta in np.linspace(-0.35, 0.35, 15):
                anchor = base_anchor + rel_delta * cand_tau
                margins: list[float] = []
                for k, is_high in enumerate(expected_high):
                    w_max = self._window_max(
                        smooth, times,
                        anchor + k * cand_tau + shrink,
                        anchor + (k + 1) * cand_tau - shrink)
                    if w_max is None:
                        margins = []
                        break
                    margins.append(w_max - level if is_high
                                   else level - w_max)
                if not margins or min(margins) <= 0.0:
                    continue
                ranges: list[float] = []
                data_start = anchor + 4.0 * cand_tau
                for k in range(n_probe):
                    w_range = self._window_range(
                        smooth, times,
                        data_start + k * cand_tau + shrink,
                        data_start + (k + 1) * cand_tau - shrink)
                    if w_range is None:
                        break
                    ranges.append(w_range)
                roughness = float(np.mean(ranges)) if ranges else 0.0
                # All terms normalised by tau_r so the deviation penalty
                # has a consistent meaning across signal amplitudes.
                score = (min(margins) / tau_r
                         - 0.5 * roughness / tau_r
                         - 0.9 * abs(scale - 1.0)
                         - 0.25 * abs(rel_delta))
                if score > best_score:
                    best_score = score
                    best = (cand_tau, anchor)
        if best is None:
            return tau_t, base_anchor
        return best

    # ------------------------------------------------------------------
    def decode(self, trace: SignalTrace,
               n_data_symbols: int | None = None,
               stage_trace: StageTrace | None = None) -> DecodeResult:
        """Decode one packet from an RSS trace.

        Args:
            trace: the captured RSS stream (raw counts or normalised —
                the thresholds adapt either way).
            n_data_symbols: expected number of data symbols (2N for an
                N-bit payload).  None switches to auto-length mode:
                windows are consumed until the trace ends, then trailing
                LOW windows (the empty ground after the tag) are
                trimmed and the count is rounded down to even.
            stage_trace: optional per-stage instrumentation sink; when
                given, smoothing/acquisition/clock-refinement/decision
                wall time is attributed to the corresponding
                :class:`~repro.exec.ExecStage`.  Never changes the
                decode result.

        Raises:
            PreambleNotFoundError: when acquisition fails.
            DecodeError: when no decision windows fit in the trace.
        """
        points, smooth = self._acquire(trace, stage_trace=stage_trace)
        with maybe_stage(stage_trace, ExecStage.ACQUIRE):
            tau_r, tau_t = self.thresholds(points)
            a, b, c = points
            level = self._threshold_level(tau_r, b.value)
            times = trace.times()

        if self.config.clock_refinement:
            with maybe_stage(stage_trace, ExecStage.REFINE_CLOCK):
                tau_t, anchor = self._refine_clock(
                    smooth, times, points, tau_t, tau_r, level,
                    n_data_symbols=n_data_symbols)
        else:
            anchor = a.time_s - 0.5 * tau_t
        with maybe_stage(stage_trace, ExecStage.DECIDE):
            return self._decide(trace, smooth, times, points, tau_r, tau_t,
                                level, anchor, n_data_symbols)

    def _decide(self, trace: SignalTrace, smooth: np.ndarray,
                times: np.ndarray,
                points: tuple[Extremum, Extremum, Extremum],
                tau_r: float, tau_t: float, level: float, anchor: float,
                n_data_symbols: int | None) -> DecodeResult:
        """Decision windows -> symbols -> payload (the ``decide`` stage)."""
        # The preamble occupies symbols 1-4 from the anchor; data follows.
        data_start = anchor + 4.0 * tau_t
        if n_data_symbols is not None:
            if n_data_symbols < 1:
                raise ValueError("n_data_symbols must be >= 1")
            n_windows = n_data_symbols
        else:
            remaining = times[-1] - data_start
            n_windows = min(self.config.max_symbols,
                            int(np.floor(remaining / tau_t)))
        if n_windows < 1:
            raise DecodeError(
                "no decision windows fit between the preamble and the "
                "end of the trace")

        shrink = self.config.window_shrink_fraction * tau_t
        ks = np.arange(float(n_windows))
        w_starts = data_start + ks * tau_t
        w_ends = w_starts + tau_t
        i0, i1, valid = _window_slices(times, w_starts + shrink,
                                       w_ends - shrink)
        # Windows are consumed in order until the first one falls off
        # the trace.
        n_good = int(np.cumprod(valid).sum())
        windows: list[SymbolWindow] = []
        if n_good:
            maxima = _segment_reduce(np.maximum, smooth, -np.inf,
                                     i0[:n_good], i1[:n_good])
            for k in range(n_good):
                w_max = float(maxima[k])
                symbol = Symbol.HIGH if w_max > level else Symbol.LOW
                windows.append(SymbolWindow(float(w_starts[k]),
                                            float(w_ends[k]),
                                            w_max, symbol))
        if not windows:
            raise DecodeError("all decision windows fell outside the trace")

        symbols = [w.symbol for w in windows]
        if n_data_symbols is None:
            # Trim the trailing ground (LOW) and keep an even count.
            while symbols and symbols[-1] is Symbol.LOW:
                symbols.pop()
                windows.pop()
            if len(symbols) % 2 == 1:
                # A Manchester stream is even; the last HIGH must be the
                # first half of a trailing '0' bit whose LOW half was
                # trimmed with the ground.
                symbols.append(Symbol.LOW)
                last = windows[-1]
                windows.append(SymbolWindow(last.t_end_s,
                                            last.t_end_s + tau_t,
                                            level, Symbol.LOW))

        try:
            bits: list[int] | None = manchester_decode(symbols)
        except ManchesterError:
            bits = None

        return DecodeResult(
            symbols=symbols,
            bits=bits,
            tau_r=tau_r,
            tau_t=tau_t,
            threshold_level=level,
            anchor_points=points,
            windows=windows,
            preamble_verified=self._verify_preamble(smooth, times, anchor,
                                                    tau_t, level),
        )

    # ------------------------------------------------------------------
    def _verify_preamble(self, smooth: np.ndarray, times: np.ndarray,
                         anchor: float, tau_t: float, level: float) -> bool:
        """Re-decode the preamble region; it must read HLHL."""
        shrink = self.config.window_shrink_fraction * tau_t
        ks = np.arange(4.0)
        i0, i1, valid = _window_slices(times,
                                       anchor + ks * tau_t + shrink,
                                       anchor + (ks + 1.0) * tau_t - shrink)
        if not valid.all():
            return False
        maxima = _segment_reduce(np.maximum, smooth, -np.inf, i0, i1)
        decoded = tuple(Symbol.HIGH if w_max > level else Symbol.LOW
                        for w_max in maxima)
        return decoded == PREAMBLE
