"""DTW classification of distorted packets (Section 4.2).

When the channel distorts the waveform (e.g. the object's speed doubles
mid-packet, Fig. 8), threshold decoding produces a wrong symbol stream.
The paper then "transform[s] the decoding problem into a classification
problem": compare the distorted capture against "a database of clean
signals (obtained under ideal scenarios)" and pick the best DTW match.

Templates and queries are min-max normalised and resampled to a common
length so that amplitude and duration differences do not contribute to
the distance; remaining differences are the *shape* mismatches DTW is
designed to score.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.trace import SignalTrace
from ..dsp.dtw import dtw
from ..dsp.filters import lowpass
from ..dsp.normalize import min_max_normalize, resample_to_length
from .errors import ClassificationError

__all__ = ["Template", "ClassificationResult", "DtwClassifier"]


@dataclass
class Template:
    """A clean reference waveform in the classifier database.

    Attributes:
        label: the code this template represents (e.g. ``"10"``).
        samples: conditioned (normalised + resampled) waveform.
    """

    label: str
    samples: np.ndarray


@dataclass
class ClassificationResult:
    """Outcome of classifying one capture.

    Attributes:
        label: best-matching template label.
        distances: label -> DTW distance for every template.
        margin: ratio of runner-up to best distance (>= 1; higher means
            a more confident match).
    """

    label: str
    distances: dict[str, float]
    margin: float

    @property
    def confident(self) -> bool:
        """Heuristic confidence: runner-up at least 20 % worse."""
        return self.margin >= 1.2


class DtwClassifier:
    """Nearest-template classifier over DTW distance.

    Attributes:
        resample_points: common length templates/queries are brought to.
        band_fraction: Sakoe-Chiba band for the DTW alignment; 0.25
            accommodates the paper's 2x mid-packet speed change.
        use_normalized_distance: divide by path length (recommended; raw
            accumulated cost is also what the paper reports, but it
            scales with sequence length).
    """

    def __init__(self, resample_points: int = 200,
                 band_fraction: float | None = 0.25,
                 use_normalized_distance: bool = False) -> None:
        if resample_points < 8:
            raise ValueError(
                f"resample_points must be >= 8, got {resample_points}")
        self.resample_points = resample_points
        self.band_fraction = band_fraction
        self.use_normalized_distance = use_normalized_distance
        self._templates: list[Template] = []

    def _condition(self, item: "SignalTrace | np.ndarray") -> np.ndarray:
        """Normalise, anti-alias and resample a waveform.

        Resampling to ``resample_points`` is a drastic decimation for
        multi-second captures; without an anti-alias low-pass, lamp
        ripple (the 100 Hz 'thick lines' of Fig. 7) folds into broadband
        noise that swamps the shape differences DTW is scoring.
        """
        if isinstance(item, SignalTrace):
            x = np.asarray(item.samples, dtype=float)
            if len(x) >= 2 and item.duration_s > 0.0:
                new_rate = self.resample_points / item.duration_s
                x = lowpass(x, 0.45 * new_rate, item.sample_rate_hz)
        else:
            x = np.asarray(item, dtype=float)
        if len(x) < 2:
            raise ClassificationError("waveform too short to classify")
        return resample_to_length(min_max_normalize(x), self.resample_points)

    @property
    def templates(self) -> list[Template]:
        """The registered templates (read-only view)."""
        return list(self._templates)

    def add_template(self, label: str,
                     trace: SignalTrace | np.ndarray) -> Template:
        """Register a clean capture under a label.

        Duplicate labels are allowed (multiple exemplars per code); the
        classifier scores against the closest exemplar.
        """
        if not label:
            raise ValueError("template label must be non-empty")
        template = Template(label=label, samples=self._condition(trace))
        self._templates.append(template)
        return template

    def distance_to(self, template: Template,
                    trace: SignalTrace | np.ndarray) -> float:
        """DTW distance between a capture and one template."""
        query = self._condition(trace)
        result = dtw(query, template.samples, band_fraction=self.band_fraction)
        return (result.normalized_distance if self.use_normalized_distance
                else result.distance)

    def classify(self, trace: SignalTrace | np.ndarray) -> ClassificationResult:
        """Classify a capture to its nearest template.

        Raises:
            ClassificationError: when the database is empty.
        """
        if not self._templates:
            raise ClassificationError("classifier has no templates")
        per_label: dict[str, float] = {}
        for template in self._templates:
            d = self.distance_to(template, trace)
            if template.label not in per_label or d < per_label[template.label]:
                per_label[template.label] = d
        ordered = sorted(per_label.items(), key=lambda kv: kv[1])
        best_label, best_d = ordered[0]
        if len(ordered) > 1:
            runner_d = ordered[1][1]
            margin = runner_d / best_d if best_d > 0.0 else float("inf")
        else:
            margin = float("inf")
        return ClassificationResult(label=best_label, distances=per_label,
                                    margin=margin)
