"""Dual-receiver selection: PD vs RX-LED (Section 4.4).

"A receiver with two optical components (PD and RX-LED) can alleviate
the noise floor problem by properly selecting the component that
provides reliable passive communication for the given ambient light
conditions."

The policy implemented here follows the paper's reasoning directly:
prefer the **most sensitive receiver that is not saturated** by the
current noise floor, with a safety margin because the signal itself
rides on top of the ambient level (a receiver biased right at its
saturation point clips the HIGH symbols first — exactly the failure of
Fig. 16(a) analysed in Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.board import EvaluationBoard
from ..hardware.frontend import ReceiverFrontEnd
from ..hardware.photodiode import PdGain
from .errors import SaturatedReceiverError

__all__ = ["ReceiverChoice", "DualReceiverController"]


@dataclass(frozen=True)
class ReceiverChoice:
    """A selection decision.

    Attributes:
        name: receiver configuration name (``"PD-G1"`` ... ``"RX-LED"``).
        frontend: the ready-to-use front end.
        ambient_lux: the noise floor the decision was made for.
        headroom: saturation / effective ambient — how much margin the
            chosen receiver retains (>1 means unsaturated).
    """

    name: str
    frontend: ReceiverFrontEnd
    ambient_lux: float
    headroom: float


class DualReceiverController:
    """Selects PD gain level or RX-LED for a given noise floor.

    Attributes:
        board: the two-receiver evaluation board.
        margin: required saturation headroom.  The reflected signal adds
            to the ambient pedestal, so the controller requires
            ``ambient * margin < saturation``; 1.3 covers the strongest
            HIGH reflections seen in the paper's scenes.
        prefer_sensitivity: when True (paper's policy) pick the most
            sensitive unsaturated option; False picks the most robust
            (largest headroom) — useful under rapidly changing light.
    """

    #: Candidate order from most to least sensitive (Fig. 11 rows).
    _CANDIDATES: tuple[tuple[str, object], ...] = (
        ("PD-G1", PdGain.G1),
        ("PD-G2", PdGain.G2),
        ("PD-G3", PdGain.G3),
        ("RX-LED", None),
    )

    def __init__(self, board: EvaluationBoard | None = None,
                 margin: float = 1.3,
                 prefer_sensitivity: bool = True) -> None:
        if margin < 1.0:
            raise ValueError(f"margin must be >= 1, got {margin}")
        self.board = board or EvaluationBoard()
        self.margin = margin
        self.prefer_sensitivity = prefer_sensitivity

    def _frontend_for(self, name: str, gain: object) -> ReceiverFrontEnd:
        if name == "RX-LED":
            return self.board.led_frontend()
        assert isinstance(gain, PdGain)
        return self.board.photodiode_frontend(gain=gain)

    def choices(self, ambient_lux: float) -> list[ReceiverChoice]:
        """All unsaturated receiver options for a noise floor.

        Ordered by descending sensitivity.
        """
        if ambient_lux < 0.0:
            raise ValueError("ambient level cannot be negative")
        out: list[ReceiverChoice] = []
        for name, gain in self._CANDIDATES:
            fe = self._frontend_for(name, gain)
            effective = ambient_lux * fe.ambient_transmission * self.margin
            sat = fe.detector.saturation_lux
            if effective < sat:
                headroom = sat / effective if effective > 0.0 else float("inf")
                out.append(ReceiverChoice(name=name, frontend=fe,
                                          ambient_lux=ambient_lux,
                                          headroom=headroom))
        return out

    def select(self, ambient_lux: float) -> ReceiverChoice:
        """Pick the receiver for the given noise floor.

        Raises:
            SaturatedReceiverError: when even the RX-LED is railed
                (noise floor beyond ~35 klux / margin).
        """
        options = self.choices(ambient_lux)
        if not options:
            raise SaturatedReceiverError(
                f"all receivers saturate at a noise floor of "
                f"{ambient_lux:.0f} lux (RX-LED limit is "
                f"{35000 / self.margin:.0f} lux with margin {self.margin})")
        if self.prefer_sensitivity:
            return options[0]
        return max(options, key=lambda c: c.headroom)

    def selection_table(self, ambient_levels: list[float],
                        ) -> list[tuple[float, str]]:
        """Selection decisions across a sweep of noise floors.

        Returns ``(ambient_lux, receiver_name)`` rows; saturated rows
        report ``"saturated"``.
        """
        rows: list[tuple[float, str]] = []
        for lux in ambient_levels:
            try:
                rows.append((lux, self.select(lux).name))
            except SaturatedReceiverError:
                rows.append((lux, "saturated"))
        return rows
