"""Tag design assistant — the paper's "designer questions".

Section 4.1 frames the capacity analysis around a designer: "a designer
willing to use this new channel would need more information to assess
the feasibility of a potential application.  For example [...]: What
symbol width should the designer use on objects to be able to decode
information?  And given this symbol width, what channel capacity can the
designer expect?"

:class:`TagDesigner` answers those questions for a given deployment —
receiver, height, ambient light, object speed — from the channel model's
two constraints:

* **blur**: the footprint kernel's effective width must not exceed the
  symbol alternation period, or neighbouring strips merge (Fig. 2(b));
* **budget**: the HIGH/LOW contrast after blur must clear the receiver's
  noise, and the HIGH level must not rail the detector (Section 4.4).

It then converts the chosen width into what fits on a physical object:
payload bits, packet layout, expected symbol rate, and a codebook if the
deployment plans to fall back to DTW classification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..channel.scene import PassiveScene
from ..channel.simulator import ChannelSimulator, SimulatorConfig
from ..hardware.frontend import ReceiverFrontEnd
from ..optics.propagation import footprint_kernel
from ..optics.reflection import effective_reflectance
from ..optics.sources import AmbientLightSource
from ..optics.materials import ALUMINUM_TAPE, BLACK_NAPKIN, Material
from ..tags.codebook import Codebook, build_max_distance_codebook
from ..tags.packet import Packet
from .capacity import max_supported_speed_mps

__all__ = ["TagDesign", "TagDesigner"]

#: Decision windows need the alternation period to exceed the blur
#: width by this factor for reliable thresholding.  1.6 reproduces the
#: paper's own operating point: at h = 0.75 m the RX-LED's blur width is
#: ~12.3 cm and the authors ran 10 cm symbols — exactly
#: 1.6 * blur / 2.
_BLUR_MARGIN = 1.6

#: Required contrast-to-noise ratio after blur.
_MIN_CNR = 5.0


@dataclass(frozen=True)
class TagDesign:
    """A recommended tag layout for one deployment.

    Attributes:
        symbol_width_m: recommended strip width.
        max_payload_bits: payload bits that fit on the object.
        packet: a concrete packet sized to the object (all-zero payload
            placeholder — substitute real data bits).
        symbol_rate_sps: channel symbol rate at the design speed.
        bit_rate_bps: payload bit rate (half the symbol rate, Manchester).
        max_speed_mps: fastest pass the receiver chain can follow.
        contrast_to_noise: modelled post-blur contrast over noise.
        saturation_headroom: detector clip level over the HIGH level.
        codebook: classification codebook sized to the payload (None
            when the payload is under 2 bits).
        feasible: all constraints met.
        notes: human-readable constraint summary.
    """

    symbol_width_m: float
    max_payload_bits: int
    packet: Packet | None
    symbol_rate_sps: float
    bit_rate_bps: float
    max_speed_mps: float
    contrast_to_noise: float
    saturation_headroom: float
    codebook: Codebook | None
    feasible: bool
    notes: tuple[str, ...] = ()

    def summary(self) -> str:
        """Multi-line design sheet."""
        lines = [
            f"symbol width        : {self.symbol_width_m * 100:.1f} cm",
            f"payload capacity    : {self.max_payload_bits} bits",
            f"symbol rate         : {self.symbol_rate_sps:.1f} symbols/s",
            f"bit rate            : {self.bit_rate_bps:.1f} bit/s",
            f"max supported speed : {self.max_speed_mps:.1f} m/s",
            f"contrast-to-noise   : {self.contrast_to_noise:.1f}",
            f"saturation headroom : {self.saturation_headroom:.2f}x",
            f"feasible            : {self.feasible}",
        ]
        lines.extend(f"note: {n}" for n in self.notes)
        return "\n".join(lines)


class TagDesigner:
    """Answers the Section 4.1 designer questions for one deployment.

    Attributes:
        source: ambient light at the deployment site.
        frontend: the receiver to be installed.
        receiver_height_m: mounting height over the object plane.
        high_material: HIGH-symbol material (aluminium tape default).
        low_material: LOW-symbol material (black napkin default).
    """

    def __init__(self, source: AmbientLightSource,
                 frontend: ReceiverFrontEnd,
                 receiver_height_m: float,
                 high_material: Material = ALUMINUM_TAPE,
                 low_material: Material = BLACK_NAPKIN) -> None:
        if receiver_height_m <= 0.0:
            raise ValueError("receiver height must be positive")
        self.source = source
        self.frontend = frontend
        self.receiver_height_m = receiver_height_m
        self.high_material = high_material
        self.low_material = low_material

    # ------------------------------------------------------------------
    def blur_width_m(self) -> float:
        """Effective blur length of this deployment's footprint."""
        fov = self.frontend.effective_fov
        radius = self.receiver_height_m * math.tan(fov.half_angle_rad)
        kern = footprint_kernel(self.receiver_height_m, fov, radius / 24.0)
        return kern.effective_width()

    def min_symbol_width_m(self) -> float:
        """Narrowest usable strip: blur-limited (Fig. 2(b)).

        The worst-case alternation period is two symbols (Manchester's
        HL/LH pairs), so the symbol width must be at least half the
        blurred period with margin.
        """
        return _BLUR_MARGIN * self.blur_width_m() / 2.0

    def contrast_analysis(self) -> tuple[float, float]:
        """(contrast-to-noise ratio, saturation headroom) for the site.

        Evaluated at full modulation depth; blur reduction is handled by
        the width constraint separately.
        """
        scene = PassiveScene(source=self.source,
                             receiver_height_m=self.receiver_height_m)
        sim = ChannelSimulator(scene, self.frontend,
                               SimulatorConfig(include_noise=False))
        geometry = scene.illumination_geometry()
        coupling = sim.ambient_equivalent_coupling()
        e_ground = float(np.asarray(
            self.source.ground_illuminance(0.0, 0.0)))
        tx = self.frontend.signal_transmission
        high = (effective_reflectance(self.high_material, geometry)
                * e_ground * coupling * tx)
        low = (effective_reflectance(self.low_material, geometry)
               * e_ground * coupling * tx)
        ambient = (scene.nominal_noise_floor_lux()
                   * self.frontend.ambient_transmission)
        sat = self.frontend.detector.saturation_lux
        level = min(1.0, (ambient + high) / sat)
        noise_lux = float(self.frontend.detector.noise_sigma(level)) * sat
        cnr = (high - low) / noise_lux if noise_lux > 0.0 else float("inf")
        headroom = (sat / (ambient + high)
                    if (ambient + high) > 0.0 else float("inf"))
        return cnr, headroom

    # ------------------------------------------------------------------
    def design(self, object_length_m: float, speed_mps: float,
               n_codes_needed: int | None = None) -> TagDesign:
        """Produce a tag design for an object and pass speed.

        Args:
            object_length_m: usable tag length on the object.
            speed_mps: nominal pass speed.
            n_codes_needed: when the deployment will classify rather
                than decode (distorted channels), the number of distinct
                codes it needs — a max-distance codebook is attached.

        Raises:
            ValueError: for non-positive dimensions or speed.
        """
        if object_length_m <= 0.0:
            raise ValueError("object length must be positive")
        if speed_mps <= 0.0:
            raise ValueError("speed must be positive")
        notes: list[str] = []

        width = self.min_symbol_width_m()
        cnr, headroom = self.contrast_analysis()

        # How many symbols (4 preamble + 2N data) fit on the object?
        n_symbols = int(math.floor(object_length_m / width))
        payload_bits = max(0, (n_symbols - 4) // 2)
        if payload_bits == 0:
            notes.append(
                f"object too short: {object_length_m:.2f} m fits only "
                f"{n_symbols} symbols of {width * 100:.1f} cm "
                "(needs 4 preamble + 2 data minimum)")
        packet = None
        if payload_bits > 0:
            packet = Packet.from_bits([0] * payload_bits,
                                      symbol_width_m=width)

        max_speed = max_supported_speed_mps(
            symbol_width_m=width,
            detector_bandwidth_hz=self.frontend.detector.bandwidth_hz,
            sample_rate_hz=self.frontend.sample_rate_hz)
        if speed_mps > max_speed:
            notes.append(
                f"requested speed {speed_mps:.1f} m/s exceeds the "
                f"receiver chain's {max_speed:.1f} m/s ceiling")
        if cnr < _MIN_CNR:
            notes.append(
                f"contrast-to-noise {cnr:.1f} below the reliable-decoding "
                f"floor of {_MIN_CNR}; add light or lower the receiver")
        if headroom <= 1.0:
            notes.append(
                "ambient light saturates this receiver; pick a lower "
                "gain or the RX-LED (Section 4.4)")

        codebook = None
        if n_codes_needed is not None and payload_bits >= 1:
            usable = min(n_codes_needed, 2**payload_bits)
            if usable < n_codes_needed:
                notes.append(
                    f"only {usable} of the requested {n_codes_needed} "
                    "codes fit in the payload")
            if usable >= 1:
                codebook = build_max_distance_codebook(
                    min(payload_bits, 16), usable)

        feasible = (payload_bits > 0 and speed_mps <= max_speed
                    and cnr >= _MIN_CNR and headroom > 1.0)
        return TagDesign(
            symbol_width_m=width,
            max_payload_bits=payload_bits,
            packet=packet,
            symbol_rate_sps=speed_mps / width,
            bit_rate_bps=speed_mps / width / 2.0,
            max_speed_mps=max_speed,
            contrast_to_noise=cnr,
            saturation_headroom=headroom,
            codebook=codebook,
            feasible=feasible,
            notes=tuple(notes),
        )
