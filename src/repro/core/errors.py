"""Exceptions raised by the passive-communication core."""

from __future__ import annotations

__all__ = [
    "PassiveVlcError",
    "PreambleNotFoundError",
    "DecodeError",
    "SaturatedReceiverError",
    "ClassificationError",
]


class PassiveVlcError(Exception):
    """Base class for all passive-VLC errors."""


class PreambleNotFoundError(PassiveVlcError):
    """The HLHL preamble's A/B/C anchor points could not be located."""


class DecodeError(PassiveVlcError):
    """A symbol stream was recovered but could not be decoded to bits."""


class SaturatedReceiverError(PassiveVlcError):
    """The receiver is railed by the ambient noise floor (Section 4.4)."""


class ClassificationError(PassiveVlcError):
    """DTW classification could not produce a meaningful match."""
