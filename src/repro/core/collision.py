"""'Packet' collision analysis in the frequency domain (Section 4.3).

When several packets pass under the same FoV "the incoming signal will
be the sum of multiple 'overlapping' symbols".  The paper's findings:

* **Case 1 / Case 2** — one packet dominates the reflected light: the
  time-domain decoder still works, and the FFT shows a single dominant
  frequency;
* **Case 3** — equal FoV share: neither decoding nor DTW works, but the
  FFT reveals *two* distinct peaks, i.e. "the presence of two different
  types of object" — partial information from an undecodable collision.

:class:`CollisionAnalyzer` packages that decision logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.trace import SignalTrace
from ..dsp.spectrum import dominant_frequencies, power_spectrum
from .decoder import AdaptiveThresholdDecoder, DecodeResult
from .errors import DecodeError, PreambleNotFoundError

__all__ = ["CollisionReport", "CollisionAnalyzer"]


@dataclass
class CollisionReport:
    """What could be extracted from a possibly-colliding capture.

    Attributes:
        time_domain_decodable: threshold decoding produced a valid
            Manchester payload.
        decode_result: the decoder output when decodable.
        detected_frequencies_hz: dominant spectral peaks (strongest
            first).
        n_components: number of distinct packet signatures detected.
    """

    time_domain_decodable: bool
    decode_result: DecodeResult | None
    detected_frequencies_hz: list[float] = field(default_factory=list)

    @property
    def n_components(self) -> int:
        """Distinct symbol-rate components visible in the spectrum."""
        return len(self.detected_frequencies_hz)

    @property
    def collision_detected(self) -> bool:
        """More than one component present."""
        return self.n_components >= 2

    def summary(self) -> str:
        """One-line report for logs."""
        freqs = ", ".join(f"{f:.2f} Hz" for f in self.detected_frequencies_hz)
        status = ("decodable" if self.time_domain_decodable
                  else "undecodable")
        return f"{status}; {self.n_components} component(s): [{freqs}]"


class CollisionAnalyzer:
    """Time-domain decode with a frequency-domain fallback.

    Attributes:
        decoder: the threshold decoder used for the first attempt.
        f_band_hz: frequency band searched for symbol-rate peaks (the
            paper's spectra span 0-12 Hz).
        max_components: cap on reported spectral components.
        min_relative_height: spectral peaks below this fraction of the
            strongest are ignored.
    """

    def __init__(self, decoder: AdaptiveThresholdDecoder | None = None,
                 f_band_hz: tuple[float, float] = (0.3, 12.0),
                 max_components: int = 4,
                 min_relative_height: float = 0.35,
                 min_separation_hz: float = 0.8,
                 min_snr_vs_median: float = 8.0) -> None:
        if f_band_hz[1] <= f_band_hz[0]:
            raise ValueError("frequency band must be increasing")
        self.decoder = decoder or AdaptiveThresholdDecoder()
        self.f_band_hz = f_band_hz
        self.max_components = max_components
        self.min_relative_height = min_relative_height
        self.min_separation_hz = min_separation_hz
        self.min_snr_vs_median = min_snr_vs_median

    def spectrum_peaks(self, trace: SignalTrace) -> list[float]:
        """Dominant symbol-rate frequencies in the capture."""
        spec = power_spectrum(trace.samples, trace.sample_rate_hz)
        banded = spec.band(*self.f_band_hz)
        return dominant_frequencies(
            banded, max_peaks=self.max_components,
            min_relative_height=self.min_relative_height,
            min_separation_hz=self.min_separation_hz,
            f_min_hz=self.f_band_hz[0],
            min_snr_vs_median=self.min_snr_vs_median)

    def analyze(self, trace: SignalTrace,
                n_data_symbols: int | None = None,
                expected_bits: str | None = None) -> CollisionReport:
        """Try to decode; always report the spectral components.

        Args:
            trace: the captured RSS stream.
            n_data_symbols: expected data symbol count, if known.
            expected_bits: when given, a decode only counts as
                successful if the payload matches (models the CRC/known
                -code check a deployment would use).
        """
        decodable = False
        result: DecodeResult | None = None
        try:
            result = self.decoder.decode(trace, n_data_symbols=n_data_symbols)
            decodable = result.success
            if decodable and expected_bits is not None:
                decodable = result.bit_string() == expected_bits
        except (PreambleNotFoundError, DecodeError):
            result = None

        return CollisionReport(
            time_domain_decodable=decodable,
            decode_result=result,
            detected_frequencies_hz=self.spectrum_peaks(trace),
        )
