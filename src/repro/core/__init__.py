"""Core contribution: decoding, classification, collision analysis,
receiver selection, capacity analysis and the end-to-end link API."""

from .capacity import (
    IndoorSetup,
    max_decodable_height,
    max_supported_speed_mps,
    min_decodable_width,
    probe_decodable,
    throughput_symbols_per_second,
)
from .classifier import ClassificationResult, DtwClassifier, Template
from .collision import CollisionAnalyzer, CollisionReport
from .designer import TagDesign, TagDesigner
from .decoder import (
    AdaptiveThresholdDecoder,
    DecodeResult,
    DecoderConfig,
    SymbolWindow,
)
from .errors import (
    ClassificationError,
    DecodeError,
    PassiveVlcError,
    PreambleNotFoundError,
    SaturatedReceiverError,
)
from .link import LinkBudget, LinkReport, PassiveLink
from .pipeline import PipelineResult, PipelineStage, ReceiverPipeline
from .receiver_select import DualReceiverController, ReceiverChoice

__all__ = [
    "IndoorSetup", "max_decodable_height", "max_supported_speed_mps",
    "min_decodable_width", "probe_decodable",
    "throughput_symbols_per_second",
    "ClassificationResult", "DtwClassifier", "Template",
    "CollisionAnalyzer", "CollisionReport",
    "TagDesign", "TagDesigner",
    "AdaptiveThresholdDecoder", "DecodeResult", "DecoderConfig",
    "SymbolWindow",
    "ClassificationError", "DecodeError", "PassiveVlcError",
    "PreambleNotFoundError", "SaturatedReceiverError",
    "LinkBudget", "LinkReport", "PassiveLink",
    "PipelineResult", "PipelineStage", "ReceiverPipeline",
    "DualReceiverController", "ReceiverChoice",
]
