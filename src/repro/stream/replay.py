"""Replaying captured traces as live chunk feeds.

The bridge between the offline world (a :class:`SignalTrace` captured
by the channel simulator, or recorded from hardware) and the streaming
runtime: split a trace into chunks, feed them through a
:class:`StreamDecoder`, and summarize what the online path measured.
Everything here is engine-agnostic — the execution engine imports this
module, never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..channel.trace import SignalTrace
from .decode import DecodeEvent, StreamDecoder

__all__ = ["iter_chunks", "replay_trace", "StreamReplay"]


def iter_chunks(samples: np.ndarray,
                chunk_size: int) -> Iterator[np.ndarray]:
    """Split a sample array into consecutive chunks of ``chunk_size``.

    The final chunk carries the remainder.  Chunks are views — cheap,
    but consumers must copy before mutating.

    Raises:
        ValueError: for ``chunk_size < 1``.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    arr = np.asarray(samples)
    for start in range(0, len(arr), chunk_size):
        yield arr[start:start + chunk_size]


@dataclass
class StreamReplay:
    """Outcome of replaying one trace through the online runtime.

    Attributes:
        decoder: the flushed :class:`StreamDecoder` (events, result,
            normalizer state all live on it).
        n_chunks: chunks fed.
    """

    decoder: StreamDecoder
    n_chunks: int

    @property
    def events(self) -> list[DecodeEvent]:
        return self.decoder.events

    @property
    def verdict(self) -> DecodeEvent:
        """The verdict event (always present after a replay)."""
        return self.decoder.event("verdict")

    def latency(self, kind: str) -> float | None:
        """Sample-clock latency of one event kind, or None."""
        return self.decoder.latency(kind)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe event/latency summary."""
        return {
            "n_chunks": self.n_chunks,
            "events": [e.to_dict() for e in self.events],
            "onset_latency_s": self.latency("onset"),
            "first_bit_latency_s": self.latency("first_bit"),
            "verdict_latency_s": self.decoder.verdict_latency_s,
        }


def replay_trace(trace: SignalTrace, chunk_size: int,
                 n_data_symbols: int | None = None,
                 decoder: object | None = None,
                 check_stride_s: float | None = None) -> StreamReplay:
    """Feed one captured trace chunk-by-chunk and flush.

    The returned replay's verdict is byte-identical to decoding the
    trace offline with the same ``decoder`` — the streaming parity
    guarantee.

    Args:
        trace: the captured pass.
        chunk_size: samples per chunk, >= 1.
        n_data_symbols: expected data-field length, when known.
        decoder: offline decoder for the verdict (default adaptive).
        check_stride_s: acquisition re-check stride override.
    """
    stream = StreamDecoder(trace.sample_rate_hz, trace.start_time_s,
                           n_data_symbols=n_data_symbols, decoder=decoder,
                           check_stride_s=check_stride_s)
    n_chunks = 0
    for chunk in iter_chunks(trace.samples, chunk_size):
        stream.push(chunk)
        n_chunks += 1
    stream.flush()
    return StreamReplay(decoder=stream, n_chunks=n_chunks)
