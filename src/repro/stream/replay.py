"""Replaying captured traces as live chunk feeds.

The bridge between the offline world (a :class:`SignalTrace` captured
by the channel simulator, or recorded from hardware) and the streaming
runtime: split a trace into chunks, feed them through a
:class:`StreamDecoder`, and summarize what the online path measured.
Everything here is engine-agnostic — the execution engine imports this
module, never the other way around.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..channel.trace import SignalTrace
from .decode import DecodeEvent, StreamDecoder

__all__ = ["iter_chunks", "replay_trace", "StreamReplay"]

#: Opt-in transport stress for CI: when set to a loss probability in
#: (0, 1), every chunk feed produced by :func:`iter_chunks` models a
#: lossy link with retransmission — a "lost" chunk's delivery slot
#: arrives empty and its samples ride with the next delivery.  Sample
#: content and order are preserved, so every decode output stays
#: byte-identical (the chunking-invariance guarantee under test);
#: only chunk boundaries and wall-clock pacing shift.
STRESS_ENV = "REPRO_STREAM_CHUNK_LOSS"


def _stress_loss() -> float:
    raw = os.environ.get(STRESS_ENV)
    if not raw:
        return 0.0
    try:
        p = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"{STRESS_ENV} must be a probability, got {raw!r}") from exc
    if not 0.0 <= p < 1.0:
        raise ValueError(
            f"{STRESS_ENV} must be in [0, 1), got {p}")
    return p


def _lossy_link(chunks: Iterator[np.ndarray], loss: float,
                seed: tuple[int, ...]) -> Iterator[np.ndarray]:
    """Deterministic loss-with-retransmission over a chunk feed.

    Each chunk is lost in transit with probability ``loss``: its slot
    delivers zero samples and the payload is retransmitted with the
    next delivery (one trailing slot flushes a loss on the final
    chunk).  The assembled stream is unchanged — this perturbs the
    *transport boundaries*, which downstream decode must be invariant
    to.
    """
    rng = np.random.default_rng(seed)
    carry: np.ndarray | None = None
    empty: np.ndarray | None = None
    for chunk in chunks:
        if carry is not None:
            chunk = np.concatenate([carry, chunk])
            carry = None
        if rng.random() < loss:
            carry = chunk
            if empty is None:
                empty = np.zeros(0, dtype=np.asarray(chunk).dtype)
            yield empty
        else:
            yield chunk
    if carry is not None:
        yield carry


def iter_chunks(samples: np.ndarray,
                chunk_size: int) -> Iterator[np.ndarray]:
    """Split a sample array into consecutive chunks of ``chunk_size``.

    The final chunk carries the remainder.  Chunks are views — cheap,
    but consumers must copy before mutating.  When the
    ``REPRO_STREAM_CHUNK_LOSS`` stress knob is set, the feed passes
    through a deterministic lossy-link model (see :data:`STRESS_ENV`).

    Raises:
        ValueError: for ``chunk_size < 1``.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    arr = np.asarray(samples)

    def plain() -> Iterator[np.ndarray]:
        for start in range(0, len(arr), chunk_size):
            yield arr[start:start + chunk_size]

    loss = _stress_loss()
    if loss:
        # Seeded from the feed's shape so a rerun of the same test is
        # byte-identical, while distinct feeds draw distinct losses.
        return _lossy_link(plain(), loss, seed=(len(arr), chunk_size))
    return plain()


@dataclass
class StreamReplay:
    """Outcome of replaying one trace through the online runtime.

    Attributes:
        decoder: the flushed :class:`StreamDecoder` (events, result,
            normalizer state all live on it).
        n_chunks: chunks fed.
    """

    decoder: StreamDecoder
    n_chunks: int

    @property
    def events(self) -> list[DecodeEvent]:
        return self.decoder.events

    @property
    def verdict(self) -> DecodeEvent:
        """The verdict event (always present after a replay)."""
        return self.decoder.event("verdict")

    def latency(self, kind: str) -> float | None:
        """Sample-clock latency of one event kind, or None."""
        return self.decoder.latency(kind)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe event/latency summary."""
        return {
            "n_chunks": self.n_chunks,
            "events": [e.to_dict() for e in self.events],
            "onset_latency_s": self.latency("onset"),
            "first_bit_latency_s": self.latency("first_bit"),
            "verdict_latency_s": self.decoder.verdict_latency_s,
        }


def replay_trace(trace: SignalTrace, chunk_size: int,
                 n_data_symbols: int | None = None,
                 decoder: object | None = None,
                 check_stride_s: float | None = None,
                 chunks: list[np.ndarray] | None = None,
                 stage_trace: Any | None = None) -> StreamReplay:
    """Feed one captured trace chunk-by-chunk and flush.

    The returned replay's verdict is byte-identical to decoding the
    assembled stream offline with the same ``decoder`` — the streaming
    parity guarantee.  Without a ``chunks`` override the assembled
    stream *is* the trace, so the verdict matches the trace's offline
    decode.

    Args:
        trace: the captured pass (supplies sample rate and timebase).
        chunk_size: samples per chunk, >= 1.
        n_data_symbols: expected data-field length, when known.
        decoder: offline decoder for the verdict (default adaptive).
        check_stride_s: acquisition re-check stride override.
        chunks: optional pre-chunked feed replacing the trace's own
            samples — the fault layer's entry point for corrupted
            transport (dropped/duplicated/reordered chunks).  The
            verdict then describes the corrupted stream, by design.
        stage_trace: optional ``StageTrace`` forwarded to the stream
            decoder for per-stage attribution (telemetry only).
    """
    stream = StreamDecoder(trace.sample_rate_hz, trace.start_time_s,
                           n_data_symbols=n_data_symbols, decoder=decoder,
                           check_stride_s=check_stride_s,
                           stage_trace=stage_trace)
    feed = chunks if chunks is not None else iter_chunks(trace.samples,
                                                         chunk_size)
    n_chunks = 0
    for chunk in feed:
        stream.push(chunk)
        n_chunks += 1
    stream.flush()
    return StreamReplay(decoder=stream, n_chunks=n_chunks)
