"""Incremental preamble acquisition over a growing stream.

Offline acquisition re-scans the whole trace; doing that on every
arriving chunk is quadratic in stream length.  :class:`PreambleDetector`
re-runs the decoder's (unchanged) acquisition only over the **unseen
suffix plus an overlap**, and advances its scan start using what the
failed scan learned:

* a scan that found *extrema* but no plausible A/B/C triple keeps its
  start anchored just before the first extremum — a partially-arrived
  preamble (A and B in view, C still in flight) must stay in the window
  until its tail arrives;
* a scan that found *nothing* advances to ``end - min_overlap_s`` — a
  provably quiet prefix cannot grow a preamble retroactively, because
  prominence thresholds only rise as the packet's swing arrives;
* ``max_overlap_s`` caps the window either way, bounding per-check cost
  for arbitrarily long feeds.

Detection is an *event* estimate (when did the receiver know a packet
had started); the byte-exact verdict always comes from the offline
decode at flush time, so a conservative miss here costs latency
telemetry, never correctness.
"""

from __future__ import annotations

import math

from dataclasses import dataclass

import numpy as np

from ..core.decoder import AdaptiveThresholdDecoder
from ..core.errors import PreambleNotFoundError
from ..channel.trace import SignalTrace
from ..dsp.filters import moving_average
from ..dsp.peaks import Extremum, find_peaks_and_valleys
from .buffer import StreamBuffer

__all__ = ["AcquiredPreamble", "PreambleDetector"]


@dataclass(frozen=True)
class AcquiredPreamble:
    """What incremental acquisition learned when it locked on.

    Attributes:
        points: the (A, B, C) anchor extrema, absolute times.
        tau_r: magnitude threshold (Section 4.1).
        tau_t: symbol-period estimate.
        threshold_level: absolute HIGH/LOW decision level.
        detected_at_s: stream time when the lock happened (the last
            ingested sample's timestamp) — onset latency is
            ``detected_at_s - points[0].time_s``.
    """

    points: tuple[Extremum, Extremum, Extremum]
    tau_r: float
    tau_t: float
    threshold_level: float
    detected_at_s: float

    @property
    def anchor_s(self) -> float:
        """Start time of preamble symbol 1 (A sits half a period in)."""
        return self.points[0].time_s - 0.5 * self.tau_t

    @property
    def data_start_s(self) -> float:
        """Start time of the first data window (after 4 preamble symbols)."""
        return self.anchor_s + 4.0 * self.tau_t


class PreambleDetector:
    """Suffix-window preamble acquisition with adaptive overlap.

    Attributes:
        decoder: the :class:`AdaptiveThresholdDecoder` whose acquisition
            (multi-scale smoothing, plausibility gates) is re-used
            verbatim on each window.
        min_overlap_s: overlap kept past a provably quiet prefix.
        max_overlap_s: hard cap on the scan window length.
        n_checks / n_scanned_samples: cost accounting — the incremental
            contract is that ``n_scanned_samples`` stays far below
            ``n_checks * stream_length``.
    """

    #: Windows shorter than this many samples are not worth scanning.
    MIN_WINDOW_SAMPLES = 8

    def __init__(self, decoder: AdaptiveThresholdDecoder | None = None,
                 min_overlap_s: float = 1.0,
                 max_overlap_s: float = 12.0) -> None:
        if min_overlap_s <= 0.0:
            raise ValueError(
                f"min_overlap_s must be positive, got {min_overlap_s}")
        if max_overlap_s < min_overlap_s:
            raise ValueError("max_overlap_s must be >= min_overlap_s")
        self.decoder = decoder or AdaptiveThresholdDecoder()
        self.min_overlap_s = min_overlap_s
        self.max_overlap_s = max_overlap_s
        self._scan_from_s: float | None = None
        self.n_checks = 0
        self.n_scanned_samples = 0

    # ------------------------------------------------------------------
    def check(self, buffer: StreamBuffer) -> AcquiredPreamble | None:
        """Scan the unseen suffix (plus overlap) for the preamble.

        Returns the acquired anchor state on success, None otherwise.
        Never raises on degenerate windows (constant, tiny, empty) —
        those simply keep returning None.
        """
        if self._scan_from_s is None:
            self._scan_from_s = buffer.start_time_s
        t_end = buffer.end_time_s
        start = max(self._scan_from_s, buffer.first_time_s,
                    t_end - self.max_overlap_s)
        view, t0 = buffer.window_with_time(start, t_end + 1.0)
        if len(view) < self.MIN_WINDOW_SAMPLES:
            return None
        self.n_checks += 1
        self.n_scanned_samples += len(view)
        trace = SignalTrace(view, buffer.sample_rate_hz, t0)
        try:
            points = self.decoder.acquire_preamble(trace)
        except PreambleNotFoundError:
            self._advance(trace, t_end)
            return None
        tau_r, tau_t = self.decoder.thresholds(points)
        level = self.decoder._threshold_level(tau_r, points[1].value)
        return AcquiredPreamble(points=points, tau_r=tau_r, tau_t=tau_t,
                                threshold_level=level, detected_at_s=t_end)

    def _advance(self, trace: SignalTrace, t_end: float) -> None:
        """Move the scan start past what the failed scan ruled out.

        Anchoring on *any* extremum would pin the scan start forever on
        noisy feeds — smoothed noise always has extrema because the
        prominence threshold is span-relative — and per-check cost
        would grow until the overlap cap.  So the anchor only holds
        when the window's swing towers over its sample-to-sample noise
        (the decoder's own 4-sigma plausibility bound): a window that
        is noise through and through is *quiet*, and a real packet's
        shoulder will clear the bound the moment it starts arriving.
        """
        quiet_from = t_end - self.min_overlap_s
        x = trace.samples
        smooth = moving_average(x, max(3, len(x) // 200))
        span = float(smooth.max() - smooth.min()) if len(smooth) else 0.0
        noise_sigma = (float(np.std(np.diff(x))) / math.sqrt(2.0)
                       if len(x) > 3 else 0.0)
        if span > 0.0 and span >= 4.0 * noise_sigma:
            extrema = find_peaks_and_valleys(smooth, trace.sample_rate_hz,
                                             trace.start_time_s)
            if extrema:
                # Keep a partially-arrived pattern in view: anchor just
                # before the earliest extremum still standing.
                anchor = extrema[0].time_s - self.min_overlap_s
                quiet_from = min(quiet_from, anchor)
        new_start = max(self._scan_from_s or trace.start_time_s,
                        min(quiet_from, t_end))
        self._scan_from_s = max(new_start, t_end - self.max_overlap_s)
