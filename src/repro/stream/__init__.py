"""repro.stream — the online streaming-decode runtime.

Every other decode path in this reproduction is offline: capture the
whole pass, then decode.  This package is the deployment mode the paper
actually describes — a receiver processing RSS samples *as they
arrive* — built from five pieces:

* :class:`StreamBuffer` — chunked ingestion with zero-copy
  time-indexed windows (bounded or unbounded history);
* :class:`OnlineNormalizer` — running min/max/percentile state whose
  normalisation matches :meth:`SignalTrace.normalized` once the pass
  has fully arrived;
* :class:`PreambleDetector` — incremental acquisition over the unseen
  suffix (plus adaptive overlap) instead of the full history;
* :class:`StreamDecoder` — the IDLE -> ACQUIRING -> DECODING -> EMITTED
  state machine emitting timestamped :class:`DecodeEvent`\\ s, with a
  parity guarantee: at any chunk size, the flush verdict is
  byte-identical to the offline decode of the same samples;
* :class:`SessionMux` — an asyncio layer multiplexing many concurrent
  receiver sessions with backpressure, per-session stats and
  cross-session fusion via :mod:`repro.net`.

Quickstart::

    from repro.stream import replay_trace

    replay = replay_trace(trace, chunk_size=64, n_data_symbols=4)
    print(replay.verdict.bits, replay.latency("onset"))

From the shell::

    repro-engine stream --scenario convoy --count 32 --sessions 32
"""

from .buffer import StreamBuffer
from .decode import DecodeEvent, StreamDecoder, StreamState
from .detect import AcquiredPreamble, PreambleDetector
from .normalize import OnlineNormalizer, P2Quantile
from .replay import StreamReplay, iter_chunks, replay_trace
from .session import SessionMux, SessionStats, StreamSession, replay_traces

__all__ = [
    "AcquiredPreamble", "DecodeEvent", "OnlineNormalizer", "P2Quantile",
    "PreambleDetector", "SessionMux", "SessionStats", "StreamBuffer",
    "StreamDecoder", "StreamReplay", "StreamSession", "StreamState",
    "iter_chunks", "replay_trace", "replay_traces",
]
