"""The online decode state machine.

:class:`StreamDecoder` is the streaming counterpart of one offline
``AdaptiveThresholdDecoder.decode`` call.  Samples arrive in chunks of
any size; the machine walks

    IDLE -> ACQUIRING -> DECODING -> EMITTED

emitting timestamped :class:`DecodeEvent`\\ s along the way:

* ``onset`` — incremental acquisition locked onto the preamble
  (latency: stream clock at the lock minus the A-peak's signal time);
* ``first_bit`` — the first data bit's two symbol windows have fully
  arrived and were provisionally decided with the streaming thresholds;
* ``verdict`` — the final payload.

**Parity guarantee.**  The verdict is produced at :meth:`flush` by
running the configured *offline* decoder over the full assembled
stream, so for any chunk size — 1 sample, 64, or the whole trace at
once — the final verdict is byte-identical to the offline decode of
the same samples.  Everything incremental (onset, first-bit, the
running normaliser) only adds telemetry; it can never change the
answer.  All event clocks are *sample* clocks (the timestamp of the
last ingested sample), so latencies are deterministic and cacheable,
independent of wall-clock scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

import numpy as np

from ..channel.trace import SignalTrace
from ..core.decoder import AdaptiveThresholdDecoder, DecodeResult
from ..core.errors import DecodeError, PreambleNotFoundError
from ..exec.graph import ExecStage, StageTrace, maybe_stage
from ..obs.registry import active_registry
from ..tags.encoding import Symbol
from .buffer import StreamBuffer
from .detect import AcquiredPreamble, PreambleDetector
from .normalize import OnlineNormalizer

__all__ = ["StreamState", "DecodeEvent", "StreamDecoder"]


class StreamState(Enum):
    """Where the online decoder is in one packet's life cycle."""

    IDLE = "idle"
    ACQUIRING = "acquiring"
    DECODING = "decoding"
    EMITTED = "emitted"


#: Event kinds, in the order a successful pass emits them.
EVENT_KINDS = ("onset", "first_bit", "verdict")


@dataclass(frozen=True)
class DecodeEvent:
    """One timestamped milestone of an online decode.

    Attributes:
        kind: ``onset`` | ``first_bit`` | ``verdict``.
        stream_time_s: sample-clock time of emission (timestamp one
            period past the last ingested sample).
        signal_time_s: when the underlying signal feature actually
            happened (A-peak time for onset, end of the first bit's
            windows for first_bit, end of the last data window —
            clamped to the stream end — for a decoded verdict).
        latency_s: ``stream_time_s - signal_time_s`` — how far behind
            the live signal the runtime announced the milestone.
        session_id: owning session ('' for bare decoders).
        bits: provisional bit for ``first_bit``; the payload for
            ``verdict`` ('' when nothing decoded).
        success: verdict only — a valid Manchester payload came out.
        stage: verdict only — ``decoded`` / ``decode_failed`` /
            ``preamble_not_found``.
    """

    kind: str
    stream_time_s: float
    signal_time_s: float
    latency_s: float
    session_id: str = ""
    bits: str = ""
    success: bool = False
    stage: str = ""

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-safe)."""
        return {
            "kind": self.kind,
            "stream_time_s": self.stream_time_s,
            "signal_time_s": self.signal_time_s,
            "latency_s": self.latency_s,
            "session_id": self.session_id,
            "bits": self.bits,
            "success": self.success,
            "stage": self.stage,
        }


class StreamDecoder:
    """Chunk-at-a-time online decoding of one pass.

    Attributes:
        buffer: the sample history (unbounded by default, so the flush
            verdict sees exactly what an offline capture would).
        normalizer: running level state over the stream (min/max only
            by default; construct with percentiles and pass it in to
            track streaming quantiles too).
        detector: incremental preamble acquisition.
        decoder: the offline decoder that produces the final verdict —
            anything with ``decode(trace, n_data_symbols=...)``
            (:class:`AdaptiveThresholdDecoder`, a two-phase car
            decoder, ...).
        n_data_symbols: expected data-field length, when known.
        session_id: stamped on every emitted event.
        stage_trace: optional :class:`StageTrace` — the incremental
            path attributes per-chunk normaliser updates to
            ``normalize`` and acquisition checks to ``acquire``; the
            flush verdict lands in ``decide``.  Telemetry only, never
            part of any verdict.
    """

    def __init__(self, sample_rate_hz: float, start_time_s: float = 0.0,
                 n_data_symbols: int | None = None,
                 decoder: object | None = None,
                 detector: PreambleDetector | None = None,
                 check_stride_s: float | None = None,
                 max_samples: int | None = None,
                 normalizer: OnlineNormalizer | None = None,
                 session_id: str = "",
                 stage_trace: StageTrace | None = None) -> None:
        self.buffer = StreamBuffer(sample_rate_hz, start_time_s,
                                   max_samples=max_samples)
        # Default to running min/max only: the P2 percentile trackers
        # walk every sample in pure Python, a cost only callers that
        # actually read level percentiles should pay (pass a
        # normalizer with percentiles to opt in).
        self.normalizer = (normalizer if normalizer is not None
                           else OnlineNormalizer(percentiles=()))
        self.decoder = decoder or AdaptiveThresholdDecoder()
        # Incremental acquisition needs an adaptive decoder.  A wrapper
        # decoder (e.g. the two-phase car decoder) carries its
        # configured inner adaptive decoder as `.decoder` — use that,
        # so detection telemetry shares the verdict's threshold rule
        # and window shrink, and only fall back to defaults for
        # decoders exposing nothing adaptive at all.
        acquisition = self.decoder
        if not isinstance(acquisition, AdaptiveThresholdDecoder):
            acquisition = getattr(self.decoder, "decoder", None)
        if not isinstance(acquisition, AdaptiveThresholdDecoder):
            acquisition = AdaptiveThresholdDecoder()
        self.detector = detector or PreambleDetector(acquisition)
        if check_stride_s is None:
            # Re-running acquisition every sample at chunk size 1 would
            # dominate the cost; one check per ~8 sample periods keeps
            # detection latency below a fraction of a symbol.
            check_stride_s = 8.0 / sample_rate_hz
        if check_stride_s < 0.0:
            raise ValueError(
                f"check_stride_s must be >= 0, got {check_stride_s}")
        self.check_stride_s = check_stride_s
        if n_data_symbols is not None and n_data_symbols < 1:
            raise ValueError(
                f"n_data_symbols must be >= 1, got {n_data_symbols}")
        self.n_data_symbols = n_data_symbols
        self.session_id = session_id
        self.stage_trace = stage_trace
        # Telemetry registry resolved once at construction: the per-push
        # cost with telemetry off is a single attribute None-check.
        self._registry = active_registry()
        self.state = StreamState.IDLE
        self.events: list[DecodeEvent] = []
        self.acquired: AcquiredPreamble | None = None
        self.result: DecodeResult | None = None
        self.final_trace: SignalTrace | None = None
        self._last_check_s = start_time_s
        self._first_bit_emitted = False
        self._flushed = False

    # ------------------------------------------------------------------
    @property
    def flushed(self) -> bool:
        """Whether the stream has been finalized."""
        return self._flushed

    def _emit(self, kind: str, signal_time_s: float, **extra) -> DecodeEvent:
        now = self.buffer.end_time_s
        event = DecodeEvent(kind=kind, stream_time_s=now,
                            signal_time_s=signal_time_s,
                            latency_s=now - signal_time_s,
                            session_id=self.session_id, **extra)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def push(self, chunk: np.ndarray) -> list[DecodeEvent]:
        """Ingest one chunk; returns the events this chunk triggered.

        Raises:
            RuntimeError: after :meth:`flush` — a finalized stream
                accepts no more samples.
        """
        if self._flushed:
            raise RuntimeError("stream already flushed; no more chunks")
        trace = self.stage_trace
        if trace is not None:
            trace.count("stream_chunks")
        arr = np.asarray(chunk, dtype=float)
        if self._registry is not None:
            self._registry.counter("stream_chunks_total").inc()
            self._registry.counter("stream_samples_total").inc(len(arr))
        self.buffer.append(arr)
        with maybe_stage(trace, ExecStage.NORMALIZE):
            self.normalizer.update(arr)
        emitted_from = len(self.events)
        if self.state is StreamState.IDLE and self.buffer.n_appended:
            self.state = StreamState.ACQUIRING
        if (self.state is StreamState.ACQUIRING
                and self.buffer.end_time_s - self._last_check_s
                >= self.check_stride_s):
            self._last_check_s = self.buffer.end_time_s
            with maybe_stage(trace, ExecStage.ACQUIRE):
                acquired = self.detector.check(self.buffer)
            if acquired is not None:
                self.acquired = acquired
                self.state = StreamState.DECODING
                self._emit("onset", acquired.points[0].time_s)
        if self.state is StreamState.DECODING and not self._first_bit_emitted:
            self._maybe_emit_first_bit()
        return self.events[emitted_from:]

    def _provisional_symbol(self, w_start: float, w_end: float,
                            shrink: float) -> Symbol | None:
        """HIGH/LOW decision for one window on the raw buffered samples."""
        segment = self.buffer.window(w_start + shrink, w_end - shrink)
        if len(segment) == 0:
            return None
        level = self.acquired.threshold_level
        return Symbol.HIGH if float(segment.max()) > level else Symbol.LOW

    def _maybe_emit_first_bit(self) -> None:
        """Provisionally decide the first data bit once it has arrived."""
        acq = self.acquired
        first_bit_end = acq.data_start_s + 2.0 * acq.tau_t
        if self.buffer.end_time_s < first_bit_end:
            return
        shrink_cfg = getattr(self.detector.decoder.config,
                             "window_shrink_fraction", 0.0)
        shrink = shrink_cfg * acq.tau_t
        first = self._provisional_symbol(acq.data_start_s,
                                         acq.data_start_s + acq.tau_t, shrink)
        second = self._provisional_symbol(acq.data_start_s + acq.tau_t,
                                          first_bit_end, shrink)
        if first is None or second is None:
            return
        # Manchester (repro.tags.encoding): HIGH-LOW encodes 0,
        # LOW-HIGH encodes 1; equal halves are provisionally reported
        # as '?' (blur or a wrong clock — the flush verdict resolves
        # it).
        if first is Symbol.HIGH and second is Symbol.LOW:
            bit = "0"
        elif first is Symbol.LOW and second is Symbol.HIGH:
            bit = "1"
        else:
            bit = "?"
        self._first_bit_emitted = True
        self._emit("first_bit", first_bit_end, bits=bit)

    # ------------------------------------------------------------------
    def flush(self) -> list[DecodeEvent]:
        """Finalize the stream: offline-decode everything and emit the
        verdict.  Idempotent — a second flush returns no new events."""
        if self._flushed:
            return []
        self._flushed = True
        trace = self.buffer.to_trace()
        self.final_trace = trace
        stage, bits, success = "decode_failed", "", False
        signal_time = self.buffer.end_time_s
        try:
            # An adaptive decoder attributes its own interior stages
            # (normalize/acquire/refine_clock/decide); an opaque one
            # is charged wholesale to ``decide``.
            if isinstance(self.decoder, AdaptiveThresholdDecoder):
                result = self.decoder.decode(
                    trace, n_data_symbols=self.n_data_symbols,
                    stage_trace=self.stage_trace)
            else:
                with maybe_stage(self.stage_trace, ExecStage.DECIDE):
                    result = self.decoder.decode(
                        trace, n_data_symbols=self.n_data_symbols)
            self.result = result
            bits = result.bit_string()
            success = result.success
            stage = "decoded" if success else "decode_failed"
            if result.windows:
                # A fitted clock can extrapolate the last window's
                # nominal end slightly past the final sample; the
                # verdict cannot lag a moment that never streamed, so
                # clamp to the stream end (keeps latency >= 0).
                signal_time = min(result.windows[-1].t_end_s,
                                  self.buffer.end_time_s)
        except PreambleNotFoundError:
            stage = "preamble_not_found"
        except DecodeError:
            stage = "decode_failed"
        event = self._emit("verdict", signal_time, bits=bits,
                           success=success, stage=stage)
        self.state = StreamState.EMITTED
        return [event]

    # ------------------------------------------------------------------
    @property
    def verdict_latency_s(self) -> float | None:
        """Verdict latency, gated on a decode that produced a payload.

        A failed decode's verdict event carries a placeholder time (the
        stream end, or a clamped window edge) — a measurement of
        nothing.  Every consumer that *records* verdict latency
        (RunRecord, session outcomes, replay dumps) goes through this
        one gate so the contract cannot drift.
        """
        if self.result is None or not self.result.success:
            return None
        return self.latency("verdict")

    def event(self, kind: str) -> DecodeEvent | None:
        """The first emitted event of one kind, or None."""
        for ev in self.events:
            if ev.kind == kind:
                return ev
        return None

    def latency(self, kind: str) -> float | None:
        """Latency of the first event of one kind, or None."""
        ev = self.event(kind)
        return ev.latency_s if ev is not None else None
