"""Online normalisation state for streaming decode.

The paper's plots (and the offline decoder's inputs) are min-max
normalised over the *whole* captured pass — an operation a streaming
receiver cannot perform directly because the extremes are only known
once the pass has fully arrived.  :class:`OnlineNormalizer` maintains
the running state that makes the same normalisation available online:

* exact running min / max, so after the final chunk
  ``normalize(samples)`` is **bit-identical** to
  :meth:`repro.channel.SignalTrace.normalized` (same expression, same
  operand order), and
* P² streaming percentile estimates (Jain & Chlamtac 1985) — constant
  memory, no sample retention — for level statistics (median signal
  level, near-extreme percentiles).  Session dumps surface the running
  min/max/span; percentile tracking walks every sample in pure Python,
  so it is opt-in on the decode hot path (pass a normalizer
  constructed with percentiles to :class:`repro.stream.StreamDecoder`).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["OnlineNormalizer", "P2Quantile"]


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm.

    Five markers track the running quantile without storing samples;
    the estimate converges to the true quantile for stationary inputs
    and tracks drifting ones.  Exact for the first five observations.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p,
                         3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self._count = 0

    @property
    def count(self) -> int:
        """Observations absorbed so far."""
        return self._count

    def update(self, value: float) -> None:
        """Absorb one observation.

        Raises:
            ValueError: on any non-finite value — an inf would poison
                the marker heights as permanently as a NaN.
        """
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"cannot absorb non-finite value {value!r} into a "
                "quantile estimate")
        self._count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        q = self._heights
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            while value >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers towards their desired
        # positions with the parabolic (P²) formula, falling back to
        # linear interpolation when the parabola would de-sort them.
        for i in (1, 2, 3):
            n = self._positions
            d = self._desired[i] - n[i]
            if ((d >= 1.0 and n[i + 1] - n[i] > 1.0)
                    or (d <= -1.0 and n[i - 1] - n[i] < -1.0)):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        q, n = self._heights, self._positions
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (n[j] - n[i])

    def estimate(self) -> float:
        """The current quantile estimate.

        Exact order statistics while fewer than five observations have
        arrived; NaN before the first one.
        """
        if self._count == 0:
            return math.nan
        if len(self._heights) < 5:
            rank = self.p * (len(self._heights) - 1)
            lo = int(math.floor(rank))
            hi = min(lo + 1, len(self._heights) - 1)
            frac = rank - lo
            return (self._heights[lo] * (1.0 - frac)
                    + self._heights[hi] * frac)
        return self._heights[2]


class OnlineNormalizer:
    """Running min/max/percentile state over a sample stream.

    Attributes:
        percentiles: the tracked percentile levels, in (0, 100).
    """

    def __init__(self,
                 percentiles: tuple[float, ...] = (5.0, 50.0, 95.0)) -> None:
        for p in percentiles:
            if not 0.0 < p < 100.0:
                raise ValueError(
                    f"percentiles must be in (0, 100), got {p}")
        self.percentiles = tuple(percentiles)
        self._quantiles = {p: P2Quantile(p / 100.0) for p in self.percentiles}
        self._min = math.inf
        self._max = -math.inf
        self._count = 0
        self._n_finite = 0

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Samples absorbed so far (including excluded non-finite ones)."""
        return self._count

    @property
    def min(self) -> float:
        """Running minimum (NaN before any finite sample)."""
        return self._min if self._n_finite else math.nan

    @property
    def max(self) -> float:
        """Running maximum (NaN before any finite sample)."""
        return self._max if self._n_finite else math.nan

    @property
    def span(self) -> float:
        """Running peak-to-peak range (0.0 before any finite sample)."""
        return self._max - self._min if self._n_finite else 0.0

    def percentile(self, p: float) -> float:
        """Streaming estimate of one tracked percentile.

        Raises:
            KeyError: for a percentile not passed at construction.
        """
        return self._quantiles[p].estimate()

    # ------------------------------------------------------------------
    def update(self, chunk: np.ndarray) -> None:
        """Absorb one chunk of samples.

        Non-finite samples (NaN, inf — a glitched ADC word) are
        counted but excluded from the statistics, mirroring how the
        hardened acquisition path treats degenerate windows: the
        stream degrades gracefully instead of raising mid-flight.
        """
        arr = np.asarray(chunk, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"chunk must be 1-D, got shape {arr.shape}")
        if len(arr) == 0:
            return
        self._count += len(arr)
        finite = arr if np.isfinite(arr).all() else arr[np.isfinite(arr)]
        if len(finite) == 0:
            return
        self._n_finite += len(finite)
        self._min = min(self._min, float(finite.min()))
        self._max = max(self._max, float(finite.max()))
        for quantile in self._quantiles.values():
            for value in finite:
                quantile.update(float(value))

    def normalize(self, values: np.ndarray) -> np.ndarray:
        """Min-max normalise against the *running* extremes.

        Matches :meth:`SignalTrace.normalized` exactly once every
        sample of the pass has been absorbed: same ``(x - lo) / span``
        expression, and a constant (or empty) stream maps to zeros
        rather than dividing by zero.
        """
        x = np.asarray(values, dtype=float)
        lo = float(self._min) if self._n_finite else 0.0
        hi = float(self._max) if self._n_finite else 0.0
        span = hi - lo
        if span == 0.0:
            return np.zeros_like(x)
        return (x - lo) / span
