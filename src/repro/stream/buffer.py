"""Chunked sample ingestion: the stream runtime's ring buffer.

An online receiver never holds "the trace" — it holds whatever of the
stream it has not discarded yet.  :class:`StreamBuffer` accepts
arbitrary-sized sample chunks, tracks the absolute sample clock, and
exposes time-indexed windows of the retained history as **views** (no
copy), which is what lets the incremental preamble detector re-scan a
suffix thousands of times without quadratic copying.

Bounded mode (``max_samples``) drops the oldest samples once capacity
is exceeded — the behaviour of a real fixed-memory receiver — and
counts what it dropped so consumers can tell a complete history from a
windowed one.  Storage uses the classic double-capacity sliding array:
appends go into a ``2 * max_samples`` backing array and the live region
is compacted to the front when the backing fills, so every exposed
window stays a contiguous zero-copy slice (a wrapped ring cannot offer
that) at amortized O(1) per sample.
"""

from __future__ import annotations

import numpy as np

from ..channel.trace import SignalTrace

__all__ = ["StreamBuffer"]


class StreamBuffer:
    """Time-indexed ring buffer over a uniformly sampled stream.

    Attributes:
        sample_rate_hz: the stream's sampling rate, > 0.
        start_time_s: timestamp of the first sample ever appended.
        max_samples: retained-history bound; None keeps everything.
    """

    def __init__(self, sample_rate_hz: float, start_time_s: float = 0.0,
                 max_samples: int | None = None) -> None:
        if sample_rate_hz <= 0.0:
            raise ValueError(
                f"sample rate must be positive, got {sample_rate_hz}")
        if max_samples is not None and max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1 or None, got {max_samples}")
        self.sample_rate_hz = float(sample_rate_hz)
        self.start_time_s = float(start_time_s)
        self.max_samples = max_samples
        initial = 1024 if max_samples is None else 2 * max_samples
        self._data = np.empty(initial, dtype=float)
        self._lo = 0            # index of the oldest retained sample
        self._hi = 0            # one past the newest sample
        self._appended = 0      # total samples ever appended
        self._dropped = 0       # samples evicted by the capacity bound

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of retained samples."""
        return self._hi - self._lo

    @property
    def n_appended(self) -> int:
        """Total samples ever pushed into the buffer."""
        return self._appended

    @property
    def n_dropped(self) -> int:
        """Samples evicted by the ``max_samples`` bound."""
        return self._dropped

    @property
    def first_index(self) -> int:
        """Absolute sample index of the oldest retained sample."""
        return self._appended - len(self)

    @property
    def first_time_s(self) -> float:
        """Timestamp of the oldest retained sample."""
        return self.start_time_s + self.first_index / self.sample_rate_hz

    @property
    def end_time_s(self) -> float:
        """Timestamp one sample-period past the newest sample.

        Advances monotonically with every append — the stream clock the
        decode runtime stamps its events with.
        """
        return self.start_time_s + self._appended / self.sample_rate_hz

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(self, chunk: np.ndarray) -> None:
        """Append one chunk of samples (any size, including empty).

        Raises:
            ValueError: on a non-1-D chunk.
        """
        arr = np.asarray(chunk, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"chunk must be 1-D, got shape {arr.shape}")
        n = len(arr)
        if n == 0:
            return
        if self.max_samples is not None and n >= self.max_samples:
            # The chunk alone overflows the bound: keep only its tail.
            self._dropped += self._hi - self._lo + n - self.max_samples
            self._data[:self.max_samples] = arr[n - self.max_samples:]
            self._lo, self._hi = 0, self.max_samples
            self._appended += n
            return
        if self._hi + n > len(self._data):
            self._make_room(n)
        self._data[self._hi:self._hi + n] = arr
        self._hi += n
        self._appended += n
        if self.max_samples is not None and len(self) > self.max_samples:
            evict = len(self) - self.max_samples
            self._lo += evict
            self._dropped += evict

    def _make_room(self, n: int) -> None:
        """Compact (bounded) or grow (unbounded) the backing array."""
        live = self._data[self._lo:self._hi]
        if self.max_samples is None:
            new_size = max(2 * len(self._data), len(live) + n)
            grown = np.empty(new_size, dtype=float)
            grown[:len(live)] = live
            self._data = grown
        else:
            # Slide the live region to the front of the fixed backing.
            self._data[:len(live)] = live
        self._hi = len(live)
        self._lo = 0

    # ------------------------------------------------------------------
    # Time-indexed access
    # ------------------------------------------------------------------
    def _index_of(self, t: float) -> int:
        """Absolute sample index whose timestamp is >= ``t``."""
        return int(np.ceil((t - self.start_time_s) * self.sample_rate_hz
                           - 1e-9))

    def window(self, t_start: float, t_end: float) -> np.ndarray:
        """Retained samples with timestamps in ``[t_start, t_end)``.

        Returns a zero-copy **view** into the buffer — valid until the
        next :meth:`append`; copy before storing.  Requesting time
        before the retained history is clipped (the samples are gone);
        time past the stream end is clipped to what has arrived.
        """
        view, _ = self.window_with_time(t_start, t_end)
        return view

    def window_with_time(self, t_start: float,
                         t_end: float) -> tuple[np.ndarray, float]:
        """Like :meth:`window`, plus the exact timestamp of the view's
        first sample (needed to build correctly anchored sub-traces)."""
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        i0 = max(self._index_of(t_start), self.first_index)
        i1 = min(self._index_of(t_end), self._appended)
        if i1 <= i0:
            return self._data[self._hi:self._hi], self.time_of(
                max(i0, self.first_index))
        offset = self._lo - self.first_index
        return self._data[offset + i0:offset + i1], self.time_of(i0)

    def suffix(self, t_start: float) -> np.ndarray:
        """Zero-copy view from ``t_start`` to the stream end."""
        return self.window(t_start, self.end_time_s + 1.0)

    def time_of(self, absolute_index: int) -> float:
        """Timestamp of an absolute sample index."""
        return self.start_time_s + absolute_index / self.sample_rate_hz

    def to_trace(self, meta: dict | None = None) -> SignalTrace:
        """The retained history as a :class:`SignalTrace` (copied).

        The trace's ``start_time_s`` is the oldest *retained* sample's
        timestamp, so a bounded buffer yields a correctly shifted
        window, and ``meta`` records how much history was dropped.
        """
        info = dict(meta) if meta else {}
        if self._dropped:
            info["stream_dropped_samples"] = self._dropped
        return SignalTrace(self._data[self._lo:self._hi].copy(),
                           self.sample_rate_hz, self.first_time_s, info)
