"""Concurrent multi-receiver streaming: the asyncio session layer.

A deployment is not one receiver — it is dozens of "tiny boxes"
streaming RSS simultaneously.  :class:`SessionMux` multiplexes many
:class:`~repro.stream.StreamDecoder` sessions on one event loop:

* each session owns a bounded :class:`asyncio.Queue` of chunks, so a
  producer that outruns its decoder **blocks on the queue**
  (backpressure) instead of growing memory without bound;
* a per-session worker drains the queue, feeds the decoder, and yields
  between chunks so no session starves the others;
* finished sessions turn their verdicts into
  :class:`repro.net.Detection` reports, and :meth:`SessionMux.fused`
  reuses the networked-receiver fusion layer verbatim for cross-session
  verdicts.

Wall-clock numbers (per-session processing time, throughput) live in
:class:`SessionStats`; everything decode-related stays on the sample
clock and is exactly what the bare decoder would have produced — the
mux adds concurrency, never changes answers.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterable, Iterable, Mapping

import numpy as np

from ..exec.graph import new_trace
from ..net.fusion import FusedObservation, fuse_detections, group_by_pass
from ..net.node import Detection, decode_confidence, onset_timestamp
from ..obs.events import active_events
from ..obs.export import publish_stage_trace
from ..obs.registry import MetricsRegistry, active_registry
from .decode import DecodeEvent, StreamDecoder

__all__ = ["SessionStats", "StreamSession", "SessionMux", "replay_traces"]


@dataclass
class SessionStats:
    """Operational accounting for one streaming session.

    Attributes:
        n_chunks: chunks ingested.
        n_samples: samples ingested.
        busy_s: wall-clock time spent inside the decoder.
        max_queue_depth: deepest the ingest queue ever got.
        backpressure_waits: feeds that found the queue full and had to
            wait — nonzero means the producer outran the decoder.
        decode_errors: exceptions the decoder raised while this session
            ran (a poisoned session keeps counting while its remaining
            chunks are drained and discarded).
        timed_out: the mux watchdog cancelled this session.
    """

    n_chunks: int = 0
    n_samples: int = 0
    busy_s: float = 0.0
    max_queue_depth: int = 0
    backpressure_waits: int = 0
    decode_errors: int = 0
    timed_out: bool = False

    @property
    def throughput_sps(self) -> float:
        """Samples decoded per second of decoder busy time."""
        return self.n_samples / self.busy_s if self.busy_s > 0.0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-safe)."""
        return {
            "n_chunks": self.n_chunks,
            "n_samples": self.n_samples,
            "busy_s": self.busy_s,
            "max_queue_depth": self.max_queue_depth,
            "backpressure_waits": self.backpressure_waits,
            "decode_errors": self.decode_errors,
            "timed_out": self.timed_out,
            "throughput_sps": self.throughput_sps,
        }

    def to_metrics(self, registry: MetricsRegistry) -> None:
        """Fold one session's accounting into ``registry``.

        The common stats shape: a session-outcome counter,
        backpressure/error counters, the queue-depth high-water gauge
        and one busy-time histogram sample.  Chunk/sample throughput is
        counted by the decoder itself (``stream_chunks_total``), so it
        is deliberately absent here.  One-shot per session.
        """
        if self.timed_out:
            outcome = "timed_out"
        elif self.decode_errors:
            outcome = "poisoned"
        else:
            outcome = "ok"
        registry.counter("stream_sessions_total",
                         {"outcome": outcome}).inc()
        registry.counter("stream_backpressure_waits_total").inc(
            self.backpressure_waits)
        registry.counter("stream_decode_errors_total").inc(
            self.decode_errors)
        registry.gauge("stream_queue_depth_peak").set_max(
            self.max_queue_depth)
        registry.histogram("stream_session_busy_seconds").observe(
            self.busy_s)


class StreamSession:
    """One receiver's live stream inside the mux.

    Attributes:
        session_id: unique name.
        decoder: the online decode state machine.
        position_m: the receiver's position along the track (feeds the
            fusion layer's pass-grouping).
        stats: operational counters.
        events: every event the decoder emitted, in order.
        error: first failure this session hit ('' while healthy) — a
            decoder exception (poison) or a watchdog timeout.
        exception: the original exception object behind ``error``, when
            one exists (watchdog timeouts have none).
    """

    def __init__(self, session_id: str, decoder: StreamDecoder,
                 position_m: float = 0.0, queue_chunks: int = 8) -> None:
        if not session_id:
            raise ValueError("session_id must be non-empty")
        if queue_chunks < 1:
            raise ValueError(
                f"queue_chunks must be >= 1, got {queue_chunks}")
        self.session_id = session_id
        self.decoder = decoder
        decoder.session_id = session_id
        self.position_m = float(position_m)
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_chunks)
        self.stats = SessionStats()
        self.done = asyncio.Event()
        self.error = ""
        self.exception: BaseException | None = None

    @property
    def failed(self) -> bool:
        """Whether this session was poisoned or timed out."""
        return bool(self.error)

    @property
    def events(self) -> list[DecodeEvent]:
        return self.decoder.events

    def verdict(self) -> DecodeEvent | None:
        """The session's verdict event (None before flush)."""
        return self.decoder.event("verdict")

    def detection(self) -> Detection:
        """This session's pass report, in the fusion layer's currency.

        Mirrors :meth:`repro.net.ReceiverNode.observe`: decoded
        sessions anchor on the preamble, failed ones estimate the
        signal onset from the buffered samples.

        Raises:
            RuntimeError: before the stream has been flushed.
        """
        result = self.decoder.result
        if result is None or self.decoder.final_trace is None:
            if self.decoder.final_trace is None:
                raise RuntimeError(
                    f"session {self.session_id!r} not flushed yet")
            return Detection(
                node_id=self.session_id, position_m=self.position_m,
                timestamp_s=onset_timestamp(self.decoder.final_trace),
                bits="", confidence=0.0,
                timestamp_source="onset_estimate")
        return Detection(
            node_id=self.session_id, position_m=self.position_m,
            timestamp_s=result.anchor_points[0].time_s,
            bits=result.bit_string(),
            confidence=(decode_confidence(result) if result.success
                        else 0.0),
            symbol_period_s=result.tau_t,
            timestamp_source="preamble_anchor")


class SessionMux:
    """Multiplexes many concurrent streaming sessions with backpressure.

    Typical use::

        mux = SessionMux()
        for sid, trace in feeds.items():
            mux.add_session(sid, StreamDecoder(trace.sample_rate_hz,
                                               trace.start_time_s))
        asyncio.run(mux.run({sid: chunks(trace) for ...}))
        print(mux.fused())

    Attributes:
        queue_chunks: per-session ingest queue bound (backpressure
            threshold) for sessions created via :meth:`add_session`.
        watchdog_s: per-session wall-clock budget.  A session whose
            producer/worker pair does not finish inside it — a stuck
            producer, a stream that never closes — is cancelled and
            marked ``timed_out``; siblings are untouched.  ``None``
            (default) disables the watchdog.
        isolate_errors: poison-session containment.  A decoder that
            raises is always isolated while the mux runs — its session
            is marked failed, its remaining chunks are drained and
            discarded (so its producer can never deadlock on a full
            queue), and every sibling runs to completion.  With
            ``isolate_errors=False`` (default) the first poison
            exception is re-raised once all sessions finish — the
            classic single-replay contract; ``True`` keeps it on
            ``session.error``/``session.exception`` for the caller to
            inspect.  Watchdog timeouts are the mux's own verdict and
            are never re-raised.
        registry: telemetry sink.  Each completed session folds its
            :class:`SessionStats` in (queue-depth peak, backpressure
            waits, poisoned/timed-out outcomes) and publishes its
            decoder's stage trace when one was collected.  ``None``
            (default) adopts the process-wide active registry at
            construction time, so ``--telemetry`` runs need no plumbing
            and undecorated use stays zero-cost.
    """

    def __init__(self, queue_chunks: int = 8,
                 watchdog_s: float | None = None,
                 isolate_errors: bool = False,
                 registry: MetricsRegistry | None = None) -> None:
        if queue_chunks < 1:
            raise ValueError(
                f"queue_chunks must be >= 1, got {queue_chunks}")
        if watchdog_s is not None and watchdog_s <= 0.0:
            raise ValueError(
                f"watchdog_s must be positive, got {watchdog_s}")
        self.queue_chunks = queue_chunks
        self.watchdog_s = watchdog_s
        self.isolate_errors = isolate_errors
        self.registry = (registry if registry is not None
                         else active_registry())
        self.sessions: dict[str, StreamSession] = {}

    # ------------------------------------------------------------------
    def add_session(self, session_id: str, decoder: StreamDecoder,
                    position_m: float = 0.0) -> StreamSession:
        """Register one stream; ids must be unique."""
        if session_id in self.sessions:
            raise ValueError(f"duplicate session id {session_id!r}")
        session = StreamSession(session_id, decoder,
                                position_m=position_m,
                                queue_chunks=self.queue_chunks)
        self.sessions[session_id] = session
        return session

    def session(self, session_id: str) -> StreamSession:
        return self.sessions[session_id]

    # ------------------------------------------------------------------
    async def feed(self, session_id: str, chunk: np.ndarray) -> None:
        """Enqueue one chunk; blocks while the session's queue is full."""
        session = self.sessions[session_id]
        if session.queue.full():
            session.stats.backpressure_waits += 1
        await session.queue.put(np.asarray(chunk, dtype=float))
        session.stats.max_queue_depth = max(session.stats.max_queue_depth,
                                            session.queue.qsize())
        if self.registry is not None:
            self.registry.gauge("stream_queue_depth").set(
                session.queue.qsize())

    async def close(self, session_id: str) -> None:
        """Signal end-of-stream; the worker flushes and finishes."""
        await self.sessions[session_id].queue.put(None)

    def _poison(self, session: StreamSession, exc: BaseException) -> None:
        """Mark a session failed after a decoder exception."""
        if not session.error:
            session.error = f"{type(exc).__name__}: {exc}"
            session.exception = exc
            log = active_events()
            if log is not None:
                log.emit("session_poisoned", session=session.session_id,
                         error=type(exc).__name__)
        session.stats.decode_errors += 1

    async def _drain(self, session: StreamSession) -> None:
        """Worker: pull chunks, feed the decoder, flush on the sentinel.

        A decoder that raises poisons only its own session: the worker
        keeps pulling and *discarding* the remaining chunks, so a
        producer parked on the session's full queue is always released
        — the failure is counted, never spread.
        """
        while True:
            item = await session.queue.get()
            started = time.perf_counter()
            if item is None:
                if not session.failed:
                    try:
                        session.decoder.flush()
                    except Exception as exc:
                        self._poison(session, exc)
                session.stats.busy_s += time.perf_counter() - started
                session.done.set()
                return
            if session.failed:
                continue
            try:
                session.decoder.push(item)
            except Exception as exc:
                self._poison(session, exc)
                session.stats.busy_s += time.perf_counter() - started
                continue
            session.stats.n_chunks += 1
            session.stats.n_samples += len(item)
            session.stats.busy_s += time.perf_counter() - started
            # Cooperative fairness: decoding is sync CPU work, so yield
            # the loop between chunks or one hot session starves all
            # others (and every producer behind a full queue).
            await asyncio.sleep(0)

    async def _produce(self, session_id: str,
                       chunks: Iterable[np.ndarray] | AsyncIterable,
                       feed_hz: float) -> None:
        interval = 1.0 / feed_hz if feed_hz > 0.0 else 0.0
        if hasattr(chunks, "__aiter__"):
            async for chunk in chunks:
                await self.feed(session_id, chunk)
                if interval:
                    await asyncio.sleep(interval)
        else:
            # No voluntary yield when unpaced: the producer runs until
            # the bounded queue blocks it — that *is* the backpressure
            # mechanism, and it is what hands the loop to the workers.
            for chunk in chunks:
                await self.feed(session_id, chunk)
                if interval:
                    await asyncio.sleep(interval)
        await self.close(session_id)

    async def _run_session(self, session_id: str,
                           chunks: Iterable[np.ndarray] | AsyncIterable,
                           feed_hz: float) -> None:
        """One session's producer/worker pair, watchdogged and contained.

        Everything that can go wrong stays on this session: decoder
        exceptions are poison-isolated inside :meth:`_drain`, producer
        exceptions (a broken feed) are captured here, and a watchdog
        expiry cancels the pair and marks the session ``timed_out`` —
        a stuck or raising session is counted, never allowed to wedge
        the mux or its siblings.
        """
        session = self.sessions[session_id]
        worker = asyncio.ensure_future(self._drain(session))
        producer = asyncio.ensure_future(
            self._produce(session_id, chunks, feed_hz))
        pair = asyncio.gather(worker, producer)
        try:
            if self.watchdog_s is not None:
                await asyncio.wait_for(pair, timeout=self.watchdog_s)
            else:
                await pair
        except asyncio.TimeoutError:
            session.stats.timed_out = True
            if not session.error:
                session.error = (f"watchdog timeout after "
                                 f"{self.watchdog_s:g} s")
                log = active_events()
                if log is not None:
                    log.emit("session_timeout",
                             session=session.session_id,
                             watchdog_s=self.watchdog_s)
        except Exception as exc:
            # The producer raised (broken feed iterable): record it on
            # this session; the worker is cancelled below while parked
            # on the queue (decoder exceptions never escape _drain).
            if not session.error:
                session.error = f"{type(exc).__name__}: {exc}"
                session.exception = exc
        finally:
            for task in (worker, producer):
                if not task.done():
                    task.cancel()
            await asyncio.gather(worker, producer, return_exceptions=True)
            if self.registry is not None:
                session.stats.to_metrics(self.registry)
                publish_stage_trace(self.registry,
                                    session.decoder.stage_trace, "stream")

    async def run(self, feeds: Mapping[str, Iterable[np.ndarray]],
                  feed_hz: float = 0.0) -> None:
        """Drive every session's producer and worker to completion.

        Every session runs contained (see :meth:`_run_session`): a
        poisoned or stuck session is cancelled and counted while its
        siblings finish normally.  Unless ``isolate_errors`` is set,
        the first captured exception is re-raised once all sessions
        complete.

        Args:
            feeds: session id -> iterable (or async iterable) of sample
                chunks.  Every id must already be registered.
            feed_hz: chunks per second per producer; 0 feeds as fast as
                backpressure allows.
        """
        unknown = set(feeds) - set(self.sessions)
        if unknown:
            raise KeyError(f"unregistered session ids: {sorted(unknown)}")
        await asyncio.gather(*[
            self._run_session(sid, chunks, feed_hz)
            for sid, chunks in feeds.items()])
        if not self.isolate_errors:
            for sid in feeds:
                exception = self.sessions[sid].exception
                if exception is not None:
                    raise exception

    # ------------------------------------------------------------------
    def detections(self) -> list[Detection]:
        """Every flushed session's pass report.

        Failed sessions (poisoned, timed out) never flushed, so they
        contribute nothing here — sibling fusion over the survivors is
        byte-identical to a run that never included the failed feed.
        """
        return [s.detection() for s in self.sessions.values()
                if s.decoder.flushed]

    def failed_sessions(self) -> list[StreamSession]:
        """Sessions the mux had to give up on (poisoned or timed out)."""
        return [s for s in self.sessions.values() if s.failed]

    def fused(self, expected_speed_mps: float | None = None,
              ) -> list[FusedObservation]:
        """Cross-session verdicts via the networked-receiver fusion.

        With an expected speed, detections are first clustered into
        per-pass groups exactly as a receiver network would
        (:func:`repro.net.group_by_pass`); without one, all sessions
        are treated as observers of the same pass and fused in one
        confidence-weighted vote.
        """
        detections = self.detections()
        if not detections:
            return []
        if expected_speed_mps is None:
            return [fuse_detections(detections)]
        groups = group_by_pass(detections, expected_speed_mps)
        return [fuse_detections(group) for group in groups]


def replay_traces(feeds: Mapping[str, tuple], chunk_size: int,
                  feed_hz: float = 0.0, queue_chunks: int = 8,
                  watchdog_s: float | None = None,
                  isolate_errors: bool = False,
                  chunks_by_session: Mapping[str, Iterable] | None = None,
                  ) -> SessionMux:
    """Replay captured traces as concurrent live sessions (sync entry).

    Args:
        feeds: session id -> ``(trace, n_data_symbols, decoder)``;
            ``n_data_symbols`` and ``decoder`` may be None.
        chunk_size: samples per chunk, >= 1.
        feed_hz: per-session feed pacing (0 = as fast as possible).
        queue_chunks: per-session backpressure bound.
        watchdog_s: optional per-session watchdog (see
            :class:`SessionMux`).
        isolate_errors: contain poisoned sessions instead of re-raising
            after the replay (see :class:`SessionMux`).
        chunks_by_session: optional per-session pre-chunked feed
            overriding the trace's own chunking — the fault layer's
            entry point for corrupted chunk transport.  Sessions not
            named fall back to chunking their trace.

    Returns:
        The completed mux (every healthy session flushed), ready for
        stats, events and fusion queries.
    """
    from .replay import iter_chunks

    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    overrides = chunks_by_session or {}
    unknown = set(overrides) - set(feeds)
    if unknown:
        raise KeyError(f"chunk overrides for unknown sessions: "
                       f"{sorted(unknown)}")
    mux = SessionMux(queue_chunks=queue_chunks, watchdog_s=watchdog_s,
                     isolate_errors=isolate_errors)
    chunk_feeds = {}
    for sid, (trace, n_data_symbols, decoder) in feeds.items():
        # All replay sessions observe from one place (position 0):
        # inventing distinct positions would make the speed-aware
        # pass-grouping expect travel time between sessions replaying
        # the same instant.  Callers modelling a spatial deployment
        # build the mux directly and pass real node positions.
        # With profiling on, each replay session collects its own stage
        # trace (normalize/acquire/decide) that the mux publishes to
        # telemetry on completion; new_trace() is None otherwise.
        mux.add_session(sid, StreamDecoder(
            trace.sample_rate_hz, trace.start_time_s,
            n_data_symbols=n_data_symbols, decoder=decoder,
            stage_trace=new_trace()))
        chunk_feeds[sid] = (overrides[sid] if sid in overrides
                            else iter_chunks(trace.samples, chunk_size))
    coro = mux.run(chunk_feeds, feed_hz=feed_hz)
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        asyncio.run(coro)
    else:
        # Called from inside a running loop (a notebook, an async
        # app): asyncio.run would raise, so drive the replay on a
        # dedicated loop in a worker thread and block this caller —
        # the documented sync contract — until it completes.
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(asyncio.run, coro).result()
    return mux
