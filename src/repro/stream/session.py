"""Concurrent multi-receiver streaming: the asyncio session layer.

A deployment is not one receiver — it is dozens of "tiny boxes"
streaming RSS simultaneously.  :class:`SessionMux` multiplexes many
:class:`~repro.stream.StreamDecoder` sessions on one event loop:

* each session owns a bounded :class:`asyncio.Queue` of chunks, so a
  producer that outruns its decoder **blocks on the queue**
  (backpressure) instead of growing memory without bound;
* a per-session worker drains the queue, feeds the decoder, and yields
  between chunks so no session starves the others;
* finished sessions turn their verdicts into
  :class:`repro.net.Detection` reports, and :meth:`SessionMux.fused`
  reuses the networked-receiver fusion layer verbatim for cross-session
  verdicts.

Wall-clock numbers (per-session processing time, throughput) live in
:class:`SessionStats`; everything decode-related stays on the sample
clock and is exactly what the bare decoder would have produced — the
mux adds concurrency, never changes answers.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterable, Iterable, Mapping

import numpy as np

from ..net.fusion import FusedObservation, fuse_detections, group_by_pass
from ..net.node import Detection, decode_confidence, onset_timestamp
from .decode import DecodeEvent, StreamDecoder

__all__ = ["SessionStats", "StreamSession", "SessionMux", "replay_traces"]


@dataclass
class SessionStats:
    """Operational accounting for one streaming session.

    Attributes:
        n_chunks: chunks ingested.
        n_samples: samples ingested.
        busy_s: wall-clock time spent inside the decoder.
        max_queue_depth: deepest the ingest queue ever got.
        backpressure_waits: feeds that found the queue full and had to
            wait — nonzero means the producer outran the decoder.
    """

    n_chunks: int = 0
    n_samples: int = 0
    busy_s: float = 0.0
    max_queue_depth: int = 0
    backpressure_waits: int = 0

    @property
    def throughput_sps(self) -> float:
        """Samples decoded per second of decoder busy time."""
        return self.n_samples / self.busy_s if self.busy_s > 0.0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-safe)."""
        return {
            "n_chunks": self.n_chunks,
            "n_samples": self.n_samples,
            "busy_s": self.busy_s,
            "max_queue_depth": self.max_queue_depth,
            "backpressure_waits": self.backpressure_waits,
            "throughput_sps": self.throughput_sps,
        }


class StreamSession:
    """One receiver's live stream inside the mux.

    Attributes:
        session_id: unique name.
        decoder: the online decode state machine.
        position_m: the receiver's position along the track (feeds the
            fusion layer's pass-grouping).
        stats: operational counters.
        events: every event the decoder emitted, in order.
    """

    def __init__(self, session_id: str, decoder: StreamDecoder,
                 position_m: float = 0.0, queue_chunks: int = 8) -> None:
        if not session_id:
            raise ValueError("session_id must be non-empty")
        if queue_chunks < 1:
            raise ValueError(
                f"queue_chunks must be >= 1, got {queue_chunks}")
        self.session_id = session_id
        self.decoder = decoder
        decoder.session_id = session_id
        self.position_m = float(position_m)
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_chunks)
        self.stats = SessionStats()
        self.done = asyncio.Event()

    @property
    def events(self) -> list[DecodeEvent]:
        return self.decoder.events

    def verdict(self) -> DecodeEvent | None:
        """The session's verdict event (None before flush)."""
        return self.decoder.event("verdict")

    def detection(self) -> Detection:
        """This session's pass report, in the fusion layer's currency.

        Mirrors :meth:`repro.net.ReceiverNode.observe`: decoded
        sessions anchor on the preamble, failed ones estimate the
        signal onset from the buffered samples.

        Raises:
            RuntimeError: before the stream has been flushed.
        """
        result = self.decoder.result
        if result is None or self.decoder.final_trace is None:
            if self.decoder.final_trace is None:
                raise RuntimeError(
                    f"session {self.session_id!r} not flushed yet")
            return Detection(
                node_id=self.session_id, position_m=self.position_m,
                timestamp_s=onset_timestamp(self.decoder.final_trace),
                bits="", confidence=0.0,
                timestamp_source="onset_estimate")
        return Detection(
            node_id=self.session_id, position_m=self.position_m,
            timestamp_s=result.anchor_points[0].time_s,
            bits=result.bit_string(),
            confidence=(decode_confidence(result) if result.success
                        else 0.0),
            symbol_period_s=result.tau_t,
            timestamp_source="preamble_anchor")


class SessionMux:
    """Multiplexes many concurrent streaming sessions with backpressure.

    Typical use::

        mux = SessionMux()
        for sid, trace in feeds.items():
            mux.add_session(sid, StreamDecoder(trace.sample_rate_hz,
                                               trace.start_time_s))
        asyncio.run(mux.run({sid: chunks(trace) for ...}))
        print(mux.fused())

    Attributes:
        queue_chunks: per-session ingest queue bound (backpressure
            threshold) for sessions created via :meth:`add_session`.
    """

    def __init__(self, queue_chunks: int = 8) -> None:
        if queue_chunks < 1:
            raise ValueError(
                f"queue_chunks must be >= 1, got {queue_chunks}")
        self.queue_chunks = queue_chunks
        self.sessions: dict[str, StreamSession] = {}

    # ------------------------------------------------------------------
    def add_session(self, session_id: str, decoder: StreamDecoder,
                    position_m: float = 0.0) -> StreamSession:
        """Register one stream; ids must be unique."""
        if session_id in self.sessions:
            raise ValueError(f"duplicate session id {session_id!r}")
        session = StreamSession(session_id, decoder,
                                position_m=position_m,
                                queue_chunks=self.queue_chunks)
        self.sessions[session_id] = session
        return session

    def session(self, session_id: str) -> StreamSession:
        return self.sessions[session_id]

    # ------------------------------------------------------------------
    async def feed(self, session_id: str, chunk: np.ndarray) -> None:
        """Enqueue one chunk; blocks while the session's queue is full."""
        session = self.sessions[session_id]
        if session.queue.full():
            session.stats.backpressure_waits += 1
        await session.queue.put(np.asarray(chunk, dtype=float))
        session.stats.max_queue_depth = max(session.stats.max_queue_depth,
                                            session.queue.qsize())

    async def close(self, session_id: str) -> None:
        """Signal end-of-stream; the worker flushes and finishes."""
        await self.sessions[session_id].queue.put(None)

    async def _drain(self, session: StreamSession) -> None:
        """Worker: pull chunks, feed the decoder, flush on the sentinel."""
        while True:
            item = await session.queue.get()
            started = time.perf_counter()
            if item is None:
                session.decoder.flush()
                session.stats.busy_s += time.perf_counter() - started
                session.done.set()
                return
            session.decoder.push(item)
            session.stats.n_chunks += 1
            session.stats.n_samples += len(item)
            session.stats.busy_s += time.perf_counter() - started
            # Cooperative fairness: decoding is sync CPU work, so yield
            # the loop between chunks or one hot session starves all
            # others (and every producer behind a full queue).
            await asyncio.sleep(0)

    async def _produce(self, session_id: str,
                       chunks: Iterable[np.ndarray] | AsyncIterable,
                       feed_hz: float) -> None:
        interval = 1.0 / feed_hz if feed_hz > 0.0 else 0.0
        if hasattr(chunks, "__aiter__"):
            async for chunk in chunks:
                await self.feed(session_id, chunk)
                if interval:
                    await asyncio.sleep(interval)
        else:
            # No voluntary yield when unpaced: the producer runs until
            # the bounded queue blocks it — that *is* the backpressure
            # mechanism, and it is what hands the loop to the workers.
            for chunk in chunks:
                await self.feed(session_id, chunk)
                if interval:
                    await asyncio.sleep(interval)
        await self.close(session_id)

    async def run(self, feeds: Mapping[str, Iterable[np.ndarray]],
                  feed_hz: float = 0.0) -> None:
        """Drive every session's producer and worker to completion.

        Args:
            feeds: session id -> iterable (or async iterable) of sample
                chunks.  Every id must already be registered.
            feed_hz: chunks per second per producer; 0 feeds as fast as
                backpressure allows.
        """
        unknown = set(feeds) - set(self.sessions)
        if unknown:
            raise KeyError(f"unregistered session ids: {sorted(unknown)}")
        workers = [asyncio.ensure_future(self._drain(self.sessions[sid]))
                   for sid in feeds]
        producers = [asyncio.ensure_future(
            self._produce(sid, chunks, feed_hz))
            for sid, chunks in feeds.items()]
        tasks = [*workers, *producers]
        try:
            # One combined gather: a worker that dies mid-stream fails
            # the gather immediately even while its producer is parked
            # on a full queue — gathering producers first would wait on
            # that blocked put forever (a deadlock, since the dead
            # worker will never drain the queue).
            await asyncio.gather(*tasks)
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    def detections(self) -> list[Detection]:
        """Every flushed session's pass report."""
        return [s.detection() for s in self.sessions.values()
                if s.decoder.flushed]

    def fused(self, expected_speed_mps: float | None = None,
              ) -> list[FusedObservation]:
        """Cross-session verdicts via the networked-receiver fusion.

        With an expected speed, detections are first clustered into
        per-pass groups exactly as a receiver network would
        (:func:`repro.net.group_by_pass`); without one, all sessions
        are treated as observers of the same pass and fused in one
        confidence-weighted vote.
        """
        detections = self.detections()
        if not detections:
            return []
        if expected_speed_mps is None:
            return [fuse_detections(detections)]
        groups = group_by_pass(detections, expected_speed_mps)
        return [fuse_detections(group) for group in groups]


def replay_traces(feeds: Mapping[str, tuple], chunk_size: int,
                  feed_hz: float = 0.0, queue_chunks: int = 8) -> SessionMux:
    """Replay captured traces as concurrent live sessions (sync entry).

    Args:
        feeds: session id -> ``(trace, n_data_symbols, decoder)``;
            ``n_data_symbols`` and ``decoder`` may be None.
        chunk_size: samples per chunk, >= 1.
        feed_hz: per-session feed pacing (0 = as fast as possible).
        queue_chunks: per-session backpressure bound.

    Returns:
        The completed mux (every session flushed), ready for stats,
        events and fusion queries.
    """
    from .replay import iter_chunks

    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    mux = SessionMux(queue_chunks=queue_chunks)
    chunk_feeds = {}
    for sid, (trace, n_data_symbols, decoder) in feeds.items():
        # All replay sessions observe from one place (position 0):
        # inventing distinct positions would make the speed-aware
        # pass-grouping expect travel time between sessions replaying
        # the same instant.  Callers modelling a spatial deployment
        # build the mux directly and pass real node positions.
        mux.add_session(sid, StreamDecoder(
            trace.sample_rate_hz, trace.start_time_s,
            n_data_symbols=n_data_symbols, decoder=decoder))
        chunk_feeds[sid] = iter_chunks(trace.samples, chunk_size)
    coro = mux.run(chunk_feeds, feed_hz=feed_hz)
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        asyncio.run(coro)
    else:
        # Called from inside a running loop (a notebook, an async
        # app): asyncio.run would raise, so drive the replay on a
        # dedicated loop in a worker thread and block this caller —
        # the documented sync contract — until it completes.
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(asyncio.run, coro).result()
    return mux
