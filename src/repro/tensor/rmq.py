"""Exact range-query primitives for the batched decoder.

The serial decoder answers thousands of "max/min of the smoothed signal
inside [a, b)" questions per trace (clock-refinement candidates and
decision windows, via per-window ``searchsorted`` + slice reductions).
The batched tier answers the same questions for every row of a group at
once through two shared structures:

* **Sparse tables** (:func:`build_table`): O(n log n) precompute, O(1)
  range max/min via two overlapping power-of-two windows.  ``max`` and
  ``min`` are idempotent comparisons, so the overlap is harmless and
  every answer is the *identical float* a sequential reduction returns.
* **Exact grid search** (:func:`grid_searchsorted`): the sample-time
  grid is uniform, so an arithmetic guess lands within a sample of the
  true ``searchsorted`` rank; a compare-and-nudge fixup loop then
  enforces the exact definition (first index with ``times[i] >= v``)
  against the *actual* stored times, making the result bit-equal to
  ``np.searchsorted(times, v, "left")`` by construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["log_table", "build_table", "range_query", "grid_searchsorted"]

_LOG_CACHE: dict[int, np.ndarray] = {}


def log_table(n: int) -> np.ndarray:
    """``floor(log2(i))`` for ``i`` in ``[1, n]`` (index 0 unused)."""
    table = _LOG_CACHE.get(n)
    if table is None:
        i = np.arange(1, n + 1)
        table = np.zeros(n + 1, dtype=np.intp)
        if n >= 1:
            k = np.floor(np.log2(i)).astype(np.intp)
            # log2 is exact at powers of two and comfortably accurate
            # between them, but enforce the defining inequality anyway.
            k -= (1 << k) > i
            k += (2 << k) <= i
            table[1:] = k
        _LOG_CACHE[n] = table
    return table


def build_table(x: np.ndarray, op: np.ufunc,
                max_len: int | None = None) -> np.ndarray:
    """Sparse table of ``op`` (``np.maximum``/``np.minimum``) over rows.

    ``T[k, r, i]`` reduces ``x[r, i : i + 2**k]``.  Entries whose window
    would overrun the row are left uninitialised and are never queried.

    ``max_len`` bounds the longest range the table will ever be queried
    with — levels above ``floor(log2(max_len))`` are simply not built
    (a longer query would fault on the missing level, never return a
    wrong value).
    """
    rows, n = x.shape
    cap = n if max_len is None else max(1, min(n, max_len))
    levels = int(log_table(n)[cap]) + 1 if n else 1
    table = np.empty((levels, rows, n))
    table[0] = x
    for k in range(1, levels):
        half = 1 << (k - 1)
        m = n - (1 << k) + 1
        op(table[k - 1, :, :m], table[k - 1, :, half:half + m],
           out=table[k, :, :m])
    return table


def range_query(table: np.ndarray, log: np.ndarray, op: np.ufunc,
                rows: np.ndarray, a: np.ndarray,
                b: np.ndarray) -> np.ndarray:
    """Reduce ``x[rows, a:b]`` (requires ``b > a`` elementwise).

    Gathers go through flat ``np.take`` — one integer index per element
    — which is several times cheaper than the equivalent triple-array
    advanced indexing on large query batches.
    """
    _, n_rows, n = table.shape
    k = log[b - a]
    base = (k * n_rows + rows) * n
    flat = table.reshape(-1)
    return op(flat.take(base + a), flat.take(base + b - (1 << k)))


def grid_searchsorted(times: np.ndarray, t0: float, fs: float,
                      v: np.ndarray) -> np.ndarray:
    """Exact ``np.searchsorted(times, v, "left")`` on a uniform grid.

    ``times`` must be ``t0 + arange(n) / fs``.  The arithmetic guess is
    corrected against the stored values until the searchsorted
    invariant ``times[idx-1] < v <= times[idx]`` holds exactly, so the
    result is identical to binary search no matter how the guess
    rounds (the loop almost always settles in one pass).
    """
    n = len(times)
    flat = np.asarray(v, dtype=float).ravel()
    idx = np.ceil((flat - t0) * fs).astype(np.intp)
    np.clip(idx, 0, n, out=idx)
    while True:
        down = (np.take(times, idx - 1, mode="clip") >= flat) & (idx > 0)
        up = (np.take(times, idx, mode="clip") < flat) & (idx < n)
        if not (down.any() or up.any()):
            return idx.reshape(np.shape(v))
        idx -= down
        idx += up
