"""Optional compiled kernels for the tensor execution tier.

The only heavy dependency here is `numba`, and it is strictly optional:
availability is detected once at import, the environment variable named
by :data:`NUMBA_DISABLED_ENV` force-disables it (the CI "no-numba" leg
sets it to prove the NumPy fallback stays green), and every caller
(:func:`repro.dsp.dtw.dtw` with ``implementation="auto"``) degrades to
the existing NumPy wavefront kernel when the JIT is absent.

The compiled banded-DTW kernel fills exactly the cells of the reference
dynamic program in the same order with the same arithmetic, so its
accumulated-cost matrix — and therefore distances and paths — are
bit-identical to both the reference loop and the wavefront kernel.
"""

from __future__ import annotations

import os

import numpy as np

from ..dsp.dtw import _band_limits

__all__ = ["HAVE_NUMBA", "NUMBA_DISABLED_ENV", "numba_disabled",
           "compiled_cost_matrix"]

#: Set this environment variable to a truthy value to pretend numba is
#: not installed (forces every auto path onto the NumPy fallback).
NUMBA_DISABLED_ENV = "REPRO_DISABLE_NUMBA"


def numba_disabled() -> bool:
    """Whether the environment force-disables the compiled kernels."""
    value = os.environ.get(NUMBA_DISABLED_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


try:
    if numba_disabled():
        raise ImportError(f"numba disabled via {NUMBA_DISABLED_ENV}")
    from numba import njit  # type: ignore

    HAVE_NUMBA = True
except ImportError:
    njit = None
    HAVE_NUMBA = False


if HAVE_NUMBA:

    @njit(cache=True)  # pragma: no cover - requires numba
    def _banded_accumulate(a, b, j_lo, j_hi, acc):
        n = a.shape[0]
        for i in range(1, n + 1):
            ai = a[i - 1]
            for j in range(j_lo[i - 1], j_hi[i - 1] + 1):
                cost = abs(ai - b[j - 1])
                best = acc[i - 1, j]
                if acc[i, j - 1] < best:
                    best = acc[i, j - 1]
                if acc[i - 1, j - 1] < best:
                    best = acc[i - 1, j - 1]
                acc[i, j] = cost + best


def compiled_cost_matrix(a: np.ndarray, b: np.ndarray,
                         band: int | None) -> np.ndarray:
    """Accumulated-cost matrix via the numba-compiled banded DP.

    Raises:
        RuntimeError: when numba is unavailable or disabled; callers
            selecting ``"auto"`` never reach this, only an explicit
            ``implementation="compiled"`` can.
    """
    if not HAVE_NUMBA:
        raise RuntimeError(
            "compiled DTW kernel unavailable: numba is not importable "
            f"or is disabled via {NUMBA_DISABLED_ENV}")
    n, m = len(a), len(b)
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    j_lo, j_hi = _band_limits(n, m, band)
    _banded_accumulate(np.ascontiguousarray(a, dtype=np.float64),
                       np.ascontiguousarray(b, dtype=np.float64),
                       j_lo, j_hi, acc)
    return acc
