"""Cross-scenario batched execution: N captures as one (N x T) tensor.

:func:`execute_batch` is the tensor-backend counterpart of the serial
:func:`repro.engine.execute_scenario` loop.  It groups resolved specs by
their *optical key* — the resolved spec minus the noise seed — so the
expensive seed-independent physics (footprint kernel, pass geometry,
aperture illuminance, detector band limiting and response, the noise
sigma profile) is computed **once per group**, and only the per-seed
noise draw onward runs per scenario, batched as fused ``(N, T)`` array
passes in a single process with no pickling.

Decoding is batched too: multi-scale acquisition, the clock-refinement
search and the decision windows all evaluate across the rows of a group
at once through shared sparse max/min tables (:mod:`repro.tensor.rmq`),
answering window for window the identical floats the serial decoder's
scipy calls and segment reductions produce.

Equivalence contract: with ``dtype="float64"`` (the default) every
:class:`~repro.engine.records.RunRecord` is **byte-identical**
(``canonical_json``) to the serial executor's record for the same
resolved spec.  This holds structurally:

* shared stages are seed-independent and computed with the very same
  functions the serial path calls;
* per-row stages replicate the serial expressions element for element
  (IEEE arithmetic on broadcast rows equals the per-row expressions);
* specs the fast path does not cover (networked receivers, streamed
  replay, the two-phase car decoder) are delegated to
  ``execute_scenario`` unchanged, as is any group whose fast path
  raises — correctness never depends on the fast path succeeding.

``dtype="float32"`` runs the per-row physics in single precision (half
the memory traffic on the batched arrays).  Codes may differ from the
float64 path by one ADC step on a tiny fraction of samples, so verdicts
agree within a documented tolerance rather than byte-for-byte; the path
stays fully deterministic (same seeds, same records on every run).
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..channel.trace import SignalTrace
from ..core.decoder import (
    _EXPECTED_HIGH,
    AdaptiveThresholdDecoder,
    DecoderConfig,
)
from ..core.errors import PreambleNotFoundError
from ..dsp.filters import moving_average
from ..dsp.peaks import Extremum, _prominent_peaks
from ..engine.executor import build_simulator, execute_scenario
from ..engine.records import (
    RecordStage,
    RunRecord,
    make_record,
    outcome_stage,
)
from ..engine.spec import ScenarioSpec, SpecIdentity
from ..exec.graph import ExecStage, StageTrace, maybe_stage, new_trace
from ..obs.export import publish_stage_trace
from ..obs.registry import active_registry
from ..hardware.amplifier import first_order_lowpass
from ..tags.encoding import ManchesterError, Symbol, manchester_decode
from ..tags.packet import Packet
from .rmq import build_table, grid_searchsorted, log_table, range_query

__all__ = ["DTYPES", "execute_batch", "optical_key", "fast_path_eligible",
           "clear_plan_cache"]

#: Supported execution dtypes for the batched physics.
DTYPES = ("float64", "float32")

#: Bounded cache of per-group shared physics (see :class:`_GroupPlan`).
_PLAN_CACHE_MAX = 32
_PLAN_CACHE: "OrderedDict[str, _GroupPlan]" = OrderedDict()
_PLAN_LOCK = threading.Lock()


def optical_key(spec: ScenarioSpec) -> str:
    """Grouping key: the resolved spec minus the noise seed.

    Delegates to :meth:`ScenarioSpec.optical_key` — the one derivation
    of grouping identity, shared with the engine's executor (see the
    regression test pinning both call sites together).
    """
    return spec.optical_key()


def fast_path_eligible(spec: ScenarioSpec) -> bool:
    """Whether the fused tensor path covers this spec.

    Networked arrays, streamed replay, fault-injected scenarios and the
    two-phase car decoder keep their specialised serial paths (they are
    delegated, per spec, to ``execute_scenario`` — records stay
    identical by construction).
    """
    return (spec.n_receivers == 1 and spec.stream_chunk == 0
            and spec.decoder == "adaptive" and spec.fault_plan is None)


def clear_plan_cache() -> None:
    """Drop all cached group plans (tests and memory-sensitive callers)."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()


# ----------------------------------------------------------------------
# Shared per-group physics
# ----------------------------------------------------------------------

@dataclass
class _GroupPlan:
    """Everything about a group that does not depend on the seed."""

    sim: object                # ChannelSimulator (caches kernel/profiles)
    t_start: float
    times: np.ndarray          # shared sample-time grid
    v0: np.ndarray             # detector response before noise (float64)
    sigma: np.ndarray          # detector noise sigma at v0 (float64)
    noise_floor: float

    @property
    def n_samples(self) -> int:
        return len(self.times)


def _build_plan(spec: ScenarioSpec) -> _GroupPlan:
    """Run the seed-independent half of ``sim.capture_pass`` once.

    Mirrors ``ChannelSimulator.capture_pass`` + the pre-noise stages of
    ``ReceiverFrontEnd.capture`` exactly (same functions, same order),
    stopping right before the per-seed noise draw.
    """
    sim = build_simulator(spec)
    t_start, duration = sim.pass_window()
    t = sim.time_grid(duration, t_start)
    lux = sim.aperture_illuminance(t)
    if lux.ndim != 1:
        raise ValueError("expected a 1-D waveform")
    if np.any(lux < 0.0):
        raise ValueError("illuminance cannot be negative")
    detector = sim.frontend.detector
    fs = sim.config.sample_rate_hz
    smoothed = first_order_lowpass(lux, detector.bandwidth_hz, fs)
    v0 = detector.respond(smoothed)
    sigma = detector.noise_sigma(v0)
    return _GroupPlan(sim=sim, t_start=t_start, times=t, v0=v0,
                      sigma=sigma,
                      noise_floor=sim.scene.nominal_noise_floor_lux())


def _plan_for(key: str, spec: ScenarioSpec) -> _GroupPlan:
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _PLAN_CACHE.move_to_end(key)
            return plan
    plan = _build_plan(spec)
    with _PLAN_LOCK:
        _PLAN_CACHE[key] = plan
        while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
    return plan


# ----------------------------------------------------------------------
# Batched capture (the per-seed half of the front end)
# ----------------------------------------------------------------------

def _capture_rows(plan: _GroupPlan, specs: list[ScenarioSpec],
                  dtype: str) -> np.ndarray:
    """Noise + amplifier + ADC for every row as one (R, T) pass.

    float64 replicates ``ReceiverFrontEnd.capture`` bit for bit: the
    per-row expression ``v0 + normal(seed) * sigma`` (then clip,
    amplify, quantise) is evaluated on broadcast rows, which performs
    the identical IEEE operations per element.
    """
    sim = plan.sim
    fs = sim.config.sample_rate_hz
    n = plan.n_samples
    amp = sim.frontend.amplifier
    adc = sim.frontend.adc
    include_noise = sim.config.include_noise

    if dtype == "float64":
        if include_noise:
            noise = np.empty((len(specs), n))
            for i, spec in enumerate(specs):
                rng = np.random.default_rng(spec.seed)
                noise[i] = rng.normal(0.0, 1.0, size=n)
            v = plan.v0[None, :] + noise * plan.sigma[None, :]
        else:
            # The serial path adds zeros * sigma — exactly + 0.0.
            v = plan.v0[None, :] + np.zeros((len(specs), n))
        v = np.clip(v, 0.0, 1.0)
        if amp.bandwidth_hz >= fs / 2.0:
            # The band limit is transparent at this rate (the lowpass
            # returns a copy), so amplify reduces elementwise.
            v = np.clip(v * amp.gain + amp.input_offset,
                        amp.rail_low, amp.rail_high)
        else:
            v = np.stack([amp.amplify(row, fs) for row in v])
        return adc.convert(v)

    # float32 fast path: single-precision per-row physics.
    f32 = np.float32
    v0 = plan.v0.astype(f32)
    sigma = plan.sigma.astype(f32)
    if include_noise:
        noise = np.empty((len(specs), n), dtype=f32)
        for i, spec in enumerate(specs):
            rng = np.random.default_rng(spec.seed)
            noise[i] = rng.standard_normal(n, dtype=f32)
        v = v0[None, :] + noise * sigma[None, :]
    else:
        v = np.broadcast_to(v0, (len(specs), n)).copy()
    v = np.clip(v, f32(0.0), f32(1.0))
    if amp.bandwidth_hz >= fs / 2.0:
        v = np.clip(v * f32(amp.gain) + f32(amp.input_offset),
                    f32(amp.rail_low), f32(amp.rail_high))
    else:
        v = np.stack([amp.amplify(row, fs) for row in v]).astype(f32)
    codes = np.round(np.clip(v, f32(0.0), f32(adc.v_ref_fullscale))
                     / f32(adc.lsb))
    return codes.astype(np.int32)


# ----------------------------------------------------------------------
# Batched decode
# ----------------------------------------------------------------------

def _masked_query(table: np.ndarray, log: np.ndarray, op: np.ufunc,
                  rows: np.ndarray, i0: np.ndarray, i1: np.ndarray,
                  valid: np.ndarray) -> np.ndarray:
    """Range-query ``[i0, i1)`` where ``valid``; junk elsewhere."""
    qa = np.where(valid, i0, 0)
    qb = np.where(valid, i1, 1)
    return range_query(table, log, op, rows, qa, qb)


class _RowDecode:
    """Mutable per-row decode state while the batch progresses."""

    __slots__ = ("trace", "stage", "bits", "smooth", "tau_r", "tau_t",
                 "level", "anchor")

    def __init__(self, trace: SignalTrace) -> None:
        self.trace = trace
        self.stage: str | None = None   # terminal stage, once known
        self.bits = ""
        self.smooth: np.ndarray | None = None
        self.tau_r = 0.0
        self.tau_t = 0.0
        self.level = 0.0
        self.anchor = 0.0


def _refine_clock_rows(config: DecoderConfig, times: np.ndarray,
                       t0: float, fs: float, tmax: np.ndarray,
                       tmin: np.ndarray, log: np.ndarray,
                       base_anchor: np.ndarray, tau_t: np.ndarray,
                       tau_r: np.ndarray, level: np.ndarray,
                       n_probe: int) -> tuple[np.ndarray, np.ndarray]:
    """``AdaptiveThresholdDecoder._refine_clock`` over a leading row axis.

    Identical candidate grid, identical window bounds, identical score
    expression — evaluated for every row of the group at once, with the
    data-roughness stage computed only for candidates that survive the
    preamble-margin test (the serial path computes it for all
    candidates; the survivors' values are the same either way, and
    rejected candidates score ``-inf`` in both).  Returns per-row
    ``(tau_t, anchor)``.
    """
    rows, n = len(tau_t), len(times)
    span = config.clock_search_span

    scales = np.linspace(1.0 - span, 1.0 + span, 13)
    rel_deltas = np.linspace(-0.35, 0.35, 15)
    cand_tau = tau_t[:, None] * scales[None, :]                # (R, 13)
    shrink = config.window_shrink_fraction * cand_tau
    anchors = (base_anchor[:, None, None]
               + rel_deltas[None, None, :] * cand_tau[:, :, None])

    tau_c = cand_tau[:, :, None, None]
    shrink_c = shrink[:, :, None, None]
    anchor_c = anchors[:, :, :, None]

    ks = np.arange(4.0)
    i0, i1 = grid_searchsorted(times, t0, fs, np.stack((
        anchor_c + ks * tau_c + shrink_c,
        anchor_c + (ks + 1.0) * tau_c - shrink_c)))
    valid = (i1 > i0) & (i0 < n)
    rows4 = np.broadcast_to(
        np.arange(rows)[:, None, None, None], valid.shape)
    w_max = _masked_query(tmax, log, np.maximum, rows4, i0, i1, valid)
    level_c = level[:, None, None, None]
    margins = np.where(_EXPECTED_HIGH, w_max - level_c, level_c - w_max)
    min_margin = margins.min(axis=-1)
    ok = valid.all(axis=-1) & (min_margin > 0.0)

    out_tau = tau_t.copy()
    out_anchor = base_anchor.copy()
    okr, oks, okd = np.nonzero(ok)
    if len(okr) == 0:
        return out_tau, out_anchor

    # Data-window roughness, survivors only.
    dtau = cand_tau[okr, oks]
    dshrink = shrink[okr, oks]
    data_start = anchors[okr, oks, okd] + 4.0 * dtau
    kd = np.arange(float(max(n_probe, 0)))
    j0, j1 = grid_searchsorted(times, t0, fs, np.stack(
        (data_start[:, None] + kd * dtau[:, None] + dshrink[:, None],
         data_start[:, None] + (kd + 1.0) * dtau[:, None]
         - dshrink[:, None])))
    d_valid = (j1 > j0) & (j0 < n)
    rows_d = np.broadcast_to(okr[:, None], d_valid.shape)
    seg_max = _masked_query(tmax, log, np.maximum, rows_d, j0, j1, d_valid)
    seg_min = _masked_query(tmin, log, np.minimum, rows_d, j0, j1, d_valid)
    ranges = np.where(d_valid, seg_max - seg_min, 0.0)
    counts = np.cumprod(d_valid, axis=-1).sum(axis=-1)
    roughness = np.zeros(len(okr))
    for count in np.unique(counts):
        if count < 1:
            continue
        sel = counts == count
        roughness[sel] = np.mean(ranges[:, :int(count)], axis=-1)[sel]

    score = (min_margin[okr, oks, okd] / tau_r[okr]
             - 0.5 * roughness / tau_r[okr]
             - 0.9 * np.abs(scales - 1.0)[oks]
             - 0.25 * np.abs(rel_deltas)[okd])

    # Row-major first-max tie-breaking, exactly like the serial
    # ``np.argmax`` over the (13, 15) candidate grid.
    full = np.full((rows, len(scales) * len(rel_deltas)), -np.inf)
    full[okr, oks * len(rel_deltas) + okd] = score
    flat_idx = np.argmax(full, axis=1)
    s_idx, d_idx = np.divmod(flat_idx, len(rel_deltas))
    has = np.zeros(rows, dtype=bool)
    has[okr] = True
    r = np.flatnonzero(has)
    out_tau[r] = cand_tau[r, s_idx[r]]
    out_anchor[r] = anchors[r, s_idx[r], d_idx[r]]
    return out_tau, out_anchor


def _first_triple(idx: np.ndarray, val: np.ndarray,
                  is_peak: np.ndarray) -> tuple[int, int, int] | None:
    """``first_preamble_points`` on parallel extrema arrays.

    Identical scan (first peak -> valley -> peak, restarting on a
    higher pre-valley peak, deepening the valley until the closing
    peak) without materialising an :class:`Extremum` per candidate.
    Returns positions into the arrays, or None.
    """
    a: int | None = None
    b: int | None = None
    for j in range(len(idx)):
        if is_peak[j]:
            if a is None:
                a = j
            elif b is not None:
                return a, b, j
            elif val[j] > val[a]:
                a = j
        else:
            if a is not None and b is None:
                b = j
            elif b is not None and val[j] < val[b]:
                b = j
    return None


def _plausible_scalar(cfg: DecoderConfig, idx: np.ndarray,
                      val: np.ndarray, triple: tuple[int, int, int],
                      t0: float, fs: float, span: float,
                      noise_sigma: float) -> bool:
    """``AdaptiveThresholdDecoder._plausible_preamble`` on scalars.

    Same expressions on the same float values (``Extremum.value`` is
    ``float(val[j])``, ``Extremum.time_s`` is ``t0 + idx[j] / fs``),
    just without building the dataclasses for triples that fail.
    """
    ja, jb, jc = triple
    av, bv, cv = float(val[ja]), float(val[jb]), float(val[jc])
    tau_r = ((av - bv) + (cv - bv)) / 2.0
    if tau_r < cfg.min_preamble_swing_fraction * span:
        return False
    if tau_r < 4.0 * noise_sigma:
        return False
    d1 = (t0 + idx[jb] / fs) - (t0 + idx[ja] / fs)
    d2 = (t0 + idx[jc] / fs) - (t0 + idx[jb] / fs)
    if d1 <= 0.0 or d2 <= 0.0:
        return False
    return abs(d1 - d2) <= 0.6 * min(d1, d2)


def _acquire_rows(decoder: AdaptiveThresholdDecoder,
                  rows: list[_RowDecode], raw_stack: np.ndarray,
                  fs: float, t0: float,
                  stage_trace: StageTrace | None = None) -> dict[int, tuple]:
    """``AdaptiveThresholdDecoder._acquire`` for the whole row stack.

    scipy's C peak routines beat any vectorised reformulation at this
    trace length, so each pending row calls the serial path's own
    ``_prominent_peaks`` per scale; everything around those calls — the
    noise-sigma profile, extrema assembly, the triple scan — is either
    vectorised across rows or done on scalars, and full
    :class:`Extremum` objects exist only for the three accepted anchor
    points.  Row for row this evaluates the exact serial sequence:
    smooth, span gate, prominence filter, ``first_preamble_points``,
    ``_plausible_preamble``, finest scale first.

    Returns ``{row_index: (points, smooth)}`` for rows that acquired.
    """
    cfg = decoder.config
    n_rows, n = raw_stack.shape
    acquired: dict[int, tuple] = {}
    if n < 3:
        # Too short for an interior extremum at any scale (the serial
        # path finds no extrema and exhausts every scale).
        return acquired
    if n > 3:
        # Bit-identical to the serial per-row np.std(np.diff(raw)):
        # a last-axis reduction over a C-contiguous stack applies the
        # same pairwise summation to each row's buffer.
        noise_sigma = (np.std(np.diff(raw_stack, axis=1), axis=1)
                       / math.sqrt(2.0))
    else:
        noise_sigma = np.zeros(n_rows)

    prom_frac = cfg.min_prominence_fraction
    pending = list(range(n_rows))
    for window in decoder._smoothing_scales(rows[0].trace):
        if not pending:
            break
        still: list[int] = []
        for ridx in pending:
            with maybe_stage(stage_trace, ExecStage.NORMALIZE):
                smooth = moving_average(raw_stack[ridx], window)
            span = float(smooth.max() - smooth.min())
            if span <= 0.0 or not np.isfinite(span):
                still.append(ridx)
                continue
            prominence = prom_frac * span
            pk = _prominent_peaks(smooth, prominence, None)
            vl = _prominent_peaks(-smooth, prominence, None)
            if len(pk) < 2:
                # A triple needs two peaks; the serial scan over the
                # merged extrema returns None just the same.
                still.append(ridx)
                continue
            idx = np.concatenate([pk, vl])
            order = np.argsort(idx, kind="stable")
            idx = idx[order]
            is_peak = order < len(pk)
            val = smooth[idx]
            triple = _first_triple(idx, val, is_peak)
            if triple is None:
                still.append(ridx)
                continue
            if not _plausible_scalar(
                    cfg, idx, val, triple, t0, fs, span,
                    float(noise_sigma[ridx])):
                still.append(ridx)
                continue
            points = tuple(
                Extremum(int(idx[j]), t0 + idx[j] / fs, float(val[j]),
                         "peak" if is_peak[j] else "valley")
                for j in triple)
            acquired[ridx] = (points, smooth)
        pending = still
    return acquired


def _decode_rows(traces: list[SignalTrace], n_data_symbols: int,
                 config: DecoderConfig | None = None,
                 stage_trace: StageTrace | None = None) -> list[_RowDecode]:
    """Batched adaptive decode of same-grid traces.

    All three decoder stages — acquisition, clock refinement, decision
    windows — run as fused passes over the whole row stack, answering
    every "max/min inside this window" question through shared sparse
    tables (:mod:`repro.tensor.rmq`) instead of per-row scipy calls.
    When profiled, the fused passes attribute group-level time to the
    same ``normalize``/``acquire``/``refine_clock``/``decide`` stages
    the serial decoder reports per scenario.
    """
    decoder = AdaptiveThresholdDecoder(config)
    cfg = decoder.config
    rows = [_RowDecode(t) for t in traces]
    trace0 = traces[0]
    fs = trace0.sample_rate_hz
    t0 = trace0.start_time_s
    times = trace0.times()
    n = len(times)
    if n == 0:
        for row in rows:
            row.stage = RecordStage.PREAMBLE_NOT_FOUND.value
        return rows

    raw_stack = np.stack(
        [np.asarray(t.samples, dtype=float) for t in traces])
    acquired = _acquire_rows(decoder, rows, raw_stack, fs, t0,
                             stage_trace=stage_trace)

    with maybe_stage(stage_trace, ExecStage.ACQUIRE):
        live: list[_RowDecode] = []
        for ridx, row in enumerate(rows):
            got = acquired.get(ridx)
            if got is None:
                row.stage = RecordStage.PREAMBLE_NOT_FOUND.value
                continue
            points, smooth = got
            try:
                tau_r, tau_t = decoder.thresholds(points)
            except PreambleNotFoundError:
                row.stage = RecordStage.PREAMBLE_NOT_FOUND.value
                continue
            row.smooth = smooth
            row.tau_r = tau_r
            row.tau_t = tau_t
            row.level = decoder._threshold_level(tau_r, points[1].value)
            row.anchor = points[0].time_s - 0.5 * tau_t
            live.append(row)
        if not live:
            return rows

        smooths = np.ascontiguousarray(
            np.stack([row.smooth for row in live]))
        tau_t = np.array([row.tau_t for row in live])
        tau_r = np.array([row.tau_r for row in live])
        level = np.array([row.level for row in live])
        base_anchor = np.array([row.anchor for row in live])

        log = log_table(n)
        # Longest range any query below can ask for: one symbol window
        # at the widest refinement candidate, in samples.  Levels
        # beyond that are never touched, so the tables stop there (an
        # underestimate would fault in ``range_query``, never answer
        # wrongly).
        wide = ((1.0 + cfg.clock_search_span)
                * (1.0 + 2.0 * abs(cfg.window_shrink_fraction)))
        lmax = int(np.ceil(float(tau_t.max()) * wide * fs)) + 4
        tmax = build_table(smooths, np.maximum, max_len=lmax)
        tmin = build_table(smooths, np.minimum, max_len=lmax)

    with maybe_stage(stage_trace, ExecStage.REFINE_CLOCK):
        if cfg.clock_refinement:
            n_probe = min(n_data_symbols if n_data_symbols else 8, 12)
            tau_t, anchor = _refine_clock_rows(
                cfg, times, t0, fs, tmax, tmin, log, base_anchor,
                tau_t, tau_r, level, n_probe)
        else:
            anchor = base_anchor
        for row, tau, anc in zip(live, tau_t, anchor):
            row.tau_t = float(tau)
            row.anchor = float(anc)

    with maybe_stage(stage_trace, ExecStage.DECIDE):
        # Decision windows, batched: same grid for every row.
        data_start = anchor + 4.0 * tau_t
        shrink = cfg.window_shrink_fraction * tau_t
        ks = np.arange(float(n_data_symbols))
        w_starts = data_start[:, None] + ks[None, :] * tau_t[:, None]
        w_ends = w_starts + tau_t[:, None]
        i0, i1 = grid_searchsorted(times, t0, fs, np.stack(
            (w_starts + shrink[:, None], w_ends - shrink[:, None])))
        valid = (i1 > i0) & (i0 < n)
        n_good = np.cumprod(valid, axis=1).sum(axis=1)
        rows2 = np.broadcast_to(np.arange(len(live))[:, None], valid.shape)
        maxima = _masked_query(tmax, log, np.maximum, rows2, i0, i1, valid)

        for r, row in enumerate(live):
            good = int(n_good[r])
            if good == 0:
                row.stage = RecordStage.DECODE_FAILED.value
                continue
            symbols = [Symbol.HIGH if float(maxima[r, k]) > row.level
                       else Symbol.LOW for k in range(good)]
            try:
                bits = manchester_decode(symbols)
            except ManchesterError:
                bits = None
            row.bits = ("" if bits is None
                        else "".join(str(b) for b in bits))
            row.stage = "ok"
    return rows


# ----------------------------------------------------------------------
# Group execution and the public entry point
# ----------------------------------------------------------------------

def _run_group(key: str, specs: list[ScenarioSpec],
               idents: list[SpecIdentity],
               dtype: str) -> list[RunRecord]:
    started = time.perf_counter()
    spec0 = specs[0]
    profile = new_trace()

    with maybe_stage(profile, ExecStage.BUILD):
        plan = _plan_for(key, spec0)
        sim = plan.sim
        fs = sim.config.sample_rate_hz
        packet = Packet.from_bitstring(spec0.bits,
                                       symbol_width_m=spec0.symbol_width_m)
    sent = packet.bit_string()
    n_data_symbols = 2 * len(packet.data_bits)

    with maybe_stage(profile, ExecStage.SIMULATE):
        codes = _capture_rows(plan, specs, dtype)
        meta = sim._meta(kind="rss")
        traces = [SignalTrace(codes[i].astype(float), fs, plan.t_start,
                              meta=dict(meta))
                  for i in range(len(specs))]
    decodes = _decode_rows(
        traces, n_data_symbols,
        DecoderConfig(threshold_rule=spec0.threshold_rule),
        stage_trace=profile)

    elapsed = (time.perf_counter() - started) / max(1, len(specs))
    if profile is not None:
        # The group ran its fused stages once for the whole row stack;
        # each record carries an equal per-scenario share so stage
        # totals aggregate the same way serial traces do.
        profile.count("batch_rows", len(specs))
        registry = active_registry()
        if registry is not None:
            # Telemetry sees the fused pass once, at its true wall
            # time, before the per-record scaling below.
            publish_stage_trace(registry, profile, "tensor")
        profile = profile.scaled(1.0 / max(1, len(specs)))
    records = []
    for spec, ident, row in zip(specs, idents, decodes):
        decoded = row.bits if row.stage == "ok" else ""
        stage = (outcome_stage(decoded, sent) if row.stage == "ok"
                 else row.stage)
        records.append(make_record(
            spec_hash=ident.content_hash,
            spec=ident.payload,
            seed=spec.seed,
            sent_bits=sent,
            decoded_bits=decoded,
            stage=stage,
            n_samples=plan.n_samples,
            sample_rate_hz=fs,
            noise_floor_lux=plan.noise_floor,
            elapsed_s=elapsed,
            stage_trace=profile,
        ))
    return records


def execute_batch(specs, dtype: str = "float64") -> list[RunRecord]:
    """Execute a batch of scenarios through the fused tensor path.

    Args:
        specs: iterable of :class:`ScenarioSpec` (resolved or not).
        dtype: ``"float64"`` (bit-identical to the serial executor) or
            ``"float32"`` (single-precision fast path; deterministic,
            verdicts within one ADC step of the float64 path).

    Returns:
        One :class:`RunRecord` per spec, in submission order.

    Raises:
        ValueError: on an unknown dtype.
    """
    if dtype not in DTYPES:
        raise ValueError(f"dtype must be one of {DTYPES}, got {dtype!r}")
    resolved = [spec.resolve() for spec in specs]
    records: list[RunRecord | None] = [None] * len(resolved)

    groups: "OrderedDict[str, list[int]]" = OrderedDict()
    idents: list[SpecIdentity | None] = [None] * len(resolved)
    for i, spec in enumerate(resolved):
        if fast_path_eligible(spec):
            ident = spec.identity()
            idents[i] = ident
            groups.setdefault(spec.optical_key(ident), []).append(i)
        else:
            records[i] = execute_scenario(spec)

    for key, indices in groups.items():
        group = [resolved[i] for i in indices]
        try:
            group_records = _run_group(
                key, group, [idents[i] for i in indices], dtype)
        except Exception:
            # Correctness never rides on the fast path: any failure —
            # degenerate geometry, a scene that raises mid-physics —
            # re-runs the group through the serial executor, which
            # produces the exact records (including error records).
            group_records = [execute_scenario(spec) for spec in group]
        for i, record in zip(indices, group_records):
            records[i] = record
    return records
