"""Cross-scenario batched tensor execution.

Public surface:

* :func:`execute_batch` — run N scenarios as fused ``(N, T)`` array
  passes in one process (see :mod:`repro.tensor.batch`).
* :data:`HAVE_NUMBA` / :func:`numba_disabled` — compiled-kernel
  availability (see :mod:`repro.tensor.kernels`).

The package init stays import-light: :mod:`.kernels` needs only numpy
(plus an optional numba probe), while the heavy batch executor loads
lazily on first attribute access so that :mod:`repro.dsp.dtw`'s
``implementation="auto"`` probe can ask about the compiled kernel
without dragging in the whole engine.
"""

from __future__ import annotations

from .kernels import HAVE_NUMBA, NUMBA_DISABLED_ENV, numba_disabled

__all__ = ["HAVE_NUMBA", "NUMBA_DISABLED_ENV", "numba_disabled",
           "DTYPES", "execute_batch", "optical_key",
           "fast_path_eligible", "clear_plan_cache"]

_BATCH_EXPORTS = ("DTYPES", "execute_batch", "optical_key",
                  "fast_path_eligible", "clear_plan_cache")


def __getattr__(name: str):
    if name in _BATCH_EXPORTS:
        from . import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
