"""repro.obs — unified telemetry over the instrumented stage graph.

One process-wide :class:`MetricsRegistry` (counters / gauges /
fixed-bucket histograms, all labelled and lock-protected), one
append-only :class:`EventLog` of typed run events, and exporters for
the Prometheus text format and canonical JSON snapshots.

Telemetry is opt-in with a zero-cost disabled path: instrumentation
sites check ``active_registry()`` / ``active_events()`` for ``None``
— the same single-branch pattern as ``repro.exec.graph.maybe_stage`` —
so the engine's byte-parity and perf gates hold with telemetry off.

Typical scoped use (what ``repro-engine sweep --telemetry DIR`` does)::

    from repro.obs import telemetry_session, write_telemetry

    with telemetry_session() as (registry, events):
        runner.run(specs)
    write_telemetry("telemetry/", registry, events)
"""
from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .events import (EVENT_KINDS, EventLog, RunEvent, active_events,
                     event_scope, set_events)
from .export import (format_metrics, load_snapshot, publish_stage_trace,
                     render_json, render_prometheus, write_telemetry)
from .registry import (DEFAULT_BUCKETS, TELEMETRY_ENV, Counter, Gauge,
                       Histogram, MetricsRegistry, active_registry,
                       set_registry, telemetry, telemetry_enabled)

__all__ = [
    "EVENT_KINDS",
    "EventLog",
    "RunEvent",
    "active_events",
    "event_scope",
    "set_events",
    "format_metrics",
    "load_snapshot",
    "publish_stage_trace",
    "render_json",
    "render_prometheus",
    "write_telemetry",
    "DEFAULT_BUCKETS",
    "TELEMETRY_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "set_registry",
    "telemetry",
    "telemetry_enabled",
    "telemetry_session",
]


@contextmanager
def telemetry_session(
    registry: MetricsRegistry | None = None,
    events: EventLog | None = None,
) -> Iterator[tuple[MetricsRegistry, EventLog]]:
    """Activate a registry and an event log together, scoped."""
    with telemetry(registry) as reg, event_scope(events) as log:
        yield reg, log
