"""Exporters for :class:`~repro.obs.registry.MetricsRegistry` snapshots.

Two wire formats are supported:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, ``name{label="v"} value`` samples, cumulative
  ``_bucket``/``_sum``/``_count`` series for histograms).
* :func:`render_json` — a canonical JSON document of the snapshot, with
  sorted keys so byte-level diffs are meaningful.

:func:`write_telemetry` bundles both plus the event log into a
directory (``events.jsonl`` + ``metrics.json`` + ``metrics.prom``),
which is what ``repro-engine ... --telemetry DIR`` emits, and
:func:`format_metrics` renders a snapshot as the human table behind
``repro-engine metrics FILE``.
"""
from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Mapping

from .events import EventLog
from .registry import MetricsRegistry

__all__ = [
    "render_prometheus",
    "render_json",
    "write_telemetry",
    "load_snapshot",
    "format_metrics",
    "publish_stage_trace",
]

SNAPSHOT_SCHEMA = "repro.obs/1"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _snap(source: MetricsRegistry | Mapping[str, Any]) -> dict[str, Any]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return dict(source)


def _prom_name(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_labels(labels: Mapping[str, str],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(_LABEL_RE.sub("_", k), str(v))
             for k, v in sorted(labels.items())]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, v.replace("\\", r"\\").replace('"', r"\""))
        for k, v in pairs)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(source: MetricsRegistry | Mapping[str, Any]) -> str:
    """Prometheus text exposition of a registry (or raw snapshot)."""
    snap = _snap(source)
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for entry in snap.get("counters", ()):
        name = _prom_name(entry["name"])
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} "
                     f"{_fmt(entry['value'])}")
    for entry in snap.get("gauges", ()):
        name = _prom_name(entry["name"])
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} "
                     f"{_fmt(entry['value'])}")
    for entry in snap.get("histograms", ()):
        name = _prom_name(entry["name"])
        type_line(name, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cumulative += count
            le = (("le", _fmt(float(bound))),)
            lines.append(f"{name}_bucket{_prom_labels(labels, le)} "
                         f"{cumulative}")
        lines.append(f"{name}_bucket"
                     f"{_prom_labels(labels, (('le', '+Inf'),))} "
                     f"{entry['count']}")
        lines.append(f"{name}_sum{_prom_labels(labels)} "
                     f"{_fmt(entry['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} "
                     f"{entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(source: MetricsRegistry | Mapping[str, Any]) -> str:
    """Canonical JSON snapshot (sorted keys, schema-tagged)."""
    doc = {"schema": SNAPSHOT_SCHEMA, **_snap(source)}
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def load_snapshot(path: str | Path) -> dict[str, Any]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "counters" not in data:
        raise ValueError(f"{path}: not a repro.obs metrics snapshot")
    return data


def write_telemetry(directory: str | Path, registry: MetricsRegistry,
                    events: EventLog | None = None) -> dict[str, Path]:
    """Write ``events.jsonl`` + ``metrics.json`` + ``metrics.prom``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    snap = registry.snapshot()
    paths = {
        "metrics.json": directory / "metrics.json",
        "metrics.prom": directory / "metrics.prom",
        "events.jsonl": directory / "events.jsonl",
    }
    paths["metrics.json"].write_text(render_json(snap), encoding="utf-8")
    paths["metrics.prom"].write_text(render_prometheus(snap),
                                     encoding="utf-8")
    (events or EventLog()).write(paths["events.jsonl"])
    return paths


def format_metrics(source: MetricsRegistry | Mapping[str, Any]) -> str:
    """Human-readable table of a snapshot, for ``repro-engine metrics``."""
    snap = _snap(source)
    rows: list[tuple[str, str, str]] = []
    for entry in snap.get("counters", ()):
        rows.append((_series_id(entry), "counter", _fmt(entry["value"])))
    for entry in snap.get("gauges", ()):
        rows.append((_series_id(entry), "gauge", _fmt(entry["value"])))
    for entry in snap.get("histograms", ()):
        count = entry["count"]
        mean = entry["sum"] / count if count else 0.0
        summary = (f"count={count} sum={entry['sum']:.6g} "
                   f"mean={mean:.6g} p95<={_fmt(_quantile(entry, 0.95))}")
        rows.append((_series_id(entry), "histogram", summary))
    if not rows:
        return "(empty snapshot)"
    width_name = max(len(r[0]) for r in rows)
    width_kind = max(len(r[1]) for r in rows)
    lines = [f"{'series'.ljust(width_name)}  {'kind'.ljust(width_kind)}  "
             f"value"]
    lines.append(f"{'-' * width_name}  {'-' * width_kind}  {'-' * 5}")
    for name, kind, value in rows:
        lines.append(f"{name.ljust(width_name)}  {kind.ljust(width_kind)}  "
                     f"{value}")
    return "\n".join(lines)


def _series_id(entry: Mapping[str, Any]) -> str:
    labels = entry.get("labels") or {}
    if not labels:
        return str(entry["name"])
    body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{entry['name']}{{{body}}}"


def _quantile(entry: Mapping[str, Any], q: float) -> float:
    """Upper bound of the bucket containing quantile ``q`` (+Inf-safe)."""
    total = entry["count"]
    if not total:
        return 0.0
    target = q * total
    cumulative = 0
    for bound, count in zip(entry["buckets"], entry["counts"]):
        cumulative += count
        if cumulative >= target:
            return float(bound)
    return math.inf


def publish_stage_trace(registry: MetricsRegistry, trace: Any,
                        driver: str) -> None:
    """Fold a :class:`repro.exec.StageTrace` into stage histograms.

    Reuses the timings the existing ``maybe_stage`` hooks already
    collected — no new timing code runs in any hot loop.  ``driver``
    labels which execution path produced the trace (``serial``,
    ``network``, ``tensor``, ``stream``).
    """
    if trace is None:
        return
    for stage, seconds in trace.timings_s.items():
        registry.histogram(
            "exec_stage_seconds",
            {"stage": str(stage), "driver": driver}).observe(seconds)
    for counter, value in trace.counters.items():
        registry.counter(
            "exec_stage_events_total",
            {"event": str(counter), "driver": driver}).inc(value)
