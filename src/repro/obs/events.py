"""Structured, append-only run event log.

Every noteworthy runtime transition — batch start/end, cache hit/miss,
pool restart, fault injection, retry, session poisoning, harvested stage
timings — is recorded as a typed :class:`RunEvent` and serialised as one
JSONL line.  Timestamps are *monotonic-relative*: seconds since the log
was opened, never wall-clock dates, so two runs of the same workload
produce structurally comparable (and sequence-deterministic) records.

Like :func:`repro.obs.registry.active_registry`, the active log is a
module global; call sites guard on ``active_events()`` returning
``None`` so a disabled log costs one check.
"""
from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "EVENT_KINDS",
    "RunEvent",
    "EventLog",
    "active_events",
    "set_events",
    "event_scope",
]

#: The closed vocabulary of event kinds.  ``emit`` rejects anything
#: else so downstream consumers can rely on the schema.
EVENT_KINDS = frozenset({
    "batch_start",
    "batch_end",
    "cache_hit",
    "cache_miss",
    "pool_restart",
    "fault_injected",
    "retry",
    "retry_exhausted",
    "session_poisoned",
    "session_timeout",
    "stage_timing",
})


@dataclass(frozen=True)
class RunEvent:
    """One typed telemetry event.

    Attributes:
        seq: 0-based position in the log — fully deterministic.
        t_s: seconds since the log opened (monotonic clock).
        kind: one of :data:`EVENT_KINDS`.
        fields: kind-specific payload (plain JSON types only).
    """

    seq: int
    t_s: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "t_s": self.t_s, "kind": self.kind,
                **self.fields}


class EventLog:
    """Append-only, thread-safe log of :class:`RunEvent` records.

    ``clock`` is injectable for tests; it defaults to
    :func:`time.monotonic` and every stored timestamp is relative to
    the clock reading at construction.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()
        self._events: list[RunEvent] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def events(self) -> list[RunEvent]:
        with self._lock:
            return list(self._events)

    def emit(self, kind: str, **fields: Any) -> RunEvent:
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; expected one of "
                f"{sorted(EVENT_KINDS)}")
        t_s = self._clock() - self._t0
        with self._lock:
            event = RunEvent(seq=len(self._events), t_s=round(t_s, 6),
                             kind=kind, fields=dict(fields))
            self._events.append(event)
        return event

    def of_kind(self, kind: str) -> list[RunEvent]:
        return [e for e in self.events if e.kind == kind]

    def to_jsonl(self) -> str:
        lines = [json.dumps(e.to_dict(), sort_keys=True)
                 for e in self.events]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @staticmethod
    def read_jsonl(path: str | Path) -> list[RunEvent]:
        events: list[RunEvent] = []
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            data = json.loads(line)
            events.append(RunEvent(
                seq=int(data.pop("seq")), t_s=float(data.pop("t_s")),
                kind=str(data.pop("kind")), fields=data))
        return events


# ---------------------------------------------------------------------------
# Activation — same module-global pattern as the registry.

_ACTIVE: EventLog | None = None


def set_events(log: EventLog | None) -> None:
    global _ACTIVE
    _ACTIVE = log


def active_events() -> EventLog | None:
    return _ACTIVE


@contextmanager
def event_scope(log: EventLog | None = None) -> Iterator[EventLog]:
    global _ACTIVE
    active = log if log is not None else EventLog()
    prev = _ACTIVE
    _ACTIVE = active
    try:
        yield active
    finally:
        _ACTIVE = prev
