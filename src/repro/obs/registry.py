"""Process-wide metrics registry with a zero-cost disabled path.

The registry mirrors the opt-in design of :mod:`repro.exec.graph`:
telemetry is off by default and every instrumentation site guards on
``active_registry()`` returning ``None`` — a single module-global read
plus a ``None`` check, exactly like ``maybe_stage``.  When no registry
is active the hot paths never build label dicts, never take a lock and
never allocate.

Three metric kinds are supported, all label-aware and lock-protected:

* :class:`Counter` — monotonically increasing float.
* :class:`Gauge` — last-write-wins float with a ``set_max`` helper for
  high-water marks (queue depths).
* :class:`Histogram` — fixed upper-bound buckets; observations record a
  per-bucket count plus running sum/count, which is all the Prometheus
  text exposition needs.

``MetricsRegistry.snapshot()`` returns a plain, JSON-serialisable dict
with deterministic ordering so exporters and tests can diff it byte for
byte.  Activation is scoped (``telemetry()`` context manager), forced
(``set_registry``) or environmental (``REPRO_TELEMETRY=1`` builds one
process-default registry on first use, so subprocesses spawned with the
variable inherited collect into their own registry).
"""
from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

__all__ = [
    "TELEMETRY_ENV",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "set_registry",
    "telemetry_enabled",
    "telemetry",
]

TELEMETRY_ENV = "REPRO_TELEMETRY"
_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Default histogram upper bounds, in seconds — tuned for stage and
#: batch wall times that range from tens of microseconds to seconds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValue = str | int | float | bool
Labels = Mapping[str, LabelValue]
_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Labels | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Base for one labelled series; shares its registry's lock."""

    kind = "untyped"

    def __init__(self, name: str, labels: _LabelKey,
                 lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name: str, labels: _LabelKey,
                 lock: threading.Lock) -> None:
        super().__init__(name, labels, lock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name: str, labels: _LabelKey,
                 lock: threading.Lock) -> None:
        super().__init__(name, labels, lock)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (e.g. peak queue depth)."""
        with self._lock:
            if value > self.value:
                self.value = float(value)


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name: str, labels: _LabelKey, lock: threading.Lock,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, labels, lock)
        if not buckets or any(b <= a for a, b in zip(buckets, buckets[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


class MetricsRegistry:
    """Get-or-create store of labelled counters, gauges and histograms.

    All mutation goes through one ``threading.Lock`` shared with every
    metric the registry hands out, so concurrent increments from worker
    threads never lose updates.  ``snapshot()`` is also taken under the
    lock and returns plain data only.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: dict[str, str] = {}
        self._series: dict[tuple[str, _LabelKey], _Metric] = {}

    def _get_or_create(self, cls: type, name: str, labels: Labels | None,
                       **kwargs: Any) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._series.get(key)
            if metric is None:
                kind = self._kinds.get(name)
                if kind is not None and kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {kind}, "
                        f"cannot re-register as {cls.kind}")
                metric = cls(name, key[1], self._lock, **kwargs)
                self._kinds[name] = cls.kind
                self._series[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}")
        return metric

    def counter(self, name: str, labels: Labels | None = None) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: Labels | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, labels: Labels | None = None,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every series, deterministically ordered."""
        counters: list[dict[str, Any]] = []
        gauges: list[dict[str, Any]] = []
        histograms: list[dict[str, Any]] = []
        with self._lock:
            series = sorted(self._series.items())
        for (_name, _labels), metric in series:
            entry: dict[str, Any] = {
                "name": metric.name,
                "labels": metric.label_dict,
            }
            if isinstance(metric, Counter):
                entry["value"] = metric.value
                counters.append(entry)
            elif isinstance(metric, Gauge):
                entry["value"] = metric.value
                gauges.append(entry)
            elif isinstance(metric, Histogram):
                entry.update({
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                })
                histograms.append(entry)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


# ---------------------------------------------------------------------------
# Activation — mirrors repro.exec.graph's _FORCED/env-var pattern.

_ACTIVE: MetricsRegistry | None = None
_ENV_DEFAULT: MetricsRegistry | None = None


def set_registry(registry: MetricsRegistry | None) -> None:
    """Force the process-wide registry on (an instance) or off (None)."""
    global _ACTIVE
    _ACTIVE = registry


def active_registry() -> MetricsRegistry | None:
    """The registry instrumentation should write to, or ``None``.

    Every instrumentation site calls this and bails on ``None`` — that
    single check is the entire disabled-path cost.  ``REPRO_TELEMETRY``
    is consulted at call time (not import time) so tests and forked
    workers behave predictably.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    if os.environ.get(TELEMETRY_ENV, "").lower() in _TRUTHY:
        global _ENV_DEFAULT
        if _ENV_DEFAULT is None:
            _ENV_DEFAULT = MetricsRegistry()
        return _ENV_DEFAULT
    return None


def telemetry_enabled() -> bool:
    return active_registry() is not None


@contextmanager
def telemetry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Scoped activation: instrumentation inside the block collects into
    ``registry`` (a fresh one by default); the previous state is restored
    on exit.  Also sets ``REPRO_TELEMETRY`` for the duration so forked
    workers know telemetry was requested (their samples stay local to the
    worker, same caveat as ``collect_traces``)."""
    global _ACTIVE
    reg = registry if registry is not None else MetricsRegistry()
    prev = _ACTIVE
    prev_env = os.environ.get(TELEMETRY_ENV)
    _ACTIVE = reg
    os.environ[TELEMETRY_ENV] = "1"
    try:
        yield reg
    finally:
        _ACTIVE = prev
        if prev_env is None:
            os.environ.pop(TELEMETRY_ENV, None)
        else:
            os.environ[TELEMETRY_ENV] = prev_env
