"""Optical substrate: geometry, photometry, materials, sources, reflection.

This subpackage models everything that happens to light *before* it hits
the receiver hardware: emission by ambient sources, reflection off tag
materials and vehicle surfaces, and geometric transfer into the
receiver's field of view.
"""

from .geometry import (
    FieldOfView,
    GroundFootprint,
    Vec3,
    deg_to_rad,
    rad_to_deg,
    incidence_cosine,
    solid_angle_of_disc,
)
from .materials import (
    ALUMINUM_TAPE,
    BLACK_NAPKIN,
    BLACK_PAPER_GROUND,
    CAR_GLASS,
    CAR_PAINT_METAL,
    MATERIAL_LIBRARY,
    MIRROR,
    TARMAC,
    WHITE_PAPER,
    Material,
    material_by_name,
)
from .photometry import (
    LEVELS,
    LUMINOUS_EFFICACY_555NM,
    WHITE_LED_EFFICACY,
    IlluminanceLevels,
    illuminance_at_detector_from_patch,
    illuminance_from_parallel_source,
    illuminance_from_point_source,
    lambertian_radiated_fraction,
    luminance_from_diffuse_reflection,
    lux_to_watts_per_m2,
    watts_per_m2_to_lux,
)
from .propagation import (
    FootprintKernel,
    absolute_gain,
    exact_patch_transfer_weights,
    footprint_kernel,
    patch_transfer_weights,
)
from .reflection import (
    OVERHEAD_GEOMETRY,
    IlluminationGeometry,
    effective_reflectance,
    effective_reflectance_profile,
    mirror_direction,
    phong_lobe_value,
)
from .sources import (
    AmbientLightSource,
    CompositeSource,
    FluorescentCeiling,
    IncandescentBulb,
    LedLamp,
    Sun,
)

__all__ = [
    # geometry
    "Vec3", "FieldOfView", "GroundFootprint", "deg_to_rad", "rad_to_deg",
    "incidence_cosine", "solid_angle_of_disc",
    # materials
    "Material", "material_by_name", "MATERIAL_LIBRARY", "ALUMINUM_TAPE",
    "BLACK_NAPKIN", "MIRROR", "WHITE_PAPER", "BLACK_PAPER_GROUND", "TARMAC",
    "CAR_PAINT_METAL", "CAR_GLASS",
    # photometry
    "LUMINOUS_EFFICACY_555NM", "WHITE_LED_EFFICACY", "IlluminanceLevels",
    "LEVELS", "lux_to_watts_per_m2", "watts_per_m2_to_lux",
    "illuminance_from_point_source", "illuminance_from_parallel_source",
    "lambertian_radiated_fraction", "luminance_from_diffuse_reflection",
    "illuminance_at_detector_from_patch",
    # propagation
    "FootprintKernel", "footprint_kernel", "patch_transfer_weights",
    "exact_patch_transfer_weights", "absolute_gain",
    # reflection
    "IlluminationGeometry", "OVERHEAD_GEOMETRY", "effective_reflectance",
    "effective_reflectance_profile", "mirror_direction", "phong_lobe_value",
    # sources
    "AmbientLightSource", "LedLamp", "FluorescentCeiling",
    "IncandescentBulb", "Sun", "CompositeSource",
]
