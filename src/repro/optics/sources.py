"""Ambient light sources — the unmodulated "emitters" of the system.

The paper uses three emitter types (Section 4): an LED lamp (controlled
dark-room experiments), ceiling fluorescent lights (2.3 m high, with the
characteristic AC-supply ripple that makes Fig. 7's lines "thicker"), and
the sun (outdoor evaluation, Section 5).  An incandescent model is also
provided (Fig. 7's caption mentions an incandescent bulb).

A source must answer two questions for the channel simulator:

1. ``ground_illuminance(x, t)`` — how many lux land on the ground/work
   plane at longitudinal position ``x`` at time ``t``; this is what tags
   reflect towards the receiver.
2. ``receiver_plane_illuminance(t)`` — the lux-meter reading at the
   receiver's location, i.e. the paper's *noise floor* that saturates
   photodiodes (Section 4.4).

Both are vectorised over numpy arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .geometry import Vec3
from .photometry import lambertian_radiated_fraction

__all__ = [
    "AmbientLightSource",
    "LedLamp",
    "FluorescentCeiling",
    "IncandescentBulb",
    "Sun",
    "CompositeSource",
]

#: European mains frequency; light ripple appears at twice this.
MAINS_FREQUENCY_HZ = 50.0


class AmbientLightSource:
    """Base class for unmodulated ambient light sources."""

    #: Descriptive name used in reports.
    name: str = "ambient"

    def ground_illuminance(self, x: np.ndarray | float,
                           t: np.ndarray | float) -> np.ndarray:
        """Illuminance (lux) on the ground plane at ``x`` and time ``t``.

        Arguments broadcast together following numpy rules.
        """
        raise NotImplementedError

    def receiver_plane_illuminance(self, t: np.ndarray | float) -> np.ndarray:
        """Noise-floor illuminance (lux) at the receiver's position."""
        raise NotImplementedError

    def flicker(self, t: np.ndarray | float) -> np.ndarray:
        """Multiplicative intensity waveform; 1.0 for a perfectly DC source."""
        return np.ones_like(np.asarray(t, dtype=float))

    def incident_direction(self, ground_x: float = 0.0) -> Vec3:
        """Unit propagation direction of the light at a ground point.

        Used to evaluate the specular lobe geometry; diffuse overhead
        lighting defaults to straight down.
        """
        return Vec3(0.0, 0.0, -1.0)

    def diffuse_fraction(self) -> float:
        """Fraction of the light arriving as a uniform hemisphere.

        Collimated emitters (sun, a small lamp) return 0; extended
        ceiling luminaires return ~1.  Feeds the specular-lobe model in
        :mod:`repro.optics.reflection`.
        """
        return 0.0


def _ac_ripple(t: np.ndarray | float, depth: float, mains_hz: float,
               phase: float) -> np.ndarray:
    """Rectified-sine ripple of an AC-driven lamp.

    Lamps driven from the mains flicker at ``2 * mains_hz``; ``depth`` is
    the peak-to-peak modulation relative to the mean.
    """
    tt = np.asarray(t, dtype=float)
    ripple = np.abs(np.sin(2.0 * math.pi * mains_hz * tt + phase))
    # Rectified |sin| has mean 2/pi; recentre so the mean level is 1.0.
    return 1.0 + depth * (ripple - 2.0 / math.pi)


@dataclass
class LedLamp(AmbientLightSource):
    """A DC-driven LED lamp — the controlled dark-room emitter.

    The lamp is a generalised Lambertian point source aimed straight down.
    In the paper's ideal-scenario setup (Fig. 5) the lamp and receiver are
    both 20 cm above the work plane, 12 cm apart horizontally.

    Attributes:
        position: lamp location (m).
        luminous_intensity: on-axis intensity (candela).
        lambertian_order: beam concentration ``m`` (1 = ideal diffuse).
        ripple_depth: residual driver ripple (LED drivers are nearly DC).
    """

    position: Vec3 = field(default_factory=lambda: Vec3(0.0, 0.0, 0.2))
    luminous_intensity: float = 20.0
    lambertian_order: float = 2.0
    ripple_depth: float = 0.0
    name: str = "led_lamp"

    def __post_init__(self) -> None:
        if self.luminous_intensity < 0.0:
            raise ValueError("luminous intensity cannot be negative")
        if self.position.z <= 0.0:
            raise ValueError("lamp must be above the ground plane (z > 0)")
        if not 0.0 <= self.ripple_depth < 1.0:
            raise ValueError("ripple depth must be in [0, 1)")

    def flicker(self, t: np.ndarray | float) -> np.ndarray:
        if self.ripple_depth == 0.0:
            return np.ones_like(np.asarray(t, dtype=float))
        return _ac_ripple(t, self.ripple_depth, MAINS_FREQUENCY_HZ, 0.0)

    def _illuminance_at_ground_point(self, x: np.ndarray) -> np.ndarray:
        """Static (flicker-free) lux profile along the ground line y=0."""
        dx = np.asarray(x, dtype=float) - self.position.x
        h = self.position.z
        d2 = dx**2 + self.position.y**2 + h**2
        d = np.sqrt(d2)
        cos_emit = h / d  # angle off the downward axis
        # Radiant intensity pattern relative to on-axis.
        pattern = np.where(
            cos_emit > 0.0,
            cos_emit**self.lambertian_order,
            0.0,
        )
        cos_incidence = cos_emit  # flat ground, normal straight up
        return self.luminous_intensity * pattern * cos_incidence / d2

    def ground_illuminance(self, x, t):
        return self._illuminance_at_ground_point(x) * self.flicker(t)

    def receiver_plane_illuminance(self, t):
        # The lamp shines downward; what reaches a co-located, downward
        # looking receiver is mostly ground-reflected light.  A small
        # coupling constant models stray/scattered light at the receiver.
        stray = 0.05 * self.luminous_intensity / self.position.z**2
        return stray * self.flicker(t)

    def incident_direction(self, ground_x: float = 0.0) -> Vec3:
        """Direction of rays from the lamp towards a ground point."""
        to_ground = Vec3(ground_x, 0.0, 0.0) - self.position
        return to_ground.normalized()


@dataclass
class FluorescentCeiling(AmbientLightSource):
    """Ceiling fluorescent tubes with mains ripple (Fig. 7's emitter).

    Modelled as a uniform illuminated ceiling: the ground receives a
    near-constant illuminance over the small scene extent, multiplied by
    a 100 Hz rectified-sine ripple from the AC supply [Kuo et al., VLCS'14].

    Attributes:
        ground_lux: mean illuminance delivered to the work plane.
        height: luminaire height (2.3 m in the paper).
        ripple_depth: relative peak-to-peak ripple (fluorescents on
            magnetic ballasts flicker strongly).
        phase: ripple phase offset (radians).
    """

    ground_lux: float = 300.0
    height: float = 2.3
    ripple_depth: float = 0.35
    phase: float = 0.0
    name: str = "fluorescent_ceiling"

    def __post_init__(self) -> None:
        if self.ground_lux < 0.0:
            raise ValueError("ground illuminance cannot be negative")
        if self.height <= 0.0:
            raise ValueError("luminaire height must be positive")
        if not 0.0 <= self.ripple_depth < 1.0:
            raise ValueError("ripple depth must be in [0, 1)")

    def flicker(self, t):
        if self.ripple_depth == 0.0:
            return np.ones_like(np.asarray(t, dtype=float))
        return _ac_ripple(t, self.ripple_depth, MAINS_FREQUENCY_HZ, self.phase)

    def ground_illuminance(self, x, t):
        base = np.full_like(np.asarray(x, dtype=float), self.ground_lux)
        return base * self.flicker(t)

    def receiver_plane_illuminance(self, t):
        # A receiver near the floor of an evenly lit room sees roughly the
        # same illuminance as the work plane.
        return self.ground_lux * self.flicker(t)

    def diffuse_fraction(self) -> float:
        """Ceiling tubes light the scene from a broad solid angle."""
        return 1.0


@dataclass
class IncandescentBulb(AmbientLightSource):
    """An incandescent bulb: AC-driven but thermally smoothed.

    The filament's thermal inertia attenuates the 100 Hz ripple compared
    to a fluorescent tube.
    """

    ground_lux: float = 250.0
    height: float = 2.0
    ripple_depth: float = 0.10
    phase: float = 0.0
    name: str = "incandescent_bulb"

    def __post_init__(self) -> None:
        if self.ground_lux < 0.0:
            raise ValueError("ground illuminance cannot be negative")
        if self.height <= 0.0:
            raise ValueError("bulb height must be positive")
        if not 0.0 <= self.ripple_depth < 1.0:
            raise ValueError("ripple depth must be in [0, 1)")

    def flicker(self, t):
        if self.ripple_depth == 0.0:
            return np.ones_like(np.asarray(t, dtype=float))
        return _ac_ripple(t, self.ripple_depth, MAINS_FREQUENCY_HZ, self.phase)

    def ground_illuminance(self, x, t):
        base = np.full_like(np.asarray(x, dtype=float), self.ground_lux)
        return base * self.flicker(t)

    def receiver_plane_illuminance(self, t):
        return self.ground_lux * self.flicker(t)

    def diffuse_fraction(self) -> float:
        """A frosted bulb plus room reflections: mostly diffuse."""
        return 0.8


@dataclass
class Sun(AmbientLightSource):
    """The sun — a collimated, ripple-free, very bright emitter.

    Section 5 runs on cloudy days at noon and late afternoon, with noise
    floors between 100 lux (heavy overcast, late) and 6200 lux.  Solar
    illumination is uniform across the scene (parallel rays) and
    perfectly DC; a slow drift term models passing clouds.

    Attributes:
        ground_lux: illuminance on the horizontal ground (lux).
        elevation_deg: solar elevation above the horizon, in (0, 90].
        cloud_drift_depth: relative amplitude of a slow illuminance drift.
        cloud_drift_period_s: period of that drift.
        sky_diffuse_fraction: share of the illuminance arriving as
            skylight rather than direct beam.  The paper's outdoor runs
            are on *cloudy* days, where much of the light is diffuse.
    """

    ground_lux: float = 6200.0
    elevation_deg: float = 45.0
    cloud_drift_depth: float = 0.0
    cloud_drift_period_s: float = 120.0
    sky_diffuse_fraction: float = 0.6
    name: str = "sun"

    def __post_init__(self) -> None:
        if self.ground_lux < 0.0:
            raise ValueError("ground illuminance cannot be negative")
        if not 0.0 < self.elevation_deg <= 90.0:
            raise ValueError("solar elevation must be in (0, 90] degrees")
        if not 0.0 <= self.cloud_drift_depth < 1.0:
            raise ValueError("cloud drift depth must be in [0, 1)")
        if self.cloud_drift_period_s <= 0.0:
            raise ValueError("cloud drift period must be positive")
        if not 0.0 <= self.sky_diffuse_fraction <= 1.0:
            raise ValueError("sky diffuse fraction must be in [0, 1]")

    def flicker(self, t):
        tt = np.asarray(t, dtype=float)
        if self.cloud_drift_depth == 0.0:
            return np.ones_like(tt)
        drift = np.sin(2.0 * math.pi * tt / self.cloud_drift_period_s)
        return 1.0 + self.cloud_drift_depth * drift

    def ground_illuminance(self, x, t):
        base = np.full_like(np.asarray(x, dtype=float), self.ground_lux)
        return base * self.flicker(t)

    def receiver_plane_illuminance(self, t):
        return self.ground_lux * self.flicker(t)

    def incident_direction(self, ground_x: float = 0.0) -> Vec3:
        """Sunlight arrives at the complement of the solar elevation."""
        elev = math.radians(self.elevation_deg)
        return Vec3(math.cos(elev), 0.0, -math.sin(elev)).normalized()

    def diffuse_fraction(self) -> float:
        """Cloud cover share configured on the source."""
        return self.sky_diffuse_fraction


@dataclass
class CompositeSource(AmbientLightSource):
    """Superposition of several sources (e.g. sun + street lamp)."""

    sources: list[AmbientLightSource] = field(default_factory=list)
    name: str = "composite"

    def __post_init__(self) -> None:
        if not self.sources:
            raise ValueError("a composite source needs at least one component")

    def ground_illuminance(self, x, t):
        xs = np.asarray(x, dtype=float)
        total = np.zeros(np.broadcast(xs, np.asarray(t, dtype=float)).shape)
        for src in self.sources:
            total = total + src.ground_illuminance(x, t)
        return total

    def receiver_plane_illuminance(self, t):
        total = np.zeros_like(np.asarray(t, dtype=float))
        for src in self.sources:
            total = total + src.receiver_plane_illuminance(t)
        return total

    def flicker(self, t):
        # The composite waveform is illuminance-weighted; expose the mean.
        tt = np.asarray(t, dtype=float)
        num = np.zeros_like(tt)
        den = 0.0
        for src in self.sources:
            level = float(np.mean(src.receiver_plane_illuminance(0.0)))
            num = num + level * src.flicker(tt)
            den += level
        if den == 0.0:
            return np.ones_like(tt)
        return num / den

    def diffuse_fraction(self) -> float:
        """Illuminance-weighted mean of the components' fractions."""
        num = 0.0
        den = 0.0
        for src in self.sources:
            level = float(np.mean(src.receiver_plane_illuminance(0.0)))
            num += level * src.diffuse_fraction()
            den += level
        return num / den if den > 0.0 else 0.0
