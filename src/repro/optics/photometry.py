"""Photometric and radiometric quantities and conversions.

The paper reports ambient conditions in **lux** (450 lux medium-lit room,
100 lux dim, 3700-6200 lux cloudy daylight, >10 klux direct day) and
receiver behaviour as functions of illuminance (Fig. 11).  The simulation
therefore works photometrically: emitters produce illuminance on surfaces,
surfaces reflect a luminance towards the receiver, and receivers convert
the impinging illuminance into photocurrent.

Only the conversions that the rest of the package needs are provided, with
the standard luminous efficacy constant for converting between photometric
and radiometric units at 555 nm and for white-ish broadband light.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LUMINOUS_EFFICACY_555NM",
    "WHITE_LED_EFFICACY",
    "lux_to_watts_per_m2",
    "watts_per_m2_to_lux",
    "illuminance_from_point_source",
    "illuminance_from_parallel_source",
    "lambertian_radiated_fraction",
    "luminance_from_diffuse_reflection",
    "illuminance_at_detector_from_patch",
    "IlluminanceLevels",
]

#: Peak luminous efficacy at 555 nm (lm/W) — the photopic maximum.
LUMINOUS_EFFICACY_555NM = 683.0

#: Typical effective efficacy for broadband white light (lm/W of optical
#: power); used when converting ambient lux levels to irradiance.
WHITE_LED_EFFICACY = 300.0


def lux_to_watts_per_m2(lux: float | np.ndarray,
                        efficacy: float = WHITE_LED_EFFICACY) -> float | np.ndarray:
    """Convert illuminance (lux) to irradiance (W/m^2).

    Args:
        lux: illuminance value(s); must be non-negative.
        efficacy: luminous efficacy of the light's spectrum in lm/W.
    """
    if efficacy <= 0.0:
        raise ValueError(f"efficacy must be positive, got {efficacy}")
    arr = np.asarray(lux, dtype=float)
    if np.any(arr < 0.0):
        raise ValueError("illuminance cannot be negative")
    out = arr / efficacy
    return float(out) if np.isscalar(lux) or out.ndim == 0 else out


def watts_per_m2_to_lux(irradiance: float | np.ndarray,
                        efficacy: float = WHITE_LED_EFFICACY) -> float | np.ndarray:
    """Convert irradiance (W/m^2) to illuminance (lux)."""
    if efficacy <= 0.0:
        raise ValueError(f"efficacy must be positive, got {efficacy}")
    arr = np.asarray(irradiance, dtype=float)
    if np.any(arr < 0.0):
        raise ValueError("irradiance cannot be negative")
    out = arr * efficacy
    return float(out) if np.isscalar(irradiance) or out.ndim == 0 else out


def illuminance_from_point_source(luminous_intensity: float, distance: float,
                                  incidence_cos: float = 1.0) -> float:
    """Illuminance produced by a point source: ``E = I * cos(theta) / d^2``.

    This is the inverse-square law the paper invokes in Section 3 ("the
    signal strength of visible light waves decrease exponentially with
    distance" — in free space the geometric term is quadratic; additional
    medium attenuation is modelled in :mod:`repro.channel.distortion`).

    Args:
        luminous_intensity: source intensity in candela (lm/sr).
        distance: source-to-surface distance in metres, > 0.
        incidence_cos: cosine of the light's incidence angle on the surface.
    """
    if luminous_intensity < 0.0:
        raise ValueError("luminous intensity cannot be negative")
    if distance <= 0.0:
        raise ValueError(f"distance must be positive, got {distance}")
    return luminous_intensity * max(0.0, incidence_cos) / distance**2


def illuminance_from_parallel_source(normal_illuminance: float,
                                     incidence_cos: float = 1.0) -> float:
    """Illuminance from a collimated (solar) source on a tilted surface.

    Sunlight arrives with effectively parallel rays, so there is no
    inverse-square dependence across a scene: only the incidence angle
    matters.

    Args:
        normal_illuminance: illuminance on a surface facing the sun (lux).
        incidence_cos: cosine of the incidence angle.
    """
    if normal_illuminance < 0.0:
        raise ValueError("illuminance cannot be negative")
    return normal_illuminance * max(0.0, incidence_cos)


def lambertian_radiated_fraction(order: float, angle_rad: float) -> float:
    """Normalised Lambertian emission pattern ``(m+1)/(2*pi) * cos^m``.

    Generalised Lambertian sources (LEDs) concentrate light with order
    ``m``; ``m = 1`` is the ideal diffuse source.  Returns the radiant
    intensity per unit solid angle for unit total flux.

    Args:
        order: Lambertian mode number ``m`` (>= 0).
        angle_rad: angle from the source's optical axis.
    """
    if order < 0.0:
        raise ValueError(f"Lambertian order must be >= 0, got {order}")
    c = math.cos(angle_rad)
    if c <= 0.0:
        return 0.0
    return (order + 1.0) / (2.0 * math.pi) * c**order


def luminance_from_diffuse_reflection(illuminance: float,
                                      reflectance: float) -> float:
    """Luminance of a perfectly diffuse patch: ``L = rho * E / pi``.

    A Lambertian reflector distributes the reflected flux over the
    hemisphere with the characteristic ``1/pi`` factor.

    Args:
        illuminance: illuminance on the patch (lux).
        reflectance: diffuse reflection coefficient in [0, 1].
    """
    if illuminance < 0.0:
        raise ValueError("illuminance cannot be negative")
    if not 0.0 <= reflectance <= 1.0:
        raise ValueError(f"reflectance must be in [0, 1], got {reflectance}")
    return reflectance * illuminance / math.pi


def illuminance_at_detector_from_patch(patch_luminance: float,
                                       patch_area: float,
                                       distance: float,
                                       emission_cos: float = 1.0,
                                       arrival_cos: float = 1.0) -> float:
    """Illuminance at a detector produced by a small luminous patch.

    The standard small-patch photometric transfer:
    ``E = L * A * cos(theta_e) * cos(theta_a) / d^2``.

    Args:
        patch_luminance: luminance of the patch (cd/m^2).
        patch_area: patch area (m^2).
        distance: patch-to-detector distance (m), > 0.
        emission_cos: cosine of the emission angle at the patch.
        arrival_cos: cosine of the arrival angle at the detector.
    """
    if patch_luminance < 0.0 or patch_area < 0.0:
        raise ValueError("luminance and area cannot be negative")
    if distance <= 0.0:
        raise ValueError(f"distance must be positive, got {distance}")
    return (patch_luminance * patch_area * max(0.0, emission_cos)
            * max(0.0, arrival_cos) / distance**2)


@dataclass(frozen=True)
class IlluminanceLevels:
    """Reference ambient illuminance levels used throughout the paper."""

    DARK_ROOM: float = 1.0
    DIM_INDOOR: float = 100.0       # Fig. 15(b) / Fig. 16
    MEDIUM_ROOM: float = 450.0      # Fig. 15(a); PD G1 saturation point
    BRIGHT_INDOOR: float = 1200.0   # PD G2 saturation point
    OVERCAST_LOW: float = 3700.0    # Fig. 17(b)
    OVERCAST_MID: float = 5500.0    # Fig. 17(c)
    OVERCAST_HIGH: float = 6200.0   # Fig. 17(a)
    DAYLIGHT: float = 10_000.0      # "outdoor scenarios can easily go above"
    LED_SATURATION: float = 35_000.0


#: Singleton instance for convenient imports.
LEVELS = IlluminanceLevels()
