"""Reflection models: how surfaces turn ambient light into signal.

The paper's channel is a *reflection* channel: "the power loss of this
communication channel is a function of the reflection coefficient of the
reflective material" (Section 2).  Surfaces are modelled with a diffuse
(Lambertian) component and a specular Phong lobe, both energy-normalised:

* diffuse: luminance ``L_d = rho_d * E / pi`` in every direction;
* specular: luminance concentrated around the mirror direction with a
  normalised ``cos^n`` lobe carrying total energy ``rho_s * E``.

The *effective reflectance towards a receiver* collapses both components
into a single scalar (units 1/sr) for a given illumination/viewing
geometry; this is what distinguishes aluminium tape (HIGH) from a black
napkin (LOW) and what changes between an overhead LED lamp and the sun
at 45 degrees elevation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .geometry import Vec3, UP
from .materials import Material

__all__ = [
    "mirror_direction",
    "phong_lobe_value",
    "effective_reflectance",
    "IlluminationGeometry",
    "OVERHEAD_GEOMETRY",
]


def mirror_direction(incident: Vec3, normal: Vec3 = UP) -> Vec3:
    """Specular mirror direction for light arriving along ``incident``.

    Args:
        incident: unit-ish vector pointing *from the source towards the
            surface* (i.e. the propagation direction of the light).
        normal: outward surface normal.

    Returns:
        Unit vector of the specularly reflected ray (pointing away from
        the surface).
    """
    d = incident.normalized()
    n = normal.normalized()
    r = d - 2.0 * d.dot(n) * n
    return r.normalized()


def phong_lobe_value(exponent: float, off_mirror_rad: float) -> float:
    """Energy-normalised Phong lobe evaluated ``off_mirror_rad`` from peak.

    The lobe ``(n + 2) / (2 * pi) * cos^n(alpha)`` integrates to 1 over
    the hemisphere centred on the mirror direction, so multiplying by the
    specular reflectance conserves energy.

    Args:
        exponent: lobe sharpness ``n`` (>= 0).
        off_mirror_rad: angle between the viewing direction and the
            mirror direction.
    """
    if exponent < 0.0:
        raise ValueError(f"Phong exponent must be >= 0, got {exponent}")
    c = math.cos(off_mirror_rad)
    if c <= 0.0:
        return 0.0
    return (exponent + 2.0) / (2.0 * math.pi) * c**exponent


@dataclass(frozen=True)
class IlluminationGeometry:
    """The geometry factors of one (source, patch, receiver) triple.

    Attributes:
        incident_direction: unit vector of light propagation at the patch
            (from source towards patch).
        view_direction: unit vector from the patch towards the receiver.
        normal: outward surface normal of the patch.
        diffuse_fraction: fraction of the illumination arriving from a
            uniformly bright hemisphere rather than along
            ``incident_direction``.  Collimated sources (sun, LED lamp)
            are 0; a fluorescent-lit ceiling or overcast skylight is ~1.
            Under fully diffuse light a specular surface mirrors the
            source hemisphere, so its specular term degenerates to the
            diffuse form ``rho_s / pi``.
    """

    incident_direction: Vec3
    view_direction: Vec3
    normal: Vec3 = UP
    diffuse_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.diffuse_fraction <= 1.0:
            raise ValueError(
                f"diffuse fraction must be in [0, 1], got {self.diffuse_fraction}")

    def incidence_cosine(self) -> float:
        """cos of incidence angle (0 when the patch is back-lit)."""
        return max(0.0, -self.incident_direction.normalized().dot(
            self.normal.normalized()))

    def view_cosine(self) -> float:
        """cos of the viewing angle (0 when viewed from behind)."""
        return max(0.0, self.view_direction.normalized().dot(
            self.normal.normalized()))

    def off_mirror_angle(self) -> float:
        """Angle between the view direction and the mirror direction."""
        mirror = mirror_direction(self.incident_direction, self.normal)
        return mirror.angle_to(self.view_direction)


#: A source directly above the patch with the receiver also overhead —
#: the paper's basic setup of Fig. 1 (receiver looking straight down at a
#: passing tag illuminated from above).
OVERHEAD_GEOMETRY = IlluminationGeometry(
    incident_direction=Vec3(0.0, 0.0, -1.0),
    view_direction=Vec3(0.0, 0.0, 1.0),
)


def effective_reflectance(material: Material,
                          geometry: IlluminationGeometry = OVERHEAD_GEOMETRY,
                          ) -> float:
    """Effective reflectance (1/sr) of ``material`` towards the receiver.

    Combines the diffuse term ``rho_d / pi`` with the specular lobe
    evaluated at the receiver's off-mirror angle.  Multiplying by the
    patch's *surface illuminance* (which already contains the incidence
    cosine — see :meth:`AmbientLightSource.ground_illuminance`) gives the
    patch luminance seen by the receiver.
    """
    df = geometry.diffuse_fraction
    back_lit = geometry.incidence_cosine() == 0.0
    if back_lit and df == 0.0:
        return 0.0  # purely collimated and arriving from behind
    diffuse = material.diffuse_reflectance / math.pi
    specular = 0.0
    if material.specular_reflectance > 0.0:
        lobe_collimated = 0.0 if back_lit else phong_lobe_value(
            material.specular_exponent, geometry.off_mirror_angle())
        # Uniform-hemisphere illumination turns the specular lobe into a
        # mirror image of that hemisphere: luminance rho_s * E / pi.
        lobe_diffuse = 1.0 / math.pi
        specular = material.specular_reflectance * (
            (1.0 - df) * lobe_collimated + df * lobe_diffuse)
    return diffuse + specular


def effective_reflectance_profile(materials: "np.ndarray | list[Material]",
                                  geometry: IlluminationGeometry = OVERHEAD_GEOMETRY,
                                  ) -> np.ndarray:
    """Vectorised :func:`effective_reflectance` with memoisation per material.

    Args:
        materials: sequence of :class:`Material` (repeats are common —
            tags alternate between two materials).
        geometry: illumination geometry shared by all patches.

    Returns:
        Array of effective reflectances, same length as ``materials``.
    """
    cache: dict[str, float] = {}
    out = np.empty(len(materials), dtype=float)
    for i, mat in enumerate(materials):
        val = cache.get(mat.name)
        if val is None:
            val = effective_reflectance(mat, geometry)
            cache[mat.name] = val
        out[i] = val
    return out
