"""Reflective materials — the paper's passive "transmitter hardware".

Section 4's coding scheme maps symbols to materials:

* **HIGH** — aluminium tape: "relatively high reflection coefficient and
  low diffused reflections";
* **LOW** — black paper napkins: "lower reflection coefficient and higher
  diffused reflections".

Section 5 adds the intrinsic surfaces of cars (metal body panels and
glass windshields) and the ground plane ("covered with black papers, to
resemble tarmac").

Each material is described by a total reflectance split into a specular
and a diffuse component, plus a Phong-style lobe exponent for the
specular part.  The split is what makes aluminium tape read HIGH under a
receiver that sits near the mirror direction, while the napkin scatters
most of the little light it reflects away from any particular receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "Material",
    "ALUMINUM_TAPE",
    "BLACK_NAPKIN",
    "MIRROR",
    "WHITE_PAPER",
    "BLACK_PAPER_GROUND",
    "TARMAC",
    "CAR_PAINT_METAL",
    "CAR_GLASS",
    "MATERIAL_LIBRARY",
    "material_by_name",
]


@dataclass(frozen=True)
class Material:
    """An opaque reflective material.

    Attributes:
        name: human-readable identifier.
        reflectance: total fraction of incident light reflected, in [0, 1].
        specular_fraction: fraction of the reflected light in the specular
            lobe (the rest is diffuse/Lambertian), in [0, 1].
        specular_exponent: Phong lobe sharpness; large values approximate
            a mirror, small values a broad sheen.
    """

    name: str
    reflectance: float
    specular_fraction: float
    specular_exponent: float = 10.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("material name must be non-empty")
        if not 0.0 <= self.reflectance <= 1.0:
            raise ValueError(
                f"reflectance must be in [0, 1], got {self.reflectance}")
        if not 0.0 <= self.specular_fraction <= 1.0:
            raise ValueError(
                f"specular fraction must be in [0, 1], got {self.specular_fraction}")
        if self.specular_exponent < 0.0:
            raise ValueError(
                f"specular exponent must be >= 0, got {self.specular_exponent}")

    @property
    def diffuse_reflectance(self) -> float:
        """Reflectance of the diffuse (Lambertian) component."""
        return self.reflectance * (1.0 - self.specular_fraction)

    @property
    def specular_reflectance(self) -> float:
        """Reflectance of the specular (lobed) component."""
        return self.reflectance * self.specular_fraction

    def degraded(self, dirt_factor: float) -> "Material":
        """A dirt-degraded copy of this material.

        Dirt both absorbs light (lower reflectance) and roughens the
        surface (lower specular fraction) — one of the Section 3 channel
        distortions.

        Args:
            dirt_factor: 0 = pristine, 1 = fully covered in dirt.
        """
        if not 0.0 <= dirt_factor <= 1.0:
            raise ValueError(f"dirt factor must be in [0, 1], got {dirt_factor}")
        return replace(
            self,
            name=f"{self.name}+dirt{dirt_factor:.2f}",
            reflectance=self.reflectance * (1.0 - 0.7 * dirt_factor),
            specular_fraction=self.specular_fraction * (1.0 - dirt_factor),
        )


#: Aluminium tape — the HIGH symbol (Section 4, "Coding").  Hand-applied
#: tape is crinkled, so its specular lobe is broad (low exponent): it
#: stays bright well away from the exact mirror direction, which is why
#: the outdoor experiments work with the sun at oblique elevations.
ALUMINUM_TAPE = Material("aluminum_tape", reflectance=0.85,
                         specular_fraction=0.80, specular_exponent=5.0)

#: Black paper napkin — the LOW symbol.
BLACK_NAPKIN = Material("black_napkin", reflectance=0.06,
                        specular_fraction=0.02, specular_exponent=2.0)

#: An ideal front-surface mirror (Section 2's "pure mirror" extreme).
MIRROR = Material("mirror", reflectance=0.98, specular_fraction=0.99,
                  specular_exponent=500.0)

#: Plain white printer paper — a bright diffuse reference.
WHITE_PAPER = Material("white_paper", reflectance=0.75,
                       specular_fraction=0.05, specular_exponent=3.0)

#: The black paper covering the work plane "to resemble tarmac".
BLACK_PAPER_GROUND = Material("black_paper_ground", reflectance=0.05,
                              specular_fraction=0.02, specular_exponent=2.0)

#: Real road tarmac (outdoor experiments, Section 5).
TARMAC = Material("tarmac", reflectance=0.10, specular_fraction=0.05,
                  specular_exponent=2.0)

#: Painted car body metal (hood / roof / trunk) — strong reflector.
CAR_PAINT_METAL = Material("car_paint_metal", reflectance=0.70,
                           specular_fraction=0.60, specular_exponent=25.0)

#: Car glass viewed from above — most light passes through or reflects
#: away from an overhead receiver, so the effective upward reflectance is
#: low (the windshield "valleys" of Figs. 13-14).
CAR_GLASS = Material("car_glass", reflectance=0.12, specular_fraction=0.85,
                     specular_exponent=120.0)


MATERIAL_LIBRARY: dict[str, Material] = {
    m.name: m
    for m in (
        ALUMINUM_TAPE,
        BLACK_NAPKIN,
        MIRROR,
        WHITE_PAPER,
        BLACK_PAPER_GROUND,
        TARMAC,
        CAR_PAINT_METAL,
        CAR_GLASS,
    )
}


def material_by_name(name: str) -> Material:
    """Look up a library material by name.

    Raises:
        KeyError: with the list of known names if ``name`` is unknown.
    """
    try:
        return MATERIAL_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(MATERIAL_LIBRARY))
        raise KeyError(f"unknown material {name!r}; known: {known}") from None
