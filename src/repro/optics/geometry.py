"""Geometric primitives for the passive visible-light channel.

The simulation geometry follows the paper's setups (Sections 4-5): a
receiver looking straight down at a work plane (or road), light sources
above or beside it, and tags moving along a straight line on the plane.
Everything is expressed in metres, in a right-handed frame where

* ``x`` is the direction of tag motion,
* ``y`` is the lateral direction on the plane, and
* ``z`` points up (the plane is at ``z = 0``).

The module provides a tiny vector class (kept deliberately simple and
allocation-light — the hot loops work on numpy arrays, not on ``Vec3``),
field-of-view cones, and the footprint a downward-looking receiver covers
on the ground.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "Vec3",
    "FieldOfView",
    "GroundFootprint",
    "incidence_cosine",
    "solid_angle_of_disc",
    "deg_to_rad",
    "rad_to_deg",
]


def deg_to_rad(degrees: float) -> float:
    """Convert degrees to radians (thin wrapper kept for API symmetry)."""
    return math.radians(degrees)


def rad_to_deg(radians: float) -> float:
    """Convert radians to degrees."""
    return math.degrees(radians)


@dataclass(frozen=True)
class Vec3:
    """An immutable 3-D vector with the handful of operations we need."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def dot(self, other: "Vec3") -> float:
        """Scalar product."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        """Vector product."""
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.dot(self))

    def normalized(self) -> "Vec3":
        """Unit vector in the same direction.

        Raises:
            ValueError: for the zero vector, which has no direction.
        """
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalise the zero vector")
        return Vec3(self.x / n, self.y / n, self.z / n)

    def distance_to(self, other: "Vec3") -> float:
        """Euclidean distance between two points."""
        return (self - other).norm()

    def angle_to(self, other: "Vec3") -> float:
        """Angle in radians between two vectors (both must be non-zero)."""
        denom = self.norm() * other.norm()
        if denom == 0.0:
            raise ValueError("angle undefined for zero vectors")
        cosine = max(-1.0, min(1.0, self.dot(other) / denom))
        return math.acos(cosine)

    def as_array(self) -> np.ndarray:
        """Return the vector as a ``(3,)`` numpy array."""
        return np.array([self.x, self.y, self.z], dtype=float)

    @staticmethod
    def from_array(arr: Iterable[float]) -> "Vec3":
        """Build a ``Vec3`` from any length-3 iterable."""
        x, y, z = arr
        return Vec3(float(x), float(y), float(z))


#: The straight-down direction used by ceiling-mounted receivers.
DOWN = Vec3(0.0, 0.0, -1.0)
#: The straight-up direction (surface normals of the ground plane).
UP = Vec3(0.0, 0.0, 1.0)


@dataclass(frozen=True)
class FieldOfView:
    """A circular field of view described by its *full* opening angle.

    The paper repeatedly contrasts wide-FoV photodiodes against narrow-FoV
    LEDs used as receivers (Sections 3 and 4.4).  A receiver accepts light
    whose arrival direction is within ``half_angle`` of its boresight.

    Attributes:
        full_angle_deg: full cone opening angle in degrees, in (0, 180].
    """

    full_angle_deg: float

    def __post_init__(self) -> None:
        if not 0.0 < self.full_angle_deg <= 180.0:
            raise ValueError(
                f"full FoV angle must be in (0, 180] deg, got {self.full_angle_deg}"
            )

    @property
    def half_angle_deg(self) -> float:
        """Half opening angle in degrees."""
        return self.full_angle_deg / 2.0

    @property
    def half_angle_rad(self) -> float:
        """Half opening angle in radians."""
        return math.radians(self.half_angle_deg)

    def contains(self, boresight: Vec3, direction: Vec3) -> bool:
        """Whether ``direction`` (towards the source) falls inside the cone."""
        return boresight.angle_to(direction) <= self.half_angle_rad + 1e-12

    def acceptance(self, off_axis_rad: float) -> float:
        """Relative acceptance for a ray ``off_axis_rad`` from boresight.

        A smooth raised-cosine roll-off is used instead of a hard cut: real
        photodiodes and LED lenses have soft angular responses.  The value
        is 1 on boresight and 0 at/after the half angle.
        """
        half = self.half_angle_rad
        if off_axis_rad >= half:
            return 0.0
        return 0.5 * (1.0 + math.cos(math.pi * off_axis_rad / half))

    def acceptance_array(self, off_axis_rad: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`acceptance`."""
        off = np.asarray(off_axis_rad, dtype=float)
        half = self.half_angle_rad
        out = 0.5 * (1.0 + np.cos(np.pi * np.clip(off / half, 0.0, 1.0)))
        return np.where(off >= half, 0.0, out)

    def narrowed(self, factor: float) -> "FieldOfView":
        """Return a FoV narrowed by ``factor`` (e.g. a physical cap).

        Section 5.2 narrows the photodiode FoV with a small physical cap to
        filter out interference from the car roof.

        Args:
            factor: multiplier in (0, 1] applied to the full angle.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"narrowing factor must be in (0, 1], got {factor}")
        return FieldOfView(self.full_angle_deg * factor)


@dataclass(frozen=True)
class GroundFootprint:
    """The disc a downward-looking receiver sees on the ground plane.

    For a receiver at height ``h`` with half angle ``theta``, the footprint
    is a disc of radius ``h * tan(theta)`` centred below the receiver.  The
    footprint is what turns symbol strips into a *blurred* RSS waveform:
    every strip inside it contributes simultaneously (Fig. 2(b)).

    Attributes:
        center_x: x coordinate of the footprint centre (m).
        center_y: y coordinate of the footprint centre (m).
        radius: footprint radius (m).
    """

    center_x: float
    center_y: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0.0:
            raise ValueError(f"footprint radius must be positive, got {self.radius}")

    @staticmethod
    def from_receiver(height: float, fov: FieldOfView, x: float = 0.0,
                      y: float = 0.0) -> "GroundFootprint":
        """Footprint of a receiver at ``height`` looking straight down."""
        if height <= 0.0:
            raise ValueError(f"receiver height must be positive, got {height}")
        return GroundFootprint(x, y, height * math.tan(fov.half_angle_rad))

    @property
    def diameter(self) -> float:
        """Footprint diameter (m)."""
        return 2.0 * self.radius

    @property
    def area(self) -> float:
        """Footprint area (m^2)."""
        return math.pi * self.radius**2

    def contains(self, x: float, y: float = 0.0) -> bool:
        """Whether the ground point ``(x, y)`` lies inside the footprint."""
        return (x - self.center_x) ** 2 + (y - self.center_y) ** 2 <= self.radius**2

    def chord_length(self, x: float) -> float:
        """Length of the footprint chord at longitudinal position ``x``.

        When integrating a 1-D reflectance profile (strips spanning the full
        lateral extent), the lateral dimension collapses into the chord
        length of the disc at each ``x``; this is the exact weight of a
        uniform-disc footprint.
        """
        dx = x - self.center_x
        inside = self.radius**2 - dx**2
        return 2.0 * math.sqrt(inside) if inside > 0.0 else 0.0

    def chord_weights(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`chord_length`, normalised to integrate to 1.

        Returns a weight array suitable for use as a convolution kernel
        over a 1-D reflectance profile sampled at ``xs`` (uniform grid).
        """
        xs = np.asarray(xs, dtype=float)
        dx = xs - self.center_x
        inside = np.clip(self.radius**2 - dx**2, 0.0, None)
        w = 2.0 * np.sqrt(inside)
        total = w.sum()
        if total == 0.0:
            raise ValueError("no sample points fall inside the footprint")
        return w / total


def incidence_cosine(surface_normal: Vec3, towards_light: Vec3) -> float:
    """Cosine of the incidence angle, clamped at 0 for back-lit surfaces."""
    n = surface_normal.normalized()
    d = towards_light.normalized()
    return max(0.0, n.dot(d))


def solid_angle_of_disc(radius: float, distance: float) -> float:
    """Solid angle subtended by a disc seen face-on from ``distance``.

    Used for the small detector apertures: ``Omega = 2*pi*(1 - cos(alpha))``
    with ``tan(alpha) = radius / distance``.

    Raises:
        ValueError: if either argument is non-positive.
    """
    if radius <= 0.0 or distance <= 0.0:
        raise ValueError("radius and distance must be positive")
    alpha = math.atan2(radius, distance)
    return 2.0 * math.pi * (1.0 - math.cos(alpha))
