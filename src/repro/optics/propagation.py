"""Propagation: geometric transfer from ground patches to the receiver.

Section 3 notes that increasing receiver height is doubly detrimental:
the signal strength decays with distance *and* the FoV footprint grows,
admitting interference.  Both effects come out of the same geometric
transfer implemented here.

For a receiver at height ``h`` looking straight down, a thin ground strip
at longitudinal offset ``x`` (spanning the footprint laterally) transfers
luminance to illuminance at the detector with weight

``g(x) = chord(x) * cos(theta_e) * cos(theta_a) / d^2 * A_fov(theta)``

where ``d = sqrt(x^2 + h^2)``, the emission and arrival cosines are both
``h / d`` for a horizontal patch and a nadir-pointing receiver, ``chord``
is the lateral extent of the footprint disc at ``x`` and ``A_fov`` the
receiver's angular acceptance.  The normalised version of ``g`` is the
**footprint kernel**: convolving the tag's reflectance profile with it
produces the blurred waveform the receiver actually sees; the integral of
``g`` provides the absolute gain that makes higher receivers see weaker
signals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .geometry import FieldOfView, GroundFootprint

__all__ = [
    "patch_transfer_weights",
    "exact_patch_transfer_weights",
    "footprint_kernel",
    "FootprintKernel",
    "absolute_gain",
]


def patch_transfer_weights(xs: np.ndarray, height: float,
                           fov: FieldOfView) -> np.ndarray:
    """Unnormalised transfer weight ``g(x)`` for strips at offsets ``xs``.

    Args:
        xs: longitudinal offsets from the receiver's nadir point (m).
        height: receiver height above the plane (m), > 0.
        fov: receiver field of view.

    Returns:
        Non-negative weights, zero outside the footprint.
    """
    if height <= 0.0:
        raise ValueError(f"height must be positive, got {height}")
    xs = np.asarray(xs, dtype=float)
    footprint = GroundFootprint.from_receiver(height, fov)
    chord = np.clip(footprint.radius**2 - xs**2, 0.0, None)
    chord = 2.0 * np.sqrt(chord)
    d2 = xs**2 + height**2
    cos_theta = height / np.sqrt(d2)
    off_axis = np.arccos(np.clip(cos_theta, -1.0, 1.0))
    acceptance = fov.acceptance_array(off_axis)
    return chord * cos_theta**2 / d2 * acceptance


@dataclass(frozen=True)
class FootprintKernel:
    """A sampled, normalised footprint kernel plus its absolute gain.

    Attributes:
        offsets: sample offsets (m), uniformly spaced, centred on 0.
        weights: kernel weights summing to 1.
        gain: integral of the unnormalised transfer (m^2-ish units); the
            factor by which patch luminance maps to detector illuminance
            after normalisation.
        height: receiver height the kernel was built for.
    """

    offsets: np.ndarray
    weights: np.ndarray
    gain: float
    height: float

    @property
    def width(self) -> float:
        """Support width of the kernel (m) — the blur length scale."""
        nz = np.nonzero(self.weights > 0.0)[0]
        if len(nz) == 0:
            return 0.0
        dx = self.offsets[1] - self.offsets[0] if len(self.offsets) > 1 else 0.0
        return float((nz[-1] - nz[0] + 1) * dx)

    def effective_width(self) -> float:
        """RMS-equivalent width: ``sqrt(12) * std`` of the weight density.

        For a uniform kernel this equals the support width, making it a
        resolution-comparable measure of blur for any kernel shape.
        """
        mean = float(np.sum(self.weights * self.offsets))
        var = float(np.sum(self.weights * (self.offsets - mean) ** 2))
        return math.sqrt(12.0 * var)


def exact_patch_transfer_weights(xs: np.ndarray, height: float,
                                 fov: FieldOfView,
                                 n_lateral: int = 65) -> np.ndarray:
    """Transfer weight with exact lateral (y) quadrature.

    :func:`patch_transfer_weights` approximates the lateral integral by
    the footprint chord times the on-axis (y = 0) transfer.  Here the
    ``cos^2(theta) / d^2 * acceptance`` term is integrated across the
    footprint chord properly — this is the full 2-D ray-integration
    model, collapsed to a 1-D kernel (strips span the footprint
    laterally, so the lateral structure is source-free).

    Args:
        xs: longitudinal offsets (m).
        height: receiver height (m), > 0.
        fov: receiver field of view.
        n_lateral: quadrature points across the chord.
    """
    if height <= 0.0:
        raise ValueError(f"height must be positive, got {height}")
    if n_lateral < 3:
        raise ValueError(f"need at least 3 lateral points, got {n_lateral}")
    xs = np.asarray(xs, dtype=float)
    footprint = GroundFootprint.from_receiver(height, fov)
    radius = footprint.radius
    out = np.zeros_like(xs)
    half_chords = np.sqrt(np.clip(radius**2 - xs**2, 0.0, None))
    for i, (x, half) in enumerate(zip(xs, half_chords)):
        if half <= 0.0:
            continue
        ys = np.linspace(-half, half, n_lateral)
        d2 = x**2 + ys**2 + height**2
        cos_theta = height / np.sqrt(d2)
        off_axis = np.arccos(np.clip(cos_theta, -1.0, 1.0))
        acc = fov.acceptance_array(off_axis)
        integrand = cos_theta**2 / d2 * acc
        out[i] = np.trapezoid(integrand, ys)
    return out


def footprint_kernel(height: float, fov: FieldOfView,
                     sample_step: float,
                     method: str = "chord") -> FootprintKernel:
    """Build the normalised footprint kernel for a receiver.

    Args:
        height: receiver height (m), > 0.
        fov: receiver field of view.
        sample_step: spatial sampling interval (m); must resolve the
            footprint (at least ~4 samples across it).
        method: ``"chord"`` (fast analytic lateral weight) or ``"exact"``
            (full lateral quadrature — the ray-integration model).

    Raises:
        ValueError: if the step cannot resolve the footprint or the
            method is unknown.
    """
    if sample_step <= 0.0:
        raise ValueError(f"sample step must be positive, got {sample_step}")
    if method not in ("chord", "exact"):
        raise ValueError(f"unknown kernel method {method!r}")
    footprint = GroundFootprint.from_receiver(height, fov)
    radius = footprint.radius
    n_half = int(math.ceil(radius / sample_step))
    if n_half < 2:
        raise ValueError(
            f"sample step {sample_step} m too coarse for footprint radius "
            f"{radius:.4f} m; use a step <= {radius / 2:.5f} m")
    offsets = np.arange(-n_half, n_half + 1, dtype=float) * sample_step
    if method == "chord":
        raw = patch_transfer_weights(offsets, height, fov)
    else:
        raw = exact_patch_transfer_weights(offsets, height, fov)
    total = raw.sum()
    if total <= 0.0:
        raise ValueError("footprint kernel has zero total weight")
    # Absolute gain: integral of g(x) dx — luminance (cd/m^2) times this
    # gives illuminance (lux) at the detector.
    gain = float(total * sample_step)
    return FootprintKernel(offsets=offsets, weights=raw / total,
                           gain=gain, height=height)


def absolute_gain(height: float, fov: FieldOfView,
                  n_samples: int = 2001) -> float:
    """Integral of the transfer weight over the footprint.

    The gain *grows* with footprint area but *shrinks* with ``1/d^2``;
    for a fixed FoV the two partially cancel, leaving a net decay with
    height — the signal-amplitude part of the paper's height trade-off.

    Args:
        height: receiver height (m), > 0.
        fov: receiver field of view.
        n_samples: integration resolution.
    """
    if height <= 0.0:
        raise ValueError(f"height must be positive, got {height}")
    footprint = GroundFootprint.from_receiver(height, fov)
    xs = np.linspace(-footprint.radius, footprint.radius, n_samples)
    step = xs[1] - xs[0]
    return float(patch_transfer_weights(xs, height, fov).sum() * step)
