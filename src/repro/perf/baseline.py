"""Baseline persistence and regression comparison for the perf suite.

The committed baseline (``benchmarks/baselines/BENCH_perf_baseline.json``)
pins the expected median time of every tracked workload.  A fresh
:class:`~repro.perf.suite.PerfReport` regresses when any workload's
median exceeds its baseline median by more than the tolerance (25% by
default — generous enough to absorb machine jitter, tight enough to
catch a hot path quietly falling back to a slow implementation).

Timings are machine-dependent by nature: refresh the baseline with
``repro-engine bench --update-baseline`` whenever the fleet or the
expected performance changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .suite import PerfReport

__all__ = ["DEFAULT_BASELINE_PATH", "Comparison", "compare_reports",
           "default_baseline_path", "load_report", "save_report",
           "format_comparisons"]

#: Repo-relative location of the committed baseline.
DEFAULT_BASELINE_PATH = Path("benchmarks/baselines/BENCH_perf_baseline.json")


def default_baseline_path() -> Path:
    """Locate the committed baseline regardless of invocation directory.

    Tries the working directory first (the documented repo-root usage),
    then the checkout this module was imported from (``src/`` layout).
    Falls back to the cwd-relative path — which is also where
    ``--update-baseline`` creates a baseline from scratch.
    """
    if DEFAULT_BASELINE_PATH.exists():
        return DEFAULT_BASELINE_PATH
    checkout = Path(__file__).resolve().parents[3] / DEFAULT_BASELINE_PATH
    if checkout.exists():
        return checkout
    return DEFAULT_BASELINE_PATH


@dataclass(frozen=True)
class Comparison:
    """One workload's current-vs-baseline verdict.

    Attributes:
        name: workload name.
        baseline_median_s: committed median, None when the workload is
            missing from the baseline (new workload — not a failure).
        current_median_s: freshly measured median.
        ratio: current / baseline (None without a baseline entry).
        regressed: current exceeds baseline by more than the tolerance.
    """

    name: str
    baseline_median_s: float | None
    current_median_s: float
    ratio: float | None
    regressed: bool


def compare_reports(current: PerfReport, baseline: PerfReport,
                    tolerance: float = 0.25) -> list[Comparison]:
    """Compare each measured workload against the baseline medians.

    Raises:
        ValueError: on a negative tolerance.
    """
    if tolerance < 0.0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    comparisons: list[Comparison] = []
    for timing in current.results:
        base = baseline.timing(timing.name)
        if base is None or not base.times_s:
            comparisons.append(Comparison(
                name=timing.name, baseline_median_s=None,
                current_median_s=timing.median_s, ratio=None,
                regressed=False))
            continue
        ratio = (timing.median_s / base.median_s
                 if base.median_s > 0.0 else float("inf"))
        comparisons.append(Comparison(
            name=timing.name,
            baseline_median_s=base.median_s,
            current_median_s=timing.median_s,
            ratio=ratio,
            regressed=ratio > 1.0 + tolerance))
    return comparisons


def save_report(report: PerfReport, path: str | Path) -> Path:
    """Serialize a report (suite run or baseline) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_dict(), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> PerfReport:
    """Read a report written by :func:`save_report`."""
    return PerfReport.from_dict(json.loads(Path(path).read_text()))


def format_comparisons(comparisons: list[Comparison],
                       tolerance: float) -> str:
    """Aligned comparison table (rendered via analysis.reporting)."""
    from ..analysis.reporting import format_table

    def fmt(value: float | None) -> str:
        return "-" if value is None else f"{value * 1e3:.2f}"

    rows = []
    for comp in comparisons:
        verdict = ("REGRESSED" if comp.regressed
                   else "new" if comp.ratio is None else "ok")
        rows.append((comp.name, fmt(comp.baseline_median_s),
                     fmt(comp.current_median_s),
                     "-" if comp.ratio is None else f"{comp.ratio:.2f}x",
                     verdict))
    table = format_table(
        ["workload", "baseline ms", "current ms", "ratio", "verdict"],
        rows)
    return (f"{table}\n(regression threshold: "
            f"{(1.0 + tolerance):.2f}x baseline median)")
